//! Environment-based workload deep dive: drive the Farm world directly
//! against a game server and watch how the simulated constructs (mob farms,
//! clock-driven harvesters, hoppers) load the tick loop over time.
//!
//! This example bypasses the experiment runner to show the lower-level API:
//! workload building, server construction, player emulation and per-tick
//! inspection.
//!
//! Run with: `cargo run --release --example farm_stress`

use cloud_sim::environment::Environment;
use meterstick_metrics::distribution::TickOperation;
use meterstick_metrics::trace::TickTrace;
use meterstick_workloads::{WorkloadKind, WorkloadSpec};
use mlg_bots::PlayerEmulation;
use mlg_protocol::netsim::LinkConfig;
use mlg_server::{GameServer, ServerConfig, ServerFlavor};

fn main() {
    // Build the Farm workload world (Table 3 constructs, rebuilt
    // programmatically) and put a vanilla server on an AWS t3.large.
    let built = WorkloadSpec::new(WorkloadKind::Farm).build(392_114_485);
    println!("world: {}", built.description);
    let config = ServerConfig::for_flavor(ServerFlavor::Vanilla);
    let mut server = GameServer::new(config, built.world, built.spawn_point);
    for (kind, pos) in &built.ambient_entities {
        server.spawn_entity(*kind, *pos);
    }
    let mut bots = PlayerEmulation::new(
        built.players.bots,
        built.spawn_point,
        built.players.walk_area,
        built.players.moving,
        LinkConfig::datacenter(),
        7,
    );
    bots.connect_all(&mut server);
    let mut engine = Environment::aws_default().instantiate(3).engine;

    // Run 45 simulated seconds, reporting every 5 seconds.
    let mut trace = TickTrace::new(50.0);
    let mut next_report_ms = 5_000.0;
    println!("\n   time   entities   mean tick   overloaded ticks   ISR so far");
    while server.clock_ms() < 45_000.0 {
        let summary = bots.step(&mut server, &mut engine);
        trace.push(summary.record);
        if summary.end_ms >= next_report_ms {
            let p = trace.percentiles();
            println!(
                "  {:>4.0} s   {:>8}   {:>8.1} ms   {:>16}   {:.4}",
                summary.end_ms / 1_000.0,
                summary.entity_count,
                p.mean,
                trace.overloaded_ticks(),
                trace.instability_ratio(None),
            );
            next_report_ms += 5_000.0;
        }
    }

    let distribution = trace.aggregate_distribution();
    println!("\nwhere the non-idle tick time went:");
    for op in TickOperation::all() {
        if !op.is_wait() {
            println!(
                "  {:>16}: {:>5.1}%",
                op.to_string(),
                distribution.busy_share_percent(op)
            );
        }
    }
    println!("\nAs in the paper's MF4, entity processing dominates the busy share once the");
    println!("dark-room farms fill up with mobs and the harvesters start dropping items.");
}
