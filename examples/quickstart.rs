//! Quickstart: declare a small benchmark campaign — workloads × servers ×
//! iterations — run it in one call, and print the headline Meterstick
//! metrics.
//!
//! Run with: `cargo run --release --example quickstart`

use cloud_sim::environment::Environment;
use meterstick::campaign::Campaign;
use meterstick::executor::ParallelExecutor;
use meterstick::report::render_table;
use meterstick::sink::NullSink;
use meterstick_workloads::WorkloadKind;
use mlg_server::ServerFlavor;

fn main() {
    // 1. Declare the sweep: every combination of these workloads, servers
    //    and iterations is one independent, seeded job.
    let campaign = Campaign::new()
        .workloads([WorkloadKind::Control, WorkloadKind::Farm])
        .flavors([ServerFlavor::Vanilla, ServerFlavor::Paper])
        .environments([Environment::aws_default()])
        .duration_secs(20)
        .iterations(2);

    // 2. Run it — here fanned out across threads; the results are
    //    bit-identical to a sequential run because each job derives all its
    //    randomness from its own seed. Everything executes in simulated
    //    (virtual) time, so this finishes in seconds of wall-clock time.
    //    Invalid configuration surfaces as an `Err`, never a panic.
    let results = campaign
        .run_with(&ParallelExecutor::default(), &mut NullSink)
        .expect("the campaign configuration is valid");

    // 3. Inspect the results: tick-time statistics, the Instability Ratio
    //    and the response-time summary per iteration.
    let mut rows = Vec::new();
    for it in results.iterations() {
        let ticks = it.tick_percentiles();
        rows.push(vec![
            it.workload.to_string(),
            it.flavor.to_string(),
            format!("#{}", it.iteration),
            format!("{}", it.ticks_executed),
            format!("{:.1}", ticks.mean),
            format!("{:.1}", ticks.max),
            format!("{:.4}", it.instability_ratio),
            format!("{:.1}", it.response.percentiles.p50),
            format!("{:.1}", it.response.percentiles.max),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "workload",
                "server",
                "iter",
                "ticks",
                "mean tick [ms]",
                "max tick [ms]",
                "ISR",
                "median RTT [ms]",
                "max RTT [ms]"
            ],
            &rows
        )
    );

    // 4. Or aggregate per grid cell.
    println!("per-cell summary:");
    let mut rows = Vec::new();
    for cell in results.cell_summaries() {
        rows.push(vec![
            cell.workload.to_string(),
            cell.flavor.to_string(),
            cell.environment.clone(),
            format!("{}", cell.iterations),
            format!("{:.4}", cell.mean_isr),
            format!("{}", cell.crashes),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "workload",
                "server",
                "environment",
                "iters",
                "mean ISR",
                "crashes"
            ],
            &rows
        )
    );
    println!("Next steps: see the binaries in crates/bench/src/bin/ for every figure and");
    println!("table of the paper, e.g. `cargo run --release -p meterstick-bench --bin fig08_isr_workloads`.");
}
