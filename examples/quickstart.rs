//! Quickstart: benchmark the vanilla server on the Control workload and print
//! the headline Meterstick metrics.
//!
//! Run with: `cargo run --release --example quickstart`

use cloud_sim::environment::Environment;
use meterstick::config::BenchmarkConfig;
use meterstick::experiment::ExperimentRunner;
use meterstick::report::render_table;
use meterstick_workloads::WorkloadKind;
use mlg_server::ServerFlavor;

fn main() {
    // 1. Describe the benchmark: workload, systems under test, environment.
    let config = BenchmarkConfig::new(WorkloadKind::Control)
        .with_flavors(vec![ServerFlavor::Vanilla, ServerFlavor::Paper])
        .with_environment(Environment::aws_default())
        .with_duration_secs(20)
        .with_iterations(2);

    // 2. Run it. Everything executes in simulated (virtual) time, so this
    //    finishes in a few seconds of wall-clock time.
    let results = ExperimentRunner::new(config).run();

    // 3. Inspect the results: tick-time statistics, the Instability Ratio and
    //    the response-time summary per iteration.
    let mut rows = Vec::new();
    for it in results.iterations() {
        let ticks = it.tick_percentiles();
        rows.push(vec![
            it.flavor.to_string(),
            format!("#{}", it.iteration),
            format!("{}", it.ticks_executed),
            format!("{:.1}", ticks.mean),
            format!("{:.1}", ticks.max),
            format!("{:.4}", it.instability_ratio),
            format!("{:.1}", it.response.percentiles.p50),
            format!("{:.1}", it.response.percentiles.max),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["server", "iter", "ticks", "mean tick [ms]", "max tick [ms]", "ISR", "median RTT [ms]", "max RTT [ms]"],
            &rows
        )
    );
    println!("Next steps: see the binaries in crates/bench/src/bin/ for every figure and");
    println!("table of the paper, e.g. `cargo run --release -p meterstick-bench --bin fig08_isr_workloads`.");
}
