//! Cloud vs self-hosted comparison: run the same Players workload on AWS,
//! Azure and a dedicated DAS-5 node and compare the variability — insight I3
//! of the paper ("players should choose their cloud environment depending on
//! their MLG, and should consider self-hosting").
//!
//! Run with: `cargo run --release --example cloud_comparison`

use cloud_sim::environment::Environment;
use meterstick::campaign::Campaign;
use meterstick::report::{ascii_bar, render_table};
use meterstick_metrics::stats::Percentiles;
use meterstick_workloads::WorkloadKind;
use mlg_server::ServerFlavor;

fn main() {
    let environments = vec![
        Environment::das5(2),
        Environment::azure_default(),
        Environment::aws_default(),
    ];
    let flavors = [ServerFlavor::Vanilla, ServerFlavor::Paper];
    // The whole comparison is one factorial campaign: 3 environments ×
    // 2 flavors × 6 iterations.
    let results = Campaign::new()
        .workloads([WorkloadKind::Players])
        .flavors(flavors)
        .environments(environments.iter().cloned())
        .duration_secs(15)
        .iterations(6)
        .run()
        .expect("valid campaign configuration");

    let mut rows = Vec::new();
    let mut bars = Vec::new();
    for environment in &environments {
        for flavor in flavors {
            let cell = results.for_cell(WorkloadKind::Players, flavor, &environment.label());
            let isr: Vec<f64> = cell.iter().map(|r| r.instability_ratio).collect();
            let isr_p = Percentiles::of(&isr);
            let ticks: Vec<f64> = cell.iter().flat_map(|r| r.trace.busy_durations()).collect();
            let ticks = Percentiles::of(&ticks);
            rows.push(vec![
                environment.label(),
                flavor.to_string(),
                format!("{:.4}", isr_p.p50),
                format!("{:.4}", isr_p.iqr()),
                format!("{:.1}", ticks.p50),
                format!("{:.1}", ticks.iqr()),
            ]);
            bars.push((format!("{} / {}", environment.label(), flavor), isr_p.p50));
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "environment",
                "server",
                "median ISR",
                "ISR IQR",
                "median tick [ms]",
                "tick IQR [ms]"
            ],
            &rows
        )
    );
    let max = bars.iter().map(|(_, v)| *v).fold(1e-6, f64::max);
    println!("median ISR per deployment (longer bar = more variability):");
    for (label, value) in bars {
        println!("  {label:>24} {}", ascii_bar(value, max, 40));
    }
    println!("\nSelf-hosting is the most stable option; neither cloud dominates for every");
    println!("server, so operators should benchmark their own combination (insight I3).");
}
