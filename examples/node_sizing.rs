//! Node sizing advisor: how much cloud hardware does an MLG need before
//! performance variability becomes acceptable? Reproduces the reasoning
//! behind the paper's insight I4 (providers should raise their hardware
//! recommendations) using the TNT stress workload.
//!
//! Run with: `cargo run --release --example node_sizing`

use cloud_sim::environment::Environment;
use cloud_sim::node::NodeType;
use cloud_sim::recommendations::{summarize, table7_recommendations};
use meterstick::campaign::Campaign;
use meterstick::report::render_table;
use meterstick_workloads::WorkloadKind;
use mlg_server::ServerFlavor;

fn main() {
    let survey = summarize(&table7_recommendations());
    println!(
        "Hosting providers most commonly recommend {} vCPU / {} GB RAM (Table 7).",
        survey.modal_vcpus, survey.modal_ram_gb
    );
    println!("Stress-testing that recommendation with the TNT workload:\n");

    let nodes = [
        NodeType::aws_t3_large(),
        NodeType::aws_t3_xlarge(),
        NodeType::aws_t3_2xlarge(),
    ];
    // The node-size axis is a campaign dimension: one TNT run per AWS size.
    let results = Campaign::new()
        .workloads([WorkloadKind::Tnt])
        .flavors([ServerFlavor::Vanilla])
        .environments([])
        .aws_node_sizes(nodes.iter().cloned())
        .duration_secs(30)
        .iterations(1)
        .run()
        .expect("valid campaign configuration");

    let mut rows = Vec::new();
    for node in nodes {
        let label = node.name.clone();
        let env_label = Environment::aws(node).label();
        let cell = results.for_cell(WorkloadKind::Tnt, ServerFlavor::Vanilla, &env_label);
        let it = cell.first().expect("one iteration per node size");
        let p = it.tick_percentiles();
        let verdict = if p.mean > 50.0 {
            "overloaded"
        } else if it.instability_ratio > 0.05 {
            "unstable"
        } else {
            "acceptable"
        };
        rows.push(vec![
            label,
            format!("{:.1}", p.mean),
            format!("{:.1}", p.p95),
            format!("{:.1}", p.max),
            format!("{:.3}", it.instability_ratio),
            verdict.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "node",
                "mean tick [ms]",
                "p95 [ms]",
                "max [ms]",
                "ISR",
                "verdict"
            ],
            &rows
        )
    );
    println!("\nAs in the paper's MF5/I4: the commonly recommended 2-vCPU size cannot absorb");
    println!("environment-based workloads; 8 vCPUs are needed for consistently smooth operation.");
}
