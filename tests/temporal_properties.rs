//! Property and golden tests pinning the temporal (tenancy) layer's
//! determinism contract:
//!
//! * the tenancy point process replays bit-identically across a
//!   pause/resume split at an *arbitrary* tick (proptest) and across
//!   tick-thread counts (campaign-level CSV bytes);
//! * two different `start_time`s under the same seed diverge — start time
//!   is a real axis, not a relabeling;
//! * [`TemporalProfile::flat`] reproduces the pre-temporal stationary
//!   behaviour **byte-identically**, pinned by a golden CSV recorded
//!   before the tenancy layer existed (`tests/data/stationary_baseline.csv`).

use proptest::prelude::*;

use cloud_sim::environment::Environment;
use cloud_sim::interference::InterferenceState;
use cloud_sim::node::NodeType;
use cloud_sim::temporal::{StartTime, TemporalProfile, TenancyProcess, MINUTES_PER_WEEK};
use meterstick::campaign::Campaign;
use meterstick::executor::SequentialExecutor;
use meterstick::sink::CsvSink;
use meterstick_workloads::WorkloadKind;
use mlg_server::ServerFlavor;

/// A profile hot enough that arrival decisions happen every few ticks, so
/// short property runs actually exercise arrivals and departures.
fn busy_profile() -> TemporalProfile {
    TemporalProfile {
        arrivals_per_hour: 14_400.0, // one arrival chance in five ticks
        peak_hours: (8, 20),
        peak_multiplier: 3.0,
        weekend_factor: 0.5,
        residency_ticks: (5, 120),
        steal_factor_per_neighbor: 1.5,
        pressure_per_neighbor: 1.1,
        max_neighbors: 4,
    }
}

proptest! {
    /// Pausing the process at any tick and resuming from the snapshot
    /// replays the remaining ticks bit-identically: no draw depends on
    /// execution history beyond the `(seed, start_time, tick)` triple and
    /// the resident set the snapshot carries.
    #[test]
    fn tenancy_pause_resume_split_is_bit_identical(
        seed in any::<u64>(),
        start_minutes in 0u32..MINUTES_PER_WEEK,
        split in 1usize..2_000,
    ) {
        let start = StartTime::from_minutes(start_minutes);
        let mut uninterrupted = TenancyProcess::new(busy_profile(), seed, start);
        let mut paused = TenancyProcess::new(busy_profile(), seed, start);
        let total = 2_000usize;
        let full: Vec<_> = (0..total).map(|_| uninterrupted.step()).collect();
        let head: Vec<_> = (0..split).map(|_| paused.step()).collect();
        let mut resumed = paused.clone();
        let tail: Vec<_> = (split..total).map(|_| resumed.step()).collect();
        prop_assert_eq!(&full[..split], head.as_slice());
        prop_assert_eq!(&full[split..], tail.as_slice());
    }

    /// Two different start times under the same seed produce different
    /// effect streams: the counter-based hash is keyed on the start minute,
    /// so a start-time sweep explores genuinely different tenancy histories
    /// on the same world.
    #[test]
    fn different_start_times_same_seed_diverge(
        seed in any::<u64>(),
        a in 0u32..MINUTES_PER_WEEK,
        offset in 1u32..MINUTES_PER_WEEK,
    ) {
        let start_a = StartTime::from_minutes(a);
        let start_b = StartTime::from_minutes((a + offset) % MINUTES_PER_WEEK);
        let mut pa = TenancyProcess::new(busy_profile(), seed, start_a);
        let mut pb = TenancyProcess::new(busy_profile(), seed, start_b);
        let stream_a: Vec<_> = (0..2_000).map(|_| pa.step()).collect();
        let stream_b: Vec<_> = (0..2_000).map(|_| pb.step()).collect();
        prop_assert!(
            stream_a != stream_b,
            "start {} and start {} produced identical tenancy streams",
            start_a,
            start_b
        );
    }

    /// The flat profile is inert for any seed and start time: zero
    /// residents, exactly-neutral factors, forever.
    #[test]
    fn flat_profile_is_neutral_everywhere(
        seed in any::<u64>(),
        start_minutes in 0u32..MINUTES_PER_WEEK,
    ) {
        let start = StartTime::from_minutes(start_minutes);
        let mut process = TenancyProcess::new(TemporalProfile::flat(), seed, start);
        for _ in 0..500 {
            let effect = process.step();
            prop_assert_eq!(effect.residents, 0);
            prop_assert_eq!(effect.steal_probability_factor.to_bits(), 1.0f64.to_bits());
            prop_assert_eq!(effect.pressure.to_bits(), 1.0f64.to_bits());
        }
    }

    /// At the interference level, a diurnal profile sampled from two
    /// different start times under the same seed diverges too — the tenancy
    /// stream survives composition with the stationary interference model.
    #[test]
    fn interference_diverges_across_start_times(seed in any::<u64>()) {
        let profile = Environment::aws_default().profile;
        let factors = |start: &str| -> Vec<u64> {
            let mut state = InterferenceState::with_temporal(
                profile.clone(),
                busy_profile(),
                StartTime::parse(start).unwrap(),
                seed,
            );
            (0..2_000).map(|_| state.sample_tick().to_bits()).collect()
        };
        prop_assert!(
            factors("mon-04:00") != factors("fri-12:30"),
            "interference factor streams must diverge across start times"
        );
    }
}

/// Runs the golden-baseline campaign: the exact configuration whose CSV was
/// recorded to `tests/data/stationary_baseline.csv` before the temporal
/// layer existed. All environments here carry the default flat profile.
fn stationary_campaign_csv() -> String {
    let campaign = Campaign::new()
        .workloads([WorkloadKind::Control, WorkloadKind::Farm])
        .flavors([ServerFlavor::Vanilla, ServerFlavor::Paper])
        .environments([Environment::aws_default(), Environment::das5(2)])
        .duration_secs(6)
        .iterations(2)
        .seed(20_260_807);
    let mut sink = CsvSink::new(Vec::new());
    campaign
        .run_with(&SequentialExecutor, &mut sink)
        .expect("valid campaign configuration");
    String::from_utf8(sink.into_inner()).expect("CSV output is UTF-8")
}

/// Strips the trailing `start_time` column (added by this PR) from every
/// CSV line, recovering the pre-PR column set.
fn strip_trailing_column(csv: &str) -> String {
    csv.lines()
        .map(|line| line.rsplit_once(',').expect("CSV line has columns").0)
        .collect::<Vec<_>>()
        .join("\n")
        + "\n"
}

/// The tentpole regression gate: with every environment on the default flat
/// profile, campaign CSVs are **byte-identical** to the pre-temporal-layer
/// baseline. The tenancy process consumes zero draws from the stationary
/// interference RNG and contributes exactly-1.0 factors, so not a single
/// bit of any metric may move.
#[test]
fn flat_profiles_reproduce_pre_temporal_baseline_byte_identically() {
    let baseline_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/data/stationary_baseline.csv"
    );
    let baseline = std::fs::read_to_string(baseline_path).expect("baseline CSV is committed");
    let current = strip_trailing_column(&stationary_campaign_csv());
    assert_eq!(
        current, baseline,
        "stationary campaigns must reproduce the pre-temporal baseline byte-for-byte"
    );
}

/// Campaign-level thread invariance on the *diurnal* environment: the CSV
/// bytes (trailing `start_time` column included) must be identical at 1, 4
/// and 8 tick threads. This is the dynamic twin of the CI probe, scoped to
/// the temporal axis.
#[test]
fn diurnal_campaign_csv_is_identical_across_tick_threads() {
    let csv_at = |threads: u32| -> String {
        let campaign = Campaign::new()
            .workloads([WorkloadKind::Farm])
            .flavors([ServerFlavor::Folia])
            .environments([Environment::aws_diurnal(NodeType::aws_t3_large())])
            .tick_threads([threads])
            .start_times([
                StartTime::from_day_hour_minute(0, 4, 0),
                StartTime::from_day_hour_minute(4, 20, 30),
            ])
            .duration_secs(5)
            .iterations(2)
            .seed(20_260_807);
        let mut sink = CsvSink::new(Vec::new());
        campaign
            .run_with(&SequentialExecutor, &mut sink)
            .expect("valid campaign configuration");
        String::from_utf8(sink.into_inner()).expect("CSV output is UTF-8")
    };
    let reference = csv_at(1);
    assert!(
        reference.lines().count() > 4,
        "campaign should produce one row per start × iteration"
    );
    assert_eq!(reference, csv_at(4), "4 threads must match 1 thread");
    assert_eq!(reference, csv_at(8), "8 threads must match 1 thread");
}
