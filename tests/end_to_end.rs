//! End-to-end integration tests: workload worlds, game server, player
//! emulation, deployment environments and the campaign orchestration
//! working together, checking the qualitative findings (MF1–MF5) the
//! reproduction is supposed to preserve.

use cloud_sim::environment::Environment;
use meterstick::campaign::{Campaign, CampaignResults};
use meterstick::executor::{ParallelExecutor, SequentialExecutor};
use meterstick::sink::NullSink;
use meterstick_metrics::stats::Percentiles;
use meterstick_workloads::WorkloadKind;
use mlg_server::ServerFlavor;

fn campaign(
    workload: WorkloadKind,
    flavor: ServerFlavor,
    environment: Environment,
    secs: u64,
    iterations: u32,
) -> Campaign {
    Campaign::new()
        .workloads([workload])
        .flavors([flavor])
        .environments([environment])
        .duration_secs(secs)
        .iterations(iterations)
}

fn run(
    workload: WorkloadKind,
    flavor: ServerFlavor,
    environment: Environment,
    secs: u64,
    iterations: u32,
) -> CampaignResults {
    campaign(workload, flavor, environment, secs, iterations)
        .run()
        .expect("valid campaign configuration")
}

#[test]
fn mf2_environment_workloads_cause_more_variability_than_control() {
    let isr_of = |workload| {
        let results = run(
            workload,
            ServerFlavor::Vanilla,
            Environment::aws_default(),
            25,
            1,
        );
        results.iterations()[0].instability_ratio
    };
    let control = isr_of(WorkloadKind::Control);
    let farm = isr_of(WorkloadKind::Farm);
    let lag = isr_of(WorkloadKind::Lag);
    assert!(
        farm > control,
        "Farm ISR ({farm}) should exceed Control ISR ({control})"
    );
    assert!(
        lag > 0.3,
        "the Lag machine should produce extreme ISR, got {lag}"
    );
    assert!(
        lag > farm,
        "Lag ({lag}) should be the worst workload (farm {farm})"
    );
}

#[test]
fn mf2_lag_crashes_on_aws_but_not_on_das5() {
    let aws = run(
        WorkloadKind::Lag,
        ServerFlavor::Vanilla,
        Environment::aws_default(),
        60,
        1,
    );
    assert!(
        aws.iterations()[0].crashed(),
        "the Lag workload should crash the vanilla server on the AWS 2-vCPU node"
    );
    let das5 = run(
        WorkloadKind::Lag,
        ServerFlavor::Vanilla,
        Environment::das5(2),
        60,
        1,
    );
    assert!(
        !das5.iterations()[0].crashed(),
        "the same workload should survive on dedicated hardware"
    );
}

#[test]
fn mf3_clouds_are_more_variable_than_self_hosting() {
    let iterations = 5;
    let isr_spread = |environment: Environment| {
        let results = run(
            WorkloadKind::Players,
            ServerFlavor::Vanilla,
            environment,
            15,
            iterations,
        );
        Percentiles::of(&results.isr_values(ServerFlavor::Vanilla))
    };
    let das5 = isr_spread(Environment::das5(2));
    let aws = isr_spread(Environment::aws_default());
    assert!(
        aws.p50 >= das5.p50,
        "median ISR on AWS ({}) should not be below DAS-5 ({})",
        aws.p50,
        das5.p50
    );
    assert!(
        aws.iqr() > das5.iqr(),
        "inter-iteration ISR spread on AWS ({}) should exceed DAS-5 ({})",
        aws.iqr(),
        das5.iqr()
    );
}

#[test]
fn mf4_entities_dominate_non_idle_tick_time_under_tnt() {
    let results = run(
        WorkloadKind::Tnt,
        ServerFlavor::Vanilla,
        Environment::aws_default(),
        30,
        1,
    );
    let it = &results.iterations()[0];
    let distribution = it.tick_distribution();
    let entity_share = distribution.busy_share_percent(meterstick_metrics::TickOperation::Entities);
    assert!(
        entity_share > 40.0,
        "entity processing should dominate the busy tick share, got {entity_share:.1}%"
    );
    // Entity messages dominate the message count but not the byte count.
    let msg_share = it
        .traffic
        .message_share_percent(mlg_protocol::TrafficCategory::Entity);
    let byte_share = it
        .traffic
        .byte_share_percent(mlg_protocol::TrafficCategory::Entity);
    assert!(msg_share > 50.0, "entity message share {msg_share:.1}%");
    assert!(
        byte_share < msg_share,
        "entity byte share should be smaller than message share"
    );
}

#[test]
fn mf5_bigger_nodes_reduce_overload_and_variability() {
    // 60 seconds: the TNT cuboid detonates at t=20 s and the sustained chain
    // reaction afterwards is what exhausts the small node's CPU budget.
    let mean_tick = |node| {
        let results = run(
            WorkloadKind::Tnt,
            ServerFlavor::Vanilla,
            Environment::aws(node),
            60,
            1,
        );
        results.iterations()[0].tick_percentiles().mean
    };
    let large = mean_tick(cloud_sim::node::NodeType::aws_t3_large());
    let xxl = mean_tick(cloud_sim::node::NodeType::aws_t3_2xlarge());
    assert!(
        xxl < large,
        "the 8-vCPU node ({xxl} ms) should have lower mean tick time than the 2-vCPU node ({large} ms)"
    );
}

#[test]
fn mf5_cheapest_adequate_node_flips_between_off_peak_and_peak_starts() {
    // The MF5 node-sizing question re-asked under diurnal tenancy: with the
    // same pinned seed and world, sweeping only the (seed-excluded)
    // start_time axis moves the cheapest node size whose mean tick stays
    // within the 50 ms budget. At the Monday-04:00 trough the recommended
    // t3.large suffices; at the Friday-20:30 peak its resident neighbors
    // push it past the budget and t3.xlarge becomes the cheapest adequate
    // size. The `start_time_sweep` bench binary prints the full table.
    let mean_tick = |node: cloud_sim::node::NodeType, start: &str| {
        let results = Campaign::new()
            .workloads([WorkloadKind::Farm])
            .flavors([ServerFlavor::Vanilla])
            .environments([Environment::aws_diurnal(node)])
            .start_times([cloud_sim::temporal::StartTime::parse(start).unwrap()])
            .duration_secs(60)
            .seed(20_260_807)
            .iterations(1)
            .run()
            .expect("valid campaign configuration");
        results.iterations()[0].tick_percentiles().mean
    };
    let budget = 50.0;
    let off_peak_large = mean_tick(cloud_sim::node::NodeType::aws_t3_large(), "mon-04:00");
    let peak_large = mean_tick(cloud_sim::node::NodeType::aws_t3_large(), "fri-20:30");
    let peak_xlarge = mean_tick(cloud_sim::node::NodeType::aws_t3_xlarge(), "fri-20:30");
    assert!(
        off_peak_large <= budget,
        "off-peak, the L node should be adequate (mean {off_peak_large} ms)"
    );
    assert!(
        peak_large > budget,
        "at the evening peak the same L node should overload (mean {peak_large} ms)"
    );
    assert!(
        peak_xlarge <= budget,
        "at the peak the XL node should still be adequate (mean {peak_xlarge} ms)"
    );
}

#[test]
fn paper_flavor_tames_environment_workloads() {
    let isr_of = |flavor| {
        let results = run(
            WorkloadKind::Farm,
            flavor,
            Environment::aws_default(),
            25,
            1,
        );
        results.iterations()[0].instability_ratio
    };
    let vanilla = isr_of(ServerFlavor::Vanilla);
    let paper = isr_of(ServerFlavor::Paper);
    assert!(
        paper < vanilla,
        "PaperMC ISR ({paper}) should be below Vanilla ISR ({vanilla}) on the Farm workload"
    );
}

#[test]
fn response_time_prober_collects_samples_on_every_workload() {
    for workload in [WorkloadKind::Control, WorkloadKind::Farm] {
        let results = run(workload, ServerFlavor::Forge, Environment::das5(2), 15, 1);
        let it = &results.iterations()[0];
        assert!(
            it.response_samples.len() >= 10,
            "{workload}: expected at least 10 probe samples, got {}",
            it.response_samples.len()
        );
        assert!(it.response.percentiles.max < 10_000.0);
    }
}

#[test]
fn system_metrics_are_collected_twice_per_second() {
    let results = run(
        WorkloadKind::Control,
        ServerFlavor::Vanilla,
        Environment::das5(2),
        10,
        1,
    );
    let it = &results.iterations()[0];
    // 10 seconds at 2 samples/second, give or take the final partial window.
    assert!(
        (it.system_samples.len() as i64 - 20).abs() <= 2,
        "expected ~20 system samples, got {}",
        it.system_samples.len()
    );
    for sample in &it.system_samples {
        assert!(sample.cpu_utilization >= 0.0 && sample.cpu_utilization <= 1.0);
        assert!(sample.memory_mib > 0.0);
        assert!(sample.threads > 0);
    }
}

#[test]
fn experiments_are_deterministic_per_seed() {
    let config = Campaign::new()
        .workloads([WorkloadKind::Farm])
        .flavors([ServerFlavor::Paper])
        .environments([Environment::aws_default()])
        .duration_secs(10)
        .iterations(2)
        .seed(1234);
    let a = config.run().expect("valid campaign");
    let b = config.run().expect("valid campaign");
    for (x, y) in a.iterations().iter().zip(b.iterations()) {
        assert_eq!(x.instability_ratio, y.instability_ratio);
        assert_eq!(x.ticks_executed, y.ticks_executed);
        assert_eq!(x.response_samples, y.response_samples);
    }
}

#[test]
fn campaign_sweep_covers_the_full_factorial_grid() {
    // One call runs a 2-workload × 2-flavor × 2-iteration sweep.
    let results = Campaign::new()
        .workloads([WorkloadKind::Control, WorkloadKind::Players])
        .flavors([ServerFlavor::Vanilla, ServerFlavor::Paper])
        .environments([Environment::das5(2)])
        .duration_secs(5)
        .iterations(2)
        .run()
        .expect("valid campaign configuration");
    assert_eq!(results.iterations().len(), 8);
    let cells = results.cell_summaries();
    assert_eq!(cells.len(), 4, "every (workload, flavor) cell is present");
    for cell in &cells {
        assert_eq!(cell.iterations, 2);
        assert!(cell.mean_isr >= 0.0 && cell.mean_isr <= 1.0);
    }
    // The sweep contains the exact cells requested, not just the right count.
    for workload in [WorkloadKind::Control, WorkloadKind::Players] {
        for flavor in [ServerFlavor::Vanilla, ServerFlavor::Paper] {
            assert_eq!(results.for_cell(workload, flavor, "DAS-5 2-core").len(), 2);
        }
    }
}

#[test]
fn parallel_and_sequential_executors_agree_end_to_end() {
    let sweep = Campaign::new()
        .workloads([WorkloadKind::Control, WorkloadKind::Players])
        .flavors([ServerFlavor::Vanilla])
        .environments([Environment::aws_default()])
        .duration_secs(4)
        .iterations(2);
    let sequential = sweep
        .run_with(&SequentialExecutor, &mut NullSink)
        .expect("valid campaign");
    let parallel = sweep
        .run_with(&ParallelExecutor::new(4), &mut NullSink)
        .expect("valid campaign");
    for (s, p) in sequential.iterations().iter().zip(parallel.iterations()) {
        assert_eq!(s.trace.busy_durations(), p.trace.busy_durations());
        assert_eq!(s.response_samples, p.response_samples);
        assert_eq!(s.instability_ratio, p.instability_ratio);
    }
}

#[test]
fn invalid_campaigns_report_errors_instead_of_panicking() {
    let err = Campaign::new().run().unwrap_err();
    assert_eq!(
        err,
        meterstick::BenchmarkError::EmptyDimension {
            dimension: "workloads"
        }
    );

    let mut bad = meterstick::BenchmarkConfig::new(WorkloadKind::Control);
    bad.ssh_keys.clear();
    let err = Campaign::from_config(bad).run().unwrap_err();
    assert!(matches!(err, meterstick::BenchmarkError::Deployment(_)));
}
