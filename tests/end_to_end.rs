//! End-to-end integration tests: workload worlds, game server, player
//! emulation, deployment environments and the experiment runner working
//! together, checking the qualitative findings (MF1–MF5) the reproduction is
//! supposed to preserve.

use cloud_sim::environment::Environment;
use meterstick::config::BenchmarkConfig;
use meterstick::experiment::ExperimentRunner;
use meterstick_metrics::stats::Percentiles;
use meterstick_workloads::WorkloadKind;
use mlg_server::ServerFlavor;

fn runner(
    workload: WorkloadKind,
    flavor: ServerFlavor,
    environment: Environment,
    secs: u64,
    iterations: u32,
) -> ExperimentRunner {
    ExperimentRunner::new(
        BenchmarkConfig::new(workload)
            .with_flavors(vec![flavor])
            .with_environment(environment)
            .with_duration_secs(secs)
            .with_iterations(iterations),
    )
}

#[test]
fn mf2_environment_workloads_cause_more_variability_than_control() {
    let isr_of = |workload| {
        let results = runner(workload, ServerFlavor::Vanilla, Environment::aws_default(), 25, 1).run();
        results.iterations()[0].instability_ratio
    };
    let control = isr_of(WorkloadKind::Control);
    let farm = isr_of(WorkloadKind::Farm);
    let lag = isr_of(WorkloadKind::Lag);
    assert!(
        farm > control,
        "Farm ISR ({farm}) should exceed Control ISR ({control})"
    );
    assert!(lag > 0.3, "the Lag machine should produce extreme ISR, got {lag}");
    assert!(lag > farm, "Lag ({lag}) should be the worst workload (farm {farm})");
}

#[test]
fn mf2_lag_crashes_on_aws_but_not_on_das5() {
    let aws = runner(WorkloadKind::Lag, ServerFlavor::Vanilla, Environment::aws_default(), 60, 1).run();
    assert!(
        aws.iterations()[0].crashed(),
        "the Lag workload should crash the vanilla server on the AWS 2-vCPU node"
    );
    let das5 = runner(WorkloadKind::Lag, ServerFlavor::Vanilla, Environment::das5(2), 60, 1).run();
    assert!(
        !das5.iterations()[0].crashed(),
        "the same workload should survive on dedicated hardware"
    );
}

#[test]
fn mf3_clouds_are_more_variable_than_self_hosting() {
    let iterations = 5;
    let isr_spread = |environment: Environment| {
        let results = runner(
            WorkloadKind::Players,
            ServerFlavor::Vanilla,
            environment,
            15,
            iterations,
        )
        .run();
        Percentiles::of(&results.isr_values(ServerFlavor::Vanilla))
    };
    let das5 = isr_spread(Environment::das5(2));
    let aws = isr_spread(Environment::aws_default());
    assert!(
        aws.p50 >= das5.p50,
        "median ISR on AWS ({}) should not be below DAS-5 ({})",
        aws.p50,
        das5.p50
    );
    assert!(
        aws.iqr() > das5.iqr(),
        "inter-iteration ISR spread on AWS ({}) should exceed DAS-5 ({})",
        aws.iqr(),
        das5.iqr()
    );
}

#[test]
fn mf4_entities_dominate_non_idle_tick_time_under_tnt() {
    let results = runner(WorkloadKind::Tnt, ServerFlavor::Vanilla, Environment::aws_default(), 30, 1).run();
    let it = &results.iterations()[0];
    let distribution = it.tick_distribution();
    let entity_share = distribution.busy_share_percent(meterstick_metrics::TickOperation::Entities);
    assert!(
        entity_share > 40.0,
        "entity processing should dominate the busy tick share, got {entity_share:.1}%"
    );
    // Entity messages dominate the message count but not the byte count.
    let msg_share = it.traffic.message_share_percent(mlg_protocol::TrafficCategory::Entity);
    let byte_share = it.traffic.byte_share_percent(mlg_protocol::TrafficCategory::Entity);
    assert!(msg_share > 50.0, "entity message share {msg_share:.1}%");
    assert!(byte_share < msg_share, "entity byte share should be smaller than message share");
}

#[test]
fn mf5_bigger_nodes_reduce_overload_and_variability() {
    // 60 seconds: the TNT cuboid detonates at t=20 s and the sustained chain
    // reaction afterwards is what exhausts the small node's CPU budget.
    let mean_tick = |node| {
        let results = runner(
            WorkloadKind::Tnt,
            ServerFlavor::Vanilla,
            Environment::aws(node),
            60,
            1,
        )
        .run();
        results.iterations()[0].tick_percentiles().mean
    };
    let large = mean_tick(cloud_sim::node::NodeType::aws_t3_large());
    let xxl = mean_tick(cloud_sim::node::NodeType::aws_t3_2xlarge());
    assert!(
        xxl < large,
        "the 8-vCPU node ({xxl} ms) should have lower mean tick time than the 2-vCPU node ({large} ms)"
    );
}

#[test]
fn paper_flavor_tames_environment_workloads() {
    let isr_of = |flavor| {
        let results = runner(WorkloadKind::Farm, flavor, Environment::aws_default(), 25, 1).run();
        results.iterations()[0].instability_ratio
    };
    let vanilla = isr_of(ServerFlavor::Vanilla);
    let paper = isr_of(ServerFlavor::Paper);
    assert!(
        paper < vanilla,
        "PaperMC ISR ({paper}) should be below Vanilla ISR ({vanilla}) on the Farm workload"
    );
}

#[test]
fn response_time_prober_collects_samples_on_every_workload() {
    for workload in [WorkloadKind::Control, WorkloadKind::Farm] {
        let results = runner(workload, ServerFlavor::Forge, Environment::das5(2), 15, 1).run();
        let it = &results.iterations()[0];
        assert!(
            it.response_samples.len() >= 10,
            "{workload}: expected at least 10 probe samples, got {}",
            it.response_samples.len()
        );
        assert!(it.response.percentiles.max < 10_000.0);
    }
}

#[test]
fn system_metrics_are_collected_twice_per_second() {
    let results = runner(WorkloadKind::Control, ServerFlavor::Vanilla, Environment::das5(2), 10, 1).run();
    let it = &results.iterations()[0];
    // 10 seconds at 2 samples/second, give or take the final partial window.
    assert!(
        (it.system_samples.len() as i64 - 20).abs() <= 2,
        "expected ~20 system samples, got {}",
        it.system_samples.len()
    );
    for sample in &it.system_samples {
        assert!(sample.cpu_utilization >= 0.0 && sample.cpu_utilization <= 1.0);
        assert!(sample.memory_mib > 0.0);
        assert!(sample.threads > 0);
    }
}

#[test]
fn experiments_are_deterministic_per_seed() {
    let config = BenchmarkConfig::new(WorkloadKind::Farm)
        .with_flavors(vec![ServerFlavor::Paper])
        .with_environment(Environment::aws_default())
        .with_duration_secs(10)
        .with_iterations(2)
        .with_seed(1234);
    let a = ExperimentRunner::new(config.clone()).run();
    let b = ExperimentRunner::new(config).run();
    for (x, y) in a.iterations().iter().zip(b.iterations()) {
        assert_eq!(x.instability_ratio, y.instability_ratio);
        assert_eq!(x.ticks_executed, y.ticks_executed);
        assert_eq!(x.response_samples, y.response_samples);
    }
}
