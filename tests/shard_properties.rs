//! Property-based tests (vendored proptest) for the shard-partition
//! invariants the sharded tick pipeline's determinism rests on:
//!
//! * every loaded chunk maps to exactly one shard, before and after any
//!   split/merge sequence (chunk stores and the map never disagree);
//! * boundary classification is symmetric: two adjacent chunks in different
//!   shards are both boundary chunks, and an interior chunk's whole 3×3
//!   neighbourhood belongs to its shard;
//! * rebalancing is a pure function of the load report — the same (map,
//!   report) pair always produces the same partition.

use proptest::prelude::*;

use mlg_world::generation::FlatGenerator;
use mlg_world::shard::{ShardLoadReport, ShardMap, TickPipeline};
use mlg_world::{ChunkPos, World};

/// Splitmix64 step: the deterministic load-report generator the properties
/// drive rebalancing with.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A synthetic load report for the map's current shard count: mostly small
/// loads with occasional hotspots, so both split and merge paths fire.
fn random_report(state: &mut u64, shards: usize) -> ShardLoadReport {
    let loads = (0..shards)
        .map(|_| {
            let draw = splitmix(state);
            if draw.is_multiple_of(5) {
                draw >> 40 // hotspot-sized load
            } else {
                draw % 97 // background noise
            }
        })
        .collect();
    ShardLoadReport::new(loads)
}

/// Runs `steps` rebalancing steps from a fixed initial adaptive partition
/// and returns every intermediate map (including the initial one).
fn rebalance_sequence(seed: u64, steps: usize) -> Vec<ShardMap> {
    let mut pipeline =
        TickPipeline::adaptive(Some((ChunkPos::new(-16, -16), ChunkPos::new(15, 15))), 8, 1);
    let mut state = seed;
    let mut maps = vec![pipeline.shard_map().clone()];
    for _ in 0..steps {
        let report = random_report(&mut state, pipeline.shards() as usize);
        pipeline.apply_load_report(&report);
        maps.push(pipeline.shard_map().clone());
    }
    maps
}

proptest! {
    #[test]
    fn every_chunk_maps_to_exactly_one_shard_through_any_split_merge_sequence(
        seed in any::<u64>(),
        steps in 1usize..24,
    ) {
        let mut world = World::new(Box::new(FlatGenerator::grassland()), seed ^ 0xA5);
        world.ensure_area(ChunkPos::new(0, 0), 6);
        let chunk_count = world.loaded_chunk_count();
        for map in rebalance_sequence(seed, steps) {
            // The map is total and in-range over a window wider than the
            // quadtree root (out-of-root chunks clamp onto edge shards).
            for x in (-40..40).step_by(5) {
                for z in (-40..40).step_by(5) {
                    prop_assert!(map.shard_of_chunk(ChunkPos::new(x, z)) < map.count());
                }
            }
            // Resharding the world to this partition loses no chunk, and
            // every chunk lands in exactly the store its shard index names.
            world.reshard(map.clone());
            prop_assert_eq!(world.loaded_chunk_count(), chunk_count);
            let mut seen = 0usize;
            for shard in 0..map.count() {
                for pos in world.shard_store(shard).positions() {
                    prop_assert_eq!(map.shard_of_chunk(pos), shard);
                    seen += 1;
                }
            }
            prop_assert_eq!(seen, chunk_count);
        }
    }

    #[test]
    fn boundary_classification_is_symmetric(
        seed in any::<u64>(),
        steps in 1usize..24,
    ) {
        let maps = rebalance_sequence(seed, steps);
        let map = maps.last().expect("sequence is never empty");
        for x in -20..20 {
            for z in -20..20 {
                let a = ChunkPos::new(x, z);
                match map.interior_shard(a) {
                    // Interior: the whole 3×3 neighbourhood shares the shard.
                    Some(shard) => {
                        prop_assert_eq!(map.shard_of_chunk(a), shard);
                        for dx in -1..=1 {
                            for dz in -1..=1 {
                                let n = ChunkPos::new(x + dx, z + dz);
                                prop_assert_eq!(map.shard_of_chunk(n), shard);
                            }
                        }
                    }
                    // Boundary: some direct neighbour is in another shard,
                    // and that neighbour must classify as boundary too.
                    None => {
                        let shard = map.shard_of_chunk(a);
                        for dx in -1..=1i32 {
                            for dz in -1..=1i32 {
                                let n = ChunkPos::new(x + dx, z + dz);
                                if map.shard_of_chunk(n) != shard {
                                    prop_assert_eq!(map.interior_shard(n), None);
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn rebalancing_is_a_pure_function_of_the_load_report(
        seed in any::<u64>(),
        steps in 1usize..24,
    ) {
        // Replaying the identical report sequence reproduces the identical
        // partition sequence…
        let first = rebalance_sequence(seed, steps);
        let second = rebalance_sequence(seed, steps);
        prop_assert_eq!(&first, &second);
        // …and each individual step is idempotent on (map, report).
        let mut state = seed;
        for map in &first {
            let report = random_report(&mut state, map.count());
            prop_assert_eq!(map.rebalanced(&report, 16), map.rebalanced(&report, 16));
        }
    }

    #[test]
    fn static_stripe_maps_ignore_every_report(
        count in 1u32..12,
        load in 1u64..1_000_000,
    ) {
        let map = ShardMap::stripes(count);
        let report = ShardLoadReport::new(vec![load; map.count()]);
        prop_assert_eq!(map.rebalanced(&report, 64), None);
    }
}
