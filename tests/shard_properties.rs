//! Property-based tests (vendored proptest) for the shard-partition
//! invariants the sharded tick pipeline's determinism rests on:
//!
//! * every loaded chunk maps to exactly one shard, before and after any
//!   split/merge sequence (chunk stores and the map never disagree);
//! * boundary classification is symmetric: two adjacent chunks in different
//!   shards are both boundary chunks, and an interior chunk's whole 3×3
//!   neighbourhood belongs to its shard;
//! * rebalancing is a pure function of the load report — the same (map,
//!   report) pair always produces the same partition.

use proptest::prelude::*;

use mlg_entity::{EntityId, Vec3};
use mlg_protocol::ServerboundPacket;
use mlg_server::handler;
use mlg_server::{ConnectedPlayer, PlayerId};
use mlg_world::generation::FlatGenerator;
use mlg_world::shard::{ShardLoadReport, ShardMap, TickPipeline};
use mlg_world::{Block, BlockKind, BlockPos, ChunkPos, World};

/// Splitmix64 step: the deterministic load-report generator the properties
/// drive rebalancing with.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A synthetic load report for the map's current shard count: mostly small
/// loads with occasional hotspots, so both split and merge paths fire.
fn random_report(state: &mut u64, shards: usize) -> ShardLoadReport {
    let loads = (0..shards)
        .map(|_| {
            let draw = splitmix(state);
            if draw.is_multiple_of(5) {
                draw >> 40 // hotspot-sized load
            } else {
                draw % 97 // background noise
            }
        })
        .collect();
    ShardLoadReport::new(loads)
}

/// Runs `steps` rebalancing steps from a fixed initial adaptive partition
/// and returns every intermediate map (including the initial one).
fn rebalance_sequence(seed: u64, steps: usize) -> Vec<ShardMap> {
    let mut pipeline =
        TickPipeline::adaptive(Some((ChunkPos::new(-16, -16), ChunkPos::new(15, 15))), 8, 1);
    let mut state = seed;
    let mut maps = vec![pipeline.shard_map().clone()];
    for _ in 0..steps {
        let report = random_report(&mut state, pipeline.shards() as usize);
        pipeline.apply_load_report(&report);
        maps.push(pipeline.shard_map().clone());
    }
    maps
}

proptest! {
    #[test]
    fn every_chunk_maps_to_exactly_one_shard_through_any_split_merge_sequence(
        seed in any::<u64>(),
        steps in 1usize..24,
    ) {
        let mut world = World::new(Box::new(FlatGenerator::grassland()), seed ^ 0xA5);
        world.ensure_area(ChunkPos::new(0, 0), 6);
        let chunk_count = world.loaded_chunk_count();
        for map in rebalance_sequence(seed, steps) {
            // The map is total and in-range over a window wider than the
            // quadtree root (out-of-root chunks clamp onto edge shards).
            for x in (-40..40).step_by(5) {
                for z in (-40..40).step_by(5) {
                    prop_assert!(map.shard_of_chunk(ChunkPos::new(x, z)) < map.count());
                }
            }
            // Resharding the world to this partition loses no chunk, and
            // every chunk lands in exactly the store its shard index names.
            world.reshard(map.clone());
            prop_assert_eq!(world.loaded_chunk_count(), chunk_count);
            let mut seen = 0usize;
            for shard in 0..map.count() {
                for pos in world.shard_store(shard).positions() {
                    prop_assert_eq!(map.shard_of_chunk(pos), shard);
                    seen += 1;
                }
            }
            prop_assert_eq!(seen, chunk_count);
        }
    }

    #[test]
    fn boundary_classification_is_symmetric(
        seed in any::<u64>(),
        steps in 1usize..24,
    ) {
        let maps = rebalance_sequence(seed, steps);
        let map = maps.last().expect("sequence is never empty");
        for x in -20..20 {
            for z in -20..20 {
                let a = ChunkPos::new(x, z);
                match map.interior_shard(a) {
                    // Interior: the whole 3×3 neighbourhood shares the shard.
                    Some(shard) => {
                        prop_assert_eq!(map.shard_of_chunk(a), shard);
                        for dx in -1..=1 {
                            for dz in -1..=1 {
                                let n = ChunkPos::new(x + dx, z + dz);
                                prop_assert_eq!(map.shard_of_chunk(n), shard);
                            }
                        }
                    }
                    // Boundary: some direct neighbour is in another shard,
                    // and that neighbour must classify as boundary too.
                    None => {
                        let shard = map.shard_of_chunk(a);
                        for dx in -1..=1i32 {
                            for dz in -1..=1i32 {
                                let n = ChunkPos::new(x + dx, z + dz);
                                if map.shard_of_chunk(n) != shard {
                                    prop_assert_eq!(map.interior_shard(n), None);
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn rebalancing_is_a_pure_function_of_the_load_report(
        seed in any::<u64>(),
        steps in 1usize..24,
    ) {
        // Replaying the identical report sequence reproduces the identical
        // partition sequence…
        let first = rebalance_sequence(seed, steps);
        let second = rebalance_sequence(seed, steps);
        prop_assert_eq!(&first, &second);
        // …and each individual step is idempotent on (map, report).
        let mut state = seed;
        for map in &first {
            let report = random_report(&mut state, map.count());
            prop_assert_eq!(map.rebalanced(&report, 16), map.rebalanced(&report, 16));
        }
    }

    #[test]
    fn static_stripe_maps_ignore_every_report(
        count in 1u32..12,
        load in 1u64..1_000_000,
    ) {
        let map = ShardMap::stripes(count);
        let report = ShardLoadReport::new(vec![load; map.count()]);
        prop_assert_eq!(map.rebalanced(&report, 64), None);
    }

    /// The sharded player stage — batching by owning shard, parallel
    /// interior processing, serial escalation, canonical merge — yields the
    /// identical [`PlayerStageReport`] (counters AND `pending_chat` order),
    /// identical players and identical per-shard work at 1, 4 and 8 worker
    /// threads, over random crowds, action queues and partitions.
    #[test]
    fn player_stage_is_identical_at_1_4_and_8_threads(
        seed in any::<u64>(),
        player_count in 1usize..32,
        adaptive in any::<bool>(),
    ) {
        let outcomes: Vec<_> = [1u32, 4, 8]
            .iter()
            .map(|&threads| {
                let pipeline = if adaptive {
                    TickPipeline::adaptive(
                        Some((ChunkPos::new(-8, -8), ChunkPos::new(7, 7))),
                        8,
                        threads,
                    )
                } else {
                    TickPipeline::new(4, threads)
                };
                let mut world = World::new(Box::new(FlatGenerator::grassland()), 42);
                world.ensure_area(ChunkPos::new(0, 0), 7);
                world.advance_tick();
                let (players, actions) = random_crowd(seed, player_count);
                let (players, stage) =
                    handler::process_players_sharded(&mut world, players, actions, &pipeline);
                // Fold world side effects into the comparison too: block
                // writes and the pending update count must match.
                (players, stage, world.pending_change_count(), world.total_non_air_blocks())
            })
            .collect();
        prop_assert_eq!(&outcomes[0], &outcomes[1], "1 vs 4 threads diverged");
        prop_assert_eq!(&outcomes[0], &outcomes[2], "1 vs 8 threads diverged");
        // Chat order sanity: every chat the crowd sent is in the merged
        // report exactly once.
        let chats_sent: usize = outcomes[0].1.report.chat_messages as usize;
        prop_assert_eq!(outcomes[0].1.report.pending_chat.len(), chats_sent);
    }
}

/// A deterministic crowd for the player-stage property: players scattered
/// over several shards, each with a random mix of moves, digs, placements
/// and chats (some deliberately crossing chunk boundaries).
fn random_crowd(seed: u64, count: usize) -> (Vec<ConnectedPlayer>, Vec<Vec<ServerboundPacket>>) {
    let mut state = seed ^ 0xC0FFEE;
    let mut players = Vec::with_capacity(count);
    let mut actions = Vec::with_capacity(count);
    for i in 0..count {
        let x = (splitmix(&mut state) % 96) as f64 - 48.0;
        let z = (splitmix(&mut state) % 96) as f64 - 48.0;
        let pos = Vec3::new(x + 0.5, 61.0, z + 0.5);
        let disconnected = splitmix(&mut state).is_multiple_of(11);
        players.push(ConnectedPlayer {
            id: PlayerId(i as u32 + 1),
            entity_id: EntityId(i as u64 + 1),
            name: format!("crowd-{i}"),
            pos,
            connected_at_tick: 0,
            last_served_ms: 0.0,
            disconnected,
        });
        if disconnected {
            actions.push(Vec::new());
            continue;
        }
        let mut queue = Vec::new();
        for _ in 0..(splitmix(&mut state) % 6) {
            let dx = (splitmix(&mut state) % 17) as i32 - 8;
            let dz = (splitmix(&mut state) % 17) as i32 - 8;
            let target = BlockPos::new(x as i32 + dx, 61, z as i32 + dz);
            match splitmix(&mut state) % 4 {
                0 => queue.push(ServerboundPacket::PlayerMove {
                    pos: Vec3::new(target.x as f64 + 0.5, 61.0, target.z as f64 + 0.5),
                    on_ground: true,
                }),
                1 => queue.push(ServerboundPacket::BlockPlace {
                    pos: target,
                    block: Block::simple(BlockKind::Planks),
                }),
                2 => queue.push(ServerboundPacket::BlockDig {
                    pos: BlockPos::new(target.x, 60, target.z),
                }),
                _ => queue.push(ServerboundPacket::Chat {
                    message: format!("msg-{}", splitmix(&mut state) % 1000),
                    sent_at_ms: (splitmix(&mut state) % 10_000) as f64,
                }),
            }
        }
        actions.push(queue);
    }
    (players, actions)
}

/// Regression: a player standing in one shard's interior whose dig crosses
/// the shard edge must be escalated to the serial tail — and the dig must
/// still happen.
#[test]
fn boundary_player_digging_across_a_shard_edge_lands_in_the_serial_tail() {
    // Interior of shard 0 (stripe chunks 0..4, interior 1..=2) reaching
    // into the NEXT stripe (shard 1's interior): the dig crosses the
    // shard edge, so the whole player escalates to the serial tail.
    let interior_pos = Vec3::new(24.5, 61.0, 8.5);
    let dig_target = BlockPos::new(80, 60, 8);

    let run = |threads: u32| {
        let pipeline = TickPipeline::new(2, threads);
        let map = pipeline.shard_map().clone();
        assert_eq!(map.interior_shard(ChunkPos::new(1, 0)), Some(0));
        assert_eq!(map.shard_of_chunk(dig_target.chunk()), 1);
        let mut world = World::new(Box::new(FlatGenerator::grassland()), 42);
        world.ensure_area(ChunkPos::new(2, 0), 5);
        world.advance_tick();
        let cross_digger = ConnectedPlayer {
            id: PlayerId(1),
            entity_id: EntityId(1),
            name: "cross-digger".into(),
            pos: interior_pos,
            connected_at_tick: 0,
            last_served_ms: 0.0,
            disconnected: false,
        };
        let mut local_builder = cross_digger.clone();
        local_builder.id = PlayerId(2);
        local_builder.entity_id = EntityId(2);
        local_builder.name = "local-builder".into();
        let actions = vec![
            vec![ServerboundPacket::BlockDig { pos: dig_target }],
            vec![ServerboundPacket::BlockPlace {
                pos: BlockPos::new(26, 61, 9),
                block: Block::simple(BlockKind::Planks),
            }],
        ];
        let (_, stage) = handler::process_players_sharded(
            &mut world,
            vec![cross_digger, local_builder],
            actions,
            &pipeline,
        );
        assert_eq!(world.block_if_loaded(dig_target), Block::AIR);
        stage
    };

    let stage = run(4);
    assert_eq!(
        stage.escalated_players, 1,
        "exactly the cross-shard digger escalates"
    );
    assert_eq!(stage.report.blocks_dug, 1, "the escalated dig still lands");
    assert_eq!(stage.report.blocks_placed, 1);
    assert_eq!(
        stage.per_shard_work[1], 0,
        "the dig ran in the serial tail, not shard 1's batch"
    );
    assert!(
        stage.per_shard_work[0] > 0,
        "the interior placement ran in shard 0's batch"
    );
    // Identical outcome at one worker thread.
    assert_eq!(stage, run(1));
}
