//! Substrate storage regression tests for the palette-compressed chunk body.
//!
//! The dense layout spent `DENSE_BODY_BYTES` (64 KiB) per loaded chunk
//! regardless of content. The palette store's footprint scales with the
//! number of distinct blocks actually present, and on the paper's workload
//! worlds — generated terrain plus each workload's construct — that must be
//! a ≥ 4× aggregate reduction. The per-workload floor is looser because a
//! construct-dense world (many block kinds per chunk) legitimately needs a
//! wider palette than flat grassland.

use meterstick_workloads::{WorkloadKind, WorkloadSpec};
use mlg_world::DENSE_BODY_BYTES;

#[test]
fn paper_workload_worlds_compress_at_least_4x() {
    let mut total_dense: u64 = 0;
    let mut total_palette: u64 = 0;
    for kind in WorkloadKind::all() {
        let mut built = WorkloadSpec::new(kind).build(392_114_485);
        // Post-build compaction mirrors the server, which re-narrows chunk
        // palettes at simulated major-GC ticks.
        built.world.compact_chunk_storage();
        let chunks = built.world.loaded_chunk_count() as u64;
        assert!(chunks > 0, "{kind}: workload world has no loaded chunks");
        let dense = chunks * DENSE_BODY_BYTES as u64;
        let palette = built.world.chunk_storage_bytes() as u64;
        let ratio = dense as f64 / palette as f64;
        println!("{kind}: {chunks} chunks, dense {dense} B, palette {palette} B, {ratio:.2}x");
        assert!(
            ratio >= 2.0,
            "{kind}: palette ratio {ratio:.2}x collapsed below the 2x sanity floor"
        );
        total_dense += dense;
        total_palette += palette;
    }
    let aggregate = total_dense as f64 / total_palette as f64;
    assert!(
        aggregate >= 4.0,
        "aggregate palette ratio {aggregate:.2}x is below the pinned 4x regression floor"
    );
}
