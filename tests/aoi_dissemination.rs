//! Area-of-interest dissemination: equivalence and traffic-cut tests.
//!
//! The AoI path must be *observably equivalent* to a full broadcast put
//! through a per-recipient distance filter — byte-exact per connection —
//! while cutting the modeled dissemination volume by a large factor on a
//! scattered population (the Horde workload's regime). The wall-clock side
//! of the same claim lives in the `entity_scaling` bench group.

use cloud_sim::environment::Environment;
use meterstick_workloads::{WorkloadKind, WorkloadSpec};
use mlg_bots::PlayerEmulation;
use mlg_entity::{EntityKind, Vec3};
use mlg_protocol::netsim::LinkConfig;
use mlg_protocol::ClientboundPacket;
use mlg_server::{GameServer, ServerConfig, ServerFlavor};
use mlg_world::generation::FlatGenerator;
use mlg_world::{BlockKind, World};

/// The wire-visible position of a packet, mirroring the server's AoI
/// classification: entity packets at the entity position, block changes at
/// the block centre, everything else global (`None`).
fn reference_position(packet: &ClientboundPacket) -> Option<Vec3> {
    match packet {
        ClientboundPacket::EntityMove { pos, .. } | ClientboundPacket::EntitySpawn { pos, .. } => {
            Some(*pos)
        }
        ClientboundPacket::BlockChange { pos, .. } => Some(Vec3::new(
            f64::from(pos.x) + 0.5,
            f64::from(pos.y) + 0.5,
            f64::from(pos.z) + 0.5,
        )),
        _ => None,
    }
}

/// Builds a Folia server with stationary players spread so that some pairs
/// are inside each other's view radius and some are far outside it, plus a
/// mix of positioned traffic sources (wandering hostiles, falling items,
/// primed TNT producing block changes and destroys).
fn scattered_scene(aoi: bool) -> (GameServer, Vec<(mlg_server::PlayerId, Vec3)>) {
    let config = ServerConfig::for_flavor(ServerFlavor::Folia)
        .with_view_distance(2)
        .with_aoi_dissemination(Some(aoi));
    let world = World::new(Box::new(FlatGenerator::grassland()), 7);
    let mut server = GameServer::new(config, world, Vec3::new(0.5, 61.0, 0.5));
    let spots = [
        Vec3::new(0.5, 61.0, 0.5),
        Vec3::new(20.0, 61.0, -12.0),
        Vec3::new(150.0, 61.0, 150.0),
        Vec3::new(-200.0, 61.0, 40.0),
        Vec3::new(160.0, 61.0, 120.0),
    ];
    let players: Vec<_> = spots
        .iter()
        .enumerate()
        .map(|(i, pos)| (server.connect_player_at(&format!("p{i}"), *pos), *pos))
        .collect();
    for (i, pos) in spots.iter().enumerate() {
        server.spawn_entity(EntityKind::Zombie, Vec3::new(pos.x + 3.0, 61.0, pos.z));
        server.spawn_entity(
            EntityKind::Item(BlockKind::Dirt),
            Vec3::new(pos.x, 70.0 + i as f64, pos.z + 2.0),
        );
        server.spawn_entity(
            EntityKind::PrimedTnt,
            Vec3::new(pos.x - 5.0, 61.0, pos.z - 5.0),
        );
    }
    (server, players)
}

#[test]
fn aoi_delivery_equals_distance_filtered_broadcast() {
    let (mut filtered, players_a) = scattered_scene(true);
    let (mut broadcast, players_b) = scattered_scene(false);
    assert_eq!(players_a, players_b);
    assert!(filtered.aoi_dissemination() && !broadcast.aoi_dissemination());

    // Join-time chunk streaming is identical on both servers; clear it so
    // the comparison below covers exactly the tick dissemination stage.
    for (id, _) in &players_a {
        assert_eq!(filtered.drain_outgoing(*id), broadcast.drain_outgoing(*id));
    }

    let radius = f64::from(filtered.config().view_distance) * 16.0;
    let mut engine_a = Environment::das5(4).instantiate(1).engine;
    let mut engine_b = Environment::das5(4).instantiate(1).engine;
    for tick in 0..30 {
        filtered.run_tick(&mut engine_a);
        broadcast.run_tick(&mut engine_b);
        for (id, player_pos) in &players_a {
            let full = broadcast.drain_outgoing(*id);
            let expected: Vec<_> = full
                .into_iter()
                .filter(|packet| {
                    reference_position(packet).is_none_or(|pos| {
                        let dx = pos.x - player_pos.x;
                        let dz = pos.z - player_pos.z;
                        dx * dx + dz * dz <= radius * radius
                    })
                })
                .collect();
            assert_eq!(
                filtered.drain_outgoing(*id),
                expected,
                "tick {tick}: player {id:?} AoI stream is not the distance-filtered broadcast"
            );
        }
    }
}

#[test]
fn aoi_cuts_horde_tick_dissemination_bytes_at_least_5x() {
    // The Horde regime at reduced scale: a scattered building swarm whose
    // interest sets are tiny compared to the population. Both runs replay
    // the identical simulation (AoI never changes what is simulated, only
    // who receives which packet), so the byte ratio is deterministic.
    let run = |aoi: bool| -> u64 {
        let built = WorkloadSpec::new(WorkloadKind::Horde).build(7);
        assert!(built.players.scatter >= 1_000);
        let config = ServerConfig::for_flavor(ServerFlavor::Folia)
            .with_view_distance(2)
            .with_aoi_dissemination(Some(aoi));
        let mut emulation = PlayerEmulation::new(
            500,
            built.spawn_point,
            built.players.walk_area,
            built.players.moving,
            LinkConfig::datacenter(),
            7,
        )
        .with_builders()
        .scattered(built.spawn_point, built.players.scatter, 7);
        let mut server = GameServer::new(config, built.world, built.spawn_point);
        emulation.connect_all(&mut server);
        // Count tick-phase dissemination only: join-time chunk streaming is
        // identical in both runs and would dilute the ratio.
        let joined = server.traffic_summary().total_bytes();
        let mut engine = Environment::das5(4).instantiate(1).engine;
        for _ in 0..10 {
            emulation.step(&mut server, &mut engine);
        }
        server.traffic_summary().total_bytes() - joined
    };

    let aoi_bytes = run(true);
    let broadcast_bytes = run(false);
    assert!(aoi_bytes > 0, "the swarm must produce tick traffic");
    assert!(
        broadcast_bytes >= aoi_bytes * 5,
        "AoI must cut modeled dissemination bytes at least 5x on a scattered swarm: \
         broadcast {broadcast_bytes} vs AoI {aoi_bytes}"
    );
}
