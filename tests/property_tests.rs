//! Property-based tests (proptest) on the core data structures and
//! invariants: the ISR metric, coordinate conversions, the protocol codec,
//! the controller wire format, region geometry and summary statistics.

use proptest::prelude::*;

use meterstick::controller::ControllerMessage;
use meterstick_metrics::isr::{analytical_isr, instability_ratio, IsrParams};
use meterstick_metrics::stats::{percentile, BoxplotSummary, Percentiles};
use mlg_entity::{EntityId, Vec3};
use mlg_protocol::codec::{
    decode_clientbound, decode_serverbound, encode_clientbound, encode_serverbound,
};
use mlg_protocol::{ClientboundPacket, ServerboundPacket};
use mlg_world::{Block, BlockKind, BlockPos, Chunk, ChunkPos, Region};

proptest! {
    // ------------------------------------------------------------------ ISR
    #[test]
    fn isr_is_always_in_unit_range(
        durations in prop::collection::vec(0.1f64..5_000.0, 0..400),
    ) {
        let isr = instability_ratio(&durations, IsrParams::default());
        prop_assert!((0.0..=1.0).contains(&isr));
    }

    #[test]
    fn isr_of_constant_traces_is_zero(value in 0.1f64..2_000.0, len in 2usize..200) {
        let trace = vec![value; len];
        prop_assert_eq!(instability_ratio(&trace, IsrParams::default()), 0.0);
    }

    #[test]
    fn isr_is_invariant_to_sub_budget_noise(
        noise in prop::collection::vec(0.1f64..49.9, 10..200),
    ) {
        // Every tick below the budget runs at the budget period, so traces of
        // sub-budget ticks always have ISR 0 regardless of their shape.
        let isr = instability_ratio(&noise, IsrParams::default());
        prop_assert_eq!(isr, 0.0);
    }

    #[test]
    fn analytical_isr_matches_its_closed_form_bounds(s in 1.0f64..100.0, lambda in 1.0f64..500.0) {
        let isr = analytical_isr(s, lambda);
        prop_assert!((0.0..=1.0).contains(&isr));
        // Monotone in s, antitone in lambda.
        prop_assert!(analytical_isr(s + 1.0, lambda) >= isr);
        prop_assert!(analytical_isr(s, lambda + 1.0) <= isr);
    }

    // ----------------------------------------------------------- statistics
    #[test]
    fn percentiles_are_bounded_by_extremes(
        values in prop::collection::vec(-1_000.0f64..1_000.0, 1..200),
        p in 0.0f64..100.0,
    ) {
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let v = percentile(&values, p);
        prop_assert!(v >= min - 1e-9 && v <= max + 1e-9);
    }

    #[test]
    fn boxplot_invariants_hold(values in prop::collection::vec(0.0f64..10_000.0, 2..300)) {
        let p = Percentiles::of(&values);
        let b = BoxplotSummary::of(&values);
        prop_assert!(b.q1 <= b.median && b.median <= b.q3);
        prop_assert!(b.whisker_low >= b.min - 1e-9);
        prop_assert!(b.whisker_high <= b.max + 1e-9);
        prop_assert!(p.mean >= p.min && p.mean <= p.max);
    }

    // ---------------------------------------------------------- coordinates
    #[test]
    fn block_pos_chunk_and_local_are_consistent(
        x in -100_000i32..100_000,
        y in 0i32..127,
        z in -100_000i32..100_000,
    ) {
        let pos = BlockPos::new(x, y, z);
        let chunk = pos.chunk();
        let (lx, ly, lz) = pos.local();
        let origin = chunk.origin_block();
        prop_assert_eq!(origin.x + lx as i32, x);
        prop_assert_eq!(origin.z + lz as i32, z);
        prop_assert_eq!(ly, y);
        prop_assert!(lx < 16 && lz < 16);
    }

    #[test]
    fn vec3_to_block_pos_floors(
        x in -10_000.0f64..10_000.0,
        y in 0.0f64..127.0,
        z in -10_000.0f64..10_000.0,
    ) {
        let v = Vec3::new(x, y, z);
        let b = v.block_pos();
        prop_assert!(f64::from(b.x) <= x && x < f64::from(b.x) + 1.0);
        prop_assert!(f64::from(b.z) <= z && z < f64::from(b.z) + 1.0);
    }

    // --------------------------------------------------------------- regions
    #[test]
    fn region_volume_matches_iteration(
        ax in -20i32..20, ay in 0i32..20, az in -20i32..20,
        bx in -20i32..20, by in 0i32..20, bz in -20i32..20,
    ) {
        let region = Region::new(BlockPos::new(ax, ay, az), BlockPos::new(bx, by, bz));
        prop_assert_eq!(region.iter().count() as u64, region.volume());
        for pos in region.iter() {
            prop_assert!(region.contains(pos));
        }
    }

    // ------------------------------------------------------- palette storage
    #[test]
    fn palette_chunk_matches_dense_reference(
        writes in prop::collection::vec(any::<u32>(), 1..300),
    ) {
        // The palette-compressed chunk body must be observationally identical
        // to a dense Vec<Block> under arbitrary write sequences — including
        // the old-value return of set_block, mid-sequence gc compaction
        // (which re-narrows the bit width), snapshots (clones) and the
        // non-air iterator. Each u32 packs one write:
        // x(4) z(4) y(7) kind(6, mod 36) state(2) compact(1).
        let mut chunk = Chunk::empty(ChunkPos::new(0, 0));
        let mut dense = vec![Block::AIR; 16 * 16 * 128];
        let index = |x: usize, y: i32, z: usize| (y as usize * 16 + z) * 16 + x;
        for (step, word) in writes.iter().copied().enumerate() {
            let x = (word & 15) as usize;
            let z = ((word >> 4) & 15) as usize;
            let y = ((word >> 8) & 127) as i32;
            let kind_idx = ((word >> 15) & 63) as usize % 36;
            let state = ((word >> 21) & 3) as u8;
            let compact = (word >> 23) & 1 == 1;
            let block = Block::with_state(BlockKind::all()[kind_idx], state);
            let old = chunk.set_block(x, y, z, block);
            prop_assert_eq!(old, dense[index(x, y, z)]);
            dense[index(x, y, z)] = block;
            if compact && step % 16 == 0 {
                chunk.compact_storage();
            }
        }
        let snapshot = chunk.clone();
        let mut non_air = 0usize;
        for y in 0..128i32 {
            for z in 0..16 {
                for x in 0..16 {
                    let expected = dense[index(x, y, z)];
                    prop_assert_eq!(chunk.block(x, y, z), expected);
                    prop_assert_eq!(snapshot.block(x, y, z), expected);
                    non_air += usize::from(!expected.is_air());
                }
            }
        }
        prop_assert_eq!(chunk.iter_non_air().count(), non_air);
        for (x, y, z, block) in chunk.iter_non_air() {
            prop_assert_eq!(block, dense[index(x, y, z)]);
        }
    }

    // -------------------------------------------------------------- protocol
    #[test]
    fn serverbound_chat_roundtrips(message in ".{0,80}", ts in 0.0f64..1e9) {
        let packet = ServerboundPacket::Chat { message, sent_at_ms: ts };
        let decoded = decode_serverbound(encode_serverbound(&packet)).unwrap();
        prop_assert_eq!(decoded, packet);
    }

    #[test]
    fn clientbound_block_change_roundtrips(
        x in -1_000_000i32..1_000_000,
        y in 0i32..127,
        z in -1_000_000i32..1_000_000,
        kind_idx in 0usize..36,
        state in 0u8..=255,
    ) {
        let kind = BlockKind::all()[kind_idx];
        let packet = ClientboundPacket::BlockChange {
            pos: BlockPos::new(x, y, z),
            block: Block::with_state(kind, state),
        };
        let decoded = decode_clientbound(encode_clientbound(&packet)).unwrap();
        prop_assert_eq!(decoded, packet);
    }

    #[test]
    fn clientbound_entity_move_roundtrips(
        id in 0u64..u64::MAX,
        x in -1e6f64..1e6, y in -256.0f64..256.0, z in -1e6f64..1e6,
    ) {
        let packet = ClientboundPacket::EntityMove {
            id: EntityId(id),
            pos: Vec3::new(x, y, z),
        };
        let decoded = decode_clientbound(encode_clientbound(&packet)).unwrap();
        prop_assert_eq!(decoded, packet);
    }

    // ------------------------------------------------------------ controller
    #[test]
    fn controller_messages_roundtrip_through_wire_format(
        payload in ".{0,40}",
        n in 0u32..u32::MAX,
        variant in 0usize..11,
    ) {
        // Covers every ControllerMessage variant, with arbitrary payloads
        // (including colons) for the parameterized ones.
        let message = match variant {
            0 => ControllerMessage::SetServer(payload.clone()),
            1 => ControllerMessage::SetJmx(payload.clone()),
            2 => ControllerMessage::Iter(n),
            3 => ControllerMessage::Initialize,
            4 => ControllerMessage::LogStart,
            5 => ControllerMessage::LogStop,
            6 => ControllerMessage::StopServer,
            7 => ControllerMessage::Connect,
            8 => ControllerMessage::Convert,
            9 => ControllerMessage::KeepAlive,
            _ => ControllerMessage::Exit,
        };
        let wire = message.wire_format();
        prop_assert_eq!(ControllerMessage::parse(&wire), Ok(message));
    }

    #[test]
    fn truncated_packets_never_panic(
        bytes in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        // Decoding arbitrary bytes must return an error or a packet, never panic.
        let _ = decode_clientbound(bytes::Bytes::from(bytes.clone()));
        let _ = decode_serverbound(bytes::Bytes::from(bytes));
    }
}
