//! Equivalence tests for the sharded tick pipeline at the campaign level:
//! tick records, traffic summaries and CSV output must be **bit-identical**
//! between the sequential reference path (`tick_threads = 1`) and any
//! parallel setting, across workloads and seeds.
//!
//! Lower-level equivalence (per-shard terrain/entity phases at 1/2/4/8
//! shard counts) is pinned by unit tests in `mlg-world` and `mlg-entity`;
//! this suite drives the whole stack the way the figure binaries do.

use cloud_sim::environment::Environment;
use meterstick::campaign::{Campaign, CampaignResults};
use meterstick::sink::CsvSink;
use meterstick_workloads::WorkloadKind;
use mlg_server::{FlavorProfile, GameServer, ServerConfig, ServerFlavor};
use mlg_world::generation::FlatGenerator;
use mlg_world::{Block, BlockKind, BlockPos, Region, World};

fn folia_campaign(workload: WorkloadKind, seed: u64, threads: u32) -> Campaign {
    Campaign::new()
        .workloads([workload])
        .flavors([ServerFlavor::Folia])
        .environments([Environment::das5(4)])
        .tick_threads([threads])
        .duration_secs(3)
        .iterations(2)
        .seed(seed)
}

fn assert_bit_identical(a: &CampaignResults, b: &CampaignResults, context: &str) {
    assert_eq!(a.iterations().len(), b.iterations().len(), "{context}");
    for (x, y) in a.iterations().iter().zip(b.iterations()) {
        assert_eq!(
            x.trace.busy_durations(),
            y.trace.busy_durations(),
            "{context}: tick records diverged"
        );
        assert_eq!(
            x.response_samples, y.response_samples,
            "{context}: response samples diverged"
        );
        assert_eq!(x.traffic, y.traffic, "{context}: traffic diverged");
        assert_eq!(
            x.instability_ratio, y.instability_ratio,
            "{context}: ISR diverged"
        );
        assert_eq!(
            x.ticks_executed, y.ticks_executed,
            "{context}: tick counts diverged"
        );
    }
}

#[test]
fn sharded_campaigns_are_bit_identical_across_thread_counts() {
    for workload in [
        WorkloadKind::Control,
        WorkloadKind::Tnt,
        WorkloadKind::Farm,
        WorkloadKind::Lag,
    ] {
        for seed in [1234u64, 99_991] {
            let reference = folia_campaign(workload, seed, 1).run().unwrap();
            let parallel = folia_campaign(workload, seed, 4).run().unwrap();
            assert_bit_identical(
                &reference,
                &parallel,
                &format!("{workload} seed {seed} (1 vs 4 threads)"),
            );
        }
    }
}

#[test]
fn sharded_campaign_csv_streams_are_bit_identical() {
    let run_csv = |threads: u32| {
        let mut sink = CsvSink::new(Vec::new());
        folia_campaign(WorkloadKind::Tnt, 7, threads)
            .run_with(&meterstick::executor::SequentialExecutor, &mut sink)
            .unwrap();
        String::from_utf8(sink.into_inner()).unwrap()
    };
    let sequential = run_csv(1);
    let parallel = run_csv(4);
    assert!(
        sequential.lines().count() > 1,
        "CSV must contain header plus rows"
    );
    assert_eq!(
        sequential, parallel,
        "CSV streams must not depend on the tick-thread count"
    );
}

#[test]
fn shard_count_sweep_stays_thread_invariant_at_server_level() {
    // The shard count itself is part of the modeled architecture (results
    // legitimately differ between 1/2/4/8 shards); what must hold at every
    // shard count is thread invariance against the sequential path.
    let run = |shards: u32, threads: u32| {
        let profile = FlavorProfile {
            tick_shards: shards,
            ..ServerFlavor::Folia.profile()
        };
        let config = ServerConfig::for_flavor(ServerFlavor::Folia)
            .with_view_distance(3)
            .with_tick_threads(threads);
        let world = World::new(Box::new(FlatGenerator::grassland()), 7);
        let mut server = GameServer::new(config, world, mlg_entity::Vec3::new(0.5, 61.0, 0.5));
        server.set_profile(profile);
        server.connect_player("probe");
        server.world_mut().fill_region(
            Region::new(BlockPos::new(2, 61, 2), BlockPos::new(10, 62, 10)),
            Block::simple(BlockKind::Tnt),
        );
        server.schedule_tnt_ignition(2);
        let mut engine = Environment::das5(4).instantiate(1).engine;
        (0..50)
            .map(|_| server.run_tick(&mut engine))
            .collect::<Vec<_>>()
    };
    for shards in [2u32, 4, 8] {
        let reference = run(shards, 1);
        let parallel = run(shards, 4);
        assert_eq!(
            reference, parallel,
            "shards={shards}: thread count changed the tick summaries"
        );
    }
}
