//! Equivalence tests for the sharded tick pipeline at the campaign level:
//! tick records, traffic summaries and CSV output must be **bit-identical**
//! between the sequential reference path (`tick_threads = 1`) and any
//! parallel setting, across workloads and seeds.
//!
//! Lower-level equivalence (per-shard terrain/entity phases at 1/2/4/8
//! shard counts) is pinned by unit tests in `mlg-world` and `mlg-entity`;
//! this suite drives the whole stack the way the figure binaries do.

use cloud_sim::environment::Environment;
use meterstick::campaign::{Campaign, CampaignResults};
use meterstick::sink::CsvSink;
use meterstick_workloads::WorkloadKind;
use mlg_server::{FlavorProfile, GameServer, ServerConfig, ServerFlavor};
use mlg_world::generation::FlatGenerator;
use mlg_world::{Block, BlockKind, BlockPos, Region, World};

fn folia_campaign(workload: WorkloadKind, seed: u64, threads: u32) -> Campaign {
    // Folia defaults to the adaptive quadtree partition, so this pins the
    // rebalancing path; `rebalance_sweep_campaign` below additionally pins
    // the static stripes through the explicit axis.
    Campaign::new()
        .workloads([workload])
        .flavors([ServerFlavor::Folia])
        .environments([Environment::das5(4)])
        .tick_threads([threads])
        .duration_secs(3)
        .iterations(2)
        .seed(seed)
}

fn rebalance_sweep_campaign(workload: WorkloadKind, threads: u32) -> Campaign {
    // Both partition architectures through the explicit shard_rebalance
    // axis (static stripes AND the adaptive quadtree, seed-paired).
    Campaign::new()
        .workloads([workload])
        .flavors([ServerFlavor::Folia])
        .environments([Environment::das5(4)])
        .tick_threads([threads])
        .shard_rebalance([false, true])
        .duration_secs(3)
        .iterations(1)
        .seed(4242)
}

fn assert_bit_identical(a: &CampaignResults, b: &CampaignResults, context: &str) {
    assert_eq!(a.iterations().len(), b.iterations().len(), "{context}");
    for (x, y) in a.iterations().iter().zip(b.iterations()) {
        assert_eq!(
            x.trace.busy_durations(),
            y.trace.busy_durations(),
            "{context}: tick records diverged"
        );
        assert_eq!(
            x.response_samples, y.response_samples,
            "{context}: response samples diverged"
        );
        assert_eq!(x.traffic, y.traffic, "{context}: traffic diverged");
        assert_eq!(
            x.instability_ratio, y.instability_ratio,
            "{context}: ISR diverged"
        );
        assert_eq!(
            x.ticks_executed, y.ticks_executed,
            "{context}: tick counts diverged"
        );
    }
}

#[test]
fn sharded_campaigns_are_bit_identical_across_thread_counts() {
    for workload in [
        WorkloadKind::Control,
        WorkloadKind::Tnt,
        WorkloadKind::Farm,
        WorkloadKind::Lag,
    ] {
        for seed in [1234u64, 99_991] {
            let reference = folia_campaign(workload, seed, 1).run().unwrap();
            let parallel = folia_campaign(workload, seed, 4).run().unwrap();
            assert_bit_identical(
                &reference,
                &parallel,
                &format!("{workload} seed {seed} (1 vs 4 threads)"),
            );
        }
    }
}

#[test]
fn rebalancing_campaigns_are_bit_identical_at_1_4_and_8_threads() {
    // The adaptive partition evolves from merged load reports only, so the
    // hotspot workloads (TNT cascades, Lag's redstone storm) must replay
    // bit-identically at any worker-thread count.
    for workload in [WorkloadKind::Tnt, WorkloadKind::Lag] {
        let reference = rebalance_sweep_campaign(workload, 1).run().unwrap();
        for threads in [4u32, 8] {
            let parallel = rebalance_sweep_campaign(workload, threads).run().unwrap();
            assert_bit_identical(
                &reference,
                &parallel,
                &format!("{workload} rebalance sweep (1 vs {threads} threads)"),
            );
        }
    }
}

/// A clustered-TNT hotspot server over the shared
/// [`meterstick_workloads::tnt::clustered_hotspot_world`] scene — the shape
/// static stripes cannot split (one stripe owns the whole hotspot) but 2D
/// regions can. The `tick_hotpaths` bench measures the identical scene.
fn clustered_tnt_server(rebalance: bool, threads: u32) -> GameServer {
    let world = meterstick_workloads::tnt::clustered_hotspot_world(7);
    let (sx, sy, sz) = meterstick_workloads::tnt::CLUSTERED_HOTSPOT_SPAWN;
    let config = ServerConfig::for_flavor(ServerFlavor::Folia)
        .with_view_distance(2)
        .with_tick_threads(threads)
        .with_shard_rebalance(Some(rebalance));
    let mut server = GameServer::new(config, world, mlg_entity::Vec3::new(sx, sy, sz));
    server.connect_player("probe");
    server.schedule_tnt_ignition(2);
    server
}

/// The persistent tick worker pool is pure execution substrate: one server,
/// its pool reused across two back-to-back probe runs (a second TNT hotspot
/// is rebuilt and re-ignited mid-run, so the pool sees two full cascade
/// bursts plus the adaptive rebalancer splitting and merging between them),
/// must produce tick summaries bit-identical to the per-phase fresh-scope
/// fallback — at 1, 4 and 8 tick threads alike.
#[test]
fn pool_reuse_is_bit_identical() {
    let run = |pooled: bool, threads: u32| -> Vec<mlg_server::TickSummary> {
        let mut server = clustered_tnt_server(true, threads);
        server.set_worker_pool_enabled(pooled);
        assert_eq!(
            server.worker_pool_enabled(),
            pooled && threads > 1,
            "pool attachment must follow the hook (and never engage at 1 thread)"
        );
        let mut engine = Environment::das5(8).instantiate(1).engine;
        let mut summaries: Vec<_> = (0..60).map(|_| server.run_tick(&mut engine)).collect();
        // Second probe run on the same server: rebuild the hotspot and
        // re-ignite, reusing the same (already warmed) worker pool.
        server.world_mut().fill_region(
            Region::new(BlockPos::new(64, 61, 64), BlockPos::new(72, 62, 72)),
            Block::simple(BlockKind::Tnt),
        );
        server.schedule_tnt_ignition(2);
        summaries.extend((0..60).map(|_| server.run_tick(&mut engine)));
        summaries
    };

    let fresh_scopes = run(false, 1);
    for threads in [1u32, 4, 8] {
        assert_eq!(
            run(true, threads),
            fresh_scopes,
            "threads={threads}: persistent pool diverged from the fresh-scope path"
        );
    }
    assert_eq!(
        run(false, 8),
        fresh_scopes,
        "fresh-scope path diverged across thread counts"
    );
}

#[test]
fn adaptive_regions_cut_the_busiest_shard_on_a_clustered_tnt_hotspot() {
    let run = |rebalance: bool, threads: u32| {
        let mut server = clustered_tnt_server(rebalance, threads);
        let mut engine = Environment::das5(8).instantiate(1).engine;
        (0..150)
            .map(|_| server.run_tick(&mut engine))
            .collect::<Vec<_>>()
    };

    let static_stripes = run(false, 8);
    let adaptive = run(true, 8);
    // Both partitions are thread-count invariant, rebalancing included.
    assert_eq!(
        adaptive,
        run(true, 1),
        "adaptive run diverged across threads"
    );

    let floor = |summaries: &[mlg_server::TickSummary]| -> u64 {
        summaries.iter().map(|s| s.max_shard_work).sum()
    };
    let busy = |summaries: &[mlg_server::TickSummary]| -> f64 {
        summaries.iter().map(|s| s.record.busy_ms).sum()
    };
    let (static_floor, adaptive_floor) = (floor(&static_stripes), floor(&adaptive));
    assert!(static_floor > 0, "the hotspot must load the busiest shard");
    assert!(
        adaptive_floor < static_floor * 4 / 5,
        "adaptive regions should cut the busiest-shard floor: static {static_floor}, adaptive {adaptive_floor}"
    );
    assert!(
        busy(&adaptive) < busy(&static_stripes),
        "lower busiest-shard floor should shorten tick busy time: static {} ms, adaptive {} ms",
        busy(&static_stripes),
        busy(&adaptive)
    );
}

/// A player-heavy clustered crowd (the Crowd workload's 220 building bots)
/// driven at server level: the stage-parallel tick graph — sharded player
/// handler, per-shard dissemination, pipelined lighting — must beat the
/// same server with stages 1/4 pinned to the main thread on an 8-core
/// node, and its output must be bit-identical at 1 vs 8 worker threads,
/// rebalance on and off.
#[test]
fn stage_parallel_graph_beats_serial_player_and_dissemination_stages() {
    use meterstick_workloads::WorkloadSpec;
    use mlg_bots::PlayerEmulation;
    use mlg_protocol::netsim::LinkConfig;
    use mlg_server::StageParallelism;

    let run = |stage_parallel: StageParallelism,
               threads: u32,
               rebalance: bool|
     -> Vec<mlg_server::TickSummary> {
        let built = WorkloadSpec::new(meterstick_workloads::WorkloadKind::Crowd).build(7);
        assert!(built.players.bots >= 200, "Crowd must be player-heavy");
        let config = ServerConfig::for_flavor(ServerFlavor::Folia)
            .with_view_distance(2)
            .with_tick_threads(threads)
            .with_shard_rebalance(Some(rebalance));
        let mut server = GameServer::new(config, built.world, built.spawn_point);
        let profile = FlavorProfile {
            stage_parallel,
            ..ServerFlavor::Folia.profile()
        };
        server.set_profile(profile);
        let mut emulation = PlayerEmulation::new(
            built.players.bots,
            built.spawn_point,
            built.players.walk_area,
            built.players.moving,
            LinkConfig::datacenter(),
            7,
        )
        .with_builders();
        emulation.connect_all(&mut server);
        let mut engine = Environment::das5(8).instantiate(1).engine;
        (0..80)
            .map(|_| emulation.step(&mut server, &mut engine))
            .collect()
    };

    let folia = ServerFlavor::Folia.profile().stage_parallel;
    let serial_stages = StageParallelism {
        player: 0.0,
        dissemination: 0.0,
        ..folia
    };

    let stage_parallel = run(folia, 8, true);
    let serial_14 = run(serial_stages, 8, true);
    let busy = |summaries: &[mlg_server::TickSummary]| -> f64 {
        summaries.iter().map(|s| s.record.busy_ms).sum()
    };
    assert!(
        busy(&stage_parallel) < busy(&serial_14),
        "sharding stages 1/4 must lower modeled busy time on 8 cores: \
         stage-parallel {} ms vs serial stages {} ms",
        busy(&stage_parallel),
        busy(&serial_14)
    );
    // The win comes from the player/dissemination stages specifically.
    let stage_ms = |summaries: &[mlg_server::TickSummary]| -> (f64, f64) {
        summaries.iter().fold((0.0, 0.0), |(p, d), s| {
            (p + s.stages.player_ms, d + s.stages.dissemination_ms)
        })
    };
    let (par_player, par_dissem) = stage_ms(&stage_parallel);
    let (ser_player, ser_dissem) = stage_ms(&serial_14);
    assert!(
        par_player < ser_player && par_dissem < ser_dissem,
        "per-stage breakdown must attribute the win: player {par_player} vs {ser_player}, \
         dissemination {par_dissem} vs {ser_dissem}"
    );

    // Bit-identical at 1 vs 8 threads, rebalance on and off.
    for rebalance in [false, true] {
        let reference = run(folia, 1, rebalance);
        let parallel = run(folia, 8, rebalance);
        assert_eq!(
            reference, parallel,
            "rebalance={rebalance}: crowd run diverged across thread counts"
        );
    }
}

#[test]
fn crowd_lighting_sweep_campaigns_are_bit_identical_across_threads() {
    // The Crowd workload through the campaign layer, sweeping the lighting
    // architecture (eager vs pipelined): CSV rows — stage breakdown columns
    // included — must not depend on the worker-thread count.
    let run_csv = |threads: u32| {
        let campaign = Campaign::new()
            .workloads([WorkloadKind::Crowd])
            .flavors([ServerFlavor::Folia])
            .environments([Environment::das5(8)])
            .tick_threads([threads])
            .eager_lighting([true, false])
            .duration_secs(2)
            .iterations(1)
            .seed(7);
        let mut sink = CsvSink::new(Vec::new());
        campaign
            .run_with(&meterstick::executor::SequentialExecutor, &mut sink)
            .unwrap();
        String::from_utf8(sink.into_inner()).unwrap()
    };
    let sequential = run_csv(1);
    let parallel = run_csv(4);
    assert!(
        sequential.lines().count() > 2,
        "two lighting cells expected"
    );
    assert!(
        sequential.contains("pipelined") && sequential.contains("eager"),
        "the lighting axis must be visible in the CSV"
    );
    assert_eq!(sequential, parallel);
}

#[test]
fn horde_campaign_csv_is_bit_identical_at_1_4_and_8_threads() {
    // The scaled-population workload end to end through the campaign
    // layer: scattered swarm, area-of-interest dissemination (Folia has it
    // on), SoA entity storage and the sharded tick pipeline all in one
    // cell. The CSV — `dissemination_bytes` column included — must not
    // depend on the worker-thread count. Scale is reduced via the bot
    // override to keep the unoptimized test build fast; the
    // `sharded_determinism` bench binary runs the full 5,000-bot swarm in
    // release mode and CI diffs its CSVs the same way.
    let run_csv = |threads: u32| {
        let campaign = Campaign::new()
            .workloads([WorkloadKind::Horde])
            .flavors([ServerFlavor::Folia])
            .environments([Environment::das5(4)])
            .tick_threads([threads])
            .bots(600)
            .duration_secs(3)
            .iterations(1)
            .seed(7);
        let mut sink = CsvSink::new(Vec::new());
        campaign
            .run_with(&meterstick::executor::SequentialExecutor, &mut sink)
            .unwrap();
        String::from_utf8(sink.into_inner()).unwrap()
    };
    let reference = run_csv(1);
    assert!(
        reference.contains("Horde"),
        "the Horde cell must appear in the CSV"
    );
    for threads in [4u32, 8] {
        assert_eq!(
            reference,
            run_csv(threads),
            "Horde CSV diverged at {threads} threads"
        );
    }
}

#[test]
fn sharded_campaign_csv_streams_are_bit_identical() {
    let run_csv = |threads: u32| {
        let mut sink = CsvSink::new(Vec::new());
        folia_campaign(WorkloadKind::Tnt, 7, threads)
            .run_with(&meterstick::executor::SequentialExecutor, &mut sink)
            .unwrap();
        String::from_utf8(sink.into_inner()).unwrap()
    };
    let sequential = run_csv(1);
    let parallel = run_csv(4);
    assert!(
        sequential.lines().count() > 1,
        "CSV must contain header plus rows"
    );
    assert_eq!(
        sequential, parallel,
        "CSV streams must not depend on the tick-thread count"
    );
}

#[test]
fn shard_count_sweep_stays_thread_invariant_at_server_level() {
    // The shard count itself is part of the modeled architecture (results
    // legitimately differ between 1/2/4/8 shards); what must hold at every
    // shard count is thread invariance against the sequential path.
    let run = |shards: u32, threads: u32| {
        let profile = FlavorProfile {
            tick_shards: shards,
            ..ServerFlavor::Folia.profile()
        };
        let config = ServerConfig::for_flavor(ServerFlavor::Folia)
            .with_view_distance(3)
            .with_tick_threads(threads);
        let world = World::new(Box::new(FlatGenerator::grassland()), 7);
        let mut server = GameServer::new(config, world, mlg_entity::Vec3::new(0.5, 61.0, 0.5));
        server.set_profile(profile);
        server.connect_player("probe");
        server.world_mut().fill_region(
            Region::new(BlockPos::new(2, 61, 2), BlockPos::new(10, 62, 10)),
            Block::simple(BlockKind::Tnt),
        );
        server.schedule_tnt_ignition(2);
        let mut engine = Environment::das5(4).instantiate(1).engine;
        (0..50)
            .map(|_| server.run_tick(&mut engine))
            .collect::<Vec<_>>()
    };
    for shards in [2u32, 4, 8] {
        let reference = run(shards, 1);
        let parallel = run(shards, 4);
        assert_eq!(
            reference, parallel,
            "shards={shards}: thread count changed the tick summaries"
        );
    }
}
