//! Offline stand-in for the `serde` facade crate.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types for
//! interface fidelity with the paper artifact but never serializes at
//! runtime, and the build container has no network access to fetch the real
//! crate. This shim provides the two marker traits plus the (no-op) derive
//! macros so the annotations compile unchanged.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no required items).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no required items).
pub trait Deserialize<'de> {}
