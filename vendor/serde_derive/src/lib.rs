//! No-op stand-ins for serde's `Serialize`/`Deserialize` derive macros.
//!
//! The workspace builds in an offline container, so the real `serde_derive`
//! is unavailable. Nothing in the workspace serializes at runtime — the
//! derives exist for interface fidelity with the paper artifact — so the
//! derive macros here simply emit no code. If real serialization is ever
//! needed, replace this vendored crate with the upstream one.

use proc_macro::TokenStream;

/// Derives nothing; the `Serialize` marker trait has no required items.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Derives nothing; the `Deserialize` marker trait has no required items.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
