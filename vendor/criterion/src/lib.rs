//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `Bencher::iter`/`iter_batched`,
//! `BatchSize` and the `criterion_group!`/`criterion_main!` macros — with a
//! simple measurement loop: warm up briefly, pick an iteration count that
//! fills a fixed measurement window, then report mean time per iteration.
//! No statistical analysis, plots or saved baselines.

#![forbid(unsafe_code)]

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std_black_box(value)
}

/// How `iter_batched` amortizes setup cost; informational in this shim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup call per iteration.
    PerIteration,
}

/// Drives the measured closure of one benchmark.
pub struct Bencher {
    samples: u64,
    total: Duration,
    iters: u64,
}

impl Bencher {
    fn new(samples: u64) -> Self {
        Bencher {
            samples,
            total: Duration::ZERO,
            iters: 0,
        }
    }

    /// Measures `routine` repeatedly and records the elapsed time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: time a single call, then size the
        // measurement loop to fill roughly 50 ms or `samples` calls,
        // whichever is larger.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(20));
        let target = Duration::from_millis(50);
        let planned = (target.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
        let iters = planned.max(self.samples);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.total = start.elapsed();
        self.iters = iters;
    }

    /// Measures `routine` over fresh inputs from `setup`, timing only the
    /// routine.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let iters = self.samples.max(10);
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.total = total;
        self.iters = iters;
    }

    fn report(&self, name: &str) {
        if self.iters == 0 {
            println!("{name:<40} (no measurement)");
            return;
        }
        let per_iter = self.total.as_secs_f64() / self.iters as f64;
        let (value, unit) = if per_iter >= 1e-3 {
            (per_iter * 1e3, "ms")
        } else if per_iter >= 1e-6 {
            (per_iter * 1e6, "µs")
        } else {
            (per_iter * 1e9, "ns")
        };
        println!(
            "{name:<40} {value:>10.3} {unit}/iter ({} iters)",
            self.iters
        );
    }
}

/// A named group of benchmarks sharing a sample-size setting.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the minimum number of measured iterations per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.criterion.samples = samples as u64;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<N: std::fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: N,
        f: F,
    ) -> &mut Self {
        let qualified = format!("{}/{id}", self.name);
        self.criterion.run_one(&qualified, f);
        self
    }

    /// Ends the group (restores the default sample size).
    pub fn finish(self) {
        self.criterion.samples = Criterion::DEFAULT_SAMPLES;
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    samples: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            samples: Criterion::DEFAULT_SAMPLES,
        }
    }
}

impl Criterion {
    const DEFAULT_SAMPLES: u64 = 50;

    /// Runs one named benchmark.
    pub fn bench_function<N: std::fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: N,
        f: F,
    ) -> &mut Self {
        let name = id.to_string();
        self.run_one(&name, f);
        self
    }

    /// Opens a named group whose benchmarks share settings.
    pub fn benchmark_group<N: std::fmt::Display>(&mut self, name: N) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            criterion: self,
        }
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let mut bencher = Bencher::new(self.samples);
        f(&mut bencher);
        bencher.report(name);
    }
}

/// Bundles benchmark functions into one group function, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Expands to `main` running the listed groups, as in criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut counter = 0u64;
        Criterion::default().bench_function("count", |b| b.iter(|| counter += 1));
        assert!(counter > 0);
    }

    #[test]
    fn groups_apply_sample_size_and_restore_it() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(7);
        let mut ran = 0u64;
        group.bench_function("inner", |b| {
            b.iter_batched(|| (), |()| ran += 1, BatchSize::SmallInput)
        });
        group.finish();
        assert!(ran >= 7);
        assert_eq!(c.samples, Criterion::DEFAULT_SAMPLES);
    }
}
