//! Offline stand-in for the `crossbeam` facade.
//!
//! Implements the `crossbeam::channel` subset the workspace uses: unbounded
//! MPMC channels with cloneable senders *and* receivers, `send`, `recv` and
//! `try_recv`. Backed by a `Mutex<VecDeque>` + `Condvar` rather than
//! crossbeam's lock-free internals — ample for the controller protocol's
//! message volumes. Also provides `crossbeam::thread::scope`, the scoped
//! worker-thread entry point the sharded tick pipeline fans out on, backed
//! by `std::thread::scope`.

#![forbid(unsafe_code)]

/// Scoped threads, mirroring `crossbeam::thread`.
///
/// Thin adapter over `std::thread::scope` (stabilized after crossbeam
/// popularized the pattern). One deliberate difference from upstream
/// crossbeam: a panic in a spawned thread propagates out of `scope` when the
/// handle is not joined explicitly, instead of being collected into the
/// returned `Result` — callers in this workspace treat worker panics as
/// fatal bugs either way.
pub mod thread {
    pub use std::thread::{Scope, ScopedJoinHandle};

    /// Creates a scope for spawning scoped threads; all threads spawned in
    /// the scope are joined before `scope` returns.
    ///
    /// # Errors
    ///
    /// Never returns `Err` in this shim (see the module docs); the
    /// `Result` exists for signature compatibility with crossbeam.
    pub fn scope<'env, F, T>(f: F) -> std::thread::Result<T>
    where
        F: for<'scope> FnOnce(&'scope std::thread::Scope<'scope, 'env>) -> T,
    {
        Ok(std::thread::scope(f))
    }
}

/// Multi-producer multi-consumer channels, mirroring `crossbeam::channel`.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// Every sender is gone and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv`] when every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Appends a message to the queue.
        ///
        /// Like crossbeam, this only fails when all receivers have been
        /// dropped. One `Arc` strong count is held per endpoint, so "no
        /// receivers" cannot be distinguished from "no senders" here; the
        /// shim accepts the message unconditionally, which is harmless for
        /// the workspace's in-process request/reply protocol.
        pub fn send(&self, message: T) -> Result<(), SendError<T>> {
            let mut queue = self.shared.queue.lock().expect("channel mutex poisoned");
            queue.push_back(message);
            drop(queue);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Removes the oldest pending message, if any.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.shared.queue.lock().expect("channel mutex poisoned");
            queue.pop_front().ok_or(TryRecvError::Empty)
        }

        /// Blocks until a message arrives.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.shared.queue.lock().expect("channel mutex poisoned");
            loop {
                if let Some(message) = queue.pop_front() {
                    return Ok(message);
                }
                queue = self
                    .shared
                    .ready
                    .wait(queue)
                    .expect("channel mutex poisoned");
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn messages_arrive_in_order() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.try_recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn channel_works_across_threads() {
            let (tx, rx) = unbounded();
            let handle = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let mut received = Vec::new();
            while received.len() < 100 {
                if let Ok(v) = rx.try_recv() {
                    received.push(v);
                }
            }
            handle.join().unwrap();
            assert_eq!(received, (0..100).collect::<Vec<_>>());
        }
    }
}
