//! Offline stand-in for the `crossbeam` facade.
//!
//! Implements the `crossbeam::channel` subset the workspace uses: unbounded
//! MPMC channels with cloneable senders *and* receivers, `send`, `recv`,
//! `try_recv` and endpoint-drop disconnection. Backed by a
//! `Mutex<VecDeque>` + `Condvar` rather than crossbeam's lock-free
//! internals — ample for the controller protocol's message volumes and for
//! the tick worker pool's phase rendezvous. Also provides
//! `crossbeam::thread::scope`, the scoped worker-thread entry point the
//! sharded tick pipeline's fallback path fans out on, backed by
//! `std::thread::scope`.
//!
//! The channel doubles as the *park/unpark* primitive of
//! `mlg_world::pool::TickWorkerPool`: a blocking [`channel::Receiver::recv`]
//! parks the calling worker on the condvar until a job arrives or every
//! sender is gone (pool shutdown), so the persistent workers burn no CPU
//! between tick phases.

#![forbid(unsafe_code)]

/// Scoped threads, mirroring `crossbeam::thread`.
///
/// Thin adapter over `std::thread::scope` (stabilized after crossbeam
/// popularized the pattern). One deliberate difference from upstream
/// crossbeam: a panic in a spawned thread propagates out of `scope` when the
/// handle is not joined explicitly, instead of being collected into the
/// returned `Result` — callers in this workspace treat worker panics as
/// fatal bugs either way.
pub mod thread {
    pub use std::thread::{Scope, ScopedJoinHandle};

    /// Creates a scope for spawning scoped threads; all threads spawned in
    /// the scope are joined before `scope` returns.
    ///
    /// # Errors
    ///
    /// Never returns `Err` in this shim (see the module docs); the
    /// `Result` exists for signature compatibility with crossbeam.
    pub fn scope<'env, F, T>(f: F) -> std::thread::Result<T>
    where
        F: for<'scope> FnOnce(&'scope std::thread::Scope<'scope, 'env>) -> T,
    {
        Ok(std::thread::scope(f))
    }
}

/// Multi-producer multi-consumer channels, mirroring `crossbeam::channel`.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        /// Live [`Sender`] endpoints. When this reaches 0 with an empty
        /// queue, blocked receivers wake up and report disconnection —
        /// which is how the tick worker pool's parked workers learn the
        /// pool is shutting down.
        senders: usize,
        /// Live [`Receiver`] endpoints; 0 makes `send` fail like upstream.
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared
                .state
                .lock()
                .expect("channel mutex poisoned")
                .senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .state
                .lock()
                .expect("channel mutex poisoned")
                .receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().expect("channel mutex poisoned");
            state.senders = state.senders.saturating_sub(1);
            if state.senders == 0 {
                // Every receiver parked in `recv` must re-check for
                // disconnection, not just one.
                drop(state);
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().expect("channel mutex poisoned");
            state.receivers = state.receivers.saturating_sub(1);
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// Every sender is gone and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv`] when every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Appends a message to the queue.
        ///
        /// Like crossbeam, this fails (returning the message) only when all
        /// receivers have been dropped.
        pub fn send(&self, message: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.state.lock().expect("channel mutex poisoned");
            if state.receivers == 0 {
                return Err(SendError(message));
            }
            state.queue.push_back(message);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Removes the oldest pending message, if any. Distinguishes a
        /// momentarily empty channel from one whose senders are all gone.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.state.lock().expect("channel mutex poisoned");
            match state.queue.pop_front() {
                Some(message) => Ok(message),
                None if state.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocks (parking the calling thread on the channel's condvar)
        /// until a message arrives, or reports disconnection once every
        /// sender is gone and the queue is drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.state.lock().expect("channel mutex poisoned");
            loop {
                if let Some(message) = state.queue.pop_front() {
                    return Ok(message);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self
                    .shared
                    .ready
                    .wait(state)
                    .expect("channel mutex poisoned");
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn messages_arrive_in_order() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.try_recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn channel_works_across_threads() {
            let (tx, rx) = unbounded();
            let handle = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let mut received = Vec::new();
            while received.len() < 100 {
                if let Ok(v) = rx.try_recv() {
                    received.push(v);
                }
            }
            handle.join().unwrap();
            assert_eq!(received, (0..100).collect::<Vec<_>>());
        }

        #[test]
        fn dropping_all_senders_disconnects_after_drain() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            tx.send(7).unwrap();
            drop(tx);
            assert_eq!(rx.try_recv(), Ok(7), "queued messages drain first");
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            drop(tx2);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn blocked_recv_wakes_on_disconnect() {
            let (tx, rx) = unbounded::<u32>();
            let handle = std::thread::spawn(move || rx.recv());
            // Give the receiver a moment to park, then hang up.
            std::thread::sleep(std::time::Duration::from_millis(10));
            drop(tx);
            assert_eq!(handle.join().unwrap(), Err(RecvError));
        }

        #[test]
        fn send_fails_once_all_receivers_are_gone() {
            let (tx, rx) = unbounded();
            let rx2 = rx.clone();
            drop(rx);
            tx.send(1).unwrap();
            drop(rx2);
            assert_eq!(tx.send(2), Err(SendError(2)));
        }
    }
}
