//! Offline stand-in for the `bytes` crate.
//!
//! Provides `Bytes`, `BytesMut` and the `Buf`/`BufMut` traits with the
//! big-endian accessor subset the protocol codec uses. `Bytes` keeps its
//! backing store in an `Arc<[u8]>`, so `clone`, `slice` and `split_to` are
//! cheap views exactly like upstream; `BytesMut` is a plain growable
//! buffer.

#![forbid(unsafe_code)]

use std::ops::{Deref, Range};
use std::sync::Arc;

/// Read access to a byte cursor, mirroring `bytes::Buf`.
///
/// The `get_*` accessors read big-endian and advance the cursor; like
/// upstream they panic when fewer bytes remain than the read needs.
pub trait Buf {
    /// Number of unread bytes.
    fn remaining(&self) -> usize;

    /// Consumes and returns the next `n` unread bytes.
    fn take_bytes(&mut self, n: usize) -> &[u8];

    /// Returns `true` while unread bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        self.take_bytes(1)[0]
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        u16::from_be_bytes(self.take_bytes(2).try_into().expect("2 bytes"))
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.take_bytes(4).try_into().expect("4 bytes"))
    }

    /// Reads a big-endian `i32`.
    fn get_i32(&mut self) -> i32 {
        i32::from_be_bytes(self.take_bytes(4).try_into().expect("4 bytes"))
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(self.take_bytes(8).try_into().expect("8 bytes"))
    }

    /// Reads a big-endian `f64`.
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

/// Write access to a growable byte buffer, mirroring `bytes::BufMut`.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `i32`.
    fn put_i32(&mut self, v: i32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `f64`.
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

/// A cheaply cloneable, sliceable view over immutable bytes.
#[derive(Debug, Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps a static byte slice.
    #[must_use]
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Returns a view of `range`, counted relative to this view's unread
    /// bytes. Panics when the range is out of bounds.
    #[must_use]
    pub fn slice(&self, range: Range<usize>) -> Self {
        assert!(range.start <= range.end && self.start + range.end <= self.end);
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Splits off and returns the first `n` unread bytes, advancing this
    /// view past them. Panics when fewer than `n` bytes remain.
    pub fn split_to(&mut self, n: usize) -> Self {
        assert!(n <= self.remaining(), "split_to out of bounds");
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + n,
        };
        self.start += n;
        head
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Bytes {
            data: Arc::from(data),
            start: 0,
            end,
        }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.end - self.start
    }

    fn take_bytes(&mut self, n: usize) -> &[u8] {
        assert!(n <= self.remaining(), "buffer underrun");
        let at = self.start;
        self.start += n;
        &self.data[at..at + n]
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with `capacity` bytes preallocated.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Number of bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts the buffer into an immutable [`Bytes`].
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_accessors() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(0xAB);
        buf.put_u16(0xBEEF);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_i32(-7);
        buf.put_f64(1.5);
        buf.put_slice(b"ok");
        let mut bytes = buf.freeze();
        assert_eq!(bytes.remaining(), 1 + 2 + 4 + 4 + 8 + 2);
        assert_eq!(bytes.get_u8(), 0xAB);
        assert_eq!(bytes.get_u16(), 0xBEEF);
        assert_eq!(bytes.get_u32(), 0xDEAD_BEEF);
        assert_eq!(bytes.get_i32(), -7);
        assert_eq!(bytes.get_f64(), 1.5);
        assert_eq!(&bytes.split_to(2)[..], b"ok");
        assert!(!bytes.has_remaining());
    }

    #[test]
    fn slices_and_splits_are_views() {
        let bytes = Bytes::from(vec![1, 2, 3, 4, 5]);
        let mid = bytes.slice(1..4);
        assert_eq!(&mid[..], &[2, 3, 4]);
        let mut tail = mid.clone();
        let head = tail.split_to(2);
        assert_eq!(&head[..], &[2, 3]);
        assert_eq!(&tail[..], &[4]);
        assert_eq!(bytes.len(), 5, "the original view is untouched");
    }
}
