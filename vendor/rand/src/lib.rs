//! Offline stand-in for the `rand` crate.
//!
//! Provides the subset of the `rand 0.8` API the workspace uses — `Rng`
//! (`gen`, `gen_range`, `gen_bool`), `SeedableRng::seed_from_u64` and
//! `rngs::StdRng` — backed by a splitmix64 generator. The exact stream
//! differs from upstream `StdRng` (ChaCha12); all consumers in this
//! workspace only require *determinism per seed*, which this shim
//! guarantees: the same seed always yields the same sequence, on every
//! platform and thread.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next value in the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next value truncated to 32 bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be produced uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types [`Rng::gen_range`] can sample uniformly; mirrors
/// `rand::distributions::uniform::SampleUniform` closely enough that type
/// inference behaves as with upstream.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                let offset = u128::from(rng.next_u64()) % span;
                (lo as i128 + offset as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = u128::from(rng.next_u64()) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + f64::from_rng(rng) * (hi - lo)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + f64::from_rng(rng) * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + f64::from_rng(rng) as f32 * (hi - lo)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + f64::from_rng(rng) as f32 * (hi - lo)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// Panics when the range is empty, matching upstream `rand`.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// High-level sampling interface, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Draws one value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::from_rng(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (splitmix64).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Steele, Lea, Flood 2014): passes BigCrush, one
            // addition + two xorshift-multiplies per draw.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1_000 {
            let x: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&x));
            let y: u64 = rng.gen_range(0..=3);
            assert!(y <= 3);
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }
}
