//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset the workspace's property tests use: the `proptest!`
//! macro over functions whose arguments are `name in strategy` bindings,
//! numeric range strategies, `any::<T>()`, `prop::collection::vec`, simple
//! `".{n,m}"` string patterns, and the `prop_assert!`/`prop_assert_eq!`
//! assertion macros.
//!
//! Differences from upstream: cases are generated from a fixed seed (fully
//! deterministic, no persisted failure files) and failing cases are *not*
//! shrunk — the assertion message reports the failing values instead.

#![forbid(unsafe_code)]

/// Number of cases each property runs.
pub const NUM_CASES: u32 = 128;

/// Deterministic random source driving case generation.
pub mod test_runner {
    /// A splitmix64 generator with a fixed seed per test function.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates the deterministic per-test generator.
        #[must_use]
        pub fn deterministic() -> Self {
            TestRng {
                state: 0x4D65_7465_7273_7469,
            } // "Metersti"
        }

        /// Returns the next uniform `u64`.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Returns a uniform `f64` in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Returns a uniform value in `[lo, hi]`.
        pub fn int_in(&mut self, lo: i128, hi: i128) -> i128 {
            debug_assert!(lo <= hi);
            let span = (hi - lo) as u128 + 1;
            lo + (u128::from(self.next_u64()) % span) as i128
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The type of value the strategy produces.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    rng.int_in(self.start as i128, self.end as i128 - 1) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    rng.int_in(*self.start() as i128, *self.end() as i128) as $t
                }
            }
        )*};
    }
    impl_int_range_strategy!(u8, u16, u32, usize, i8, i16, i32, i64);

    // u64 ranges may span more than i128's positive half at the top end, so
    // they are sampled in u128 space separately from the signed macro above.
    impl Strategy for Range<u64> {
        type Value = u64;
        fn generate(&self, rng: &mut TestRng) -> u64 {
            assert!(self.start < self.end, "empty range strategy");
            let span = u128::from(self.end - self.start);
            self.start + (u128::from(rng.next_u64()) % span) as u64
        }
    }

    impl Strategy for RangeInclusive<u64> {
        type Value = u64;
        fn generate(&self, rng: &mut TestRng) -> u64 {
            assert!(self.start() <= self.end(), "empty range strategy");
            let span = u128::from(self.end() - self.start()) + 1;
            self.start() + (u128::from(rng.next_u64()) % span) as u64
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start() + rng.next_f64() * (self.end() - self.start())
        }
    }

    /// String pattern strategy: supports the `".{lo,hi}"` shape (a random
    /// printable-ASCII string whose length is uniform in `[lo, hi]`); any
    /// other pattern falls back to lengths 0–32.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (lo, hi) = parse_repetition(self).unwrap_or((0, 32));
            let len = rng.int_in(lo as i128, hi as i128) as usize;
            (0..len)
                .map(|_| char::from(rng.int_in(0x20, 0x7E) as u8))
                .collect()
        }
    }

    fn parse_repetition(pattern: &str) -> Option<(usize, usize)> {
        let rest = pattern.strip_prefix(".{")?.strip_suffix('}')?;
        let (lo, hi) = rest.split_once(',')?;
        Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
    }

    /// Types with a canonical "anything" strategy (see [`crate::any`]).
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy produced by [`crate::any`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// The strategy for "any value of type `T`".
#[must_use]
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any(std::marker::PhantomData)
}

/// Collection strategies and the `prop` namespace, mirroring
/// `proptest::prelude::prop`.
pub mod prop {
    /// Re-export so `prop::collection::vec` resolves as upstream.
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use std::ops::Range;

        /// A length distribution for collection strategies.
        #[derive(Debug, Clone)]
        pub struct SizeRange {
            lo: usize,
            hi_exclusive: usize,
        }

        impl From<Range<usize>> for SizeRange {
            fn from(range: Range<usize>) -> Self {
                assert!(range.start < range.end, "empty size range");
                SizeRange {
                    lo: range.start,
                    hi_exclusive: range.end,
                }
            }
        }

        impl From<usize> for SizeRange {
            fn from(exact: usize) -> Self {
                SizeRange {
                    lo: exact,
                    hi_exclusive: exact + 1,
                }
            }
        }

        /// Strategy for `Vec`s of values drawn from `element`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// Creates a strategy producing vectors whose lengths are uniform in
        /// `size` and whose elements come from `element`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len =
                    rng.int_in(self.size.lo as i128, self.size.hi_exclusive as i128 - 1) as usize;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Everything a property-test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{any, prop, prop_assert, prop_assert_eq, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// item becomes a `#[test]` that runs the body over [`NUM_CASES`] generated
/// cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut proptest_rng = $crate::test_runner::TestRng::deterministic();
                for _ in 0..$crate::NUM_CASES {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut proptest_rng);)*
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_vecs_stay_in_bounds(
            x in -50i32..50,
            len in prop::collection::vec(0.0f64..1.0, 0..10),
            s in ".{0,8}",
            b in any::<u8>(),
        ) {
            prop_assert!((-50..50).contains(&x));
            prop_assert!(len.len() < 10);
            prop_assert!(len.iter().all(|v| (0.0..1.0).contains(v)));
            prop_assert!(s.len() <= 8);
            prop_assert_eq!(u16::from(b) & 0xFF00, 0);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::strategy::Strategy;
        let strat = prop::collection::vec(0u64..1_000, 1..20);
        let mut a = crate::test_runner::TestRng::deterministic();
        let mut b = crate::test_runner::TestRng::deterministic();
        for _ in 0..50 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }
}
