//! Hardware recommendations from commercial MLG hosting providers (Table 7).
//!
//! The paper surveys the hardware plans recommended (or closest to
//! recommended) by 23 commercial Minecraft hosting services plus the AWS and
//! Azure tutorials, concluding that "2 vCPU and 4 GB RAM is the most common
//! configuration" — a configuration MF5 shows to be insufficient.

use serde::{Deserialize, Serialize};

/// One provider's recommended hosting plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostingRecommendation {
    /// Provider name.
    pub provider: &'static str,
    /// Recommended RAM in GB.
    pub ram_gb: f64,
    /// Recommended vCPU count, if published.
    pub vcpus: Option<u32>,
    /// Advertised CPU speed in GHz, if published.
    pub cpu_ghz: Option<f64>,
}

/// Returns the full recommendation survey reproduced from Table 7.
#[must_use]
pub fn table7_recommendations() -> Vec<HostingRecommendation> {
    let rec = |provider, ram_gb, vcpus, cpu_ghz| HostingRecommendation {
        provider,
        ram_gb,
        vcpus,
        cpu_ghz,
    };
    vec![
        rec("Hostinger", 3.0, Some(3), None),
        rec("Server.pro", 4.0, Some(2), Some(2.4)),
        rec("Skynode", 4.0, Some(2), Some(3.6)),
        rec("ScalaCube", 3.0, Some(2), Some(3.4)),
        rec("Nodecraft", 4.0, None, Some(3.8)),
        rec("Apex Hosting", 4.0, None, Some(3.9)),
        rec("GGServers", 4.0, None, Some(3.2)),
        rec("BisectHosting", 4.0, None, Some(3.4)),
        rec("Shockbyte", 4.0, None, Some(4.0)),
        rec("CubedHost", 2.5, None, Some(4.5)),
        rec("ServerMiner", 3.0, None, Some(4.0)),
        rec("Akliz", 4.0, None, Some(3.4)),
        rec("RamShard", 2.0, None, Some(4.0)),
        rec("MCProHosting", 2.0, None, None),
        rec("GTXGaming", 3.0, None, Some(3.8)),
        rec("StickyPiston", 2.5, None, None),
        rec("HostHavoc", 4.0, None, Some(4.0)),
        rec("Ferox Hosting", 4.0, None, None),
        rec("Aquatis", 4.0, None, Some(4.2)),
        rec("PebbleHost", 3.0, None, Some(3.7)),
        rec("MelonCube", 4.0, None, Some(3.4)),
        rec("Azure", 4.0, Some(2), None),
        rec("AWS", 1.0, Some(1), None),
    ]
}

/// Summary statistics over the recommendation survey.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecommendationSummary {
    /// Number of providers surveyed.
    pub providers: usize,
    /// Most common RAM recommendation, in GB.
    pub modal_ram_gb: f64,
    /// Most common vCPU recommendation among providers that publish one.
    pub modal_vcpus: u32,
    /// Mean advertised CPU speed among providers that publish one.
    pub mean_cpu_ghz: f64,
}

/// Computes the summary the paper derives from Table 7 ("2 vCPU and 4 GB RAM
/// is the most common configuration").
#[must_use]
pub fn summarize(recommendations: &[HostingRecommendation]) -> RecommendationSummary {
    use std::collections::HashMap;
    let mut ram_counts: HashMap<u64, usize> = HashMap::new();
    for r in recommendations {
        *ram_counts
            .entry((r.ram_gb * 10.0).round() as u64)
            .or_default() += 1;
    }
    let modal_ram_gb = ram_counts
        .iter()
        .max_by_key(|(_, &count)| count)
        .map(|(&ram, _)| ram as f64 / 10.0)
        .unwrap_or(0.0);

    let mut cpu_counts: HashMap<u32, usize> = HashMap::new();
    for r in recommendations.iter().filter_map(|r| r.vcpus) {
        *cpu_counts.entry(r).or_default() += 1;
    }
    let modal_vcpus = cpu_counts
        .iter()
        .max_by_key(|(_, &count)| count)
        .map(|(&v, _)| v)
        .unwrap_or(0);

    let speeds: Vec<f64> = recommendations.iter().filter_map(|r| r.cpu_ghz).collect();
    let mean_cpu_ghz = if speeds.is_empty() {
        0.0
    } else {
        speeds.iter().sum::<f64>() / speeds.len() as f64
    };

    RecommendationSummary {
        providers: recommendations.len(),
        modal_ram_gb,
        modal_vcpus,
        mean_cpu_ghz,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn survey_has_twenty_three_entries() {
        assert_eq!(table7_recommendations().len(), 23);
    }

    #[test]
    fn most_common_configuration_matches_the_paper() {
        let summary = summarize(&table7_recommendations());
        assert_eq!(summary.modal_ram_gb, 4.0);
        assert_eq!(summary.modal_vcpus, 2);
        assert_eq!(summary.providers, 23);
    }

    #[test]
    fn mean_cpu_speed_is_plausible() {
        let summary = summarize(&table7_recommendations());
        assert!(summary.mean_cpu_ghz > 3.0 && summary.mean_cpu_ghz < 4.5);
    }

    #[test]
    fn summarize_handles_empty_input() {
        let summary = summarize(&[]);
        assert_eq!(summary.providers, 0);
        assert_eq!(summary.modal_vcpus, 0);
        assert_eq!(summary.mean_cpu_ghz, 0.0);
    }
}
