//! Deployment-environment simulator for the Meterstick reproduction.
//!
//! The paper runs its experiments on two commercial clouds (AWS T3 and Azure
//! Dv3 instances) and on DAS-5, a dedicated compute cluster. Since real cloud
//! accounts are outside the scope of this reproduction, this crate models the
//! *performance-relevant* behaviour of those environments:
//!
//! * [`node`] — node types (vCPU count, clock speed, burstable CPU credits)
//!   matching the instance sizes used in the paper (t3.large/xlarge/2xlarge,
//!   Standard_D2_v3, DAS-5 nodes);
//! * [`interference`] — stochastic interference: CPU-steal bursts, noisy
//!   neighbour episodes, per-iteration placement heterogeneity, scheduler
//!   jitter, and burstable-credit throttling;
//! * [`environment`] — named environments (AWS, Azure, DAS-5) combining a node
//!   with an interference profile;
//! * [`engine`] — the virtual-time compute engine converting abstract work
//!   units produced by the game server into milliseconds of tick time;
//! * [`metrics_collector`] — the system-level metrics sampler (Table 5);
//! * [`recommendations`] — the hosting-provider hardware recommendations of
//!   Table 7;
//! * [`temporal`] — non-stationary (diurnal + day-of-week) tenancy: the
//!   seeded noisy-neighbour point process and the `start_time` dimension.
//!
//! The cloud models are calibrated to reproduce the *shape* of the paper's
//! findings (clouds are more variable than self-hosting; 2-vCPU nodes are
//! insufficient; larger nodes tame variability) rather than absolute numbers,
//! as documented in `DESIGN.md`.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod engine;
pub mod environment;
pub mod interference;
pub mod metrics_collector;
pub mod node;
pub mod recommendations;
pub mod temporal;

pub use engine::{ComputeEngine, TickWork};
pub use environment::{Environment, EnvironmentInstance, Provider};
pub use interference::{InterferenceProfile, InterferenceState};
pub use node::NodeType;
pub use temporal::{StartTime, TemporalProfile, TenancyProcess};
