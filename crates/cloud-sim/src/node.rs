//! Node (virtual machine / physical host) types.

use serde::{Deserialize, Serialize};

/// A compute node: the hardware (or virtual hardware) an MLG server runs on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeType {
    /// Human-readable name, e.g. `"t3.large"`.
    pub name: String,
    /// Number of virtual CPUs available to the server process.
    pub vcpus: u32,
    /// Clock speed in GHz (sustained, not burst).
    pub clock_ghz: f64,
    /// Memory in GiB.
    pub memory_gb: f64,
    /// Whether the node uses burstable CPU credits (AWS T3 family).
    pub burstable: bool,
    /// For burstable nodes: the baseline CPU fraction per vCPU that can be
    /// sustained without spending credits (e.g. 0.3 = 30% for t3.large).
    pub baseline_cpu_fraction: f64,
}

impl NodeType {
    /// AWS `t3.large`: 2 vCPU, 8 GiB, burstable with a 30% baseline.
    ///
    /// This is the node the paper labels `L`, and the size most hosting
    /// providers recommend (Table 7).
    #[must_use]
    pub fn aws_t3_large() -> Self {
        NodeType {
            name: "t3.large".into(),
            vcpus: 2,
            clock_ghz: 2.5,
            memory_gb: 8.0,
            burstable: true,
            baseline_cpu_fraction: 0.30,
        }
    }

    /// AWS `t3.xlarge`: 4 vCPU, 16 GiB, burstable with a 40% baseline
    /// (the paper's `XL` node in Figure 12).
    #[must_use]
    pub fn aws_t3_xlarge() -> Self {
        NodeType {
            name: "t3.xlarge".into(),
            vcpus: 4,
            clock_ghz: 2.5,
            memory_gb: 16.0,
            burstable: true,
            baseline_cpu_fraction: 0.40,
        }
    }

    /// AWS `t3.2xlarge`: 8 vCPU, 32 GiB, burstable with a 40% baseline
    /// (the paper's `2XL` node in Figure 12).
    #[must_use]
    pub fn aws_t3_2xlarge() -> Self {
        NodeType {
            name: "t3.2xlarge".into(),
            vcpus: 8,
            clock_ghz: 2.5,
            memory_gb: 32.0,
            burstable: true,
            baseline_cpu_fraction: 0.40,
        }
    }

    /// Azure `Standard_D2_v3`: 2 vCPU, 8 GiB, non-burstable.
    #[must_use]
    pub fn azure_d2_v3() -> Self {
        NodeType {
            name: "Standard_D2_v3".into(),
            vcpus: 2,
            clock_ghz: 2.4,
            memory_gb: 8.0,
            burstable: false,
            baseline_cpu_fraction: 1.0,
        }
    }

    /// A DAS-5 node restricted to `cores` CPU cores via CPU affinity, as the
    /// paper does ("limit the number of CPU cores available to the MLG by
    /// setting its CPU affinity to two cores").
    #[must_use]
    pub fn das5(cores: u32) -> Self {
        NodeType {
            name: format!("das5-{cores}core"),
            vcpus: cores,
            clock_ghz: 2.4,
            memory_gb: 64.0,
            burstable: false,
            baseline_cpu_fraction: 1.0,
        }
    }

    /// Work units one core retires per millisecond, before interference.
    ///
    /// The constant is the calibration knob tying the abstract work-unit
    /// scale of the game-server substrate to wall-clock milliseconds; it is
    /// chosen so that the Control workload runs comfortably under the 50 ms
    /// tick budget on a 2-vCPU node while the Farm/TNT/Lag workloads overload
    /// it, matching the paper's qualitative results.
    #[must_use]
    pub fn work_units_per_core_ms(&self) -> f64 {
        self.clock_ghz * 2_400.0
    }
}

impl std::fmt::Display for NodeType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ({} vCPU, {:.1} GHz, {:.0} GiB)",
            self.name, self.vcpus, self.clock_ghz, self.memory_gb
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aws_node_family_scales_vcpus() {
        let l = NodeType::aws_t3_large();
        let xl = NodeType::aws_t3_xlarge();
        let xxl = NodeType::aws_t3_2xlarge();
        assert_eq!(l.vcpus, 2);
        assert_eq!(xl.vcpus, 4);
        assert_eq!(xxl.vcpus, 8);
        assert!(l.burstable && xl.burstable && xxl.burstable);
    }

    #[test]
    fn das5_is_not_burstable() {
        let n = NodeType::das5(2);
        assert!(!n.burstable);
        assert_eq!(n.vcpus, 2);
        assert_eq!(n.baseline_cpu_fraction, 1.0);
        assert_eq!(NodeType::das5(16).vcpus, 16);
    }

    #[test]
    fn throughput_scales_with_clock() {
        let slow = NodeType {
            clock_ghz: 1.0,
            ..NodeType::das5(2)
        };
        let fast = NodeType {
            clock_ghz: 3.0,
            ..NodeType::das5(2)
        };
        assert!(fast.work_units_per_core_ms() > 2.9 * slow.work_units_per_core_ms());
    }

    #[test]
    fn display_mentions_the_name() {
        let n = NodeType::azure_d2_v3();
        assert!(n.to_string().contains("Standard_D2_v3"));
    }
}
