//! System-level metrics collection.
//!
//! Meterstick's System Metrics Collector "queries the operating system twice
//! per second" for CPU utilization, memory usage, thread count, disk I/O and
//! network I/O (Table 5). In the reproduction there is no operating system to
//! query, so the collector derives the same quantities from the simulation
//! state it is fed every tick and emits samples on the same 500 ms (virtual)
//! cadence.

use serde::{Deserialize, Serialize};

/// One system-metrics sample (one row of the system-level part of Table 5).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemSample {
    /// Virtual timestamp of the sample, in milliseconds since iteration start.
    pub timestamp_ms: f64,
    /// CPU utilization across all vCPUs, 0.0–1.0.
    pub cpu_utilization: f64,
    /// Resident memory in MiB.
    pub memory_mib: f64,
    /// Number of operating-system threads associated with the server.
    pub threads: u32,
    /// Disk bytes written since the previous sample.
    pub disk_write_bytes: u64,
    /// Network bytes sent since the previous sample.
    pub network_sent_bytes: u64,
    /// Network bytes received since the previous sample.
    pub network_received_bytes: u64,
}

/// Rolling state the collector needs from the simulation each tick.
#[derive(Debug, Clone, Copy, Default)]
pub struct TickObservation {
    /// CPU utilization during this tick (0.0–1.0).
    pub cpu_utilization: f64,
    /// Live entity count.
    pub entities: u64,
    /// Loaded chunk count.
    pub loaded_chunks: u64,
    /// Connected player count.
    pub players: u32,
    /// Network bytes sent during this tick.
    pub network_sent_bytes: u64,
    /// Network bytes received during this tick.
    pub network_received_bytes: u64,
    /// Terrain blocks written this tick (drives simulated disk writes via the
    /// world-save path).
    pub blocks_written: u64,
}

/// Collects system-level samples every `sample_interval_ms` of virtual time.
#[derive(Debug)]
pub struct SystemMetricsCollector {
    sample_interval_ms: f64,
    base_threads: u32,
    samples: Vec<SystemSample>,
    window_start_ms: f64,
    acc_cpu: f64,
    acc_ticks: u32,
    acc_net_sent: u64,
    acc_net_recv: u64,
    acc_disk: u64,
    last_entities: u64,
    last_chunks: u64,
    last_players: u32,
}

impl SystemMetricsCollector {
    /// Default sampling interval: twice per second, matching the paper.
    pub const DEFAULT_INTERVAL_MS: f64 = 500.0;

    /// Creates a collector. `base_threads` models the server's fixed thread
    /// pool (main loop, networking, GC, …); extra worker threads are added as
    /// the player count grows.
    #[must_use]
    pub fn new(base_threads: u32) -> Self {
        SystemMetricsCollector {
            sample_interval_ms: Self::DEFAULT_INTERVAL_MS,
            base_threads,
            samples: Vec::new(),
            window_start_ms: 0.0,
            acc_cpu: 0.0,
            acc_ticks: 0,
            acc_net_sent: 0,
            acc_net_recv: 0,
            acc_disk: 0,
            last_entities: 0,
            last_chunks: 0,
            last_players: 0,
        }
    }

    /// Records one tick's observation at virtual time `now_ms`.
    pub fn observe_tick(&mut self, now_ms: f64, obs: TickObservation) {
        self.acc_cpu += obs.cpu_utilization;
        self.acc_ticks += 1;
        self.acc_net_sent += obs.network_sent_bytes;
        self.acc_net_recv += obs.network_received_bytes;
        self.acc_disk += obs.blocks_written * 12;
        self.last_entities = obs.entities;
        self.last_chunks = obs.loaded_chunks;
        self.last_players = obs.players;
        while now_ms - self.window_start_ms >= self.sample_interval_ms {
            self.flush_window();
        }
    }

    fn flush_window(&mut self) {
        let cpu = if self.acc_ticks == 0 {
            0.0
        } else {
            self.acc_cpu / f64::from(self.acc_ticks)
        };
        // Memory model: JVM baseline + per-chunk and per-entity footprint.
        let memory_mib = 900.0 + self.last_chunks as f64 * 0.35 + self.last_entities as f64 * 0.004;
        let threads = self.base_threads + self.last_players.div_euclid(4) + 2;
        let ts = self.window_start_ms + self.sample_interval_ms;
        self.samples.push(SystemSample {
            timestamp_ms: ts,
            cpu_utilization: cpu.clamp(0.0, 1.0),
            memory_mib,
            threads,
            disk_write_bytes: self.acc_disk,
            network_sent_bytes: self.acc_net_sent,
            network_received_bytes: self.acc_net_recv,
        });
        self.window_start_ms = ts;
        self.acc_cpu = 0.0;
        self.acc_ticks = 0;
        self.acc_net_sent = 0;
        self.acc_net_recv = 0;
        self.acc_disk = 0;
    }

    /// Finishes collection and returns all samples.
    #[must_use]
    pub fn finish(mut self) -> Vec<SystemSample> {
        if self.acc_ticks > 0 {
            self.flush_window();
        }
        self.samples
    }

    /// Number of samples collected so far (not counting a partial window).
    #[must_use]
    pub fn sample_count(&self) -> usize {
        self.samples.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(cpu: f64) -> TickObservation {
        TickObservation {
            cpu_utilization: cpu,
            entities: 100,
            loaded_chunks: 200,
            players: 25,
            network_sent_bytes: 1_000,
            network_received_bytes: 300,
            blocks_written: 5,
        }
    }

    #[test]
    fn samples_are_emitted_every_half_second() {
        let mut c = SystemMetricsCollector::new(30);
        // 60 seconds of 50 ms ticks = 1200 ticks = 120 sample windows.
        for i in 0..1_200u32 {
            c.observe_tick(f64::from(i + 1) * 50.0, obs(0.5));
        }
        let samples = c.finish();
        assert!(
            (samples.len() as i64 - 120).abs() <= 1,
            "got {} samples",
            samples.len()
        );
    }

    #[test]
    fn cpu_is_averaged_over_the_window() {
        let mut c = SystemMetricsCollector::new(30);
        for i in 0..10u32 {
            let cpu = if i % 2 == 0 { 0.2 } else { 0.8 };
            c.observe_tick(f64::from(i + 1) * 50.0, obs(cpu));
        }
        let samples = c.finish();
        assert_eq!(samples.len(), 1);
        assert!((samples[0].cpu_utilization - 0.5).abs() < 1e-9);
    }

    #[test]
    fn network_bytes_accumulate_per_window() {
        let mut c = SystemMetricsCollector::new(30);
        for i in 0..10u32 {
            c.observe_tick(f64::from(i + 1) * 50.0, obs(0.1));
        }
        let samples = c.finish();
        assert_eq!(samples[0].network_sent_bytes, 10_000);
        assert_eq!(samples[0].network_received_bytes, 3_000);
    }

    #[test]
    fn memory_grows_with_entities_and_chunks() {
        let mut light = SystemMetricsCollector::new(30);
        light.observe_tick(500.0, TickObservation::default());
        let small = light.finish()[0].memory_mib;

        let mut heavy = SystemMetricsCollector::new(30);
        heavy.observe_tick(
            500.0,
            TickObservation {
                entities: 10_000,
                loaded_chunks: 2_000,
                ..TickObservation::default()
            },
        );
        let big = heavy.finish()[0].memory_mib;
        assert!(big > small + 100.0);
    }

    #[test]
    fn thread_count_grows_with_players() {
        let mut few = SystemMetricsCollector::new(30);
        few.observe_tick(
            500.0,
            TickObservation {
                players: 1,
                ..obs(0.1)
            },
        );
        let few_threads = few.finish()[0].threads;

        let mut many = SystemMetricsCollector::new(30);
        many.observe_tick(
            500.0,
            TickObservation {
                players: 100,
                ..obs(0.1)
            },
        );
        let many_threads = many.finish()[0].threads;
        assert!(many_threads > few_threads);
    }

    #[test]
    fn finish_flushes_a_partial_window() {
        let mut c = SystemMetricsCollector::new(30);
        c.observe_tick(50.0, obs(0.9));
        c.observe_tick(100.0, obs(0.9));
        assert_eq!(c.sample_count(), 0);
        let samples = c.finish();
        assert_eq!(samples.len(), 1);
        assert!(samples[0].cpu_utilization > 0.8);
    }
}
