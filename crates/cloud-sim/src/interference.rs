//! Interference models: the sources of cloud performance variability.
//!
//! The paper (Section 5.4) attributes cloud performance variability to
//! "hardware manufacturing differences, shared tenancy of hardware and
//! networks, specific software configurations, and resource allocation and
//! scheduling systems", citing prior work. This module models those sources
//! as composable stochastic processes:
//!
//! * **placement heterogeneity** — a per-iteration slowdown factor sampled
//!   when a VM is (re)placed on a physical host, driving the large
//!   inter-iteration IQR the paper observes on clouds (MF3);
//! * **CPU-steal bursts** — a two-state Markov process producing episodes of
//!   degraded throughput (noisy neighbours, hypervisor scheduling);
//! * **scheduler jitter** — small per-tick noise present everywhere, tiny on
//!   dedicated hardware;
//! * **burstable-credit throttling** — AWS T3 instances fall back to their
//!   baseline CPU fraction once credits run out, which is what makes the
//!   recommended `t3.large` node inadequate under environment workloads (MF5).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::temporal::{StartTime, TemporalProfile, TenancyProcess};

/// Static description of an environment's interference behaviour.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InterferenceProfile {
    /// Range of the per-iteration placement slowdown factor (1.0 = no
    /// slowdown). Sampled once per iteration.
    pub placement_factor_range: (f64, f64),
    /// Probability per tick of entering a CPU-steal episode.
    pub steal_episode_probability: f64,
    /// Range of the slowdown multiplier during a steal episode.
    pub steal_multiplier_range: (f64, f64),
    /// Range of steal-episode lengths, in ticks.
    pub steal_duration_ticks: (u32, u32),
    /// Maximum per-tick scheduler jitter, as a fraction of tick work
    /// (0.02 = up to 2% extra).
    pub scheduler_jitter: f64,
}

impl InterferenceProfile {
    /// Interference profile of a dedicated, self-hosted node (DAS-5):
    /// essentially no interference beyond sub-percent OS jitter.
    #[must_use]
    pub fn dedicated() -> Self {
        InterferenceProfile {
            placement_factor_range: (1.0, 1.02),
            steal_episode_probability: 0.0005,
            steal_multiplier_range: (1.05, 1.15),
            steal_duration_ticks: (1, 2),
            scheduler_jitter: 0.01,
        }
    }

    /// Interference profile of AWS T-family instances: moderate steal
    /// episodes, noticeable placement heterogeneity.
    #[must_use]
    pub fn aws() -> Self {
        InterferenceProfile {
            placement_factor_range: (1.0, 1.35),
            steal_episode_probability: 0.012,
            steal_multiplier_range: (1.3, 3.5),
            steal_duration_ticks: (2, 30),
            scheduler_jitter: 0.06,
        }
    }

    /// Interference profile of Azure Dv3 instances: slightly fewer but longer
    /// episodes than AWS, larger placement spread — the paper finds neither
    /// cloud dominates the other for every game.
    #[must_use]
    pub fn azure() -> Self {
        InterferenceProfile {
            placement_factor_range: (1.0, 1.45),
            steal_episode_probability: 0.008,
            steal_multiplier_range: (1.4, 4.0),
            steal_duration_ticks: (4, 40),
            scheduler_jitter: 0.05,
        }
    }
}

/// Per-iteration interference state: the sampled placement factor plus the
/// evolving steal-episode process, with the seeded tenancy point process of
/// [`crate::temporal`] layered over both.
#[derive(Debug, Clone)]
pub struct InterferenceState {
    profile: InterferenceProfile,
    rng: StdRng,
    placement_factor: f64,
    steal_ticks_remaining: u32,
    steal_multiplier: f64,
    tenancy: TenancyProcess,
}

impl InterferenceState {
    /// Samples a fresh interference state for one benchmark iteration, with
    /// stationary (flat) tenancy.
    #[must_use]
    pub fn new(profile: InterferenceProfile, seed: u64) -> Self {
        InterferenceState::with_temporal(
            profile,
            TemporalProfile::flat(),
            StartTime::default(),
            seed,
        )
    }

    /// [`InterferenceState::new`] with a non-stationary tenancy process
    /// starting at `start`. The tenancy layer draws from its own
    /// counter-based hash stream — never from this state's `StdRng` — so a
    /// flat `temporal` profile reproduces [`InterferenceState::new`]
    /// bit-identically.
    #[must_use]
    pub fn with_temporal(
        profile: InterferenceProfile,
        temporal: TemporalProfile,
        start: StartTime,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let (lo, hi) = profile.placement_factor_range;
        let placement_factor = if hi > lo { rng.gen_range(lo..hi) } else { lo };
        InterferenceState {
            profile,
            rng,
            placement_factor,
            steal_ticks_remaining: 0,
            steal_multiplier: 1.0,
            tenancy: TenancyProcess::new(temporal, seed, start),
        }
    }

    /// The placement (hardware-heterogeneity) factor for this iteration.
    #[must_use]
    pub fn placement_factor(&self) -> f64 {
        self.placement_factor
    }

    /// Returns `true` if the node is currently inside a steal episode.
    #[must_use]
    pub fn in_steal_episode(&self) -> bool {
        self.steal_ticks_remaining > 0
    }

    /// Number of noisy neighbours currently resident on the host (always 0
    /// under a flat temporal profile).
    #[must_use]
    pub fn resident_neighbors(&self) -> u32 {
        self.tenancy.resident_count()
    }

    /// Advances the interference process by one tick and returns the total
    /// slowdown multiplier to apply to that tick's compute (≥ 1.0).
    pub fn sample_tick(&mut self) -> f64 {
        // Tenancy first: it draws only from its own counter-based hash
        // stream, so the `StdRng` draws below see the exact same stream
        // regardless of the temporal profile. With zero residents both
        // factors are exactly 1.0 and the multiplications below are
        // bit-exact no-ops.
        let tenancy = self.tenancy.step();
        // Steal episode process.
        if self.steal_ticks_remaining > 0 {
            self.steal_ticks_remaining -= 1;
        } else if self.rng.gen_bool(
            (self.profile.steal_episode_probability * tenancy.steal_probability_factor)
                .clamp(0.0, 1.0),
        ) {
            let (dlo, dhi) = self.profile.steal_duration_ticks;
            self.steal_ticks_remaining = self.rng.gen_range(dlo..=dhi.max(dlo));
            let (mlo, mhi) = self.profile.steal_multiplier_range;
            self.steal_multiplier = if mhi > mlo {
                self.rng.gen_range(mlo..mhi)
            } else {
                mlo
            };
        }
        let steal = if self.steal_ticks_remaining > 0 {
            self.steal_multiplier
        } else {
            1.0
        };
        let jitter = 1.0
            + self
                .rng
                .gen_range(0.0..self.profile.scheduler_jitter.max(1e-9));
        self.placement_factor * steal * jitter * tenancy.pressure
    }
}

/// Burstable CPU-credit accounting for AWS T-family nodes.
///
/// Credits accrue at the baseline rate and are spent whenever actual CPU use
/// exceeds the baseline; once exhausted, the instance is throttled to its
/// baseline fraction. Credit units are vCPU-seconds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BurstCredits {
    /// Whether the node is burstable at all (non-T3 nodes are not throttled).
    pub enabled: bool,
    /// Baseline CPU fraction per vCPU (e.g. 0.3 for t3.large).
    pub baseline_fraction: f64,
    /// Number of vCPUs on the node.
    pub vcpus: u32,
    /// Current credit balance in vCPU-seconds.
    pub balance: f64,
    /// Maximum credit balance.
    pub max_balance: f64,
}

impl BurstCredits {
    /// Creates the credit state for a node, starting with a partial balance —
    /// the paper's experiments run long enough that launch credits do not
    /// mask throttling.
    #[must_use]
    pub fn new(enabled: bool, baseline_fraction: f64, vcpus: u32) -> Self {
        // The benchmark hammers the same instance iteration after iteration,
        // so the credit balance hovers near empty: the cap models only the
        // short-term burst headroom that survives between iterations, scaled
        // with the vCPU count like the real T3 accrual rate.
        let max_balance = f64::from(vcpus) * 1.8;
        BurstCredits {
            enabled,
            baseline_fraction,
            vcpus,
            balance: 1.0,
            max_balance,
        }
    }

    /// Accounts for one tick: `busy_core_seconds` of CPU were consumed over
    /// `wall_seconds` of wall-clock time. Returns the throttle multiplier to
    /// apply to the *next* tick (1.0 = full speed, >1.0 = throttled).
    pub fn account(&mut self, busy_core_seconds: f64, wall_seconds: f64) -> f64 {
        if !self.enabled {
            return 1.0;
        }
        let earned = self.baseline_fraction * f64::from(self.vcpus) * wall_seconds;
        let spent = busy_core_seconds;
        self.balance = (self.balance + earned - spent).clamp(0.0, self.max_balance);
        if self.balance <= 0.0 {
            // Throttled to baseline.
            (1.0 / self.baseline_fraction).max(1.0)
        } else {
            1.0
        }
    }

    /// Returns `true` if the instance is currently out of credits.
    #[must_use]
    pub fn exhausted(&self) -> bool {
        self.enabled && self.balance <= 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedicated_profile_is_nearly_noise_free() {
        let mut state = InterferenceState::new(InterferenceProfile::dedicated(), 1);
        let samples: Vec<f64> = (0..2_000).map(|_| state.sample_tick()).collect();
        let max = samples.iter().cloned().fold(0.0, f64::max);
        let mean: f64 = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!(
            mean < 1.05,
            "dedicated mean multiplier should be ~1, got {mean}"
        );
        assert!(max < 1.3, "dedicated spikes should be small, got {max}");
    }

    #[test]
    fn cloud_profiles_produce_episodes() {
        let mut state = InterferenceState::new(InterferenceProfile::aws(), 3);
        let samples: Vec<f64> = (0..5_000).map(|_| state.sample_tick()).collect();
        let above = samples.iter().filter(|&&m| m > 1.4).count();
        assert!(
            above > 10,
            "AWS profile should show steal episodes, got {above}"
        );
    }

    #[test]
    fn cloud_minimum_exceeds_dedicated_maximum_on_average() {
        // MF3: the minimum cloud ISR exceeds the maximum DAS-5 ISR. At the
        // interference level this shows up as cloud placement factors and
        // episode rates that dominate dedicated ones across iterations.
        let mut das_max: f64 = 0.0;
        let mut cloud_min = f64::INFINITY;
        for seed in 0..20 {
            let das = InterferenceState::new(InterferenceProfile::dedicated(), seed);
            das_max = das_max.max(das.placement_factor());
            let cloud = InterferenceState::new(InterferenceProfile::aws(), 1_000 + seed);
            cloud_min = cloud_min.min(cloud.placement_factor());
        }
        // Placement alone may overlap; what must hold is that clouds have a
        // far wider spread.
        assert!(das_max < 1.03);
        assert!(cloud_min >= 1.0);
    }

    #[test]
    fn interference_is_deterministic_per_seed() {
        let mut a = InterferenceState::new(InterferenceProfile::azure(), 77);
        let mut b = InterferenceState::new(InterferenceProfile::azure(), 77);
        for _ in 0..100 {
            assert_eq!(a.sample_tick(), b.sample_tick());
        }
    }

    #[test]
    fn flat_temporal_profile_is_bit_identical_to_stationary() {
        use crate::temporal::{StartTime, TemporalProfile};
        // The temporal layer must consume zero RNG draws and contribute
        // exactly-1.0 factors when flat — even at a non-default start time.
        let mut plain = InterferenceState::new(InterferenceProfile::aws(), 901);
        let mut layered = InterferenceState::with_temporal(
            InterferenceProfile::aws(),
            TemporalProfile::flat(),
            StartTime::parse("fri-20:30").unwrap(),
            901,
        );
        assert_eq!(plain.placement_factor(), layered.placement_factor());
        for _ in 0..5_000 {
            assert_eq!(
                plain.sample_tick().to_bits(),
                layered.sample_tick().to_bits()
            );
        }
        assert_eq!(layered.resident_neighbors(), 0);
    }

    #[test]
    fn diurnal_peak_slows_ticks_beyond_stationary() {
        use crate::temporal::{StartTime, TemporalProfile};
        let mean_of = |start: &str, seed: u64| -> f64 {
            let mut state = InterferenceState::with_temporal(
                InterferenceProfile::aws(),
                TemporalProfile::aws(),
                StartTime::parse(start).unwrap(),
                seed,
            );
            (0..5_000).map(|_| state.sample_tick()).sum::<f64>() / 5_000.0
        };
        let mut peak = 0.0;
        let mut off = 0.0;
        for seed in 0..10 {
            peak += mean_of("fri-20:30", seed);
            off += mean_of("mon-04:00", seed);
        }
        assert!(
            peak > off * 1.1,
            "peak-start interference should dominate off-peak: {peak} vs {off}"
        );
    }

    #[test]
    fn different_seeds_sample_different_placements() {
        let a = InterferenceState::new(InterferenceProfile::aws(), 1);
        let b = InterferenceState::new(InterferenceProfile::aws(), 2);
        assert_ne!(a.placement_factor(), b.placement_factor());
    }

    #[test]
    fn credits_throttle_sustained_load() {
        let mut credits = BurstCredits::new(true, 0.3, 2);
        let mut throttled = false;
        // Sustained 100% usage of both cores: 0.1 core-seconds per 50 ms tick.
        for _ in 0..20_000 {
            let m = credits.account(0.1, 0.05);
            if m > 1.0 {
                throttled = true;
                break;
            }
        }
        assert!(throttled, "sustained full load must exhaust burst credits");
        assert!(credits.exhausted());
    }

    #[test]
    fn light_load_never_throttles() {
        let mut credits = BurstCredits::new(true, 0.3, 2);
        for _ in 0..20_000 {
            // 10% of one core per tick, well under the 60% total baseline.
            let m = credits.account(0.005, 0.05);
            assert_eq!(m, 1.0);
        }
        assert!(!credits.exhausted());
    }

    #[test]
    fn non_burstable_nodes_are_never_throttled() {
        let mut credits = BurstCredits::new(false, 1.0, 2);
        for _ in 0..1_000 {
            assert_eq!(credits.account(10.0, 0.05), 1.0);
        }
        assert!(!credits.exhausted());
    }

    #[test]
    fn credits_recover_during_idle_periods() {
        let mut credits = BurstCredits::new(true, 0.3, 2);
        // Exhaust.
        for _ in 0..20_000 {
            credits.account(0.1, 0.05);
        }
        assert!(credits.exhausted());
        // Idle for a while: credits accrue again.
        for _ in 0..2_000 {
            credits.account(0.0, 0.05);
        }
        assert!(!credits.exhausted());
    }
}
