//! The virtual-time compute engine: converting game-server work into tick
//! durations.
//!
//! The game-server substrate reports how much abstract *work* each tick
//! performed, split into work bound to the main game-loop thread and work the
//! server flavor managed to offload to auxiliary threads (PaperMC's
//! asynchronous environment processing, Appendix A of the paper). The engine
//! converts that work into milliseconds for a given node under the current
//! interference conditions — this is the substitution for running real JVM
//! servers on real machines, preserving the relationship *more work and fewer
//! effective cores ⇒ longer ticks ⇒ overload*.

use serde::{Deserialize, Serialize};

use crate::interference::{BurstCredits, InterferenceState};
use crate::node::NodeType;

/// One tick's worth of compute demand, in abstract work units.
///
/// The split models three execution classes:
///
/// * `main_thread` — strictly serial game-loop work (Amdahl's serial
///   fraction);
/// * `parallelizable` — work the server's architecture can fan out across
///   up to `parallel_width` cores *within* the game loop (sharded tick
///   regions, parallel JVM GC, chunk encoding), barriering back before the
///   tick ends. `max_shard` is the largest single indivisible share of it
///   (the busiest tick shard), a load-balance floor no core count can beat.
///   Both reflect the server's *current* shard partition: under adaptive
///   rebalancing the width follows the post-rebalance leaf count and the
///   floor shrinks as hotspot regions split — which is exactly the lever
///   that lets added vCPUs keep helping under clustered workloads;
/// * `offloadable` — asynchronous work overlapped with the game loop on
///   spare cores (async chat, async environment processing).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TickWork {
    /// Work that must execute on the main game-loop thread.
    pub main_thread: u64,
    /// Work that the server flavor can execute on auxiliary threads
    /// concurrently with the main thread (e.g. async chat, async lighting).
    pub offloadable: u64,
    /// Work divisible across cores within the game loop (Amdahl's parallel
    /// fraction).
    pub parallelizable: u64,
    /// Maximum number of workers `parallelizable` can usefully spread over
    /// (e.g. the tick shard count; `u32::MAX` for freely divisible work
    /// like parallel GC).
    pub parallel_width: u32,
    /// The largest indivisible share of `parallelizable` (the busiest
    /// shard's work); the parallel phase can never finish faster than this.
    pub max_shard: u64,
}

impl Default for TickWork {
    fn default() -> Self {
        TickWork {
            main_thread: 0,
            offloadable: 0,
            parallelizable: 0,
            parallel_width: 1,
            max_shard: 0,
        }
    }
}

impl TickWork {
    /// Work bound entirely to the main game-loop thread (no parallel or
    /// offloaded component).
    #[must_use]
    pub fn serial(main_thread: u64) -> Self {
        TickWork {
            main_thread,
            ..TickWork::default()
        }
    }

    /// Total work units regardless of placement.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.main_thread + self.offloadable + self.parallelizable
    }
}

/// One stage of a tick's compute demand in the stage-parallel tick graph.
///
/// A tick is a sequence of stages (player handler, terrain, entities,
/// lighting, dissemination, …), each declaring its own serial/parallel
/// split: `main_thread` work runs on the game-loop thread, `parallelizable`
/// work fans out over up to `parallel_width` cores with a load-balance
/// floor at `max_shard` (the busiest shard's indivisible share). Stages
/// barrier in order — the tick's critical path is the sum of per-stage
/// Amdahl critical paths — which is exactly how a sharded game loop with
/// per-stage fork/join behaves. Offloadable (asynchronous) work is not per
/// stage: it overlaps the whole tick on spare cores and is passed
/// separately to [`ComputeEngine::execute_stages`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageWork {
    /// Work bound to the main game-loop thread during this stage.
    pub main_thread: u64,
    /// Work divisible across cores within this stage.
    pub parallelizable: u64,
    /// Maximum number of workers the stage's parallel work can usefully
    /// spread over (the shard count; `u32::MAX` for freely divisible work).
    pub parallel_width: u32,
    /// The largest indivisible share of `parallelizable` (the busiest
    /// shard's work in this stage).
    pub max_shard: u64,
}

impl Default for StageWork {
    fn default() -> Self {
        StageWork {
            main_thread: 0,
            parallelizable: 0,
            parallel_width: 1,
            max_shard: 0,
        }
    }
}

impl StageWork {
    /// A stage bound entirely to the main thread.
    #[must_use]
    pub fn serial(main_thread: u64) -> Self {
        StageWork {
            main_thread,
            ..StageWork::default()
        }
    }

    /// Total work units of this stage regardless of placement.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.main_thread + self.parallelizable
    }
}

/// Result of executing one staged tick on the engine.
#[derive(Debug, Clone, PartialEq)]
pub struct StagedTickExecution {
    /// Critical-path milliseconds contributed by each stage, in input
    /// order (serial part plus the stage's Amdahl parallel phase). A
    /// fully offloaded stage contributes 0 here — its cost shows up in
    /// `offload_overflow_ms` only when the tick had no slack to hide it.
    pub stage_ms: Vec<f64>,
    /// Milliseconds by which offloadable work stretched the tick beyond
    /// the stage critical paths (0 when it fit into idle-core slack).
    pub offload_overflow_ms: f64,
    /// The whole-tick execution record (busy time, interference,
    /// utilization), identical in meaning to [`ComputeEngine::execute_tick`].
    pub execution: TickExecution,
}

/// Result of executing one tick on the engine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TickExecution {
    /// How long the tick's computation took, in milliseconds.
    pub busy_ms: f64,
    /// The interference multiplier that was applied.
    pub interference_multiplier: f64,
    /// The burst-credit throttle multiplier that was applied.
    pub throttle_multiplier: f64,
    /// CPU core-seconds consumed (for system metrics and credit accounting).
    pub core_seconds: f64,
    /// CPU utilization during the tick window, as a fraction of the node's
    /// total capacity (can exceed 1.0 only due to rounding; clamped).
    pub cpu_utilization: f64,
}

/// Converts per-tick work into per-tick compute time for one node during one
/// benchmark iteration.
#[derive(Debug)]
pub struct ComputeEngine {
    node: NodeType,
    interference: InterferenceState,
    credits: BurstCredits,
    pending_throttle: f64,
}

impl ComputeEngine {
    /// Creates an engine for `node` using the given per-iteration
    /// interference state.
    #[must_use]
    pub fn new(node: NodeType, interference: InterferenceState) -> Self {
        let credits = BurstCredits::new(node.burstable, node.baseline_cpu_fraction, node.vcpus);
        ComputeEngine {
            node,
            interference,
            credits,
            pending_throttle: 1.0,
        }
    }

    /// The node this engine models.
    #[must_use]
    pub fn node(&self) -> &NodeType {
        &self.node
    }

    /// Returns `true` if burst credits are currently exhausted.
    #[must_use]
    pub fn throttled(&self) -> bool {
        self.credits.exhausted()
    }

    /// Executes one tick of `work` and returns its duration and bookkeeping.
    ///
    /// `tick_budget_ms` is the nominal tick length (50 ms); it is used for
    /// credit accrual (idle time between ticks earns credits back).
    ///
    /// Equivalent to [`ComputeEngine::execute_stages`] with the whole tick
    /// folded into a single stage.
    pub fn execute_tick(&mut self, work: TickWork, tick_budget_ms: f64) -> TickExecution {
        let stage = StageWork {
            main_thread: work.main_thread,
            parallelizable: work.parallelizable,
            parallel_width: work.parallel_width,
            max_shard: work.max_shard,
        };
        self.execute_stages(&[stage], work.offloadable, tick_budget_ms)
            .execution
    }

    /// Executes one tick decomposed into an ordered stage graph and returns
    /// per-stage critical-path milliseconds alongside the whole-tick record.
    ///
    /// Each stage contributes its own Amdahl critical path — serial
    /// main-thread time plus its parallel phase fanned out over
    /// min(vCPUs, `parallel_width`) cores, floored by the stage's busiest
    /// shard — and the stages barrier in order, so the tick's busy time is
    /// the sum of stage critical paths. `offloadable` work overlaps the
    /// *whole* tick on idle-core slack accumulated across all stages (a
    /// cross-tick-pipelined lighting pass, async chat); it stretches the
    /// tick only when it exceeds that slack. Capacity is conserved: the
    /// model never uses more core-milliseconds than the node has.
    pub fn execute_stages(
        &mut self,
        stages: &[StageWork],
        offloadable: u64,
        tick_budget_ms: f64,
    ) -> StagedTickExecution {
        let interference = self.interference.sample_tick();
        let throttle = self.pending_throttle;
        let per_core_rate = self.node.work_units_per_core_ms() / (interference * throttle);

        // Per-stage critical paths: serial main-thread work, plus the
        // parallel phase fanned out over min(vCPUs, parallel_width) cores —
        // Amdahl's law with a load-balance floor at the busiest shard.
        // Idle-core slack (for hiding offloadable work) accrues per stage:
        // vCPUs-1 cores while a stage's serial part runs, vCPUs-width cores
        // while its parallel phase runs.
        let aux_cores = f64::from(self.node.vcpus.saturating_sub(1)).max(0.0);
        let mut stage_ms = Vec::with_capacity(stages.len());
        let mut critical_ms = 0.0;
        let mut slack_core_ms = 0.0;
        let mut total_units = offloadable;
        for stage in stages {
            total_units += stage.total();
            let main_ms = stage.main_thread as f64 / per_core_rate;
            let width = f64::from(self.node.vcpus.min(stage.parallel_width).max(1));
            let parallel_ideal = stage.parallelizable as f64 / width;
            let parallel_floor = stage.max_shard.min(stage.parallelizable) as f64;
            let parallel_ms = parallel_ideal.max(parallel_floor) / per_core_rate;
            critical_ms += main_ms + parallel_ms;
            slack_core_ms +=
                aux_cores * main_ms + (f64::from(self.node.vcpus) - width).max(0.0) * parallel_ms;
            stage_ms.push(main_ms + parallel_ms);
        }

        // Offloadable work runs concurrently with the game loop on whatever
        // core capacity the stage critical paths leave idle. The tick
        // stretches when offloadable work exceeds that slack (with no
        // parallel phase this reduces exactly to the previous
        // max(main, offload/aux) model).
        let offload_core_ms = offloadable as f64 / per_core_rate;
        let offload_overflow_ms = if offloadable == 0 {
            0.0
        } else if aux_cores > 0.0 {
            if offload_core_ms <= slack_core_ms {
                0.0
            } else {
                (offload_core_ms - slack_core_ms) / aux_cores
            }
        } else {
            // No spare core: offloadable work falls back onto the main thread.
            offload_core_ms
        };
        let busy_ms = critical_ms + offload_overflow_ms;

        // Core-seconds actually consumed (work / single-core rate).
        let core_seconds = (total_units as f64 / per_core_rate) / 1_000.0;
        let wall_ms = busy_ms.max(tick_budget_ms);
        let capacity_core_seconds = f64::from(self.node.vcpus) * wall_ms / 1_000.0;
        let cpu_utilization = (core_seconds / capacity_core_seconds).clamp(0.0, 1.0);

        // Update burst credits; the throttle applies from the next tick.
        self.pending_throttle = self.credits.account(core_seconds, wall_ms / 1_000.0);

        StagedTickExecution {
            stage_ms,
            offload_overflow_ms,
            execution: TickExecution {
                busy_ms,
                interference_multiplier: interference,
                throttle_multiplier: throttle,
                core_seconds,
                cpu_utilization,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interference::InterferenceProfile;

    fn quiet_engine(node: NodeType) -> ComputeEngine {
        ComputeEngine::new(
            node,
            InterferenceState::new(InterferenceProfile::dedicated(), 1),
        )
    }

    #[test]
    fn light_work_finishes_well_under_budget() {
        let mut engine = quiet_engine(NodeType::das5(2));
        let exec = engine.execute_tick(
            TickWork {
                main_thread: 10_000,
                offloadable: 0,
                ..TickWork::default()
            },
            50.0,
        );
        assert!(exec.busy_ms < 5.0, "light tick took {} ms", exec.busy_ms);
        assert!(exec.cpu_utilization < 0.5);
    }

    #[test]
    fn heavy_work_overloads_a_small_node() {
        let mut engine = quiet_engine(NodeType::das5(2));
        let exec = engine.execute_tick(
            TickWork {
                main_thread: 1_000_000,
                offloadable: 0,
                ..TickWork::default()
            },
            50.0,
        );
        assert!(exec.busy_ms > 50.0, "heavy tick took {} ms", exec.busy_ms);
    }

    #[test]
    fn offloadable_work_benefits_from_extra_cores() {
        let work = TickWork {
            main_thread: 100_000,
            offloadable: 300_000,
            ..TickWork::default()
        };
        let mut two_core = quiet_engine(NodeType::das5(2));
        let mut eight_core = quiet_engine(NodeType::das5(8));
        let t2 = two_core.execute_tick(work, 50.0).busy_ms;
        let t8 = eight_core.execute_tick(work, 50.0).busy_ms;
        assert!(t8 < t2, "8-core ({t8} ms) should beat 2-core ({t2} ms)");
    }

    #[test]
    fn single_core_pays_for_offloadable_work_serially() {
        let work = TickWork {
            main_thread: 50_000,
            offloadable: 50_000,
            ..TickWork::default()
        };
        let mut one_core = quiet_engine(NodeType::das5(1));
        let mut two_core = quiet_engine(NodeType::das5(2));
        let t1 = one_core.execute_tick(work, 50.0).busy_ms;
        let t2 = two_core.execute_tick(work, 50.0).busy_ms;
        assert!(t1 > t2);
    }

    #[test]
    fn main_thread_work_does_not_scale_with_cores() {
        let work = TickWork {
            main_thread: 400_000,
            offloadable: 0,
            ..TickWork::default()
        };
        let mut two_core = quiet_engine(NodeType::das5(2));
        let mut sixteen_core = quiet_engine(NodeType::das5(16));
        let t2 = two_core.execute_tick(work, 50.0).busy_ms;
        let t16 = sixteen_core.execute_tick(work, 50.0).busy_ms;
        // Identical clock: the main thread is the bottleneck on both.
        assert!((t2 - t16).abs() / t2 < 0.05);
    }

    #[test]
    fn parallelizable_work_scales_with_vcpus_amdahl_style() {
        let work = TickWork {
            main_thread: 100_000,
            parallelizable: 400_000,
            parallel_width: u32::MAX,
            ..TickWork::default()
        };
        let t = |cores: u32| {
            quiet_engine(NodeType::das5(cores))
                .execute_tick(work, 50.0)
                .busy_ms
        };
        let (t1, t2, t8) = (t(1), t(2), t(8));
        assert!(t2 < t1 * 0.7, "2 cores ({t2} ms) must beat 1 ({t1} ms)");
        assert!(t8 < t2 * 0.6, "8 cores ({t8} ms) must beat 2 ({t2} ms)");
        // Amdahl: the serial fraction bounds the speedup — 8 cores cannot
        // reach the ideal 8x of the total.
        assert!(t8 > t1 / 8.0, "serial fraction must cap the speedup");
    }

    #[test]
    fn parallel_width_caps_the_useful_core_count() {
        let work = TickWork {
            main_thread: 10_000,
            parallelizable: 800_000,
            parallel_width: 4,
            ..TickWork::default()
        };
        let mut four = quiet_engine(NodeType::das5(4));
        let mut sixteen = quiet_engine(NodeType::das5(16));
        let t4 = four.execute_tick(work, 50.0).busy_ms;
        let t16 = sixteen.execute_tick(work, 50.0).busy_ms;
        // Only 4 shards: extra cores beyond 4 buy nothing.
        assert!((t4 - t16).abs() / t4 < 0.05);
    }

    #[test]
    fn busiest_shard_floors_the_parallel_phase() {
        let balanced = TickWork {
            parallelizable: 400_000,
            parallel_width: 4,
            max_shard: 100_000,
            ..TickWork::default()
        };
        let skewed = TickWork {
            max_shard: 390_000,
            ..balanced
        };
        let mut engine = quiet_engine(NodeType::das5(4));
        let t_balanced = engine.execute_tick(balanced, 50.0).busy_ms;
        let mut engine = quiet_engine(NodeType::das5(4));
        let t_skewed = engine.execute_tick(skewed, 50.0).busy_ms;
        assert!(
            t_skewed > t_balanced * 3.0,
            "one hot shard ({t_skewed} ms) must dominate a balanced split ({t_balanced} ms)"
        );
    }

    #[test]
    fn a_rebalanced_partition_beats_a_hotspotted_one_on_the_same_node() {
        // The same parallelizable work, before and after an adaptive
        // rebalance of a hotspot: pre-rebalance one shard carries most of
        // the load (high max_shard, few useful shards); post-rebalance the
        // hot region has split (wider partition, lower floor). The engine
        // must turn that into a shorter tick on an 8-core node.
        let pre = TickWork {
            main_thread: 20_000,
            parallelizable: 800_000,
            parallel_width: 4,
            max_shard: 600_000,
            ..TickWork::default()
        };
        let post = TickWork {
            parallel_width: 7,
            max_shard: 200_000,
            ..pre
        };
        let mut engine = quiet_engine(NodeType::das5(8));
        let t_pre = engine.execute_tick(pre, 50.0).busy_ms;
        let mut engine = quiet_engine(NodeType::das5(8));
        let t_post = engine.execute_tick(post, 50.0).busy_ms;
        assert!(
            t_post < t_pre * 0.5,
            "post-rebalance ({t_post} ms) should be far faster than the hotspotted partition ({t_pre} ms)"
        );
    }

    #[test]
    fn parallel_and_offload_work_cannot_exceed_node_capacity() {
        // 2 cores, no serial work: 200k parallel + 100k offload units must
        // take at least 300k/(2 cores) of single-core time — the model may
        // not conjure a third core out of the overlap.
        let work = TickWork {
            parallelizable: 200_000,
            parallel_width: u32::MAX,
            offloadable: 100_000,
            ..TickWork::default()
        };
        let node = NodeType::das5(2);
        let floor_ms = work.total() as f64 / (2.0 * node.work_units_per_core_ms());
        let busy = quiet_engine(node).execute_tick(work, 50.0).busy_ms;
        assert!(
            busy >= floor_ms * 0.999,
            "busy {busy} ms beats the 2-core capacity floor {floor_ms} ms"
        );
    }

    #[test]
    fn serial_constructor_matches_plain_main_thread_work() {
        let mut a = quiet_engine(NodeType::das5(2));
        let mut b = quiet_engine(NodeType::das5(2));
        let from_ctor = a.execute_tick(TickWork::serial(250_000), 50.0).busy_ms;
        let from_literal = b
            .execute_tick(
                TickWork {
                    main_thread: 250_000,
                    ..TickWork::default()
                },
                50.0,
            )
            .busy_ms;
        assert_eq!(from_ctor, from_literal);
    }

    #[test]
    fn sustained_heavy_load_triggers_burst_throttling() {
        let node = NodeType::aws_t3_large();
        let mut engine = ComputeEngine::new(
            node,
            InterferenceState::new(InterferenceProfile::dedicated(), 5),
        );
        // ~42 ms of busy time per 50 ms tick: above the 60%-of-one-core
        // baseline that a t3.large can sustain without spending credits.
        let work = TickWork {
            main_thread: 250_000,
            offloadable: 0,
            ..TickWork::default()
        };
        let first = engine.execute_tick(work, 50.0).busy_ms;
        let mut throttled_time = None;
        for _ in 0..40_000 {
            let exec = engine.execute_tick(work, 50.0);
            if exec.throttle_multiplier > 1.0 {
                throttled_time = Some(exec.busy_ms);
                break;
            }
        }
        let throttled =
            throttled_time.expect("t3.large should exhaust credits under sustained load");
        assert!(
            throttled > first * 2.0,
            "throttled tick ({throttled} ms) should be much slower than unthrottled ({first} ms)"
        );
    }

    #[test]
    fn staged_execution_matches_the_single_stage_tick() {
        let work = TickWork {
            main_thread: 120_000,
            parallelizable: 300_000,
            parallel_width: 4,
            max_shard: 90_000,
            offloadable: 40_000,
        };
        let stage = StageWork {
            main_thread: work.main_thread,
            parallelizable: work.parallelizable,
            parallel_width: work.parallel_width,
            max_shard: work.max_shard,
        };
        let mut a = quiet_engine(NodeType::das5(4));
        let mut b = quiet_engine(NodeType::das5(4));
        let single = a.execute_tick(work, 50.0);
        let staged = b.execute_stages(&[stage], work.offloadable, 50.0);
        assert_eq!(single, staged.execution);
        assert_eq!(staged.stage_ms.len(), 1);
        assert!(
            (staged.stage_ms[0] + staged.offload_overflow_ms - single.busy_ms).abs() < 1e-12,
            "stage breakdown must account for the whole tick"
        );
    }

    #[test]
    fn stage_critical_paths_sum_and_floors_apply_per_stage() {
        // Two stages with the same totals as one merged stage, but the
        // second stage's floor binds: the staged tick must be slower than
        // the merged tick (the floor cannot be amortized across stages).
        let stages = [
            StageWork {
                main_thread: 50_000,
                parallelizable: 200_000,
                parallel_width: 4,
                max_shard: 50_000,
            },
            StageWork {
                main_thread: 50_000,
                parallelizable: 200_000,
                parallel_width: 4,
                max_shard: 190_000,
            },
        ];
        let merged = TickWork {
            main_thread: 100_000,
            parallelizable: 400_000,
            parallel_width: 4,
            max_shard: 190_000,
            offloadable: 0,
        };
        let mut a = quiet_engine(NodeType::das5(4));
        let mut b = quiet_engine(NodeType::das5(4));
        let staged = a.execute_stages(&stages, 0, 50.0);
        let single = b.execute_tick(merged, 50.0);
        let sum: f64 = staged.stage_ms.iter().sum();
        assert!((sum - staged.execution.busy_ms).abs() < 1e-12);
        assert!(
            staged.execution.busy_ms > single.busy_ms,
            "a floor binding inside one stage must cost more than the same \
             floor over the merged tick (staged {} ms vs merged {} ms)",
            staged.execution.busy_ms,
            single.busy_ms
        );
    }

    #[test]
    fn parallelizing_a_serial_stage_shortens_the_staged_tick() {
        // The stage-parallel refactor in one number: moving a stage's work
        // from main_thread to parallelizable must shorten the tick on a
        // multi-core node.
        let serial_stage1 = [StageWork::serial(300_000), StageWork::serial(100_000)];
        let parallel_stage1 = [
            StageWork {
                main_thread: 60_000,
                parallelizable: 240_000,
                parallel_width: 8,
                max_shard: 40_000,
            },
            StageWork::serial(100_000),
        ];
        let mut a = quiet_engine(NodeType::das5(8));
        let mut b = quiet_engine(NodeType::das5(8));
        let before = a.execute_stages(&serial_stage1, 0, 50.0).execution.busy_ms;
        let after = b
            .execute_stages(&parallel_stage1, 0, 50.0)
            .execution
            .busy_ms;
        assert!(
            after < before * 0.6,
            "sharding the stage must shorten the tick ({after} ms vs {before} ms)"
        );
    }

    #[test]
    fn offloaded_work_hides_in_stage_slack() {
        // A pipelined lighting pass: all-offloadable work overlapping a
        // tick with a long serial stage costs nothing on a multi-core
        // node, but stretches a single-core tick in full.
        let stages = [StageWork::serial(200_000)];
        let mut multi = quiet_engine(NodeType::das5(4));
        let with_light = multi.execute_stages(&stages, 150_000, 50.0);
        assert_eq!(
            with_light.offload_overflow_ms, 0.0,
            "offloaded lighting must hide in the serial stage's slack"
        );
        let mut single = quiet_engine(NodeType::das5(1));
        let squeezed = single.execute_stages(&stages, 150_000, 50.0);
        assert!(squeezed.offload_overflow_ms > 0.0);
        assert!(squeezed.execution.busy_ms > with_light.execution.busy_ms);
    }

    #[test]
    fn cpu_utilization_is_bounded() {
        let mut engine = quiet_engine(NodeType::das5(2));
        for main in [1_000u64, 100_000, 10_000_000] {
            let exec = engine.execute_tick(
                TickWork {
                    main_thread: main,
                    offloadable: main,
                    ..TickWork::default()
                },
                50.0,
            );
            assert!(exec.cpu_utilization >= 0.0 && exec.cpu_utilization <= 1.0);
        }
    }

    #[test]
    fn interference_makes_identical_work_vary() {
        let node = NodeType::aws_t3_large();
        let mut engine =
            ComputeEngine::new(node, InterferenceState::new(InterferenceProfile::aws(), 9));
        let work = TickWork {
            main_thread: 60_000,
            offloadable: 0,
            ..TickWork::default()
        };
        let times: Vec<f64> = (0..2_000)
            .map(|_| engine.execute_tick(work, 50.0).busy_ms)
            .collect();
        let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = times.iter().cloned().fold(0.0, f64::max);
        assert!(
            max > min * 1.3,
            "cloud interference should spread tick times (min {min}, max {max})"
        );
    }
}
