//! Temporal (non-stationary) cloud variability: the tenancy point process.
//!
//! The paper measures cloud variability as if it were stationary per
//! environment, but follow-up work (Henning et al., "When Should I Run My
//! Application Benchmark?"; Baresi et al.) shows diurnal and weekly cloud
//! variability is first-order: *when* a benchmark starts changes the answer
//! as much as *where* it runs. This module models that dimension:
//!
//! * [`StartTime`] — a point in the simulated week (minutes since Monday
//!   00:00) at which an iteration begins;
//! * [`TemporalProfile`] — a per-environment diurnal + day-of-week intensity
//!   curve for noisy-neighbour arrivals (dedicated hardware stays
//!   [`TemporalProfile::flat`]);
//! * [`TenancyProcess`] — a seeded, time-inhomogeneous arrival/departure
//!   process over co-resident neighbours, each resident contributing
//!   multiplicatively to steal probability and placement pressure.
//!
//! # Determinism
//!
//! Every draw the process makes is a pure function of
//! `(seed, start_time, tick)` via a counter-based splitmix64 hash — there is
//! no stateful RNG stream. Two consequences the test suite pins:
//!
//! * the process replays bit-identically across pause/resume splits and
//!   tick-thread counts (nothing here depends on execution order);
//! * a flat profile consumes **zero** randomness and contributes exactly-1.0
//!   factors, so layering it over [`InterferenceState`] leaves the existing
//!   stationary behaviour byte-identical.
//!
//! [`InterferenceState`]: crate::interference::InterferenceState

use serde::{Deserialize, Serialize};
use std::fmt;

/// Simulated game ticks per second (the 20 Hz Minecraft-like tick rate).
pub const TICKS_PER_SECOND: u32 = 20;
/// Simulated game ticks per minute of simulated wall-clock.
pub const TICKS_PER_MINUTE: u32 = 60 * TICKS_PER_SECOND;
/// Simulated game ticks per hour of simulated wall-clock.
pub const TICKS_PER_HOUR: u32 = 60 * TICKS_PER_MINUTE;
/// Minutes in a simulated day.
pub const MINUTES_PER_DAY: u32 = 24 * 60;
/// Minutes in a simulated week (the period of the intensity curve).
pub const MINUTES_PER_WEEK: u32 = 7 * MINUTES_PER_DAY;

const DAY_NAMES: [&str; 7] = ["mon", "tue", "wed", "thu", "fri", "sat", "sun"];

/// A point in the simulated week at which an iteration starts, stored as
/// minutes since Monday 00:00 (wrapping modulo one week).
///
/// The default (`mon-00:00`) is what every pre-existing campaign implicitly
/// ran at; like `tick_threads`, a start time is excluded from seed
/// derivation so sweeping it compares the same world and interference seeds
/// at different points of the week.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct StartTime {
    minute_of_week: u32,
}

impl StartTime {
    /// Monday 00:00 — the implicit start of every stationary campaign.
    pub const MONDAY_MIDNIGHT: StartTime = StartTime { minute_of_week: 0 };

    /// Builds a start time from raw minutes since Monday 00:00 (wraps).
    #[must_use]
    pub fn from_minutes(minutes: u32) -> Self {
        StartTime {
            minute_of_week: minutes % MINUTES_PER_WEEK,
        }
    }

    /// Builds a start time from a day index (0 = Monday … 6 = Sunday), hour
    /// and minute.
    ///
    /// # Panics
    ///
    /// Panics if `day > 6`, `hour > 23` or `minute > 59`.
    #[must_use]
    pub fn from_day_hour_minute(day: u32, hour: u32, minute: u32) -> Self {
        assert!(day < 7, "day index out of range: {day}");
        assert!(hour < 24, "hour out of range: {hour}");
        assert!(minute < 60, "minute out of range: {minute}");
        StartTime {
            minute_of_week: day * MINUTES_PER_DAY + hour * 60 + minute,
        }
    }

    /// Parses the stable label format, e.g. `"fri-20:30"`.
    #[must_use]
    pub fn parse(label: &str) -> Option<Self> {
        let (day_name, clock) = label.split_once('-')?;
        let day = DAY_NAMES.iter().position(|&d| d == day_name)? as u32;
        let (hour, minute) = clock.split_once(':')?;
        let hour: u32 = hour.parse().ok()?;
        let minute: u32 = minute.parse().ok()?;
        if hour > 23 || minute > 59 {
            return None;
        }
        Some(StartTime::from_day_hour_minute(day, hour, minute))
    }

    /// Minutes since Monday 00:00.
    #[must_use]
    pub fn minute_of_week(&self) -> u32 {
        self.minute_of_week
    }

    /// The minute-of-week reached after `tick` simulated ticks.
    #[must_use]
    pub fn minute_at_tick(&self, tick: u64) -> u32 {
        let advanced = u64::from(self.minute_of_week) + tick / u64::from(TICKS_PER_MINUTE);
        (advanced % u64::from(MINUTES_PER_WEEK)) as u32
    }
}

impl fmt::Display for StartTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let day = self.minute_of_week / MINUTES_PER_DAY;
        let hour = (self.minute_of_week % MINUTES_PER_DAY) / 60;
        let minute = self.minute_of_week % 60;
        write!(f, "{}-{:02}:{:02}", DAY_NAMES[day as usize], hour, minute)
    }
}

/// Per-environment diurnal + day-of-week curve for noisy-neighbour tenancy.
///
/// Intensity (arrivals per simulated hour) is `arrivals_per_hour`, scaled by
/// `peak_multiplier` during `peak_hours` (a `[start, end)` hour-of-day range)
/// and by `weekend_factor` on Saturday/Sunday. Each resident neighbour
/// multiplies the steal-episode probability by `steal_factor_per_neighbor`
/// and the per-tick compute pressure by `pressure_per_neighbor`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TemporalProfile {
    /// Off-peak neighbour arrival intensity, in arrivals per simulated hour.
    pub arrivals_per_hour: f64,
    /// `[start, end)` hour-of-day range during which arrivals are scaled by
    /// `peak_multiplier`. An empty range (`start >= end`) disables the peak.
    pub peak_hours: (u32, u32),
    /// Arrival-intensity multiplier during peak hours.
    pub peak_multiplier: f64,
    /// Arrival-intensity multiplier on Saturday and Sunday.
    pub weekend_factor: f64,
    /// Residency span of one neighbour, in ticks (inclusive range).
    pub residency_ticks: (u32, u32),
    /// Multiplicative boost to the steal-episode probability per resident.
    pub steal_factor_per_neighbor: f64,
    /// Multiplicative per-tick compute pressure per resident.
    pub pressure_per_neighbor: f64,
    /// Host capacity: arrivals beyond this resident count are rejected.
    pub max_neighbors: u32,
}

impl TemporalProfile {
    /// The stationary profile: zero arrivals, neutral factors. Dedicated
    /// hardware uses this, and it is the default for every environment so
    /// pre-existing campaigns reproduce byte-identically.
    #[must_use]
    pub fn flat() -> Self {
        TemporalProfile {
            arrivals_per_hour: 0.0,
            peak_hours: (0, 0),
            peak_multiplier: 1.0,
            weekend_factor: 1.0,
            residency_ticks: (1, 1),
            steal_factor_per_neighbor: 1.0,
            pressure_per_neighbor: 1.0,
            max_neighbors: 0,
        }
    }

    /// Consumer-gaming-shaped AWS curve: quiet nights, strong evening peak,
    /// busier weekends. Calibrated so the MF5 node-size recommendation flips
    /// between off-peak and peak starts (see `tests/end_to_end.rs`).
    #[must_use]
    pub fn aws() -> Self {
        TemporalProfile {
            arrivals_per_hour: 0.25,
            peak_hours: (17, 23),
            peak_multiplier: 24.0,
            weekend_factor: 1.5,
            residency_ticks: (18_000, 90_000),
            steal_factor_per_neighbor: 1.6,
            pressure_per_neighbor: 1.10,
            max_neighbors: 6,
        }
    }

    /// Business-hours-shaped Azure curve: daytime peak on weekdays, quiet
    /// weekends (enterprise tenants).
    #[must_use]
    pub fn azure() -> Self {
        TemporalProfile {
            arrivals_per_hour: 0.3,
            peak_hours: (8, 18),
            peak_multiplier: 12.0,
            weekend_factor: 0.4,
            residency_ticks: (24_000, 120_000),
            steal_factor_per_neighbor: 1.5,
            pressure_per_neighbor: 1.08,
            max_neighbors: 5,
        }
    }

    /// Returns `true` for profiles that can never produce a neighbour; flat
    /// profiles short-circuit the tenancy process entirely.
    #[must_use]
    pub fn is_flat(&self) -> bool {
        self.arrivals_per_hour <= 0.0 || self.max_neighbors == 0
    }

    /// Arrival intensity (arrivals per simulated hour) at a minute of the
    /// week.
    #[must_use]
    pub fn intensity_at(&self, minute_of_week: u32) -> f64 {
        let m = minute_of_week % MINUTES_PER_WEEK;
        let day = m / MINUTES_PER_DAY; // 0 = Monday
        let hour = (m % MINUTES_PER_DAY) / 60;
        let mut intensity = self.arrivals_per_hour;
        let (peak_start, peak_end) = self.peak_hours;
        if peak_start < peak_end && hour >= peak_start && hour < peak_end {
            intensity *= self.peak_multiplier;
        }
        if day >= 5 {
            intensity *= self.weekend_factor;
        }
        intensity
    }

    /// Mean residency span in ticks.
    #[must_use]
    pub fn mean_residency_ticks(&self) -> f64 {
        let (lo, hi) = self.residency_ticks;
        f64::from(lo.min(hi)) / 2.0 + f64::from(lo.max(hi)) / 2.0
    }

    /// Expected stationary neighbour count at a minute of the week (Little's
    /// law: arrival rate × mean residency), capped at host capacity.
    #[must_use]
    pub fn expected_occupancy_at(&self, minute_of_week: u32) -> f64 {
        if self.is_flat() {
            return 0.0;
        }
        let occupancy = self.intensity_at(minute_of_week) * self.mean_residency_ticks()
            / f64::from(TICKS_PER_HOUR);
        occupancy.min(f64::from(self.max_neighbors))
    }
}

/// Multiplicative contribution of the current resident set to one tick.
///
/// With zero residents both factors are exactly `1.0`, so a flat profile is
/// a bit-identical no-op over the stationary interference model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenancyEffect {
    /// Number of co-resident neighbours during this tick.
    pub residents: u32,
    /// Factor applied to the steal-episode probability.
    pub steal_probability_factor: f64,
    /// Factor applied to the tick's compute time (placement pressure).
    pub pressure: f64,
}

impl TenancyEffect {
    /// The no-neighbour effect: both factors exactly `1.0`.
    pub const NEUTRAL: TenancyEffect = TenancyEffect {
        residents: 0,
        steal_probability_factor: 1.0,
        pressure: 1.0,
    };
}

// Distinct hash streams so arrival coin flips, residency draws and the
// warm-start population never reuse a counter value.
const ARRIVAL_STREAM: u64 = 0x41;
const DURATION_STREAM: u64 = 0xD1;
const WARM_START_STREAM: u64 = 0x57;

/// The seeded time-inhomogeneous tenancy point process.
///
/// Constructed warm: the initial resident population is drawn from the
/// stationary occupancy at `start_time`, so short iterations see the
/// intensity level of their start time instead of an empty cold host.
#[derive(Debug, Clone)]
pub struct TenancyProcess {
    profile: TemporalProfile,
    seed: u64,
    start: StartTime,
    tick: u64,
    /// Departure tick of each resident neighbour.
    residents: Vec<u64>,
}

impl TenancyProcess {
    /// Creates the process for one iteration, warm-started at `start`.
    #[must_use]
    pub fn new(profile: TemporalProfile, seed: u64, start: StartTime) -> Self {
        let mut residents = Vec::new();
        if !profile.is_flat() {
            let expected = profile.expected_occupancy_at(start.minute_of_week());
            let h = mix(seed, u64::from(start.minute_of_week()), WARM_START_STREAM);
            let whole = expected.floor() as u32;
            let count = (whole + u32::from(unit(h) < expected.fract())).min(profile.max_neighbors);
            for i in 0..count {
                let hi = mix(
                    seed ^ WARM_START_STREAM,
                    u64::from(start.minute_of_week()),
                    u64::from(i),
                );
                // Remaining (not total) residency: residents arrived at
                // various points before the start.
                let remaining = draw_residency(&profile, hi).max(1);
                residents.push(u64::from(remaining));
            }
        }
        TenancyProcess {
            profile,
            seed,
            start,
            tick: 0,
            residents,
        }
    }

    /// The next tick index [`step`](Self::step) will evaluate.
    #[must_use]
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Number of currently resident neighbours.
    #[must_use]
    pub fn resident_count(&self) -> u32 {
        self.residents.len() as u32
    }

    /// Advances the process by one tick and returns the resident set's
    /// multiplicative effect on that tick.
    pub fn step(&mut self) -> TenancyEffect {
        let tick = self.tick;
        self.tick += 1;
        if self.profile.is_flat() {
            return TenancyEffect::NEUTRAL;
        }
        self.residents.retain(|&departure| departure > tick);
        if (self.residents.len() as u32) < self.profile.max_neighbors {
            let h = mix(
                self.seed ^ ARRIVAL_STREAM,
                u64::from(self.start.minute_of_week()),
                tick,
            );
            let minute = self.start.minute_at_tick(tick);
            let p = (self.profile.intensity_at(minute) / f64::from(TICKS_PER_HOUR)).clamp(0.0, 1.0);
            if unit(h) < p {
                let duration = draw_residency(&self.profile, splitmix64(h ^ DURATION_STREAM));
                self.residents.push(tick + 1 + u64::from(duration.max(1)));
            }
        }
        let n = self.residents.len() as i32;
        if n == 0 {
            return TenancyEffect::NEUTRAL;
        }
        TenancyEffect {
            residents: n as u32,
            steal_probability_factor: self.profile.steal_factor_per_neighbor.powi(n),
            pressure: self.profile.pressure_per_neighbor.powi(n),
        }
    }
}

fn draw_residency(profile: &TemporalProfile, h: u64) -> u32 {
    let (lo, hi) = profile.residency_ticks;
    let (lo, hi) = (lo.min(hi), lo.max(hi));
    lo + (h % u64::from(hi - lo + 1)) as u32
}

/// The splitmix64 finalizer: a high-quality 64-bit mixing function.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Counter-based hash of `(seed, a, b)` — the process's only randomness.
fn mix(seed: u64, a: u64, b: u64) -> u64 {
    splitmix64(splitmix64(splitmix64(seed) ^ a) ^ b)
}

/// Maps a hash to a uniform value in `[0, 1)`.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn start_time_label_round_trips() {
        for label in ["mon-00:00", "fri-20:30", "sat-04:05", "sun-23:59"] {
            let parsed = StartTime::parse(label).unwrap();
            assert_eq!(parsed.to_string(), label);
        }
        assert_eq!(StartTime::default(), StartTime::MONDAY_MIDNIGHT);
        assert_eq!(StartTime::default().to_string(), "mon-00:00");
        assert!(StartTime::parse("fri-24:00").is_none());
        assert!(StartTime::parse("someday-10:00").is_none());
        assert!(StartTime::parse("garbage").is_none());
    }

    #[test]
    fn start_time_wraps_modulo_one_week() {
        assert_eq!(
            StartTime::from_minutes(MINUTES_PER_WEEK + 90),
            StartTime::from_day_hour_minute(0, 1, 30)
        );
        // A full simulated week of ticks lands back on the same minute.
        let start = StartTime::parse("wed-12:00").unwrap();
        let week_ticks = u64::from(MINUTES_PER_WEEK) * u64::from(TICKS_PER_MINUTE);
        assert_eq!(start.minute_at_tick(week_ticks), start.minute_of_week());
    }

    #[test]
    fn intensity_curve_reflects_peak_and_weekend() {
        let profile = TemporalProfile::aws();
        let off_peak =
            profile.intensity_at(StartTime::parse("mon-04:00").unwrap().minute_of_week());
        let peak = profile.intensity_at(StartTime::parse("fri-20:30").unwrap().minute_of_week());
        let weekend_peak =
            profile.intensity_at(StartTime::parse("sat-20:30").unwrap().minute_of_week());
        assert!(peak > off_peak * 10.0, "peak {peak} vs off-peak {off_peak}");
        assert!(weekend_peak > peak, "weekend factor must stack on the peak");
    }

    #[test]
    fn flat_profile_never_produces_residents() {
        let mut process = TenancyProcess::new(TemporalProfile::flat(), 42, StartTime::default());
        for _ in 0..10_000 {
            assert_eq!(process.step(), TenancyEffect::NEUTRAL);
        }
        assert_eq!(process.resident_count(), 0);
    }

    #[test]
    fn process_is_deterministic_and_resumable() {
        let profile = TemporalProfile::aws();
        let start = StartTime::parse("fri-20:30").unwrap();
        let mut a = TenancyProcess::new(profile.clone(), 7, start);
        let mut b = TenancyProcess::new(profile, 7, start);
        let full: Vec<TenancyEffect> = (0..5_000).map(|_| a.step()).collect();
        // Pause b at an arbitrary tick, clone it (resume from snapshot) and
        // continue: the tail must be bit-identical to the uninterrupted run.
        let head: Vec<TenancyEffect> = (0..1_234).map(|_| b.step()).collect();
        let mut resumed = b.clone();
        let tail: Vec<TenancyEffect> = (1_234..5_000).map(|_| resumed.step()).collect();
        assert_eq!(&full[..1_234], head.as_slice());
        assert_eq!(&full[1_234..], tail.as_slice());
    }

    #[test]
    fn peak_start_sees_more_neighbors_than_off_peak() {
        let profile = TemporalProfile::aws();
        let sum_residents = |start: &str, seed: u64| -> u64 {
            let mut p =
                TenancyProcess::new(profile.clone(), seed, StartTime::parse(start).unwrap());
            (0..10_000).map(|_| u64::from(p.step().residents)).sum()
        };
        let mut peak_total = 0;
        let mut off_total = 0;
        for seed in 0..20 {
            peak_total += sum_residents("fri-20:30", seed);
            off_total += sum_residents("mon-04:00", seed);
        }
        assert!(
            peak_total > off_total * 3,
            "peak {peak_total} vs off-peak {off_total}"
        );
    }

    #[test]
    fn expected_occupancy_follows_littles_law() {
        let profile = TemporalProfile::aws();
        let minute = StartTime::parse("fri-20:30").unwrap().minute_of_week();
        let expected = profile.intensity_at(minute) * profile.mean_residency_ticks()
            / f64::from(TICKS_PER_HOUR);
        assert_eq!(
            profile.expected_occupancy_at(minute),
            expected.min(f64::from(profile.max_neighbors))
        );
        assert_eq!(TemporalProfile::flat().expected_occupancy_at(minute), 0.0);
    }
}
