//! Named deployment environments: AWS, Azure and the self-hosted DAS-5.

use serde::{Deserialize, Serialize};

use crate::engine::ComputeEngine;
use crate::interference::{InterferenceProfile, InterferenceState};
use crate::node::NodeType;
use crate::temporal::{StartTime, TemporalProfile};

/// The hosting provider an environment belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Provider {
    /// Amazon Web Services (EC2 T3 instances in the paper).
    Aws,
    /// Microsoft Azure (Dv3 instances in the paper).
    Azure,
    /// The DAS-5 compute cluster (self-hosted / dedicated hardware).
    Das5,
}

impl std::fmt::Display for Provider {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Provider::Aws => "AWS",
            Provider::Azure => "Azure",
            Provider::Das5 => "DAS-5",
        };
        f.write_str(name)
    }
}

/// A deployment environment: a provider, a node type and an interference
/// profile. Environments are templates; call [`Environment::instantiate`]
/// once per benchmark iteration to sample a concrete
/// [`EnvironmentInstance`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Environment {
    /// Which provider this environment models.
    pub provider: Provider,
    /// Node size the server runs on.
    pub node: NodeType,
    /// Interference behaviour.
    pub profile: InterferenceProfile,
    /// One-way network latency between player-emulation nodes and the server
    /// node, in milliseconds (same-datacenter by default).
    pub network_latency_ms: f64,
    /// Maximum network jitter, in milliseconds.
    pub network_jitter_ms: f64,
    /// Diurnal + day-of-week tenancy curve. Flat by default on every preset
    /// — stationary campaigns stay byte-identical — and opted into via
    /// [`Environment::with_temporal`] or the `*_diurnal` presets.
    pub temporal: TemporalProfile,
}

impl Environment {
    /// AWS environment on the given node size (default `t3.large`, the
    /// paper's `L` node).
    #[must_use]
    pub fn aws(node: NodeType) -> Self {
        Environment {
            provider: Provider::Aws,
            node,
            profile: InterferenceProfile::aws(),
            network_latency_ms: 0.6,
            network_jitter_ms: 0.4,
            temporal: TemporalProfile::flat(),
        }
    }

    /// AWS on the default recommended node (`t3.large`).
    #[must_use]
    pub fn aws_default() -> Self {
        Environment::aws(NodeType::aws_t3_large())
    }

    /// AWS with the non-stationary consumer-gaming tenancy curve
    /// ([`TemporalProfile::aws`]): use with a `start_time` sweep.
    #[must_use]
    pub fn aws_diurnal(node: NodeType) -> Self {
        Environment::aws(node).with_temporal(TemporalProfile::aws())
    }

    /// Azure environment on `Standard_D2_v3`.
    #[must_use]
    pub fn azure_default() -> Self {
        Environment {
            provider: Provider::Azure,
            node: NodeType::azure_d2_v3(),
            profile: InterferenceProfile::azure(),
            network_latency_ms: 0.7,
            network_jitter_ms: 0.5,
            temporal: TemporalProfile::flat(),
        }
    }

    /// Self-hosted DAS-5 environment restricted to `cores` cores.
    #[must_use]
    pub fn das5(cores: u32) -> Self {
        Environment {
            provider: Provider::Das5,
            node: NodeType::das5(cores),
            profile: InterferenceProfile::dedicated(),
            network_latency_ms: 0.2,
            network_jitter_ms: 0.05,
            temporal: TemporalProfile::flat(),
        }
    }

    /// Azure with the business-hours tenancy curve
    /// ([`TemporalProfile::azure`]).
    #[must_use]
    pub fn azure_diurnal() -> Self {
        Environment::azure_default().with_temporal(TemporalProfile::azure())
    }

    /// Replaces the tenancy curve (builder style).
    #[must_use]
    pub fn with_temporal(mut self, temporal: TemporalProfile) -> Self {
        self.temporal = temporal;
        self
    }

    /// A short label such as `"AWS 2-core"` used in figures.
    #[must_use]
    pub fn label(&self) -> String {
        format!("{} {}-core", self.provider, self.node.vcpus)
    }

    /// Samples a concrete environment instance for one iteration, starting
    /// at the default start time (Monday 00:00).
    ///
    /// Each iteration gets fresh placement/interference randomness derived
    /// from `seed`, which is how the inter-iteration variability of Figure 10
    /// arises.
    #[must_use]
    pub fn instantiate(&self, seed: u64) -> EnvironmentInstance {
        self.instantiate_at(seed, StartTime::default())
    }

    /// [`Environment::instantiate`] at an explicit point of the simulated
    /// week. Under a flat tenancy curve the start time has no effect; under
    /// a diurnal curve it selects the intensity level the iteration runs at.
    #[must_use]
    pub fn instantiate_at(&self, seed: u64, start: StartTime) -> EnvironmentInstance {
        let interference = InterferenceState::with_temporal(
            self.profile.clone(),
            self.temporal.clone(),
            start,
            seed,
        );
        EnvironmentInstance {
            engine: ComputeEngine::new(self.node.clone(), interference),
            provider: self.provider,
        }
    }
}

/// One iteration's concrete environment: a compute engine with sampled
/// interference, owned by the experiment runner.
#[derive(Debug)]
pub struct EnvironmentInstance {
    /// The compute engine converting work into tick durations.
    pub engine: ComputeEngine,
    /// The provider this instance belongs to.
    pub provider: Provider,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::TickWork;

    #[test]
    fn presets_have_expected_nodes() {
        assert_eq!(Environment::aws_default().node.name, "t3.large");
        assert_eq!(Environment::azure_default().node.vcpus, 2);
        assert_eq!(Environment::das5(16).node.vcpus, 16);
        assert_eq!(Environment::das5(2).provider, Provider::Das5);
    }

    #[test]
    fn labels_are_readable() {
        assert_eq!(Environment::aws_default().label(), "AWS 2-core");
        assert_eq!(Environment::das5(16).label(), "DAS-5 16-core");
    }

    #[test]
    fn instances_differ_between_iterations_on_clouds() {
        let env = Environment::aws_default();
        let mut a = env.instantiate(1);
        let mut b = env.instantiate(2);
        let work = TickWork {
            main_thread: 60_000,
            offloadable: 0,
            ..TickWork::default()
        };
        let ta: f64 = (0..200)
            .map(|_| a.engine.execute_tick(work, 50.0).busy_ms)
            .sum();
        let tb: f64 = (0..200)
            .map(|_| b.engine.execute_tick(work, 50.0).busy_ms)
            .sum();
        assert!(
            (ta - tb).abs() > 1e-6,
            "different seeds should give different totals"
        );
    }

    #[test]
    fn das5_iterations_are_nearly_identical() {
        let env = Environment::das5(2);
        let work = TickWork {
            main_thread: 60_000,
            offloadable: 0,
            ..TickWork::default()
        };
        let mut totals = Vec::new();
        for seed in 0..5 {
            let mut inst = env.instantiate(seed);
            let total: f64 = (0..200)
                .map(|_| inst.engine.execute_tick(work, 50.0).busy_ms)
                .sum();
            totals.push(total);
        }
        let min = totals.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = totals.iter().cloned().fold(0.0, f64::max);
        assert!(
            max / min < 1.1,
            "self-hosted iterations should be stable ({min}..{max})"
        );
    }

    #[test]
    fn cloud_iterations_spread_more_than_das5() {
        let work = TickWork {
            main_thread: 80_000,
            offloadable: 0,
            ..TickWork::default()
        };
        let spread = |env: &Environment| {
            let mut totals = Vec::new();
            for seed in 0..10 {
                let mut inst = env.instantiate(seed * 7 + 1);
                let total: f64 = (0..300)
                    .map(|_| inst.engine.execute_tick(work, 50.0).busy_ms)
                    .sum();
                totals.push(total);
            }
            let min = totals.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = totals.iter().cloned().fold(0.0, f64::max);
            max - min
        };
        let das = spread(&Environment::das5(2));
        let aws = spread(&Environment::aws_default());
        assert!(
            aws > das * 2.0,
            "AWS spread ({aws}) should exceed DAS-5 spread ({das})"
        );
    }

    #[test]
    fn provider_display() {
        assert_eq!(Provider::Aws.to_string(), "AWS");
        assert_eq!(Provider::Azure.to_string(), "Azure");
        assert_eq!(Provider::Das5.to_string(), "DAS-5");
    }
}
