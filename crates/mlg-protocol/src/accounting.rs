//! Traffic accounting by packet category.
//!
//! Table 8 of the Meterstick paper reports, per server and workload, the
//! percentage of server-to-client messages that are entity-related and the
//! percentage of bytes they account for. [`TrafficAccountant`] collects
//! exactly those statistics as packets are emitted by the server.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::codec::clientbound_wire_size;
use crate::packet::ClientboundPacket;

/// Category of a clientbound packet for accounting purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TrafficCategory {
    /// Entity state updates (spawn, move, destroy).
    Entity,
    /// Terrain state updates (chunk data, block changes).
    Terrain,
    /// Chat messages.
    Chat,
    /// Everything else (keep-alives, time updates, login, disconnect).
    Other,
}

impl TrafficCategory {
    /// Classifies a clientbound packet.
    #[must_use]
    pub fn of(packet: &ClientboundPacket) -> Self {
        if packet.is_entity_related() {
            TrafficCategory::Entity
        } else if packet.is_terrain_related() {
            TrafficCategory::Terrain
        } else if matches!(packet, ClientboundPacket::Chat { .. }) {
            TrafficCategory::Chat
        } else {
            TrafficCategory::Other
        }
    }

    /// All categories in display order.
    #[must_use]
    pub fn all() -> [TrafficCategory; 4] {
        [
            TrafficCategory::Entity,
            TrafficCategory::Terrain,
            TrafficCategory::Chat,
            TrafficCategory::Other,
        ]
    }
}

impl std::fmt::Display for TrafficCategory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            TrafficCategory::Entity => "entity",
            TrafficCategory::Terrain => "terrain",
            TrafficCategory::Chat => "chat",
            TrafficCategory::Other => "other",
        };
        f.write_str(name)
    }
}

/// Per-category message and byte counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CategoryCounters {
    /// Number of messages in this category.
    pub messages: u64,
    /// Number of wire bytes in this category.
    pub bytes: u64,
}

/// Aggregated traffic summary over a whole experiment.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TrafficSummary {
    per_category: BTreeMap<TrafficCategory, CategoryCounters>,
}

impl TrafficSummary {
    /// Total messages across all categories.
    #[must_use]
    pub fn total_messages(&self) -> u64 {
        self.per_category.values().map(|c| c.messages).sum()
    }

    /// Total bytes across all categories.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.per_category.values().map(|c| c.bytes).sum()
    }

    /// Counters for one category.
    #[must_use]
    pub fn category(&self, category: TrafficCategory) -> CategoryCounters {
        self.per_category
            .get(&category)
            .copied()
            .unwrap_or_default()
    }

    /// Percentage of messages that belong to `category` (0–100). Returns 0
    /// when no messages were recorded.
    #[must_use]
    pub fn message_share_percent(&self, category: TrafficCategory) -> f64 {
        let total = self.total_messages();
        if total == 0 {
            return 0.0;
        }
        self.category(category).messages as f64 / total as f64 * 100.0
    }

    /// Percentage of bytes that belong to `category` (0–100). Returns 0 when
    /// no bytes were recorded.
    #[must_use]
    pub fn byte_share_percent(&self, category: TrafficCategory) -> f64 {
        let total = self.total_bytes();
        if total == 0 {
            return 0.0;
        }
        self.category(category).bytes as f64 / total as f64 * 100.0
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &TrafficSummary) {
        for (cat, counters) in &other.per_category {
            let entry = self.per_category.entry(*cat).or_default();
            entry.messages += counters.messages;
            entry.bytes += counters.bytes;
        }
    }
}

/// Records clientbound traffic as the server emits it.
#[derive(Debug, Clone, Default)]
pub struct TrafficAccountant {
    summary: TrafficSummary,
}

impl TrafficAccountant {
    /// Creates an empty accountant.
    #[must_use]
    pub fn new() -> Self {
        TrafficAccountant::default()
    }

    /// Records one clientbound packet sent to `recipients` clients.
    ///
    /// Broadcasts count once per recipient, matching how the paper measures
    /// "messages sent to the client from the server".
    pub fn record(&mut self, packet: &ClientboundPacket, recipients: u64) {
        let category = TrafficCategory::of(packet);
        let size = clientbound_wire_size(packet) as u64;
        let entry = self.summary.per_category.entry(category).or_default();
        entry.messages += recipients;
        entry.bytes += size * recipients;
    }

    /// Records a batch of clientbound packets each sent to `recipients`
    /// clients — the accounting half of the dissemination stage's batched
    /// broadcast. Exactly equivalent to calling [`TrafficAccountant::record`]
    /// once per packet; batching only avoids the per-packet call overhead on
    /// the hot dissemination path.
    pub fn record_many(&mut self, packets: &[ClientboundPacket], recipients: u64) {
        for packet in packets {
            self.record(packet, recipients);
        }
    }

    /// Returns the accumulated summary.
    #[must_use]
    pub fn summary(&self) -> &TrafficSummary {
        &self.summary
    }

    /// Consumes the accountant and returns the summary.
    #[must_use]
    pub fn into_summary(self) -> TrafficSummary {
        self.summary
    }

    /// Clears all counters.
    pub fn reset(&mut self) {
        self.summary = TrafficSummary::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlg_entity::{EntityId, Vec3};
    use mlg_world::{Block, BlockKind, BlockPos, ChunkPos};

    fn entity_move() -> ClientboundPacket {
        ClientboundPacket::EntityMove {
            id: EntityId(1),
            pos: Vec3::new(1.0, 2.0, 3.0),
        }
    }

    fn block_change() -> ClientboundPacket {
        ClientboundPacket::BlockChange {
            pos: BlockPos::new(1, 2, 3),
            block: Block::simple(BlockKind::Stone),
        }
    }

    #[test]
    fn classification_covers_all_categories() {
        assert_eq!(TrafficCategory::of(&entity_move()), TrafficCategory::Entity);
        assert_eq!(
            TrafficCategory::of(&block_change()),
            TrafficCategory::Terrain
        );
        assert_eq!(
            TrafficCategory::of(&ClientboundPacket::Chat {
                message: "x".into(),
                echo_of_ms: 0.0
            }),
            TrafficCategory::Chat
        );
        assert_eq!(
            TrafficCategory::of(&ClientboundPacket::KeepAlive { id: 1 }),
            TrafficCategory::Other
        );
    }

    #[test]
    fn shares_sum_to_one_hundred() {
        let mut acc = TrafficAccountant::new();
        acc.record(&entity_move(), 1);
        acc.record(&block_change(), 1);
        acc.record(&ClientboundPacket::KeepAlive { id: 1 }, 1);
        let s = acc.summary();
        let total: f64 = TrafficCategory::all()
            .iter()
            .map(|c| s.message_share_percent(*c))
            .sum();
        assert!((total - 100.0).abs() < 1e-9);
    }

    #[test]
    fn entity_messages_dominate_but_bytes_do_not() {
        // Reproduce the Table 8 pattern: many small entity packets vs a few
        // large chunk packets.
        let mut acc = TrafficAccountant::new();
        for _ in 0..97 {
            acc.record(&entity_move(), 1);
        }
        for _ in 0..3 {
            acc.record(
                &ClientboundPacket::ChunkData {
                    pos: ChunkPos::new(0, 0),
                    payload_bytes: 40_000,
                },
                1,
            );
        }
        let s = acc.summary();
        assert!(s.message_share_percent(TrafficCategory::Entity) > 90.0);
        assert!(s.byte_share_percent(TrafficCategory::Entity) < 20.0);
    }

    #[test]
    fn broadcasts_count_per_recipient() {
        let mut acc = TrafficAccountant::new();
        acc.record(&entity_move(), 25);
        assert_eq!(acc.summary().total_messages(), 25);
        assert_eq!(acc.summary().category(TrafficCategory::Entity).messages, 25);
    }

    #[test]
    fn empty_summary_has_zero_shares() {
        let s = TrafficSummary::default();
        assert_eq!(s.message_share_percent(TrafficCategory::Entity), 0.0);
        assert_eq!(s.byte_share_percent(TrafficCategory::Entity), 0.0);
        assert_eq!(s.total_messages(), 0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = TrafficAccountant::new();
        a.record(&entity_move(), 2);
        let mut b = TrafficAccountant::new();
        b.record(&block_change(), 3);
        let mut merged = a.into_summary();
        merged.merge(&b.into_summary());
        assert_eq!(merged.total_messages(), 5);
        assert_eq!(merged.category(TrafficCategory::Terrain).messages, 3);
    }

    #[test]
    fn record_many_matches_per_packet_recording() {
        let packets = vec![
            entity_move(),
            block_change(),
            ClientboundPacket::KeepAlive { id: 7 },
        ];
        let mut batched = TrafficAccountant::new();
        batched.record_many(&packets, 25);
        let mut one_by_one = TrafficAccountant::new();
        for packet in &packets {
            one_by_one.record(packet, 25);
        }
        assert_eq!(batched.summary(), one_by_one.summary());
    }

    #[test]
    fn reset_clears_counters() {
        let mut acc = TrafficAccountant::new();
        acc.record(&entity_move(), 1);
        acc.reset();
        assert_eq!(acc.summary().total_messages(), 0);
    }
}
