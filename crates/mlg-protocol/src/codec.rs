//! Binary encoding of packets.
//!
//! The encoding is a compact, varint-based format in the spirit of the
//! Minecraft protocol. Its purpose in Meterstick is to give every packet a
//! concrete wire size so network I/O metrics (Table 5) and the byte-share
//! column of Table 8 can be measured, and to exercise a realistic
//! encode/decode code path in the benchmark's hot loop.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use mlg_entity::{EntityId, Vec3};
use mlg_world::{Block, BlockKind, BlockPos, ChunkPos};

use crate::packet::{ClientboundPacket, ServerboundPacket};

/// Errors produced while decoding a packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended before the packet was complete.
    UnexpectedEnd,
    /// The packet id byte is not a known packet type.
    UnknownPacketId(u8),
    /// A varint was longer than the maximum allowed width.
    VarintTooLong,
    /// A string field was not valid UTF-8.
    InvalidString,
    /// A block kind id did not map to a known kind.
    UnknownBlockKind(u16),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::UnexpectedEnd => write!(f, "unexpected end of packet data"),
            DecodeError::UnknownPacketId(id) => write!(f, "unknown packet id {id:#04x}"),
            DecodeError::VarintTooLong => write!(f, "varint exceeds maximum width"),
            DecodeError::InvalidString => write!(f, "string field is not valid UTF-8"),
            DecodeError::UnknownBlockKind(id) => write!(f, "unknown block kind id {id}"),
        }
    }
}

impl std::error::Error for DecodeError {}

fn put_varint(buf: &mut BytesMut, mut value: u64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

fn get_varint(buf: &mut Bytes) -> Result<u64, DecodeError> {
    let mut value: u64 = 0;
    for shift in 0..10 {
        if !buf.has_remaining() {
            return Err(DecodeError::UnexpectedEnd);
        }
        let byte = buf.get_u8();
        value |= u64::from(byte & 0x7F) << (shift * 7);
        if byte & 0x80 == 0 {
            return Ok(value);
        }
    }
    Err(DecodeError::VarintTooLong)
}

fn put_string(buf: &mut BytesMut, s: &str) {
    put_varint(buf, s.len() as u64);
    buf.put_slice(s.as_bytes());
}

fn get_string(buf: &mut Bytes) -> Result<String, DecodeError> {
    let len = get_varint(buf)? as usize;
    if buf.remaining() < len {
        return Err(DecodeError::UnexpectedEnd);
    }
    let raw = buf.split_to(len);
    String::from_utf8(raw.to_vec()).map_err(|_| DecodeError::InvalidString)
}

fn put_block_pos(buf: &mut BytesMut, pos: BlockPos) {
    buf.put_i32(pos.x);
    buf.put_i32(pos.y);
    buf.put_i32(pos.z);
}

fn get_block_pos(buf: &mut Bytes) -> Result<BlockPos, DecodeError> {
    if buf.remaining() < 12 {
        return Err(DecodeError::UnexpectedEnd);
    }
    Ok(BlockPos::new(buf.get_i32(), buf.get_i32(), buf.get_i32()))
}

fn put_vec3(buf: &mut BytesMut, v: Vec3) {
    buf.put_f64(v.x);
    buf.put_f64(v.y);
    buf.put_f64(v.z);
}

fn get_vec3(buf: &mut Bytes) -> Result<Vec3, DecodeError> {
    if buf.remaining() < 24 {
        return Err(DecodeError::UnexpectedEnd);
    }
    Ok(Vec3::new(buf.get_f64(), buf.get_f64(), buf.get_f64()))
}

fn put_block(buf: &mut BytesMut, block: Block) {
    buf.put_u16(block.kind().protocol_id());
    buf.put_u8(block.state());
}

fn get_block(buf: &mut Bytes) -> Result<Block, DecodeError> {
    if buf.remaining() < 3 {
        return Err(DecodeError::UnexpectedEnd);
    }
    let kind_id = buf.get_u16();
    let state = buf.get_u8();
    let kind =
        BlockKind::from_protocol_id(kind_id).ok_or(DecodeError::UnknownBlockKind(kind_id))?;
    Ok(Block::with_state(kind, state))
}

/// Encodes a serverbound packet into bytes.
#[must_use]
pub fn encode_serverbound(packet: &ServerboundPacket) -> Bytes {
    let mut buf = BytesMut::with_capacity(64);
    buf.put_u8(packet.packet_id());
    match packet {
        ServerboundPacket::Login { username } => put_string(&mut buf, username),
        ServerboundPacket::PlayerMove { pos, on_ground } => {
            put_vec3(&mut buf, *pos);
            buf.put_u8(u8::from(*on_ground));
        }
        ServerboundPacket::BlockPlace { pos, block } => {
            put_block_pos(&mut buf, *pos);
            put_block(&mut buf, *block);
        }
        ServerboundPacket::BlockDig { pos } => put_block_pos(&mut buf, *pos),
        ServerboundPacket::Chat {
            message,
            sent_at_ms,
        } => {
            put_string(&mut buf, message);
            buf.put_f64(*sent_at_ms);
        }
        ServerboundPacket::KeepAlive { id } => put_varint(&mut buf, *id),
        ServerboundPacket::Disconnect => {}
    }
    buf.freeze()
}

/// Decodes a serverbound packet from bytes.
///
/// # Errors
///
/// Returns a [`DecodeError`] when the data is truncated or malformed.
pub fn decode_serverbound(mut data: Bytes) -> Result<ServerboundPacket, DecodeError> {
    if !data.has_remaining() {
        return Err(DecodeError::UnexpectedEnd);
    }
    let id = data.get_u8();
    match id {
        0x00 => Ok(ServerboundPacket::Login {
            username: get_string(&mut data)?,
        }),
        0x01 => Ok(ServerboundPacket::PlayerMove {
            pos: get_vec3(&mut data)?,
            on_ground: {
                if !data.has_remaining() {
                    return Err(DecodeError::UnexpectedEnd);
                }
                data.get_u8() != 0
            },
        }),
        0x02 => Ok(ServerboundPacket::BlockPlace {
            pos: get_block_pos(&mut data)?,
            block: get_block(&mut data)?,
        }),
        0x03 => Ok(ServerboundPacket::BlockDig {
            pos: get_block_pos(&mut data)?,
        }),
        0x04 => Ok(ServerboundPacket::Chat {
            message: get_string(&mut data)?,
            sent_at_ms: {
                if data.remaining() < 8 {
                    return Err(DecodeError::UnexpectedEnd);
                }
                data.get_f64()
            },
        }),
        0x05 => Ok(ServerboundPacket::KeepAlive {
            id: get_varint(&mut data)?,
        }),
        0x06 => Ok(ServerboundPacket::Disconnect),
        other => Err(DecodeError::UnknownPacketId(other)),
    }
}

/// Encodes a clientbound packet into bytes.
#[must_use]
pub fn encode_clientbound(packet: &ClientboundPacket) -> Bytes {
    let mut buf = BytesMut::with_capacity(64);
    buf.put_u8(packet.packet_id());
    match packet {
        ClientboundPacket::LoginAccepted { player_id, spawn } => {
            put_varint(&mut buf, player_id.0);
            put_vec3(&mut buf, *spawn);
        }
        ClientboundPacket::ChunkData { pos, payload_bytes } => {
            buf.put_i32(pos.x);
            buf.put_i32(pos.z);
            buf.put_u32(*payload_bytes);
            // The payload itself is represented by its size: the benchmark
            // accounts for the bytes without materializing them.
        }
        ClientboundPacket::BlockChange { pos, block } => {
            put_block_pos(&mut buf, *pos);
            put_block(&mut buf, *block);
        }
        ClientboundPacket::EntitySpawn { id, kind_id, pos } => {
            put_varint(&mut buf, id.0);
            buf.put_u16(*kind_id);
            put_vec3(&mut buf, *pos);
        }
        ClientboundPacket::EntityMove { id, pos } => {
            put_varint(&mut buf, id.0);
            put_vec3(&mut buf, *pos);
        }
        ClientboundPacket::EntityDestroy { id } => put_varint(&mut buf, id.0),
        ClientboundPacket::Chat {
            message,
            echo_of_ms,
        } => {
            put_string(&mut buf, message);
            buf.put_f64(*echo_of_ms);
        }
        ClientboundPacket::KeepAlive { id } => put_varint(&mut buf, *id),
        ClientboundPacket::TimeUpdate { world_age_ticks } => put_varint(&mut buf, *world_age_ticks),
        ClientboundPacket::Disconnect { reason } => put_string(&mut buf, reason),
    }
    buf.freeze()
}

/// Decodes a clientbound packet from bytes.
///
/// # Errors
///
/// Returns a [`DecodeError`] when the data is truncated or malformed.
pub fn decode_clientbound(mut data: Bytes) -> Result<ClientboundPacket, DecodeError> {
    if !data.has_remaining() {
        return Err(DecodeError::UnexpectedEnd);
    }
    let id = data.get_u8();
    match id {
        0x80 => Ok(ClientboundPacket::LoginAccepted {
            player_id: EntityId(get_varint(&mut data)?),
            spawn: get_vec3(&mut data)?,
        }),
        0x81 => {
            if data.remaining() < 12 {
                return Err(DecodeError::UnexpectedEnd);
            }
            Ok(ClientboundPacket::ChunkData {
                pos: ChunkPos::new(data.get_i32(), data.get_i32()),
                payload_bytes: data.get_u32(),
            })
        }
        0x82 => Ok(ClientboundPacket::BlockChange {
            pos: get_block_pos(&mut data)?,
            block: get_block(&mut data)?,
        }),
        0x83 => Ok(ClientboundPacket::EntitySpawn {
            id: EntityId(get_varint(&mut data)?),
            kind_id: {
                if data.remaining() < 2 {
                    return Err(DecodeError::UnexpectedEnd);
                }
                data.get_u16()
            },
            pos: get_vec3(&mut data)?,
        }),
        0x84 => Ok(ClientboundPacket::EntityMove {
            id: EntityId(get_varint(&mut data)?),
            pos: get_vec3(&mut data)?,
        }),
        0x85 => Ok(ClientboundPacket::EntityDestroy {
            id: EntityId(get_varint(&mut data)?),
        }),
        0x86 => Ok(ClientboundPacket::Chat {
            message: get_string(&mut data)?,
            echo_of_ms: {
                if data.remaining() < 8 {
                    return Err(DecodeError::UnexpectedEnd);
                }
                data.get_f64()
            },
        }),
        0x87 => Ok(ClientboundPacket::KeepAlive {
            id: get_varint(&mut data)?,
        }),
        0x88 => Ok(ClientboundPacket::TimeUpdate {
            world_age_ticks: get_varint(&mut data)?,
        }),
        0x89 => Ok(ClientboundPacket::Disconnect {
            reason: get_string(&mut data)?,
        }),
        other => Err(DecodeError::UnknownPacketId(other)),
    }
}

/// Returns the wire size in bytes that a clientbound packet occupies,
/// including the notional chunk payload for [`ClientboundPacket::ChunkData`].
#[must_use]
pub fn clientbound_wire_size(packet: &ClientboundPacket) -> usize {
    let header = encode_clientbound(packet).len();
    match packet {
        ClientboundPacket::ChunkData { payload_bytes, .. } => header + *payload_bytes as usize,
        _ => header,
    }
}

/// Returns the wire size in bytes of a serverbound packet.
#[must_use]
pub fn serverbound_wire_size(packet: &ServerboundPacket) -> usize {
    encode_serverbound(packet).len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_serverbound() -> Vec<ServerboundPacket> {
        vec![
            ServerboundPacket::Login {
                username: "meterstick-bot-01".into(),
            },
            ServerboundPacket::PlayerMove {
                pos: Vec3::new(12.5, 64.0, -3.25),
                on_ground: true,
            },
            ServerboundPacket::BlockPlace {
                pos: BlockPos::new(-10, 64, 200),
                block: Block::with_state(BlockKind::RedstoneDust, 12),
            },
            ServerboundPacket::BlockDig {
                pos: BlockPos::new(1, 2, 3),
            },
            ServerboundPacket::Chat {
                message: "ping".into(),
                sent_at_ms: 1234.5,
            },
            ServerboundPacket::KeepAlive { id: 987_654_321 },
            ServerboundPacket::Disconnect,
        ]
    }

    fn all_clientbound() -> Vec<ClientboundPacket> {
        vec![
            ClientboundPacket::LoginAccepted {
                player_id: EntityId(42),
                spawn: Vec3::new(0.5, 61.0, 0.5),
            },
            ClientboundPacket::ChunkData {
                pos: ChunkPos::new(-2, 7),
                payload_bytes: 4_000,
            },
            ClientboundPacket::BlockChange {
                pos: BlockPos::new(5, 61, 5),
                block: Block::simple(BlockKind::Tnt),
            },
            ClientboundPacket::EntitySpawn {
                id: EntityId(100),
                kind_id: 3,
                pos: Vec3::new(1.0, 2.0, 3.0),
            },
            ClientboundPacket::EntityMove {
                id: EntityId(100),
                pos: Vec3::new(1.5, 2.0, 3.0),
            },
            ClientboundPacket::EntityDestroy { id: EntityId(100) },
            ClientboundPacket::Chat {
                message: "ping".into(),
                echo_of_ms: 1234.5,
            },
            ClientboundPacket::KeepAlive { id: 7 },
            ClientboundPacket::TimeUpdate {
                world_age_ticks: 123_456,
            },
            ClientboundPacket::Disconnect {
                reason: "timed out".into(),
            },
        ]
    }

    #[test]
    fn serverbound_roundtrip() {
        for packet in all_serverbound() {
            let encoded = encode_serverbound(&packet);
            let decoded = decode_serverbound(encoded).expect("decode");
            assert_eq!(decoded, packet);
        }
    }

    #[test]
    fn clientbound_roundtrip() {
        for packet in all_clientbound() {
            let encoded = encode_clientbound(&packet);
            let decoded = decode_clientbound(encoded).expect("decode");
            assert_eq!(decoded, packet);
        }
    }

    #[test]
    fn empty_buffer_is_an_error() {
        assert_eq!(
            decode_serverbound(Bytes::new()),
            Err(DecodeError::UnexpectedEnd)
        );
        assert_eq!(
            decode_clientbound(Bytes::new()),
            Err(DecodeError::UnexpectedEnd)
        );
    }

    #[test]
    fn unknown_packet_id_is_an_error() {
        let data = Bytes::from_static(&[0x7F, 0, 0]);
        assert_eq!(
            decode_serverbound(data.clone()),
            Err(DecodeError::UnknownPacketId(0x7F))
        );
        assert_eq!(
            decode_clientbound(Bytes::from_static(&[0x10])),
            Err(DecodeError::UnknownPacketId(0x10))
        );
    }

    #[test]
    fn truncated_packet_is_an_error() {
        let full = encode_clientbound(&ClientboundPacket::EntityMove {
            id: EntityId(9),
            pos: Vec3::new(1.0, 2.0, 3.0),
        });
        let truncated = full.slice(0..full.len() - 5);
        assert_eq!(
            decode_clientbound(truncated),
            Err(DecodeError::UnexpectedEnd)
        );
    }

    #[test]
    fn chunk_data_wire_size_includes_payload() {
        let packet = ClientboundPacket::ChunkData {
            pos: ChunkPos::new(0, 0),
            payload_bytes: 10_000,
        };
        assert!(clientbound_wire_size(&packet) > 10_000);
        let small = ClientboundPacket::KeepAlive { id: 1 };
        assert!(clientbound_wire_size(&small) < 16);
    }

    #[test]
    fn entity_move_is_smaller_than_chunk_data() {
        let mv = ClientboundPacket::EntityMove {
            id: EntityId(1),
            pos: Vec3::ZERO,
        };
        let chunk = ClientboundPacket::ChunkData {
            pos: ChunkPos::new(0, 0),
            payload_bytes: 4_096,
        };
        assert!(clientbound_wire_size(&mv) < clientbound_wire_size(&chunk));
    }

    #[test]
    fn varint_roundtrip_extremes() {
        for value in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = BytesMut::new();
            put_varint(&mut buf, value);
            let mut bytes = buf.freeze();
            assert_eq!(get_varint(&mut bytes).unwrap(), value);
        }
    }

    #[test]
    fn unknown_block_kind_is_an_error() {
        // Hand-craft a BlockChange with an out-of-range block kind id.
        let mut buf = BytesMut::new();
        buf.put_u8(0x82);
        buf.put_i32(0);
        buf.put_i32(0);
        buf.put_i32(0);
        buf.put_u16(999);
        buf.put_u8(0);
        assert_eq!(
            decode_clientbound(buf.freeze()),
            Err(DecodeError::UnknownBlockKind(999))
        );
    }
}
