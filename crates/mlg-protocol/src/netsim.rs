//! Simulated network links operating on virtual time.
//!
//! The Meterstick deployment places player-emulation nodes and the server
//! node in the same data centre (or deliberately apart, Section 3.4). The
//! reproduction replaces the physical network with an in-process link that
//! delays each packet by a configurable base latency plus seeded jitter. All
//! timestamps are *virtual milliseconds* supplied by the caller, so the link
//! composes with the virtual-time engine in `cloud-sim`.

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Latency configuration of a link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkConfig {
    /// One-way base latency in milliseconds.
    pub base_latency_ms: f64,
    /// Maximum additional random jitter in milliseconds (uniform).
    pub jitter_ms: f64,
}

impl LinkConfig {
    /// A same-datacenter link: sub-millisecond latency, small jitter.
    #[must_use]
    pub fn datacenter() -> Self {
        LinkConfig {
            base_latency_ms: 0.5,
            jitter_ms: 0.3,
        }
    }

    /// A home-network-to-cloud link as in Figure 2 of the paper.
    #[must_use]
    pub fn residential() -> Self {
        LinkConfig {
            base_latency_ms: 15.0,
            jitter_ms: 5.0,
        }
    }

    /// A loopback link with no delay (bots colocated with the server).
    #[must_use]
    pub fn loopback() -> Self {
        LinkConfig {
            base_latency_ms: 0.0,
            jitter_ms: 0.0,
        }
    }
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig::datacenter()
    }
}

#[derive(Debug, Clone)]
struct InFlight<T> {
    deliver_at_ms: f64,
    payload: T,
    size_bytes: usize,
}

/// A unidirectional, latency-delayed, in-order packet queue.
///
/// Packets are submitted with [`NetworkLink::send`] at a virtual timestamp
/// and become available from [`NetworkLink::poll`] once the virtual clock
/// passes their delivery time. Delivery order is FIFO even when jitter would
/// reorder individual delays (TCP-like in-order delivery, matching the MLG
/// protocol's use of a stream transport).
#[derive(Debug)]
pub struct NetworkLink<T> {
    config: LinkConfig,
    queue: VecDeque<InFlight<T>>,
    rng: StdRng,
    last_delivery_ms: f64,
    /// Total packets ever sent through the link.
    pub packets_sent: u64,
    /// Total payload bytes ever sent through the link.
    pub bytes_sent: u64,
}

impl<T> NetworkLink<T> {
    /// Creates a link with the given latency configuration and jitter seed.
    #[must_use]
    pub fn new(config: LinkConfig, seed: u64) -> Self {
        NetworkLink {
            config,
            queue: VecDeque::new(),
            rng: StdRng::seed_from_u64(seed),
            last_delivery_ms: 0.0,
            packets_sent: 0,
            bytes_sent: 0,
        }
    }

    /// Returns the link configuration.
    #[must_use]
    pub fn config(&self) -> LinkConfig {
        self.config
    }

    /// Enqueues a payload of `size_bytes` at virtual time `now_ms`.
    pub fn send(&mut self, now_ms: f64, payload: T, size_bytes: usize) {
        let jitter = if self.config.jitter_ms > 0.0 {
            self.rng.gen_range(0.0..self.config.jitter_ms)
        } else {
            0.0
        };
        // In-order delivery: never deliver before a previously sent packet.
        let deliver_at = (now_ms + self.config.base_latency_ms + jitter).max(self.last_delivery_ms);
        self.last_delivery_ms = deliver_at;
        self.queue.push_back(InFlight {
            deliver_at_ms: deliver_at,
            payload,
            size_bytes,
        });
        self.packets_sent += 1;
        self.bytes_sent += size_bytes as u64;
    }

    /// Returns every payload whose delivery time has passed at `now_ms`.
    pub fn poll(&mut self, now_ms: f64) -> Vec<T> {
        let mut delivered = Vec::new();
        while let Some(front) = self.queue.front() {
            if front.deliver_at_ms <= now_ms {
                let item = self.queue.pop_front().expect("front exists");
                delivered.push(item.payload);
            } else {
                break;
            }
        }
        delivered
    }

    /// Number of packets currently in flight.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }

    /// Total bytes currently in flight (queued but not yet delivered).
    #[must_use]
    pub fn bytes_in_flight(&self) -> u64 {
        self.queue.iter().map(|p| p.size_bytes as u64).sum()
    }

    /// Drops every in-flight packet (connection reset).
    pub fn reset(&mut self) {
        self.queue.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packets_arrive_after_base_latency() {
        let mut link: NetworkLink<u32> = NetworkLink::new(
            LinkConfig {
                base_latency_ms: 10.0,
                jitter_ms: 0.0,
            },
            1,
        );
        link.send(0.0, 42, 8);
        assert!(link.poll(5.0).is_empty());
        assert_eq!(link.poll(10.0), vec![42]);
        assert_eq!(link.in_flight(), 0);
    }

    #[test]
    fn loopback_delivers_immediately() {
        let mut link: NetworkLink<&str> = NetworkLink::new(LinkConfig::loopback(), 1);
        link.send(100.0, "hello", 5);
        assert_eq!(link.poll(100.0), vec!["hello"]);
    }

    #[test]
    fn delivery_is_in_order_despite_jitter() {
        let mut link: NetworkLink<u32> = NetworkLink::new(
            LinkConfig {
                base_latency_ms: 1.0,
                jitter_ms: 20.0,
            },
            7,
        );
        for i in 0..50 {
            link.send(f64::from(i), i, 4);
        }
        let delivered = link.poll(10_000.0);
        assert_eq!(delivered.len(), 50);
        let mut sorted = delivered.clone();
        sorted.sort_unstable();
        assert_eq!(delivered, sorted, "stream transport must preserve order");
    }

    #[test]
    fn partial_delivery_respects_timestamps() {
        let mut link: NetworkLink<u32> = NetworkLink::new(
            LinkConfig {
                base_latency_ms: 10.0,
                jitter_ms: 0.0,
            },
            1,
        );
        link.send(0.0, 1, 4);
        link.send(50.0, 2, 4);
        assert_eq!(link.poll(20.0), vec![1]);
        assert_eq!(link.in_flight(), 1);
        assert_eq!(link.poll(60.0), vec![2]);
    }

    #[test]
    fn accounting_tracks_packets_and_bytes() {
        let mut link: NetworkLink<u8> = NetworkLink::new(LinkConfig::datacenter(), 9);
        link.send(0.0, 1, 100);
        link.send(0.0, 2, 200);
        assert_eq!(link.packets_sent, 2);
        assert_eq!(link.bytes_sent, 300);
        assert_eq!(link.bytes_in_flight(), 300);
        link.poll(1_000.0);
        assert_eq!(link.bytes_in_flight(), 0);
        // Cumulative counters survive delivery.
        assert_eq!(link.bytes_sent, 300);
    }

    #[test]
    fn reset_drops_in_flight_packets() {
        let mut link: NetworkLink<u8> = NetworkLink::new(LinkConfig::residential(), 9);
        link.send(0.0, 1, 10);
        link.reset();
        assert!(link.poll(1_000.0).is_empty());
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let cfg = LinkConfig {
            base_latency_ms: 5.0,
            jitter_ms: 10.0,
        };
        let mut a: NetworkLink<u32> = NetworkLink::new(cfg, 1234);
        let mut b: NetworkLink<u32> = NetworkLink::new(cfg, 1234);
        for i in 0..20 {
            a.send(f64::from(i) * 3.0, i, 8);
            b.send(f64::from(i) * 3.0, i, 8);
        }
        // Poll at staggered times; deliveries must match exactly.
        for t in [10.0, 30.0, 100.0] {
            assert_eq!(a.poll(t), b.poll(t));
        }
    }
}
