//! Packet types exchanged between MLG clients and the server.

use serde::{Deserialize, Serialize};

use mlg_entity::{EntityId, Vec3};
use mlg_world::{Block, BlockPos, ChunkPos};

/// Direction a packet travels in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PacketDirection {
    /// From a client to the server (player actions).
    Serverbound,
    /// From the server to one or more clients (state updates).
    Clientbound,
}

/// Packets sent by clients to the server (player actions).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ServerboundPacket {
    /// Initial login/handshake carrying the player's name.
    Login {
        /// Display name of the joining player.
        username: String,
    },
    /// The player moved to a new position.
    PlayerMove {
        /// New position of the player's feet.
        pos: Vec3,
        /// Whether the player is on the ground.
        on_ground: bool,
    },
    /// The player placed a block.
    BlockPlace {
        /// Where the block is placed.
        pos: BlockPos,
        /// The block being placed.
        block: Block,
    },
    /// The player broke a block.
    BlockDig {
        /// Which block is being broken.
        pos: BlockPos,
    },
    /// The player sent a chat message. Meterstick uses the chat echo to
    /// measure game response time (Section 3.5.1).
    Chat {
        /// Message text.
        message: String,
        /// Client-side timestamp (virtual milliseconds) used to compute the
        /// round-trip response time when the echo returns.
        sent_at_ms: f64,
    },
    /// Keep-alive response.
    KeepAlive {
        /// Identifier echoed from the server's keep-alive request.
        id: u64,
    },
    /// Orderly disconnect.
    Disconnect,
}

/// Packets sent by the server to clients (state updates).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ClientboundPacket {
    /// Login accepted; carries the player's entity id and spawn position.
    LoginAccepted {
        /// Entity id assigned to the player.
        player_id: EntityId,
        /// Initial spawn position.
        spawn: Vec3,
    },
    /// Full chunk payload sent when a chunk enters the player's view.
    ChunkData {
        /// Which chunk.
        pos: ChunkPos,
        /// Approximate serialized size of the chunk payload in bytes.
        payload_bytes: u32,
    },
    /// A single block changed.
    BlockChange {
        /// Position of the change.
        pos: BlockPos,
        /// New block value.
        block: Block,
    },
    /// An entity was spawned.
    EntitySpawn {
        /// Id of the new entity.
        id: EntityId,
        /// Protocol identifier of the entity kind.
        kind_id: u16,
        /// Spawn position.
        pos: Vec3,
    },
    /// An entity moved.
    EntityMove {
        /// Which entity moved.
        id: EntityId,
        /// Its new position.
        pos: Vec3,
    },
    /// An entity was removed.
    EntityDestroy {
        /// Which entity was removed.
        id: EntityId,
    },
    /// A chat message broadcast to players (including the sender, which is
    /// how the response-time probe observes its own message again).
    Chat {
        /// Message text.
        message: String,
        /// The client timestamp copied from the originating serverbound chat
        /// packet, so the prober can compute the round trip.
        echo_of_ms: f64,
    },
    /// Keep-alive request.
    KeepAlive {
        /// Identifier the client must echo.
        id: u64,
    },
    /// Current game time (sent once per second in real MLGs).
    TimeUpdate {
        /// Age of the world, in ticks.
        world_age_ticks: u64,
    },
    /// The server is disconnecting the client (e.g. timeout while overloaded).
    Disconnect {
        /// Human-readable reason.
        reason: String,
    },
}

impl ServerboundPacket {
    /// A stable numeric id for the packet type.
    #[must_use]
    pub fn packet_id(&self) -> u8 {
        match self {
            ServerboundPacket::Login { .. } => 0x00,
            ServerboundPacket::PlayerMove { .. } => 0x01,
            ServerboundPacket::BlockPlace { .. } => 0x02,
            ServerboundPacket::BlockDig { .. } => 0x03,
            ServerboundPacket::Chat { .. } => 0x04,
            ServerboundPacket::KeepAlive { .. } => 0x05,
            ServerboundPacket::Disconnect => 0x06,
        }
    }

    /// Returns `true` for packets that represent terrain modification.
    #[must_use]
    pub fn is_terrain_related(&self) -> bool {
        matches!(
            self,
            ServerboundPacket::BlockPlace { .. } | ServerboundPacket::BlockDig { .. }
        )
    }
}

impl ClientboundPacket {
    /// A stable numeric id for the packet type.
    #[must_use]
    pub fn packet_id(&self) -> u8 {
        match self {
            ClientboundPacket::LoginAccepted { .. } => 0x80,
            ClientboundPacket::ChunkData { .. } => 0x81,
            ClientboundPacket::BlockChange { .. } => 0x82,
            ClientboundPacket::EntitySpawn { .. } => 0x83,
            ClientboundPacket::EntityMove { .. } => 0x84,
            ClientboundPacket::EntityDestroy { .. } => 0x85,
            ClientboundPacket::Chat { .. } => 0x86,
            ClientboundPacket::KeepAlive { .. } => 0x87,
            ClientboundPacket::TimeUpdate { .. } => 0x88,
            ClientboundPacket::Disconnect { .. } => 0x89,
        }
    }

    /// Returns `true` for packets carrying entity state updates — the
    /// classification used by Table 8 of the paper.
    #[must_use]
    pub fn is_entity_related(&self) -> bool {
        matches!(
            self,
            ClientboundPacket::EntitySpawn { .. }
                | ClientboundPacket::EntityMove { .. }
                | ClientboundPacket::EntityDestroy { .. }
        )
    }

    /// Returns `true` for packets carrying terrain state updates.
    #[must_use]
    pub fn is_terrain_related(&self) -> bool {
        matches!(
            self,
            ClientboundPacket::ChunkData { .. } | ClientboundPacket::BlockChange { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlg_world::BlockKind;

    #[test]
    fn entity_classification_matches_table8_definition() {
        assert!(ClientboundPacket::EntityMove {
            id: EntityId(1),
            pos: Vec3::ZERO
        }
        .is_entity_related());
        assert!(ClientboundPacket::EntitySpawn {
            id: EntityId(1),
            kind_id: 0,
            pos: Vec3::ZERO
        }
        .is_entity_related());
        assert!(ClientboundPacket::EntityDestroy { id: EntityId(1) }.is_entity_related());
        assert!(!ClientboundPacket::BlockChange {
            pos: BlockPos::ORIGIN,
            block: Block::simple(BlockKind::Stone)
        }
        .is_entity_related());
        assert!(!ClientboundPacket::KeepAlive { id: 3 }.is_entity_related());
    }

    #[test]
    fn terrain_classification() {
        assert!(ClientboundPacket::ChunkData {
            pos: ChunkPos::new(0, 0),
            payload_bytes: 100
        }
        .is_terrain_related());
        assert!(ServerboundPacket::BlockDig {
            pos: BlockPos::ORIGIN
        }
        .is_terrain_related());
        assert!(!ServerboundPacket::Disconnect.is_terrain_related());
    }

    #[test]
    fn packet_ids_are_unique() {
        let serverbound = [
            ServerboundPacket::Login {
                username: "a".into(),
            }
            .packet_id(),
            ServerboundPacket::PlayerMove {
                pos: Vec3::ZERO,
                on_ground: true,
            }
            .packet_id(),
            ServerboundPacket::BlockPlace {
                pos: BlockPos::ORIGIN,
                block: Block::AIR,
            }
            .packet_id(),
            ServerboundPacket::BlockDig {
                pos: BlockPos::ORIGIN,
            }
            .packet_id(),
            ServerboundPacket::Chat {
                message: String::new(),
                sent_at_ms: 0.0,
            }
            .packet_id(),
            ServerboundPacket::KeepAlive { id: 0 }.packet_id(),
            ServerboundPacket::Disconnect.packet_id(),
        ];
        let unique: std::collections::HashSet<_> = serverbound.iter().collect();
        assert_eq!(unique.len(), serverbound.len());
    }
}
