//! Client–server protocol for the Meterstick MLG simulator.
//!
//! The paper's reference architecture (Figure 2) connects clients to the
//! server through an implementation-specific protocol carrying player actions
//! upstream and state updates downstream. This crate provides:
//!
//! * the packet vocabulary ([`packet`]) with the entity/terrain/chat
//!   classification needed for Table 8 of the paper (share of entity-related
//!   messages and bytes);
//! * a compact binary encoding ([`codec`]) so every packet has a concrete
//!   wire size;
//! * a simulated network link ([`netsim`]) with latency and jitter operating
//!   on virtual time, used for the chat-echo response-time measurement
//!   (Figures 1 and 7);
//! * per-category traffic accounting ([`accounting`]).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod accounting;
pub mod codec;
pub mod netsim;
pub mod packet;

pub use accounting::{TrafficAccountant, TrafficCategory, TrafficSummary};
pub use netsim::{LinkConfig, NetworkLink};
pub use packet::{ClientboundPacket, PacketDirection, ServerboundPacket};
