//! A single emulated player.

use rand::rngs::StdRng;
use rand::SeedableRng;

use mlg_entity::Vec3;
use mlg_protocol::ServerboundPacket;
use mlg_server::PlayerId;
use mlg_world::{Block, BlockKind, BlockPos};

use crate::behavior::Behavior;

/// Interval, in ticks, between a builder bot's block actions.
pub const BUILD_INTERVAL_TICKS: u64 = 4;

/// One emulated player: its behaviour, position and chat-probing schedule.
#[derive(Debug)]
pub struct Bot {
    /// Display name sent at login.
    pub name: String,
    /// The server-side player id assigned at connection time.
    pub player_id: Option<PlayerId>,
    /// Current (client-side) position.
    pub pos: Vec3,
    /// Movement behaviour.
    pub behavior: Behavior,
    /// Interval between chat probes, in ticks. 0 disables probing.
    pub probe_interval_ticks: u64,
    rng: StdRng,
    /// Separate stream for builder block-action offsets, so enabling
    /// building never perturbs the movement RNG: a builder bot walks
    /// exactly like the plain bot it was derived from.
    build_rng: StdRng,
    ticks_seen: u64,
}

impl Bot {
    /// Creates a bot. Probing is disabled by default; use
    /// [`Bot::with_probe_interval`] for the response-time prober.
    #[must_use]
    pub fn new(name: impl Into<String>, pos: Vec3, behavior: Behavior, seed: u64) -> Self {
        Bot {
            name: name.into(),
            player_id: None,
            pos,
            behavior,
            probe_interval_ticks: 0,
            rng: StdRng::seed_from_u64(seed),
            build_rng: StdRng::seed_from_u64(seed ^ 0xB11D),
            ticks_seen: 0,
        }
    }

    /// Enables chat probing every `interval_ticks` ticks.
    #[must_use]
    pub fn with_probe_interval(mut self, interval_ticks: u64) -> Self {
        self.probe_interval_ticks = interval_ticks;
        self
    }

    /// Returns `true` if this bot sends response-time probes.
    #[must_use]
    pub fn is_prober(&self) -> bool {
        self.probe_interval_ticks > 0
    }

    /// Produces this bot's actions for one client tick at virtual time
    /// `now_ms`.
    pub fn act(&mut self, now_ms: f64) -> Vec<ServerboundPacket> {
        self.ticks_seen += 1;
        let mut packets = Vec::new();
        if let Some(next) = self.behavior.next_position(self.pos, &mut self.rng) {
            self.pos = next;
            packets.push(ServerboundPacket::PlayerMove {
                pos: next,
                on_ground: true,
            });
        }
        if self.behavior.builds() && self.ticks_seen.is_multiple_of(BUILD_INTERVAL_TICKS) {
            use rand::Rng;
            // A block action near the bot: place a plank at chest height
            // (usually air) or dig whatever sits at ground level nearby.
            // Both go through the server's normal update path, so terrain
            // simulation and dissemination react to the crowd's edits.
            let dx = self.build_rng.gen_range(-3..=3);
            let dz = self.build_rng.gen_range(-3..=3);
            let feet = self.pos.block_pos();
            let pos = BlockPos::new(feet.x + dx, feet.y, feet.z + dz);
            if self.ticks_seen.is_multiple_of(2 * BUILD_INTERVAL_TICKS) {
                packets.push(ServerboundPacket::BlockPlace {
                    pos: pos.up(),
                    block: Block::simple(BlockKind::Planks),
                });
            } else {
                packets.push(ServerboundPacket::BlockDig { pos });
            }
        }
        if self.is_prober() && self.ticks_seen.is_multiple_of(self.probe_interval_ticks) {
            packets.push(ServerboundPacket::Chat {
                message: format!("probe-{}", self.ticks_seen),
                sent_at_ms: now_ms,
            });
        }
        packets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_bot_sends_nothing_without_probing() {
        let mut bot = Bot::new("observer", Vec3::new(0.5, 61.0, 0.5), Behavior::Idle, 1);
        for tick in 0..100 {
            assert!(bot.act(tick as f64 * 50.0).is_empty());
        }
    }

    #[test]
    fn prober_sends_chat_on_schedule() {
        let mut bot =
            Bot::new("probe", Vec3::new(0.5, 61.0, 0.5), Behavior::Idle, 1).with_probe_interval(20);
        let mut chats = 0;
        for tick in 1..=100 {
            let packets = bot.act(tick as f64 * 50.0);
            chats += packets
                .iter()
                .filter(|p| matches!(p, ServerboundPacket::Chat { .. }))
                .count();
        }
        assert_eq!(chats, 5);
    }

    #[test]
    fn chat_probe_carries_the_send_timestamp() {
        let mut bot = Bot::new("probe", Vec3::ZERO, Behavior::Idle, 1).with_probe_interval(1);
        let packets = bot.act(1234.5);
        match &packets[0] {
            ServerboundPacket::Chat { sent_at_ms, .. } => assert_eq!(*sent_at_ms, 1234.5),
            other => panic!("expected chat, got {other:?}"),
        }
    }

    #[test]
    fn walking_bot_sends_moves() {
        let center = Vec3::new(0.5, 61.0, 0.5);
        let mut bot = Bot::new(
            "walker",
            center,
            Behavior::players_workload(center, 32.0),
            7,
        );
        let packets = bot.act(50.0);
        assert_eq!(packets.len(), 1);
        assert!(matches!(packets[0], ServerboundPacket::PlayerMove { .. }));
        assert_ne!(bot.pos, center);
    }

    #[test]
    fn builder_bot_walks_exactly_like_its_plain_twin() {
        use mlg_protocol::ServerboundPacket;

        let center = Vec3::new(0.5, 61.0, 0.5);
        let mut walker = Bot::new("w", center, Behavior::players_workload(center, 32.0), 9);
        let mut builder = Bot::new(
            "b",
            center,
            Behavior::players_workload(center, 32.0).into_builder(),
            9,
        );
        let mut block_actions = 0;
        for tick in 0..64 {
            let a = walker.act(tick as f64 * 50.0);
            let b = builder.act(tick as f64 * 50.0);
            // Block actions draw from a separate RNG stream, so the
            // builder's movement packets match the plain bot's exactly.
            assert_eq!(a[0], b[0], "movement diverged at tick {tick}");
            block_actions += b
                .iter()
                .filter(|p| {
                    matches!(
                        p,
                        ServerboundPacket::BlockPlace { .. } | ServerboundPacket::BlockDig { .. }
                    )
                })
                .count();
        }
        assert!(block_actions >= 8, "the builder must actually build");
    }

    #[test]
    fn bots_with_the_same_seed_behave_identically() {
        let center = Vec3::new(0.5, 61.0, 0.5);
        let mut a = Bot::new("a", center, Behavior::players_workload(center, 32.0), 9);
        let mut b = Bot::new("b", center, Behavior::players_workload(center, 32.0), 9);
        for tick in 0..50 {
            assert_eq!(a.act(tick as f64 * 50.0), b.act(tick as f64 * 50.0));
        }
    }
}
