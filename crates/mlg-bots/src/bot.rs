//! A single emulated player.

use rand::rngs::StdRng;
use rand::SeedableRng;

use mlg_entity::Vec3;
use mlg_protocol::ServerboundPacket;
use mlg_server::PlayerId;

use crate::behavior::Behavior;

/// One emulated player: its behaviour, position and chat-probing schedule.
#[derive(Debug)]
pub struct Bot {
    /// Display name sent at login.
    pub name: String,
    /// The server-side player id assigned at connection time.
    pub player_id: Option<PlayerId>,
    /// Current (client-side) position.
    pub pos: Vec3,
    /// Movement behaviour.
    pub behavior: Behavior,
    /// Interval between chat probes, in ticks. 0 disables probing.
    pub probe_interval_ticks: u64,
    rng: StdRng,
    ticks_seen: u64,
}

impl Bot {
    /// Creates a bot. Probing is disabled by default; use
    /// [`Bot::with_probe_interval`] for the response-time prober.
    #[must_use]
    pub fn new(name: impl Into<String>, pos: Vec3, behavior: Behavior, seed: u64) -> Self {
        Bot {
            name: name.into(),
            player_id: None,
            pos,
            behavior,
            probe_interval_ticks: 0,
            rng: StdRng::seed_from_u64(seed),
            ticks_seen: 0,
        }
    }

    /// Enables chat probing every `interval_ticks` ticks.
    #[must_use]
    pub fn with_probe_interval(mut self, interval_ticks: u64) -> Self {
        self.probe_interval_ticks = interval_ticks;
        self
    }

    /// Returns `true` if this bot sends response-time probes.
    #[must_use]
    pub fn is_prober(&self) -> bool {
        self.probe_interval_ticks > 0
    }

    /// Produces this bot's actions for one client tick at virtual time
    /// `now_ms`.
    pub fn act(&mut self, now_ms: f64) -> Vec<ServerboundPacket> {
        self.ticks_seen += 1;
        let mut packets = Vec::new();
        if let Some(next) = self.behavior.next_position(self.pos, &mut self.rng) {
            self.pos = next;
            packets.push(ServerboundPacket::PlayerMove {
                pos: next,
                on_ground: true,
            });
        }
        if self.is_prober() && self.ticks_seen.is_multiple_of(self.probe_interval_ticks) {
            packets.push(ServerboundPacket::Chat {
                message: format!("probe-{}", self.ticks_seen),
                sent_at_ms: now_ms,
            });
        }
        packets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_bot_sends_nothing_without_probing() {
        let mut bot = Bot::new("observer", Vec3::new(0.5, 61.0, 0.5), Behavior::Idle, 1);
        for tick in 0..100 {
            assert!(bot.act(tick as f64 * 50.0).is_empty());
        }
    }

    #[test]
    fn prober_sends_chat_on_schedule() {
        let mut bot =
            Bot::new("probe", Vec3::new(0.5, 61.0, 0.5), Behavior::Idle, 1).with_probe_interval(20);
        let mut chats = 0;
        for tick in 1..=100 {
            let packets = bot.act(tick as f64 * 50.0);
            chats += packets
                .iter()
                .filter(|p| matches!(p, ServerboundPacket::Chat { .. }))
                .count();
        }
        assert_eq!(chats, 5);
    }

    #[test]
    fn chat_probe_carries_the_send_timestamp() {
        let mut bot = Bot::new("probe", Vec3::ZERO, Behavior::Idle, 1).with_probe_interval(1);
        let packets = bot.act(1234.5);
        match &packets[0] {
            ServerboundPacket::Chat { sent_at_ms, .. } => assert_eq!(*sent_at_ms, 1234.5),
            other => panic!("expected chat, got {other:?}"),
        }
    }

    #[test]
    fn walking_bot_sends_moves() {
        let center = Vec3::new(0.5, 61.0, 0.5);
        let mut bot = Bot::new(
            "walker",
            center,
            Behavior::players_workload(center, 32.0),
            7,
        );
        let packets = bot.act(50.0);
        assert_eq!(packets.len(), 1);
        assert!(matches!(packets[0], ServerboundPacket::PlayerMove { .. }));
        assert_ne!(bot.pos, center);
    }

    #[test]
    fn bots_with_the_same_seed_behave_identically() {
        let center = Vec3::new(0.5, 61.0, 0.5);
        let mut a = Bot::new("a", center, Behavior::players_workload(center, 32.0), 9);
        let mut b = Bot::new("b", center, Behavior::players_workload(center, 32.0), 9);
        for tick in 0..50 {
            assert_eq!(a.act(tick as f64 * 50.0), b.act(tick as f64 * 50.0));
        }
    }
}
