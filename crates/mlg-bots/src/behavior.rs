//! Programmed bot behaviours.

use rand::Rng;
use serde::{Deserialize, Serialize};

use mlg_entity::Vec3;

/// How an emulated player behaves each tick.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Behavior {
    /// Performs no actions. Environment-based workloads connect a single
    /// idle player purely to observe response time.
    Idle,
    /// Bounded random movement inside a square area, as in the Players
    /// workload ("25 players which move randomly in a 32-by-32 area").
    RandomWalk {
        /// Centre of the walking area.
        center: Vec3,
        /// Half of the area's edge length, in blocks.
        half_extent: f64,
    },
    /// Random walk plus periodic block actions: the bot places and digs
    /// blocks near its position as it wanders. The player-heavy Crowd
    /// workload uses this to load the player-handler and dissemination
    /// stages with terrain-touching traffic (movement validation, block
    /// writes, block-change broadcasts).
    Builder {
        /// Centre of the walking area.
        center: Vec3,
        /// Half of the area's edge length, in blocks.
        half_extent: f64,
    },
}

impl Behavior {
    /// The bounded random walk used by the Players workload.
    #[must_use]
    pub fn players_workload(center: Vec3, area_edge: f64) -> Self {
        Behavior::RandomWalk {
            center,
            half_extent: (area_edge / 2.0).max(1.0),
        }
    }

    /// The walk-and-build behaviour used by the player-heavy Crowd
    /// workload.
    #[must_use]
    pub fn builder_workload(center: Vec3, area_edge: f64) -> Self {
        Behavior::Builder {
            center,
            half_extent: (area_edge / 2.0).max(1.0),
        }
    }

    /// Converts a walking behaviour into the equivalent builder behaviour
    /// (idle bots stay idle).
    #[must_use]
    pub fn into_builder(self) -> Self {
        match self {
            Behavior::RandomWalk {
                center,
                half_extent,
            } => Behavior::Builder {
                center,
                half_extent,
            },
            other => other,
        }
    }

    /// Moves a walking behaviour's area to be centred on `home` (idle bots
    /// are unaffected). Used when scattering a swarm over a large world:
    /// each bot walks its area around its own home instead of the shared
    /// spawn point.
    #[must_use]
    pub fn rehomed(self, home: Vec3) -> Self {
        match self {
            Behavior::RandomWalk { half_extent, .. } => Behavior::RandomWalk {
                center: home,
                half_extent,
            },
            Behavior::Builder { half_extent, .. } => Behavior::Builder {
                center: home,
                half_extent,
            },
            Behavior::Idle => Behavior::Idle,
        }
    }

    /// Returns `true` when the behaviour emits block place/dig actions.
    #[must_use]
    pub fn builds(&self) -> bool {
        matches!(self, Behavior::Builder { .. })
    }

    /// Computes the next position for a bot currently at `pos`.
    ///
    /// Returns `None` when the behaviour does not move (idle observer).
    pub fn next_position<R: Rng>(&self, pos: Vec3, rng: &mut R) -> Option<Vec3> {
        match self {
            Behavior::Idle => None,
            Behavior::RandomWalk {
                center,
                half_extent,
            }
            | Behavior::Builder {
                center,
                half_extent,
            } => {
                // A bounded random step of at most one block per tick.
                let step = 0.3;
                let dx = rng.gen_range(-step..=step);
                let dz = rng.gen_range(-step..=step);
                let mut next = Vec3::new(pos.x + dx, pos.y, pos.z + dz);
                next.x = next.x.clamp(center.x - half_extent, center.x + half_extent);
                next.z = next.z.clamp(center.z - half_extent, center.z + half_extent);
                Some(next)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn idle_never_moves() {
        let mut rng = StdRng::seed_from_u64(1);
        let b = Behavior::Idle;
        assert_eq!(b.next_position(Vec3::new(1.0, 64.0, 1.0), &mut rng), None);
    }

    #[test]
    fn random_walk_stays_inside_the_area() {
        let mut rng = StdRng::seed_from_u64(2);
        let center = Vec3::new(0.5, 61.0, 0.5);
        let b = Behavior::players_workload(center, 32.0);
        let mut pos = center;
        for _ in 0..10_000 {
            pos = b.next_position(pos, &mut rng).unwrap();
            assert!((pos.x - center.x).abs() <= 16.0);
            assert!((pos.z - center.z).abs() <= 16.0);
            assert_eq!(pos.y, center.y);
        }
    }

    #[test]
    fn random_walk_actually_moves() {
        let mut rng = StdRng::seed_from_u64(3);
        let center = Vec3::new(0.5, 61.0, 0.5);
        let b = Behavior::players_workload(center, 32.0);
        let next = b.next_position(center, &mut rng).unwrap();
        assert_ne!(next, center);
    }

    #[test]
    fn degenerate_area_is_clamped() {
        let b = Behavior::players_workload(Vec3::ZERO, 0.0);
        match b {
            Behavior::RandomWalk { half_extent, .. } => assert!(half_extent >= 1.0),
            other => panic!("expected a random walk, got {other:?}"),
        }
    }

    #[test]
    fn builder_walks_like_a_random_walker() {
        let center = Vec3::new(0.5, 61.0, 0.5);
        let walker = Behavior::players_workload(center, 32.0);
        let builder = walker.into_builder();
        assert!(builder.builds() && !walker.builds());
        assert!(!Behavior::Idle.into_builder().builds(), "idle stays idle");
        // Identical RNG stream => identical steps: building adds actions,
        // it does not change movement.
        let mut ra = StdRng::seed_from_u64(11);
        let mut rb = StdRng::seed_from_u64(11);
        let mut pa = center;
        let mut pb = center;
        for _ in 0..100 {
            pa = walker.next_position(pa, &mut ra).unwrap();
            pb = builder.next_position(pb, &mut rb).unwrap();
            assert_eq!(pa, pb);
        }
    }
}
