//! The player-emulation swarm: connecting bots, exchanging packets with the
//! server over simulated links and recording response-time samples.

use cloud_sim::engine::ComputeEngine;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mlg_entity::Vec3;
use mlg_protocol::codec::{clientbound_wire_size, serverbound_wire_size};
use mlg_protocol::netsim::{LinkConfig, NetworkLink};
use mlg_protocol::{ClientboundPacket, ServerboundPacket};
use mlg_server::{GameServer, PlayerId, TickSummary};

use crate::behavior::Behavior;
use crate::bot::Bot;

/// Default interval between response-time probes, in ticks (1 s at 20 Hz).
pub const DEFAULT_PROBE_INTERVAL_TICKS: u64 = 20;

/// Slack added to packet-delivery poll times so that sub-millisecond network
/// latencies do not push delivery past the discrete per-tick poll points.
pub const DELIVERY_SLACK_MS: f64 = 5.0;

struct BotConnection {
    bot: Bot,
    uplink: NetworkLink<ServerboundPacket>,
    downlink: NetworkLink<ClientboundPacket>,
}

/// Drives a set of emulated players against one game server.
pub struct PlayerEmulation {
    connections: Vec<BotConnection>,
    link_config: LinkConfig,
    response_samples: Vec<f64>,
    bytes_sent_to_server: u64,
    bytes_received_from_server: u64,
}

impl std::fmt::Debug for PlayerEmulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlayerEmulation")
            .field("bots", &self.connections.len())
            .field("response_samples", &self.response_samples.len())
            .finish()
    }
}

impl PlayerEmulation {
    /// Creates a swarm of `bot_count` bots spawning around `spawn_point`.
    ///
    /// The first bot is always the response-time prober (idle + chat echo);
    /// when `moving` is true the remaining bots random-walk inside a
    /// `walk_area`-sized square, reproducing the Players workload.
    #[must_use]
    pub fn new(
        bot_count: u32,
        spawn_point: Vec3,
        walk_area: u32,
        moving: bool,
        link_config: LinkConfig,
        seed: u64,
    ) -> Self {
        let mut seeder = StdRng::seed_from_u64(seed);
        let mut connections = Vec::new();
        for i in 0..bot_count.max(1) {
            let behavior = if i == 0 || !moving {
                Behavior::Idle
            } else {
                Behavior::players_workload(spawn_point, f64::from(walk_area.max(2)))
            };
            let mut bot = Bot::new(
                format!("meterstick-bot-{i:02}"),
                spawn_point,
                behavior,
                seeder.gen(),
            );
            if i == 0 {
                bot = bot.with_probe_interval(DEFAULT_PROBE_INTERVAL_TICKS);
            }
            connections.push(BotConnection {
                bot,
                uplink: NetworkLink::new(link_config, seeder.gen()),
                downlink: NetworkLink::new(link_config, seeder.gen()),
            });
        }
        PlayerEmulation {
            connections,
            link_config,
            response_samples: Vec::new(),
            bytes_sent_to_server: 0,
            bytes_received_from_server: 0,
        }
    }

    /// Upgrades every walking bot to a *builder* (movement plus periodic
    /// block place/dig actions near its position) — the player-heavy Crowd
    /// workload. The prober and idle observers are unaffected, and the
    /// upgrade changes no RNG stream, so a builder swarm walks exactly like
    /// the plain swarm it was derived from.
    #[must_use]
    pub fn with_builders(mut self) -> Self {
        for conn in &mut self.connections {
            conn.bot.behavior = conn.bot.behavior.into_builder();
        }
        self
    }

    /// Re-homes every non-prober bot to a deterministic point inside a
    /// `scatter`-sized square centred on `spawn_point` — the scaled Horde
    /// workload's population spread. Each bot keeps its walk area but walks
    /// it around its new home. Scatter offsets draw from a dedicated RNG
    /// stream (`seed ^ 0x5CA7`), so a scattered swarm's bots keep the exact
    /// per-bot behaviour seeds of the clustered swarm they were derived
    /// from, and unscattered workloads are untouched. The prober (bot 0)
    /// stays at the spawn point so response probing remains comparable
    /// across workloads.
    #[must_use]
    pub fn scattered(mut self, spawn_point: Vec3, scatter: u32, seed: u64) -> Self {
        if scatter == 0 {
            return self;
        }
        let half = f64::from(scatter) / 2.0;
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5CA7);
        for conn in self.connections.iter_mut().skip(1) {
            let dx = rng.gen_range(-half..=half);
            let dz = rng.gen_range(-half..=half);
            let home = Vec3::new(spawn_point.x + dx, spawn_point.y, spawn_point.z + dz);
            conn.bot.pos = home;
            conn.bot.behavior = conn.bot.behavior.rehomed(home);
        }
        self
    }

    /// Number of bots in the swarm.
    #[must_use]
    pub fn bot_count(&self) -> usize {
        self.connections.len()
    }

    /// The link configuration used between bots and the server.
    #[must_use]
    pub fn link_config(&self) -> LinkConfig {
        self.link_config
    }

    /// Connects every bot to the server, each at its own home position
    /// (the spawn point unless the swarm was [`PlayerEmulation::scattered`]).
    pub fn connect_all(&mut self, server: &mut GameServer) {
        for conn in &mut self.connections {
            let id = server.connect_player_at(&conn.bot.name, conn.bot.pos);
            conn.bot.player_id = Some(id);
        }
    }

    /// The server-side player ids of all connected bots.
    #[must_use]
    pub fn player_ids(&self) -> Vec<PlayerId> {
        self.connections
            .iter()
            .filter_map(|c| c.bot.player_id)
            .collect()
    }

    /// Phase 1 of a virtual-time step: every bot acts at `now_ms`, its
    /// packets enter its uplink.
    pub fn generate_actions(&mut self, now_ms: f64) {
        for conn in &mut self.connections {
            for packet in conn.bot.act(now_ms) {
                let size = serverbound_wire_size(&packet);
                self.bytes_sent_to_server += size as u64;
                conn.uplink.send(now_ms, packet, size);
            }
        }
    }

    /// Phase 2: packets whose network delay has elapsed at `now_ms` are
    /// delivered into the server's networking queues.
    pub fn deliver_to_server(&mut self, now_ms: f64, server: &mut GameServer) {
        for conn in &mut self.connections {
            let Some(id) = conn.bot.player_id else {
                continue;
            };
            for packet in conn.uplink.poll(now_ms) {
                server.enqueue_packet(id, packet);
            }
        }
    }

    /// Phase 3: after the server ran a tick, its outgoing packets are pushed
    /// onto each bot's downlink and chat echoes to the prober are turned into
    /// response-time samples.
    ///
    /// Ordinary state updates become available when the tick ends; chat
    /// echoes from an asynchronous-chat server (PaperMC) become available
    /// shortly after the originating message arrived, since that flavor
    /// answers chat off the main thread without waiting for the simulation to
    /// finish — which is exactly why the paper excludes PaperMC from its
    /// response-time figure.
    pub fn collect_from_server(&mut self, server: &mut GameServer, tick: &TickSummary) {
        let base_latency = self.link_config.base_latency_ms;
        for conn in &mut self.connections {
            let Some(id) = conn.bot.player_id else {
                continue;
            };
            let is_prober = conn.bot.is_prober();
            for packet in server.drain_outgoing(id) {
                let size = clientbound_wire_size(&packet);
                self.bytes_received_from_server += size as u64;
                let is_chat = matches!(packet, ClientboundPacket::Chat { .. });
                let available_at = if tick.async_chat && is_chat {
                    tick.start_ms + 1.0
                } else {
                    tick.end_ms
                };
                if is_prober {
                    if let ClientboundPacket::Chat { echo_of_ms, .. } = packet {
                        if echo_of_ms > 0.0 {
                            // Round trip: client send time -> availability at
                            // the client, including one more network hop.
                            let rtt = available_at + base_latency - echo_of_ms;
                            if rtt >= 0.0 {
                                self.response_samples.push(rtt);
                            }
                        }
                    }
                }
                conn.downlink.send(available_at, packet, size);
            }
        }
    }

    /// Phase 4: bots receive whatever reached them by `now_ms`. State updates
    /// are consumed (clients apply them to their local view); response-time
    /// bookkeeping already happened in [`PlayerEmulation::collect_from_server`].
    pub fn receive(&mut self, now_ms: f64) {
        for conn in &mut self.connections {
            let _ = conn.downlink.poll(now_ms);
        }
    }

    /// Runs one complete virtual-time step: bots act, their packets travel to
    /// the server, the server runs one tick on `engine`, and the resulting
    /// state updates travel back. Returns the server's tick summary.
    pub fn step(&mut self, server: &mut GameServer, engine: &mut ComputeEngine) -> TickSummary {
        let now = server.clock_ms();
        self.generate_actions(now);
        self.deliver_to_server(now + DELIVERY_SLACK_MS, server);
        let summary = server.run_tick(engine);
        self.collect_from_server(server, &summary);
        self.receive(summary.end_ms + DELIVERY_SLACK_MS);
        summary
    }

    /// The response-time samples recorded so far (milliseconds).
    #[must_use]
    pub fn response_samples(&self) -> &[f64] {
        &self.response_samples
    }

    /// Total bytes the swarm sent towards the server.
    #[must_use]
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent_to_server
    }

    /// Total bytes the swarm received from the server.
    #[must_use]
    pub fn bytes_received(&self) -> u64 {
        self.bytes_received_from_server
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloud_sim::environment::Environment;
    use mlg_server::{ServerConfig, ServerFlavor};
    use mlg_world::generation::FlatGenerator;
    use mlg_world::World;

    fn server(flavor: ServerFlavor) -> GameServer {
        let world = World::new(Box::new(FlatGenerator::grassland()), 7);
        GameServer::new(
            ServerConfig::for_flavor(flavor).with_view_distance(2),
            world,
            Vec3::new(0.5, 61.0, 0.5),
        )
    }

    fn run_ticks(
        emulation: &mut PlayerEmulation,
        server: &mut GameServer,
        ticks: u32,
    ) -> Vec<TickSummary> {
        let mut engine = Environment::das5(2).instantiate(1).engine;
        (0..ticks)
            .map(|_| emulation.step(server, &mut engine))
            .collect()
    }

    #[test]
    fn swarm_connects_every_bot() {
        let mut s = server(ServerFlavor::Vanilla);
        let mut emu = PlayerEmulation::new(
            25,
            Vec3::new(0.5, 61.0, 0.5),
            32,
            true,
            LinkConfig::datacenter(),
            1,
        );
        emu.connect_all(&mut s);
        assert_eq!(emu.bot_count(), 25);
        assert_eq!(emu.player_ids().len(), 25);
        assert_eq!(s.player_count(), 25);
    }

    #[test]
    fn prober_measures_response_times() {
        let mut s = server(ServerFlavor::Vanilla);
        let mut emu = PlayerEmulation::new(
            1,
            Vec3::new(0.5, 61.0, 0.5),
            0,
            false,
            LinkConfig::datacenter(),
            1,
        );
        emu.connect_all(&mut s);
        run_ticks(&mut emu, &mut s, 200);
        let samples = emu.response_samples();
        assert!(
            samples.len() >= 8,
            "expected ~10 probes, got {}",
            samples.len()
        );
        for &rtt in samples {
            assert!(rtt > 0.0 && rtt < 1_000.0, "implausible RTT {rtt}");
        }
    }

    #[test]
    fn response_time_reflects_the_tick_cadence() {
        // On an idle server the echo arrives with the tick that processed it,
        // so RTTs sit between one and two tick periods plus network latency.
        let mut s = server(ServerFlavor::Vanilla);
        let mut emu = PlayerEmulation::new(
            1,
            Vec3::new(0.5, 61.0, 0.5),
            0,
            false,
            LinkConfig::datacenter(),
            1,
        );
        emu.connect_all(&mut s);
        run_ticks(&mut emu, &mut s, 300);
        let samples = emu.response_samples();
        let mean: f64 = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!(
            mean > 10.0 && mean < 120.0,
            "mean RTT {mean} out of expected band"
        );
    }

    #[test]
    fn async_chat_server_answers_faster_than_sync() {
        let measure = |flavor: ServerFlavor| {
            let mut s = server(flavor);
            let mut emu = PlayerEmulation::new(
                1,
                Vec3::new(0.5, 61.0, 0.5),
                0,
                false,
                LinkConfig::datacenter(),
                1,
            );
            emu.connect_all(&mut s);
            run_ticks(&mut emu, &mut s, 300);
            let samples = emu.response_samples().to_vec();
            samples.iter().sum::<f64>() / samples.len() as f64
        };
        let vanilla = measure(ServerFlavor::Vanilla);
        let paper = measure(ServerFlavor::Paper);
        assert!(
            paper < vanilla,
            "async chat ({paper} ms) should respond faster than sync ({vanilla} ms)"
        );
    }

    #[test]
    fn moving_bots_generate_traffic_and_server_load() {
        let mut s = server(ServerFlavor::Vanilla);
        let mut emu = PlayerEmulation::new(
            25,
            Vec3::new(0.5, 61.0, 0.5),
            32,
            true,
            LinkConfig::datacenter(),
            1,
        );
        emu.connect_all(&mut s);
        run_ticks(&mut emu, &mut s, 50);
        assert!(
            emu.bytes_sent() > 10_000,
            "25 walking bots should send plenty of moves"
        );
        assert!(emu.bytes_received() > 0);
    }

    #[test]
    fn single_observer_swarm_has_exactly_one_bot() {
        let emu = PlayerEmulation::new(0, Vec3::ZERO, 0, false, LinkConfig::loopback(), 3);
        assert_eq!(emu.bot_count(), 1, "bot_count is clamped to at least one");
    }
}
