//! Player emulation for the Meterstick benchmark.
//!
//! Meterstick "emulates players by connecting the MLG and automatically
//! sending player actions based on programmed behavior", reusing the player
//! emulation of the earlier Yardstick benchmark (Section 3.2, component 5).
//! This crate provides the same capability against the in-process game
//! server:
//!
//! * [`behavior`] — programmed behaviours: the idle observer used by
//!   environment-based workloads, the bounded random walk of the Players
//!   workload, and the chat-echo prober that measures game response time;
//! * [`bot`] — a single emulated player;
//! * [`emulation`] — the swarm driver that connects bots to a server, moves
//!   packets across simulated network links in virtual time and records
//!   response-time samples.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod behavior;
pub mod bot;
pub mod emulation;

pub use behavior::Behavior;
pub use bot::Bot;
pub use emulation::PlayerEmulation;
