//! A* pathfinding over modifiable terrain.
//!
//! "Static worlds pre-compute overlay graphs with viable NPC locations,
//! improving computational efficiency. In contrast, MLGs have changing
//! terrain, so they must compute path-finding graphs dynamically, leading to
//! additional compute-intensive workload." (Section 2.2.3.)
//!
//! The implementation searches directly over walkable block positions — a
//! position is walkable when it has solid ground below and two blocks of
//! head-room — so every search automatically reflects the current terrain.
//! The number of expanded nodes is reported so the entity stage can account
//! for the cost.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use mlg_world::{BlockPos, BlockReader};

/// Result of a pathfinding request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathResult {
    /// The path from (exclusive) start to (inclusive) goal, empty when no
    /// path was found.
    pub path: Vec<BlockPos>,
    /// Number of nodes expanded by the search.
    pub nodes_expanded: u32,
    /// Whether the goal was reached.
    pub reached_goal: bool,
}

/// Returns `true` if a mob can stand at `pos`: solid ground below, and the
/// position itself plus head-room above are passable.
#[must_use]
pub fn is_walkable<W: BlockReader>(world: &mut W, pos: BlockPos) -> bool {
    let ground = world.block(pos.down());
    let feet = world.block(pos);
    let head = world.block(pos.up());
    ground.is_solid() && !feet.is_solid() && !head.is_solid()
}

fn neighbors_3d(pos: BlockPos) -> [BlockPos; 12] {
    // Horizontal moves plus one-block step up or down in each direction.
    [
        pos.offset(1, 0, 0),
        pos.offset(-1, 0, 0),
        pos.offset(0, 0, 1),
        pos.offset(0, 0, -1),
        pos.offset(1, 1, 0),
        pos.offset(-1, 1, 0),
        pos.offset(0, 1, 1),
        pos.offset(0, 1, -1),
        pos.offset(1, -1, 0),
        pos.offset(-1, -1, 0),
        pos.offset(0, -1, 1),
        pos.offset(0, -1, -1),
    ]
}

/// Finds a path from `start` to `goal` using A* over walkable positions.
///
/// `max_nodes` bounds the search so pathological requests (e.g. unreachable
/// goals across modified terrain) terminate; real MLG servers impose similar
/// budget limits per mob per tick.
pub fn find_path<W: BlockReader>(
    world: &mut W,
    start: BlockPos,
    goal: BlockPos,
    max_nodes: u32,
) -> PathResult {
    let mut result = PathResult {
        path: Vec::new(),
        nodes_expanded: 0,
        reached_goal: false,
    };
    if start == goal {
        result.reached_goal = true;
        return result;
    }

    let mut open: BinaryHeap<Reverse<(u64, u64, BlockPos)>> = BinaryHeap::new();
    let mut came_from: HashMap<BlockPos, BlockPos> = HashMap::new();
    let mut g_score: HashMap<BlockPos, u64> = HashMap::new();
    let mut counter: u64 = 0;

    g_score.insert(start, 0);
    open.push(Reverse((
        u64::from(start.manhattan_distance(goal)),
        counter,
        start,
    )));

    while let Some(Reverse((_, _, current))) = open.pop() {
        result.nodes_expanded += 1;
        if result.nodes_expanded > max_nodes {
            break;
        }
        if current == goal {
            // Reconstruct the path.
            let mut path = vec![current];
            let mut cursor = current;
            while let Some(&prev) = came_from.get(&cursor) {
                if prev == start {
                    break;
                }
                path.push(prev);
                cursor = prev;
            }
            path.reverse();
            result.path = path;
            result.reached_goal = true;
            return result;
        }
        let current_g = g_score[&current];
        for next in neighbors_3d(current) {
            if !is_walkable(world, next) {
                continue;
            }
            let tentative = current_g + 1;
            if tentative < *g_score.get(&next).unwrap_or(&u64::MAX) {
                came_from.insert(next, current);
                g_score.insert(next, tentative);
                counter += 1;
                let f = tentative + u64::from(next.manhattan_distance(goal));
                open.push(Reverse((f, counter, next)));
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlg_world::generation::FlatGenerator;
    use mlg_world::World;
    use mlg_world::{Block, BlockKind};

    fn world() -> World {
        World::new(Box::new(FlatGenerator::grassland()), 7)
    }

    // On the flat world the surface is grass at y = 60, so mobs stand at y = 61.
    const STAND_Y: i32 = 61;

    #[test]
    fn straight_line_path_on_flat_ground() {
        let mut w = world();
        let start = BlockPos::new(0, STAND_Y, 0);
        let goal = BlockPos::new(6, STAND_Y, 0);
        let result = find_path(&mut w, start, goal, 10_000);
        assert!(result.reached_goal);
        assert_eq!(result.path.last(), Some(&goal));
        assert_eq!(result.path.len(), 6);
    }

    #[test]
    fn path_routes_around_a_wall() {
        let mut w = world();
        // Build a wall across the straight-line route.
        for z in -3..=3 {
            for y in STAND_Y..STAND_Y + 3 {
                w.set_block_silent(BlockPos::new(3, y, z), Block::simple(BlockKind::Stone));
            }
        }
        let start = BlockPos::new(0, STAND_Y, 0);
        let goal = BlockPos::new(6, STAND_Y, 0);
        let result = find_path(&mut w, start, goal, 10_000);
        assert!(result.reached_goal);
        assert!(
            result.path.len() > 6,
            "detour must be longer than the direct route"
        );
        // The path never crosses the wall column except above it.
        for p in &result.path {
            if p.x == 3 {
                assert!(p.z.abs() > 3 || p.y > STAND_Y + 2);
            }
        }
    }

    #[test]
    fn path_climbs_single_block_steps() {
        let mut w = world();
        // A one-block step up halfway along the route.
        for x in 3..7 {
            for z in -1..=1 {
                w.set_block_silent(
                    BlockPos::new(x, STAND_Y, z),
                    Block::simple(BlockKind::Stone),
                );
            }
        }
        let start = BlockPos::new(0, STAND_Y, 0);
        let goal = BlockPos::new(5, STAND_Y + 1, 0);
        let result = find_path(&mut w, start, goal, 10_000);
        assert!(result.reached_goal);
    }

    #[test]
    fn unreachable_goal_exhausts_budget() {
        let mut w = world();
        // Surround the goal with a solid box.
        let goal = BlockPos::new(10, STAND_Y, 10);
        for dx in -1..=1 {
            for dz in -1..=1 {
                for dy in -1..=2 {
                    if dx == 0 && dz == 0 && (dy == 0 || dy == 1) {
                        continue;
                    }
                    w.set_block_silent(goal.offset(dx, dy, dz), Block::simple(BlockKind::Obsidian));
                }
            }
        }
        let result = find_path(&mut w, BlockPos::new(0, STAND_Y, 0), goal, 500);
        assert!(!result.reached_goal);
        assert!(
            result.nodes_expanded >= 500,
            "search should hit the node budget"
        );
    }

    #[test]
    fn trivial_path_to_self() {
        let mut w = world();
        let p = BlockPos::new(0, STAND_Y, 0);
        let result = find_path(&mut w, p, p, 100);
        assert!(result.reached_goal);
        assert!(result.path.is_empty());
        assert_eq!(result.nodes_expanded, 0);
    }

    #[test]
    fn walkability_requires_ground_and_headroom() {
        let mut w = world();
        assert!(is_walkable(&mut w, BlockPos::new(0, STAND_Y, 0)));
        // Mid-air is not walkable.
        assert!(!is_walkable(&mut w, BlockPos::new(0, STAND_Y + 5, 0)));
        // A low ceiling blocks walkability.
        w.set_block_silent(
            BlockPos::new(2, STAND_Y + 1, 0),
            Block::simple(BlockKind::Stone),
        );
        assert!(!is_walkable(&mut w, BlockPos::new(2, STAND_Y, 0)));
    }

    #[test]
    fn terrain_modification_invalidates_previous_routes() {
        let mut w = world();
        let start = BlockPos::new(0, STAND_Y, 0);
        let goal = BlockPos::new(4, STAND_Y, 0);
        let before = find_path(&mut w, start, goal, 10_000);
        assert!(before.reached_goal);
        // Dig a wide trench the mob cannot cross (3 blocks deep, no steps).
        for z in -8..=8 {
            for x in 2..=2 {
                for y in (STAND_Y - 4)..STAND_Y {
                    w.set_block_silent(BlockPos::new(x, y, z), Block::AIR);
                }
            }
        }
        let after = find_path(&mut w, start, goal, 2_000);
        // Either the path is much longer (routing around the trench) or the
        // goal became unreachable within budget — both demonstrate dynamic
        // recomputation.
        assert!(!after.reached_goal || after.path.len() > before.path.len());
    }
}
