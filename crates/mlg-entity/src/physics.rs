//! Entity movement physics: gravity, drag and collision with the terrain.

use mlg_world::BlockReader;

use crate::entity::Entity;
use crate::math::Vec3;

/// Downward acceleration applied per tick, in blocks/tick².
pub const GRAVITY: f64 = 0.08;

/// Velocity retained each tick (air drag).
pub const DRAG: f64 = 0.98;

/// Additional horizontal velocity retention when on the ground (friction).
pub const GROUND_FRICTION: f64 = 0.6;

/// Result of integrating one entity for one tick.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MoveOutcome {
    /// Whether the entity collided with terrain on any axis.
    pub collided: bool,
    /// Whether the entity ended the tick standing on the ground.
    pub on_ground: bool,
    /// Number of world block reads performed for collision checks.
    pub blocks_checked: u32,
    /// Distance actually travelled this tick.
    pub distance_moved: f64,
}

fn collides<W: BlockReader>(world: &mut W, entity: &Entity, pos: Vec3) -> (bool, u32) {
    let aabb = crate::math::Aabb::from_feet(pos, entity.kind.half_width(), entity.kind.height());
    let blocks = aabb.overlapping_blocks();
    let mut checked = 0;
    for bp in &blocks {
        checked += 1;
        if world.block(*bp).is_solid() {
            return (true, checked);
        }
    }
    (false, checked)
}

/// Integrates gravity, drag and axis-separated collision for one entity over
/// one tick, mutating its position, velocity and `on_ground` flag.
pub fn step<W: BlockReader>(world: &mut W, entity: &mut Entity) -> MoveOutcome {
    let mut outcome = MoveOutcome::default();
    let start = entity.pos;

    // Apply gravity and drag.
    entity.velocity.y -= GRAVITY;
    entity.velocity = entity.velocity.scale(DRAG);
    if entity.on_ground {
        entity.velocity.x *= GROUND_FRICTION;
        entity.velocity.z *= GROUND_FRICTION;
    }

    // Move one axis at a time so the entity slides along walls.
    let mut pos = entity.pos;
    for axis in 0..3 {
        let delta = match axis {
            0 => Vec3::new(entity.velocity.x, 0.0, 0.0),
            1 => Vec3::new(0.0, entity.velocity.y, 0.0),
            _ => Vec3::new(0.0, 0.0, entity.velocity.z),
        };
        if delta.length_squared() == 0.0 {
            continue;
        }
        let candidate = pos.add(delta);
        let (hit, checked) = collides(world, entity, candidate);
        outcome.blocks_checked += checked;
        if hit {
            outcome.collided = true;
            match axis {
                0 => entity.velocity.x = 0.0,
                1 => {
                    if entity.velocity.y < 0.0 {
                        outcome.on_ground = true;
                    }
                    entity.velocity.y = 0.0;
                }
                _ => entity.velocity.z = 0.0,
            }
        } else {
            pos = candidate;
        }
    }

    // Ground check: is there solid terrain just below the feet?
    if !outcome.on_ground {
        let (below_solid, checked) = collides(world, entity, pos.add(Vec3::new(0.0, -0.05, 0.0)));
        outcome.blocks_checked += checked;
        outcome.on_ground = below_solid;
    }

    entity.pos = pos;
    entity.on_ground = outcome.on_ground;
    outcome.distance_moved = start.distance(pos);
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::{EntityId, EntityKind};
    use mlg_world::generation::FlatGenerator;
    use mlg_world::World;
    use mlg_world::{Block, BlockKind, BlockPos};

    fn world() -> World {
        World::new(Box::new(FlatGenerator::grassland()), 7)
    }

    fn cow_at(pos: Vec3) -> Entity {
        Entity::new(EntityId(1), EntityKind::Cow, pos)
    }

    #[test]
    fn falling_entity_lands_on_the_surface() {
        let mut w = world();
        let mut e = cow_at(Vec3::new(8.5, 70.0, 8.5));
        for _ in 0..200 {
            step(&mut w, &mut e);
            if e.on_ground {
                break;
            }
        }
        assert!(e.on_ground, "entity should land");
        // Surface is at y = 60, so feet rest near y = 61.
        assert!(
            e.pos.y > 60.4 && e.pos.y < 61.6,
            "resting height {}",
            e.pos.y
        );
        assert_eq!(e.velocity.y, 0.0);
    }

    #[test]
    fn gravity_accelerates_free_fall() {
        let mut w = world();
        let mut e = cow_at(Vec3::new(8.5, 120.0, 8.5));
        let out1 = step(&mut w, &mut e);
        let out2 = step(&mut w, &mut e);
        assert!(out2.distance_moved > out1.distance_moved);
        assert!(!e.on_ground);
    }

    #[test]
    fn horizontal_motion_is_blocked_by_walls() {
        let mut w = world();
        // Build a wall right next to the entity.
        for y in 61..65 {
            w.set_block_silent(BlockPos::new(10, y, 8), Block::simple(BlockKind::Stone));
        }
        let mut e = cow_at(Vec3::new(9.2, 61.0, 8.5));
        e.on_ground = true;
        e.velocity = Vec3::new(1.0, 0.0, 0.0);
        let out = step(&mut w, &mut e);
        assert!(out.collided);
        assert_eq!(e.velocity.x, 0.0);
        assert!(e.pos.x < 9.6, "entity should not pass through the wall");
    }

    #[test]
    fn sliding_along_a_wall_preserves_other_axis() {
        let mut w = world();
        for y in 61..65 {
            w.set_block_silent(BlockPos::new(10, y, 8), Block::simple(BlockKind::Stone));
        }
        let mut e = cow_at(Vec3::new(9.2, 61.0, 8.5));
        e.velocity = Vec3::new(1.0, 0.0, 0.5);
        let before_z = e.pos.z;
        step(&mut w, &mut e);
        assert!(
            e.pos.z > before_z,
            "z motion should continue while x is blocked"
        );
    }

    #[test]
    fn drag_slows_entities_down() {
        let mut w = world();
        let mut e = cow_at(Vec3::new(8.5, 61.0, 8.5));
        e.on_ground = true;
        e.velocity = Vec3::new(0.5, 0.0, 0.0);
        for _ in 0..40 {
            step(&mut w, &mut e);
        }
        assert!(e.velocity.x.abs() < 0.01, "friction should stop the entity");
    }

    #[test]
    fn collision_checks_are_counted() {
        let mut w = world();
        let mut e = cow_at(Vec3::new(8.5, 70.0, 8.5));
        let out = step(&mut w, &mut e);
        assert!(out.blocks_checked > 0);
    }
}
