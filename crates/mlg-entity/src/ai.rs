//! Mob decision making: wandering and pathfinding towards targets.
//!
//! Decision making (Figure 3 of the paper) covers how NPCs choose where to
//! move. Hostile mobs path towards the nearest player; passive mobs wander
//! randomly. Both behaviours consume pathfinding budget, which is part of the
//! entity workload the paper measures.

use rand::Rng;

use mlg_world::{BlockPos, BlockReader};

use crate::entity::Entity;
use crate::math::Vec3;
use crate::pathfinding::{self, PathResult};

/// How far a hostile mob can notice a player, in blocks.
pub const AGGRO_RANGE: f64 = 16.0;

/// Maximum wander distance for a single wander decision.
pub const WANDER_RANGE: i32 = 8;

/// Node budget for a single pathfinding request.
pub const PATH_NODE_BUDGET: u32 = 512;

/// Result of one AI decision step for one mob.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AiOutcome {
    /// Whether a pathfinding search was executed.
    pub pathfinding_performed: bool,
    /// Nodes expanded by the pathfinding search (0 if none).
    pub path_nodes_expanded: u32,
    /// Whether the mob picked (or kept) a movement target.
    pub has_target: bool,
}

/// Runs one decision step for a mob: acquire or keep a target, pathfind
/// towards it when needed, and set the entity's velocity along the path.
///
/// `players` are the positions of currently connected players; hostile mobs
/// target the nearest one within [`AGGRO_RANGE`].
pub fn decide<W: BlockReader, R: Rng>(
    world: &mut W,
    entity: &mut Entity,
    players: &[Vec3],
    rng: &mut R,
) -> AiOutcome {
    let mut outcome = AiOutcome::default();
    if !entity.kind.is_mob() {
        return outcome;
    }

    // 1. Target selection.
    if entity.kind.is_hostile() {
        let nearest = players
            .iter()
            .copied()
            .map(|p| (p, p.distance(entity.pos)))
            .filter(|(_, d)| *d <= AGGRO_RANGE)
            .min_by(|a, b| a.1.total_cmp(&b.1));
        if let Some((target, _)) = nearest {
            entity.path_target = Some(target);
        }
    }
    if entity.path_target.is_none() {
        // Wander: occasionally pick a random nearby target.
        if rng.gen_bool(0.05) {
            let dx = rng.gen_range(-WANDER_RANGE..=WANDER_RANGE);
            let dz = rng.gen_range(-WANDER_RANGE..=WANDER_RANGE);
            let target = entity.pos.add(Vec3::new(f64::from(dx), 0.0, f64::from(dz)));
            entity.path_target = Some(target);
        }
    }

    let Some(target) = entity.path_target else {
        return outcome;
    };
    outcome.has_target = true;

    // 2. Arrived?
    if entity.pos.distance(target) < 1.0 {
        entity.path_target = None;
        entity.velocity.x = 0.0;
        entity.velocity.z = 0.0;
        return outcome;
    }

    // 3. Pathfind towards the target and follow the first step.
    let start = standable_below(world, entity.pos.block_pos());
    let goal = standable_below(world, target.block_pos());
    let PathResult {
        path,
        nodes_expanded,
        reached_goal,
    } = pathfinding::find_path(world, start, goal, PATH_NODE_BUDGET);
    outcome.pathfinding_performed = true;
    outcome.path_nodes_expanded = nodes_expanded;

    if !reached_goal && path.is_empty() {
        // Give up on unreachable targets.
        entity.path_target = None;
        return outcome;
    }
    let next = path
        .first()
        .copied()
        .map_or(target, Vec3::from_block_center);
    let direction = next.sub(entity.pos);
    let horizontal = Vec3::new(direction.x, 0.0, direction.z).normalized();
    let speed = entity.kind.base_speed();
    entity.velocity.x = horizontal.x * speed;
    entity.velocity.z = horizontal.z * speed;
    // Hop up single-block steps.
    if direction.y > 0.5 && entity.on_ground {
        entity.velocity.y = 0.42;
    }
    outcome
}

/// Finds the nearest standable position at or below `pos` (mobs float above
/// the ground slightly due to physics; pathfinding wants the block they stand
/// in).
fn standable_below<W: BlockReader>(world: &mut W, pos: BlockPos) -> BlockPos {
    let mut candidate = pos;
    for _ in 0..4 {
        if pathfinding::is_walkable(world, candidate) {
            return candidate;
        }
        candidate = candidate.down();
    }
    pos
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::{EntityId, EntityKind};
    use mlg_world::generation::FlatGenerator;
    use mlg_world::World;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn world() -> World {
        World::new(Box::new(FlatGenerator::grassland()), 7)
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn hostile_mob_targets_nearby_player() {
        let mut w = world();
        let mut zombie = Entity::new(EntityId(1), EntityKind::Zombie, Vec3::new(0.5, 61.0, 0.5));
        zombie.on_ground = true;
        let players = vec![Vec3::new(8.5, 61.0, 0.5)];
        let out = decide(&mut w, &mut zombie, &players, &mut rng());
        assert!(out.has_target);
        assert!(out.pathfinding_performed);
        assert!(
            zombie.velocity.x > 0.0,
            "zombie should move towards the player"
        );
    }

    #[test]
    fn hostile_mob_ignores_distant_player() {
        let mut w = world();
        let mut zombie = Entity::new(EntityId(1), EntityKind::Zombie, Vec3::new(0.5, 61.0, 0.5));
        let players = vec![Vec3::new(500.0, 61.0, 0.5)];
        let mut r = StdRng::seed_from_u64(1); // seed chosen so the wander roll fails
        let out = decide(&mut w, &mut zombie, &players, &mut r);
        assert!(zombie.path_target.is_none() || out.has_target);
        // Whatever happened, the zombie must not be chasing the far player.
        if let Some(t) = zombie.path_target {
            assert!(t.distance(players[0]) > AGGRO_RANGE);
        }
    }

    #[test]
    fn passive_mob_eventually_wanders() {
        let mut w = world();
        let mut cow = Entity::new(EntityId(2), EntityKind::Cow, Vec3::new(0.5, 61.0, 0.5));
        cow.on_ground = true;
        let mut r = rng();
        let mut wandered = false;
        for _ in 0..200 {
            let out = decide(&mut w, &mut cow, &[], &mut r);
            if out.has_target {
                wandered = true;
                break;
            }
        }
        assert!(wandered, "cow should pick a wander target within 200 ticks");
    }

    #[test]
    fn arrival_clears_the_target() {
        let mut w = world();
        let mut cow = Entity::new(EntityId(3), EntityKind::Cow, Vec3::new(0.5, 61.0, 0.5));
        cow.path_target = Some(Vec3::new(0.9, 61.0, 0.5));
        decide(&mut w, &mut cow, &[], &mut rng());
        assert!(cow.path_target.is_none());
        assert_eq!(cow.velocity.x, 0.0);
    }

    #[test]
    fn items_make_no_decisions() {
        let mut w = world();
        let mut item = Entity::new(
            EntityId(4),
            EntityKind::Item(mlg_world::BlockKind::Stone),
            Vec3::new(0.5, 61.0, 0.5),
        );
        let out = decide(&mut w, &mut item, &[], &mut rng());
        assert_eq!(out, AiOutcome::default());
    }

    #[test]
    fn pathfinding_cost_is_reported() {
        let mut w = world();
        let mut zombie = Entity::new(EntityId(5), EntityKind::Zombie, Vec3::new(0.5, 61.0, 0.5));
        zombie.on_ground = true;
        let players = vec![Vec3::new(10.5, 61.0, 10.5)];
        let out = decide(&mut w, &mut zombie, &players, &mut rng());
        assert!(out.path_nodes_expanded > 0);
    }
}
