//! Entity substrate for the Meterstick MLG simulator.
//!
//! "An entity is an object that exists in the virtual world but is not a
//! player or terrain" (Section 2.2.3 of the Meterstick paper). This crate
//! implements entities and the two aspects the paper identifies as uniquely
//! challenging for MLGs:
//!
//! * **dynamic spawning** — spawn points must be computed at runtime because
//!   terrain modification can obstruct them ([`spawning`]);
//! * **dynamic pathfinding** — NPC path-finding graphs cannot be precomputed
//!   because the terrain changes ([`pathfinding`]).
//!
//! It also implements the entity kinds the benchmark workloads rely on:
//! primed TNT with chain-reaction explosions ([`tnt`]), item entities with
//! merging and hopper collection ([`items`]), and mobile NPCs with simple
//! decision making ([`ai`]). The [`manager::EntityManager`] drives one entity
//! simulation stage per game tick and reports the work performed, which the
//! paper's MF4 finding shows dominates tick time.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod ai;
pub mod entity;
pub mod items;
pub mod manager;
pub mod math;
pub mod pathfinding;
pub mod physics;
pub mod spatial;
pub mod spawning;
pub mod store;
pub mod tnt;

pub use entity::{Entity, EntityId, EntityKind};
pub use manager::{EntityManager, EntityTickReport};
pub use math::{Aabb, Vec3};
pub use spatial::SpatialGrid;
pub use store::EntityStore;
