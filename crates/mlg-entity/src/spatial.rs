//! Spatial indexing for entity–entity proximity queries.
//!
//! Entity collision detection and item merging need "which entities are near
//! this one" queries every tick. A uniform grid keeps those queries cheap
//! while still reflecting the paper's observation that densely packed
//! entities (TNT cuboids, farm collection pits) make the entity stage
//! expensive — dense cells still produce quadratic pair counts.
//!
//! The index is a **dense open-addressed table** (linear probing over a
//! power-of-two slot array), not a hash map: cell lookups are explicit
//! probes, no code path ever iterates the table in layout order, and every
//! per-cell bucket is kept sorted by [`EntityId`]. Because entity ids are
//! allocated monotonically and never reused, id order *is* spawn order, so
//! neighborhood queries walk candidates in canonical order natively — the
//! determinism contract holds by construction, with no hash-iteration
//! waiver. [`SpatialGrid::clear`] is O(1): it bumps an epoch stamp and
//! leaves slot and bucket allocations in place for the next tick's rebuild,
//! so maintaining the index from the entity store's position column touches
//! only the entities that actually moved cells.

use crate::entity::EntityId;
use crate::math::Vec3;

/// Cell edge length of the spatial grid, in blocks.
pub const CELL_SIZE: f64 = 4.0;

/// Bits per axis in the packed cell key. Coordinates wrap beyond
/// ±2²⁰ cells (±4 million blocks), far outside any benchmark world.
const KEY_BITS: u64 = 21;
const KEY_MASK: u64 = (1 << KEY_BITS) - 1;

/// Initial slot-table size (power of two).
const INITIAL_SLOTS: usize = 64;

/// One open-addressed table slot: a claimed cell and its member bucket.
///
/// `stamp` records the epoch in which the slot was last claimed; a slot
/// whose stamp differs from the grid's current epoch is vacant, and its
/// bucket (capacity retained) is lazily cleared on the next claim.
#[derive(Default)]
struct Slot {
    key: u64,
    stamp: u64,
    bucket: Vec<(EntityId, Vec3)>,
}

/// A uniform-grid spatial index over entity positions, backed by a dense
/// open-addressed cell table with id-sorted buckets.
pub struct SpatialGrid {
    slots: Vec<Slot>,
    mask: usize,
    /// Current epoch; slots stamped with an older epoch are vacant. Starts
    /// at 1 so zero-initialised slots are vacant.
    epoch: u64,
    /// Slots claimed in the current epoch (load-factor accounting).
    occupied: usize,
    len: usize,
}

impl Default for SpatialGrid {
    fn default() -> Self {
        SpatialGrid {
            slots: (0..INITIAL_SLOTS).map(|_| Slot::default()).collect(),
            mask: INITIAL_SLOTS - 1,
            epoch: 1,
            occupied: 0,
            len: 0,
        }
    }
}

impl std::fmt::Debug for SpatialGrid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpatialGrid")
            .field("len", &self.len)
            .field("cells", &self.occupied)
            .field("slots", &self.slots.len())
            .finish()
    }
}

fn cell_of(pos: Vec3) -> (i32, i32, i32) {
    (
        (pos.x / CELL_SIZE).floor() as i32,
        (pos.y / CELL_SIZE).floor() as i32,
        (pos.z / CELL_SIZE).floor() as i32,
    )
}

fn cell_key(cell: (i32, i32, i32)) -> u64 {
    (cell.0 as u64 & KEY_MASK)
        | ((cell.1 as u64 & KEY_MASK) << KEY_BITS)
        | ((cell.2 as u64 & KEY_MASK) << (2 * KEY_BITS))
}

/// SplitMix64 finalizer: a strong, cheap mix for the packed cell key.
fn hash_key(key: u64) -> u64 {
    let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SpatialGrid {
    /// Creates an empty grid.
    #[must_use]
    pub fn new() -> Self {
        SpatialGrid::default()
    }

    /// Removes all entries in O(1) by advancing the epoch; slot and bucket
    /// allocations are retained for reuse.
    pub fn clear(&mut self) {
        self.epoch += 1;
        self.occupied = 0;
        self.len = 0;
    }

    /// Index of the slot holding `key`, if that cell is claimed this epoch.
    ///
    /// Linear probing terminates at the first vacant slot: inserts always
    /// claim the earliest vacant slot of their probe sequence and nothing
    /// is ever vacated mid-epoch, so a vacant slot proves absence.
    fn find_slot(&self, key: u64) -> Option<usize> {
        let mut i = hash_key(key) as usize & self.mask;
        loop {
            let slot = &self.slots[i];
            if slot.stamp != self.epoch {
                return None;
            }
            if slot.key == key {
                return Some(i);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Index of the slot for `key`, claiming a vacant slot if needed.
    fn slot_for_insert(&mut self, key: u64) -> usize {
        if (self.occupied + 1) * 4 > self.slots.len() * 3 {
            self.grow();
        }
        let mut i = hash_key(key) as usize & self.mask;
        loop {
            let slot = &mut self.slots[i];
            if slot.stamp != self.epoch {
                slot.key = key;
                slot.stamp = self.epoch;
                slot.bucket.clear();
                self.occupied += 1;
                return i;
            }
            if slot.key == key {
                return i;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Doubles the slot table, re-probing the cells claimed this epoch.
    /// Buckets move wholesale, so per-cell candidate order is unaffected
    /// (and is id-sorted regardless of table layout).
    fn grow(&mut self) {
        let new_len = self.slots.len() * 2;
        let mut new_slots: Vec<Slot> = (0..new_len).map(|_| Slot::default()).collect();
        let new_mask = new_len - 1;
        for slot in &mut self.slots {
            if slot.stamp != self.epoch {
                continue;
            }
            let mut i = hash_key(slot.key) as usize & new_mask;
            while new_slots[i].stamp == self.epoch {
                i = (i + 1) & new_mask;
            }
            new_slots[i].key = slot.key;
            new_slots[i].stamp = self.epoch;
            new_slots[i].bucket = std::mem::take(&mut slot.bucket);
        }
        self.slots = new_slots;
        self.mask = new_mask;
    }

    /// Inserts an entity at the given position. The cell bucket stays
    /// sorted by id, so candidate order is canonical spawn order.
    pub fn insert(&mut self, id: EntityId, pos: Vec3) {
        let slot = self.slot_for_insert(cell_key(cell_of(pos)));
        let bucket = &mut self.slots[slot].bucket;
        let at = bucket.partition_point(|&(bid, _)| bid < id);
        bucket.insert(at, (id, pos));
        self.len += 1;
    }

    /// Removes the entry for `id` previously inserted at `pos` (the exact
    /// position it was indexed under). Returns `true` if it was present.
    pub fn remove(&mut self, id: EntityId, pos: Vec3) -> bool {
        let Some(slot) = self.find_slot(cell_key(cell_of(pos))) else {
            return false;
        };
        let bucket = &mut self.slots[slot].bucket;
        let at = bucket.partition_point(|&(bid, _)| bid < id);
        if bucket.get(at).map(|&(bid, _)| bid) == Some(id) {
            bucket.remove(at);
            self.len -= 1;
            return true;
        }
        false
    }

    /// Number of entities currently indexed.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when no entities are indexed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns the ids of all entities within `radius` blocks of `pos`,
    /// excluding `exclude` (typically the querying entity itself), together
    /// with the number of candidate entities examined.
    #[must_use]
    pub fn query_radius(
        &self,
        pos: Vec3,
        radius: f64,
        exclude: Option<EntityId>,
    ) -> (Vec<EntityId>, u32) {
        let mut hits = Vec::new();
        let mut examined = 0u32;
        let r_sq = radius * radius;
        let min = cell_of(pos.sub(Vec3::new(radius, radius, radius)));
        let max = cell_of(pos.add(Vec3::new(radius, radius, radius)));
        for cx in min.0..=max.0 {
            for cy in min.1..=max.1 {
                for cz in min.2..=max.2 {
                    if let Some(slot) = self.find_slot(cell_key((cx, cy, cz))) {
                        for &(id, epos) in &self.slots[slot].bucket {
                            examined += 1;
                            if Some(id) == exclude {
                                continue;
                            }
                            if epos.distance_squared(pos) <= r_sq {
                                hits.push(id);
                            }
                        }
                    }
                }
            }
        }
        (hits, examined)
    }

    /// Number of proximity candidates a [`SpatialGrid::query_radius`] at
    /// `pos` would examine, without materializing the hit list. The entity
    /// tick uses this for its collision-candidate accounting, which needs
    /// the examined count only.
    #[must_use]
    pub fn proximity_examined(&self, pos: Vec3, radius: f64) -> u32 {
        let mut examined = 0u32;
        let min = cell_of(pos.sub(Vec3::new(radius, radius, radius)));
        let max = cell_of(pos.add(Vec3::new(radius, radius, radius)));
        for cx in min.0..=max.0 {
            for cy in min.1..=max.1 {
                for cz in min.2..=max.2 {
                    if let Some(slot) = self.find_slot(cell_key((cx, cy, cz))) {
                        examined += self.slots[slot].bucket.len() as u32;
                    }
                }
            }
        }
        examined
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_grid_has_no_hits() {
        let grid = SpatialGrid::new();
        assert!(grid.is_empty());
        let (hits, examined) = grid.query_radius(Vec3::ZERO, 10.0, None);
        assert!(hits.is_empty());
        assert_eq!(examined, 0);
    }

    #[test]
    fn finds_entities_within_radius() {
        let mut grid = SpatialGrid::new();
        grid.insert(EntityId(1), Vec3::new(0.0, 64.0, 0.0));
        grid.insert(EntityId(2), Vec3::new(2.0, 64.0, 0.0));
        grid.insert(EntityId(3), Vec3::new(50.0, 64.0, 0.0));
        let (hits, _) = grid.query_radius(Vec3::new(0.0, 64.0, 0.0), 5.0, None);
        assert!(hits.contains(&EntityId(1)));
        assert!(hits.contains(&EntityId(2)));
        assert!(!hits.contains(&EntityId(3)));
    }

    #[test]
    fn exclude_skips_the_querying_entity() {
        let mut grid = SpatialGrid::new();
        grid.insert(EntityId(1), Vec3::ZERO);
        grid.insert(EntityId(2), Vec3::new(0.5, 0.0, 0.0));
        let (hits, _) = grid.query_radius(Vec3::ZERO, 2.0, Some(EntityId(1)));
        assert_eq!(hits, vec![EntityId(2)]);
    }

    #[test]
    fn radius_boundary_is_inclusive() {
        let mut grid = SpatialGrid::new();
        grid.insert(EntityId(1), Vec3::new(3.0, 0.0, 0.0));
        let (hits, _) = grid.query_radius(Vec3::ZERO, 3.0, None);
        assert_eq!(hits.len(), 1);
        let (miss, _) = grid.query_radius(Vec3::ZERO, 2.9, None);
        assert!(miss.is_empty());
    }

    #[test]
    fn clear_resets_but_len_tracks_inserts() {
        let mut grid = SpatialGrid::new();
        for i in 0..10 {
            grid.insert(EntityId(i), Vec3::new(i as f64, 0.0, 0.0));
        }
        assert_eq!(grid.len(), 10);
        grid.clear();
        assert!(grid.is_empty());
        let (hits, _) = grid.query_radius(Vec3::ZERO, 100.0, None);
        assert!(hits.is_empty());
    }

    #[test]
    fn dense_cells_examine_many_candidates() {
        let mut grid = SpatialGrid::new();
        for i in 0..100 {
            grid.insert(EntityId(i), Vec3::new(0.1 * i as f64 % 2.0, 64.0, 0.0));
        }
        let (_, examined) = grid.query_radius(Vec3::new(1.0, 64.0, 0.0), 1.0, None);
        assert!(examined >= 100, "dense cluster should be fully examined");
    }

    #[test]
    fn remove_deletes_exactly_one_entry() {
        let mut grid = SpatialGrid::new();
        grid.insert(EntityId(1), Vec3::new(1.0, 0.0, 1.0));
        grid.insert(EntityId(2), Vec3::new(1.1, 0.0, 1.0));
        assert!(grid.remove(EntityId(1), Vec3::new(1.0, 0.0, 1.0)));
        assert!(!grid.remove(EntityId(1), Vec3::new(1.0, 0.0, 1.0)));
        assert_eq!(grid.len(), 1);
        let (hits, _) = grid.query_radius(Vec3::new(1.0, 0.0, 1.0), 2.0, None);
        assert_eq!(hits, vec![EntityId(2)]);
    }

    #[test]
    fn candidates_come_back_in_id_order_regardless_of_insertion_order() {
        let mut grid = SpatialGrid::new();
        for id in [5u64, 1, 9, 3, 7] {
            grid.insert(EntityId(id), Vec3::new(0.5, 0.0, 0.5));
        }
        let (hits, _) = grid.query_radius(Vec3::new(0.5, 0.0, 0.5), 1.0, None);
        assert_eq!(
            hits,
            [1, 3, 5, 7, 9].map(EntityId).to_vec(),
            "bucket order is canonical id (spawn) order"
        );
    }

    #[test]
    fn table_growth_preserves_entries_and_order() {
        let mut grid = SpatialGrid::new();
        // Hundreds of distinct cells force several table doublings.
        for i in 0..500u64 {
            grid.insert(
                EntityId(i),
                Vec3::new((i % 25) as f64 * 8.0, 0.0, (i / 25) as f64 * 8.0),
            );
        }
        assert_eq!(grid.len(), 500);
        for i in 0..500u64 {
            let pos = Vec3::new((i % 25) as f64 * 8.0, 0.0, (i / 25) as f64 * 8.0);
            let (hits, _) = grid.query_radius(pos, 0.5, None);
            assert!(hits.contains(&EntityId(i)), "entity {i} lost in growth");
        }
    }

    #[test]
    fn epoch_reuse_never_leaks_previous_contents() {
        let mut grid = SpatialGrid::new();
        for round in 0..5u64 {
            grid.clear();
            for i in 0..50 {
                grid.insert(EntityId(round * 100 + i), Vec3::new(i as f64, 0.0, 0.0));
            }
            let (hits, examined) = grid.query_radius(Vec3::new(25.0, 0.0, 0.0), 100.0, None);
            assert_eq!(hits.len(), 50, "round {round}");
            assert_eq!(examined, 50, "round {round}: stale entries leaked");
        }
    }

    #[test]
    fn proximity_examined_matches_query_radius_accounting() {
        let mut grid = SpatialGrid::new();
        for i in 0..40 {
            grid.insert(EntityId(i), Vec3::new((i % 8) as f64, 64.0, (i / 8) as f64));
        }
        for probe in [
            Vec3::new(0.0, 64.0, 0.0),
            Vec3::new(4.0, 64.0, 2.0),
            Vec3::new(100.0, 0.0, 100.0),
        ] {
            let (_, examined) = grid.query_radius(probe, 1.5, None);
            assert_eq!(grid.proximity_examined(probe, 1.5), examined);
        }
    }
}
