//! Spatial hashing for entity–entity proximity queries.
//!
//! Entity collision detection and item merging need "which entities are near
//! this one" queries every tick. A uniform grid hash keeps those queries
//! cheap while still reflecting the paper's observation that densely packed
//! entities (TNT cuboids, farm collection pits) make the entity stage
//! expensive — dense cells still produce quadratic pair counts.

use std::collections::HashMap;

use crate::entity::EntityId;
use crate::math::Vec3;

/// Cell edge length of the spatial grid, in blocks.
pub const CELL_SIZE: f64 = 4.0;

/// A uniform-grid spatial index over entity positions.
#[derive(Debug, Default)]
pub struct SpatialGrid {
    cells: HashMap<(i32, i32, i32), Vec<(EntityId, Vec3)>>,
    len: usize,
}

fn cell_of(pos: Vec3) -> (i32, i32, i32) {
    (
        (pos.x / CELL_SIZE).floor() as i32,
        (pos.y / CELL_SIZE).floor() as i32,
        (pos.z / CELL_SIZE).floor() as i32,
    )
}

impl SpatialGrid {
    /// Creates an empty grid.
    #[must_use]
    pub fn new() -> Self {
        SpatialGrid::default()
    }

    /// Removes all entries, keeping allocated capacity.
    pub fn clear(&mut self) {
        // Hash-order traversal is provably order-free here: every bucket is
        // cleared independently and nothing derived from the visit order
        // escapes. Keeping the map (and its allocated buckets) beats
        // rebuilding an ordered structure every tick.
        // detlint: allow(no-hash-iteration) -- clears each bucket independently; no order escapes
        for bucket in self.cells.values_mut() {
            bucket.clear();
        }
        self.len = 0;
    }

    /// Inserts an entity at the given position.
    pub fn insert(&mut self, id: EntityId, pos: Vec3) {
        self.cells.entry(cell_of(pos)).or_default().push((id, pos));
        self.len += 1;
    }

    /// Number of entities currently indexed.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when no entities are indexed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns the ids of all entities within `radius` blocks of `pos`,
    /// excluding `exclude` (typically the querying entity itself), together
    /// with the number of candidate entities examined.
    #[must_use]
    pub fn query_radius(
        &self,
        pos: Vec3,
        radius: f64,
        exclude: Option<EntityId>,
    ) -> (Vec<EntityId>, u32) {
        let mut hits = Vec::new();
        let mut examined = 0u32;
        let r_sq = radius * radius;
        let min = cell_of(pos.sub(Vec3::new(radius, radius, radius)));
        let max = cell_of(pos.add(Vec3::new(radius, radius, radius)));
        for cx in min.0..=max.0 {
            for cy in min.1..=max.1 {
                for cz in min.2..=max.2 {
                    if let Some(bucket) = self.cells.get(&(cx, cy, cz)) {
                        for &(id, epos) in bucket {
                            examined += 1;
                            if Some(id) == exclude {
                                continue;
                            }
                            if epos.distance_squared(pos) <= r_sq {
                                hits.push(id);
                            }
                        }
                    }
                }
            }
        }
        (hits, examined)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_grid_has_no_hits() {
        let grid = SpatialGrid::new();
        assert!(grid.is_empty());
        let (hits, examined) = grid.query_radius(Vec3::ZERO, 10.0, None);
        assert!(hits.is_empty());
        assert_eq!(examined, 0);
    }

    #[test]
    fn finds_entities_within_radius() {
        let mut grid = SpatialGrid::new();
        grid.insert(EntityId(1), Vec3::new(0.0, 64.0, 0.0));
        grid.insert(EntityId(2), Vec3::new(2.0, 64.0, 0.0));
        grid.insert(EntityId(3), Vec3::new(50.0, 64.0, 0.0));
        let (hits, _) = grid.query_radius(Vec3::new(0.0, 64.0, 0.0), 5.0, None);
        assert!(hits.contains(&EntityId(1)));
        assert!(hits.contains(&EntityId(2)));
        assert!(!hits.contains(&EntityId(3)));
    }

    #[test]
    fn exclude_skips_the_querying_entity() {
        let mut grid = SpatialGrid::new();
        grid.insert(EntityId(1), Vec3::ZERO);
        grid.insert(EntityId(2), Vec3::new(0.5, 0.0, 0.0));
        let (hits, _) = grid.query_radius(Vec3::ZERO, 2.0, Some(EntityId(1)));
        assert_eq!(hits, vec![EntityId(2)]);
    }

    #[test]
    fn radius_boundary_is_inclusive() {
        let mut grid = SpatialGrid::new();
        grid.insert(EntityId(1), Vec3::new(3.0, 0.0, 0.0));
        let (hits, _) = grid.query_radius(Vec3::ZERO, 3.0, None);
        assert_eq!(hits.len(), 1);
        let (miss, _) = grid.query_radius(Vec3::ZERO, 2.9, None);
        assert!(miss.is_empty());
    }

    #[test]
    fn clear_resets_but_len_tracks_inserts() {
        let mut grid = SpatialGrid::new();
        for i in 0..10 {
            grid.insert(EntityId(i), Vec3::new(i as f64, 0.0, 0.0));
        }
        assert_eq!(grid.len(), 10);
        grid.clear();
        assert!(grid.is_empty());
        let (hits, _) = grid.query_radius(Vec3::ZERO, 100.0, None);
        assert!(hits.is_empty());
    }

    #[test]
    fn dense_cells_examine_many_candidates() {
        let mut grid = SpatialGrid::new();
        for i in 0..100 {
            grid.insert(EntityId(i), Vec3::new(0.1 * i as f64 % 2.0, 64.0, 0.0));
        }
        let (_, examined) = grid.query_radius(Vec3::new(1.0, 64.0, 0.0), 1.0, None);
        assert!(examined >= 100, "dense cluster should be fully examined");
    }
}
