//! The entity manager: one entity-simulation stage per game tick.
//!
//! This is element 6 of the paper's operational model (Figure 4): "Entities
//! are primarily driven by the Game State, including the state of the terrain,
//! players, and entities themselves." The manager owns every entity, runs
//! physics, AI, fuses, item maintenance and spawning each tick, and reports
//! the work performed — the paper's MF4 finding is that this stage dominates
//! non-idle tick time.

use std::collections::{HashMap, HashSet};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mlg_world::shard::{FrozenChunks, TickPipeline};
use mlg_world::world::WorldSnapshot;
use mlg_world::{BlockPos, World};

use crate::ai;
use crate::entity::{Entity, EntityId, EntityKind};
use crate::items;
use crate::math::Vec3;
use crate::physics;
use crate::spatial::SpatialGrid;
use crate::spawning::Spawner;
use crate::tnt;

/// Counters and change lists describing one entity stage tick.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EntityTickReport {
    /// Number of live entities processed this tick.
    pub entities_processed: u64,
    /// World block reads performed by movement/collision physics.
    pub physics_blocks_checked: u64,
    /// Pathfinding nodes expanded by mob AI.
    pub path_nodes_expanded: u64,
    /// Entity-pair proximity candidates examined (collisions, merging).
    pub proximity_candidates: u64,
    /// Spawn candidate positions scanned.
    pub spawn_positions_scanned: u64,
    /// Item entities merged away.
    pub items_merged: u64,
    /// Item entities collected by hoppers.
    pub items_collected: u64,
    /// TNT explosions that went off.
    pub explosions: u64,
    /// Terrain blocks destroyed by explosions this tick.
    pub blocks_destroyed: u64,
    /// Entities spawned this tick (id and kind), for state-update packets.
    pub spawned: Vec<(EntityId, EntityKind)>,
    /// Entities removed this tick, for state-update packets.
    pub removed: Vec<EntityId>,
    /// Entities that moved this tick and their new positions.
    pub moved: Vec<(EntityId, Vec3)>,
}

impl EntityTickReport {
    /// Abstract work units represented by this report, before server-flavor
    /// or environment scaling.
    ///
    /// The per-entity weight is deliberately the largest contributor: the
    /// paper's MF4 finding is that entity processing dominates non-idle tick
    /// time, and real per-mob costs (collision sweeps, sensors, AI goal
    /// selection) are far larger than the handful of block reads the
    /// simulation performs explicitly.
    #[must_use]
    pub fn base_work_units(&self) -> u64 {
        self.entities_processed * 350
            + self.physics_blocks_checked * 3
            + self.path_nodes_expanded * 10
            + self.proximity_candidates * 4
            + self.spawn_positions_scanned * 30
            + self.items_merged * 15
            + self.items_collected * 15
            + self.explosions * 800
            + self.blocks_destroyed * 35
            + self.spawned.len() as u64 * 60
            + self.removed.len() as u64 * 10
    }
}

/// Owns and simulates all entities of one server instance.
pub struct EntityManager {
    entities: HashMap<EntityId, Entity>,
    order: Vec<EntityId>,
    next_id: u64,
    grid: SpatialGrid,
    spawner: Spawner,
    rng: StdRng,
    /// Maximum number of primed TNT entities processed per tick; the PaperMC
    /// flavor lowers this (explosion batching/merging optimization).
    pub max_tnt_per_tick: usize,
    /// Whether natural hostile spawning is enabled.
    pub natural_spawning: bool,
}

impl std::fmt::Debug for EntityManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EntityManager")
            .field("entities", &self.entities.len())
            .field("next_id", &self.next_id)
            .finish()
    }
}

impl EntityManager {
    /// Creates an empty entity manager seeded for deterministic behaviour.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        EntityManager {
            entities: HashMap::new(),
            order: Vec::new(),
            next_id: 1,
            grid: SpatialGrid::new(),
            spawner: Spawner::new(),
            rng: StdRng::seed_from_u64(seed),
            max_tnt_per_tick: usize::MAX,
            natural_spawning: true,
        }
    }

    /// Spawns an entity of `kind` at `pos` and returns its id.
    pub fn spawn(&mut self, kind: EntityKind, pos: Vec3) -> EntityId {
        let id = EntityId(self.next_id);
        self.next_id += 1;
        self.entities.insert(id, Entity::new(id, kind, pos));
        self.order.push(id);
        id
    }

    /// Removes an entity by id. Returns the entity if it existed.
    pub fn remove(&mut self, id: EntityId) -> Option<Entity> {
        self.order.retain(|&e| e != id);
        self.entities.remove(&id)
    }

    /// Removes all entities (used when resetting between iterations).
    pub fn clear(&mut self) {
        self.entities.clear();
        self.order.clear();
    }

    /// Number of live entities.
    #[must_use]
    pub fn count(&self) -> usize {
        self.entities.len()
    }

    /// Number of live hostile mobs.
    #[must_use]
    pub fn hostile_count(&self) -> usize {
        // Walk the spawn-order list, not the hash map: the count itself is
        // order-free, but keeping every traversal canonical is the cheap
        // blanket policy the detlint no-hash-iteration rule enforces.
        self.order
            .iter()
            .filter_map(|id| self.entities.get(id))
            .filter(|e| e.kind.is_hostile())
            .count()
    }

    /// Returns a reference to an entity by id.
    #[must_use]
    pub fn get(&self, id: EntityId) -> Option<&Entity> {
        self.entities.get(&id)
    }

    /// Iterates over all live entities in spawn order.
    pub fn iter(&self) -> impl Iterator<Item = &Entity> {
        self.order.iter().filter_map(|id| self.entities.get(id))
    }

    /// Runs one entity-simulation tick.
    ///
    /// `players` are the positions of connected players (used by AI targeting,
    /// hostile despawning and the spawner). Returns the work report, which
    /// also carries the spawn/remove/move lists the server turns into
    /// state-update packets.
    pub fn tick(&mut self, world: &mut World, players: &[Vec3]) -> EntityTickReport {
        let mut report = EntityTickReport::default();

        // Rebuild the spatial index for this tick, in spawn order so every
        // derived list is reproducible run-to-run.
        self.rebuild_grid();

        let ids: Vec<EntityId> = self.order.clone();
        let mut exploded: Vec<(EntityId, Vec3)> = Vec::new();
        let mut chain_ignitions: Vec<mlg_world::BlockPos> = Vec::new();
        let mut tnt_processed = 0usize;

        for id in &ids {
            let Some(mut entity) = self.entities.remove(id) else {
                continue;
            };
            report.entities_processed += 1;
            entity.age += 1;
            let before_pos = entity.pos;

            // Movement physics for everything.
            let move_out = physics::step(world, &mut entity);
            report.physics_blocks_checked += u64::from(move_out.blocks_checked);

            // Kind-specific behaviour.
            match entity.kind {
                EntityKind::PrimedTnt if tnt_processed < self.max_tnt_per_tick => {
                    tnt_processed += 1;
                    let out = tnt::tick_fuse(world, &mut entity);
                    if out.exploded {
                        let explosion = out.explosion.expect("explosion present when exploded");
                        report.explosions += 1;
                        report.blocks_destroyed += explosion.blocks_destroyed;
                        chain_ignitions.extend(explosion.tnt_ignited);
                        exploded.push((entity.id, entity.pos));
                    }
                }
                kind if kind.is_mob() => {
                    let ai_out = ai::decide(world, &mut entity, players, &mut self.rng);
                    report.path_nodes_expanded += u64::from(ai_out.path_nodes_expanded);
                }
                _ => {}
            }

            // Entity-entity proximity (collision candidates).
            let (_, examined) = self.grid.query_radius(entity.pos, 1.0, Some(entity.id));
            report.proximity_candidates += u64::from(examined);

            if entity.pos.distance_squared(before_pos) > 1e-8 {
                report.moved.push((entity.id, entity.pos));
            }

            self.entities.insert(*id, entity);
        }

        self.resolve_explosions(exploded, chain_ignitions, &mut report);
        self.maintain_items_and_lifecycle(world, players, &mut report);
        report
    }

    /// Runs one entity-simulation tick through the sharded pipeline.
    ///
    /// Entities are batched by owning shard (the shard of the chunk their
    /// position falls in) and the per-entity phase — aging, movement
    /// physics, AI, fuse countdown, proximity queries — fans out across the
    /// worker pool. That phase reads the terrain through a frozen snapshot
    /// and mutates only the entities of its own batch, so batches are fully
    /// independent; results merge in canonical shard order. World-mutating
    /// effects (TNT detonations) and cross-entity phases (knockback, item
    /// merging, hopper collection, despawning, natural spawning) run in a
    /// serial phase afterwards, in the same canonical order.
    ///
    /// Entities are partitioned against the pipeline's *current* shard
    /// map every tick, so after an adaptive rebalance (split or merge of a
    /// quadtree region) they re-batch onto the new partition automatically
    /// — no migration bookkeeping exists to get wrong.
    ///
    /// Mob wander randomness comes from per-shard RNG streams derived from
    /// one serial draw per tick, so the result is **bit-identical at any
    /// thread count**; `pipeline.threads() == 1` is the sequential
    /// reference path. Returns the tick report plus the per-shard entity
    /// counts the compute model uses for its load-balance floor.
    pub fn tick_batched(
        &mut self,
        world: &mut World,
        players: &[Vec3],
        pipeline: &TickPipeline,
    ) -> (EntityTickReport, Vec<u64>) {
        let map = pipeline.shard_map();
        let shard_count = map.count();
        let mut report = EntityTickReport::default();

        self.rebuild_grid();

        // Explosion batching (PaperMC): the first `max_tnt_per_tick` primed
        // TNT entities in canonical spawn order are processed this tick.
        let mut tnt_allowed: HashSet<EntityId> = HashSet::new();
        for id in &self.order {
            if tnt_allowed.len() >= self.max_tnt_per_tick {
                break;
            }
            if self.entities.get(id).map(|e| e.kind) == Some(EntityKind::PrimedTnt) {
                tnt_allowed.insert(*id);
            }
        }

        // One serial draw per tick seeds the per-shard RNG streams, keeping
        // wander decisions deterministic at any thread count.
        let tick_seed: u64 = self.rng.gen();

        // Partition entities by owning shard, preserving spawn order.
        let mut tasks: Vec<EntityShardTask> = (0..shard_count).map(EntityShardTask::new).collect();
        for id in &self.order {
            if let Some(entity) = self.entities.remove(id) {
                let shard = map.shard_of_block(entity.pos.block_pos());
                tasks[shard].batch.push(entity);
            }
        }

        // The per-entity phase reads terrain through an owned chunk
        // snapshot (moved out of the world, not copied) so it can run on
        // the persistent worker pool, whose jobs cannot borrow the tick's
        // stack; the spatial grid rides along the same way and both move
        // back as soon as the phase completes.
        let ctx = EntityPhaseCtx {
            snapshot: world.snapshot_chunks(),
            grid: std::mem::take(&mut self.grid),
            allowed: tnt_allowed,
            players: players.to_vec(),
            tick_seed,
        };
        let (returned, ctx) =
            pipeline
                .scope()
                .run_tasks_ctx(tasks, ctx, |_, task, ctx: &EntityPhaseCtx| {
                    let mut rng = StdRng::seed_from_u64(
                        ctx.tick_seed ^ (task.shard as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    let mut frozen = FrozenChunks(&ctx.snapshot);
                    for entity in &mut task.batch {
                        task.processed += 1;
                        entity.age += 1;
                        let before_pos = entity.pos;
                        let move_out = physics::step(&mut frozen, entity);
                        task.physics_blocks_checked += u64::from(move_out.blocks_checked);
                        match entity.kind {
                            EntityKind::PrimedTnt if ctx.allowed.contains(&entity.id) => {
                                if entity.fuse > 0 {
                                    entity.fuse -= 1;
                                } else {
                                    // World mutation is deferred to the serial
                                    // phase; only mark the detonation here.
                                    task.detonations.push((entity.id, entity.pos));
                                }
                            }
                            kind if kind.is_mob() => {
                                let ai_out =
                                    ai::decide(&mut frozen, entity, &ctx.players, &mut rng);
                                task.path_nodes_expanded += u64::from(ai_out.path_nodes_expanded);
                            }
                            _ => {}
                        }
                        let (_, examined) = ctx.grid.query_radius(entity.pos, 1.0, Some(entity.id));
                        task.proximity_candidates += u64::from(examined);
                        if entity.pos.distance_squared(before_pos) > 1e-8 {
                            task.moved.push((entity.id, entity.pos));
                        }
                    }
                });
        tasks = returned;
        world.restore_chunks(ctx.snapshot);
        self.grid = ctx.grid;

        // Merge in canonical shard order.
        let mut per_shard = vec![0u64; shard_count];
        let mut detonations: Vec<(EntityId, Vec3)> = Vec::new();
        for task in &mut tasks {
            per_shard[task.shard] = task.processed;
            report.entities_processed += task.processed;
            report.physics_blocks_checked += task.physics_blocks_checked;
            report.path_nodes_expanded += task.path_nodes_expanded;
            report.proximity_candidates += task.proximity_candidates;
            report.moved.append(&mut task.moved);
            detonations.append(&mut task.detonations);
            for entity in task.batch.drain(..) {
                self.entities.insert(entity.id, entity);
            }
        }

        // Serial phase: detonations against the real world, in canonical
        // order, then the shared cross-entity tail.
        let mut exploded: Vec<(EntityId, Vec3)> = Vec::new();
        let mut chain_ignitions: Vec<BlockPos> = Vec::new();
        for (id, pos) in detonations {
            let explosion = mlg_world::sim::explode(world, pos.block_pos(), tnt::TNT_POWER);
            report.explosions += 1;
            report.blocks_destroyed += explosion.blocks_destroyed;
            chain_ignitions.extend(explosion.tnt_ignited);
            exploded.push((id, pos));
        }
        self.resolve_explosions(exploded, chain_ignitions, &mut report);
        self.maintain_items_and_lifecycle(world, players, &mut report);
        (report, per_shard)
    }

    /// Rebuilds the spatial index from the live entities, in spawn order.
    fn rebuild_grid(&mut self) {
        self.grid.clear();
        for id in &self.order {
            if let Some(entity) = self.entities.get(id) {
                self.grid.insert(entity.id, entity.pos);
            }
        }
    }

    /// Removes exploded TNT entities (with knockback on everything nearby)
    /// and primes the chain-reaction spawns.
    fn resolve_explosions(
        &mut self,
        exploded: Vec<(EntityId, Vec3)>,
        chain_ignitions: Vec<BlockPos>,
        report: &mut EntityTickReport,
    ) {
        // Remove exploded TNT and knock back nearby entities, in spawn
        // order. Each entity's velocity update is independent, but spawn
        // order keeps the traversal canonical (and any future non-commutative
        // effect deterministic by construction).
        for (id, blast_pos) in &exploded {
            self.remove(*id);
            report.removed.push(*id);
            for eid in &self.order {
                if let Some(e) = self.entities.get_mut(eid) {
                    let push = tnt::knockback(*blast_pos, e.pos);
                    e.velocity = e.velocity.add(push);
                }
            }
        }

        // Chain reaction: ignited TNT blocks become primed TNT entities with
        // short, staggered fuses so the chain progresses over several ticks.
        for (i, pos) in chain_ignitions.iter().enumerate() {
            let fuse = 10 + (i % 10) as u16;
            let id = self.spawn(EntityKind::PrimedTnt, Vec3::from_block_center(*pos));
            if let Some(e) = self.entities.get_mut(&id) {
                e.fuse = fuse;
            }
            report.spawned.push((id, EntityKind::PrimedTnt));
        }
    }

    /// The cross-entity tail every tick variant shares: item merging,
    /// hopper collection, despawning and natural spawning.
    fn maintain_items_and_lifecycle(
        &mut self,
        world: &mut World,
        players: &[Vec3],
        report: &mut EntityTickReport,
    ) {
        // Item maintenance: merging and hopper collection.
        let mut all: Vec<Entity> = self
            .order
            .iter()
            .filter_map(|id| self.entities.get(id))
            .cloned()
            .collect();
        let merge_out = items::merge_items(&mut all, &self.grid);
        report.proximity_candidates += u64::from(merge_out.candidates_examined);
        report.items_merged += merge_out.merged_away.len() as u64;
        for e in all {
            if let Some(existing) = self.entities.get_mut(&e.id) {
                existing.stack_size = e.stack_size;
            }
        }
        for id in merge_out.merged_away {
            self.remove(id);
            report.removed.push(id);
        }
        let snapshot: Vec<Entity> = self
            .order
            .iter()
            .filter_map(|id| self.entities.get(id))
            .cloned()
            .collect();
        let collect_out = items::collect_into_hoppers(world, &snapshot);
        report.items_collected += collect_out.collected.len() as u64;
        for id in collect_out.collected {
            self.remove(id);
            report.removed.push(id);
        }

        // Despawning, in spawn order so the removal list is deterministic.
        let despawn_ids: Vec<EntityId> = self
            .order
            .iter()
            .filter_map(|id| self.entities.get(id))
            .filter(|e| {
                let nearest = players
                    .iter()
                    .map(|p| p.distance(e.pos))
                    .fold(f64::INFINITY, f64::min);
                e.should_despawn(nearest)
            })
            .map(|e| e.id)
            .collect();
        for id in despawn_ids {
            self.remove(id);
            report.removed.push(id);
        }

        // Natural spawning near players.
        if self.natural_spawning && !players.is_empty() {
            let hostile = self.hostile_count();
            let spawn_out = self.spawner.tick(world, players, hostile, &mut self.rng);
            report.spawn_positions_scanned += u64::from(spawn_out.positions_scanned);
            for (kind, pos) in spawn_out.spawns {
                let id = self.spawn(kind, pos);
                report.spawned.push((id, kind));
            }
        }
    }
}

/// Per-shard entity batch processed by one worker during
/// [`EntityManager::tick_batched`].
struct EntityShardTask {
    shard: usize,
    /// The shard's entities in spawn order (named distinctly from the
    /// manager's `entities` map: detlint's scanner tracks hash-typed
    /// identifiers by name within a file).
    batch: Vec<Entity>,
    moved: Vec<(EntityId, Vec3)>,
    detonations: Vec<(EntityId, Vec3)>,
    processed: u64,
    physics_blocks_checked: u64,
    path_nodes_expanded: u64,
    proximity_candidates: u64,
}

impl EntityShardTask {
    fn new(shard: usize) -> Self {
        EntityShardTask {
            shard,
            batch: Vec::new(),
            moved: Vec::new(),
            detonations: Vec::new(),
            processed: 0,
            physics_blocks_checked: 0,
            path_nodes_expanded: 0,
            proximity_candidates: 0,
        }
    }
}

/// Shared context of the parallel per-entity phase: the world's chunks
/// (moved, not copied), the tick's spatial grid, the TNT batching
/// allowance, player positions and the tick's RNG seed — everything the
/// shard workers read, owned so the phase can run on the persistent worker
/// pool. The snapshot and grid move back into place when the phase ends.
struct EntityPhaseCtx {
    snapshot: WorldSnapshot,
    grid: SpatialGrid,
    allowed: HashSet<EntityId>,
    players: Vec<Vec3>,
    tick_seed: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlg_world::generation::FlatGenerator;
    use mlg_world::{Block, BlockKind, BlockPos};

    fn world() -> World {
        World::new(Box::new(FlatGenerator::grassland()), 7)
    }

    fn manager() -> EntityManager {
        let mut m = EntityManager::new(11);
        m.natural_spawning = false;
        m
    }

    #[test]
    fn spawn_and_remove_entities() {
        let mut m = manager();
        let id = m.spawn(EntityKind::Cow, Vec3::new(0.5, 61.0, 0.5));
        assert_eq!(m.count(), 1);
        assert!(m.get(id).is_some());
        let removed = m.remove(id).unwrap();
        assert_eq!(removed.id, id);
        assert_eq!(m.count(), 0);
    }

    #[test]
    fn ids_are_unique_and_increasing() {
        let mut m = manager();
        let a = m.spawn(EntityKind::Cow, Vec3::ZERO);
        let b = m.spawn(EntityKind::Cow, Vec3::ZERO);
        assert!(b > a);
    }

    #[test]
    fn tick_processes_every_entity() {
        let mut m = manager();
        let mut w = world();
        for i in 0..10 {
            m.spawn(EntityKind::Cow, Vec3::new(i as f64, 65.0, 0.5));
        }
        let report = m.tick(&mut w, &[]);
        assert_eq!(report.entities_processed, 10);
        assert!(report.physics_blocks_checked > 0);
        // Falling cows moved.
        assert_eq!(report.moved.len(), 10);
    }

    #[test]
    fn tnt_explosion_removes_entity_and_reports_destruction() {
        let mut m = manager();
        let mut w = world();
        let id = m.spawn(EntityKind::PrimedTnt, Vec3::new(8.5, 61.0, 8.5));
        // Shorten the fuse so it detonates on the second tick.
        if let Some(e) = m.entities.get_mut(&id) {
            e.fuse = 1;
        }
        let first = m.tick(&mut w, &[]);
        assert_eq!(first.explosions, 0);
        let second = m.tick(&mut w, &[]);
        assert_eq!(second.explosions, 1);
        assert!(second.blocks_destroyed > 0);
        assert!(second.removed.contains(&id));
        assert_eq!(m.count(), 0);
    }

    #[test]
    fn tnt_chain_reaction_spawns_more_primed_tnt() {
        let mut m = manager();
        let mut w = world();
        // A small cluster of TNT blocks next to the primed charge.
        for dx in 0..4 {
            w.set_block_silent(BlockPos::new(9 + dx, 61, 8), Block::simple(BlockKind::Tnt));
        }
        let id = m.spawn(EntityKind::PrimedTnt, Vec3::new(8.5, 61.0, 8.5));
        if let Some(e) = m.entities.get_mut(&id) {
            e.fuse = 0;
        }
        let report = m.tick(&mut w, &[]);
        assert_eq!(report.explosions, 1);
        assert_eq!(
            report.spawned.len(),
            4,
            "ignited blocks become primed TNT entities"
        );
        assert_eq!(m.count(), 4);
    }

    #[test]
    fn explosions_knock_back_other_entities() {
        let mut m = manager();
        let mut w = world();
        let bystander = m.spawn(EntityKind::Cow, Vec3::new(11.5, 61.0, 8.5));
        let charge = m.spawn(EntityKind::PrimedTnt, Vec3::new(8.5, 61.0, 8.5));
        if let Some(e) = m.entities.get_mut(&charge) {
            e.fuse = 0;
        }
        m.tick(&mut w, &[]);
        let cow = m.get(bystander).unwrap();
        assert!(
            cow.velocity.x > 0.0,
            "cow should be pushed away from the blast"
        );
    }

    #[test]
    fn item_merging_reduces_entity_count() {
        let mut m = manager();
        let mut w = world();
        for i in 0..5 {
            m.spawn(
                EntityKind::Item(BlockKind::Cobblestone),
                Vec3::new(4.0 + 0.1 * i as f64, 61.5, 4.0),
            );
        }
        let report = m.tick(&mut w, &[]);
        assert!(report.items_merged > 0);
        assert!(m.count() < 5);
    }

    #[test]
    fn hoppers_collect_dropped_items() {
        let mut m = manager();
        let mut w = world();
        w.set_block_silent(BlockPos::new(4, 61, 4), Block::simple(BlockKind::Hopper));
        m.spawn(EntityKind::Item(BlockKind::Kelp), Vec3::new(4.5, 62.2, 4.5));
        // Give the item a couple of ticks to settle onto the hopper.
        let mut collected = 0;
        for _ in 0..5 {
            let r = m.tick(&mut w, &[]);
            collected += r.items_collected;
        }
        assert!(collected >= 1);
        assert_eq!(m.count(), 0);
    }

    #[test]
    fn old_items_despawn() {
        let mut m = manager();
        let mut w = world();
        let id = m.spawn(
            EntityKind::Item(BlockKind::Stone),
            Vec3::new(4.5, 61.5, 4.5),
        );
        if let Some(e) = m.entities.get_mut(&id) {
            e.age = 7_000;
        }
        let report = m.tick(&mut w, &[]);
        assert!(report.removed.contains(&id));
        assert_eq!(m.count(), 0);
    }

    #[test]
    fn natural_spawning_requires_players_and_darkness() {
        let mut m = EntityManager::new(5);
        m.natural_spawning = true;
        let mut w = world();
        // No players: nothing spawns and nothing is scanned.
        let r = m.tick(&mut w, &[]);
        assert_eq!(r.spawn_positions_scanned, 0);
        // With a player on the bright surface, positions are scanned but the
        // surface is too bright to spawn hostiles.
        let r2 = m.tick(&mut w, &[Vec3::new(0.5, 61.0, 0.5)]);
        assert!(r2.spawn_positions_scanned > 0);
    }

    #[test]
    fn work_units_reflect_activity() {
        let report = EntityTickReport {
            entities_processed: 10,
            explosions: 1,
            ..EntityTickReport::default()
        };
        assert!(report.base_work_units() >= 10 * 20 + 500);
        assert_eq!(EntityTickReport::default().base_work_units(), 0);
    }

    /// A cross-stripe entity population: cows, zombies, items and fused
    /// TNT spread over several shard stripes.
    fn batched_setup(seed: u64) -> (EntityManager, World) {
        let mut m = EntityManager::new(seed);
        m.natural_spawning = false;
        let mut w = world();
        w.ensure_area(mlg_world::ChunkPos::new(2, 0), 4);
        for x in [5, 40, 75, 100] {
            m.spawn(EntityKind::Cow, Vec3::new(x as f64 + 0.5, 64.0, 8.5));
            m.spawn(EntityKind::Zombie, Vec3::new(x as f64 + 2.5, 61.0, 8.5));
            m.spawn(
                EntityKind::Item(BlockKind::Cobblestone),
                Vec3::new(x as f64 + 0.6, 61.5, 8.6),
            );
            m.spawn(
                EntityKind::Item(BlockKind::Cobblestone),
                Vec3::new(x as f64 + 0.9, 61.5, 8.7),
            );
            let tnt = m.spawn(EntityKind::PrimedTnt, Vec3::new(x as f64 + 5.5, 61.0, 12.5));
            if let Some(e) = m.entities.get_mut(&tnt) {
                e.fuse = 2;
            }
            w.set_block_silent(
                BlockPos::new(x + 7, 61, 12),
                mlg_world::Block::simple(BlockKind::Tnt),
            );
        }
        (m, w)
    }

    fn run_batched(
        seed: u64,
        pipeline: &TickPipeline,
        ticks: u32,
    ) -> (Vec<EntityTickReport>, usize, u64) {
        let (mut m, mut w) = batched_setup(seed);
        let players = [Vec3::new(8.5, 61.0, 8.5)];
        let mut reports = Vec::new();
        for _ in 0..ticks {
            let (report, per_shard) = m.tick_batched(&mut w, &players, pipeline);
            assert_eq!(per_shard.len(), pipeline.shards() as usize);
            assert_eq!(
                per_shard.iter().sum::<u64>(),
                report.entities_processed,
                "per-shard counts must cover every processed entity"
            );
            reports.push(report);
        }
        (reports, m.count(), w.total_non_air_blocks())
    }

    #[test]
    fn batched_tick_is_bit_identical_across_thread_counts() {
        for shards in [1, 2, 4, 8] {
            let reference = run_batched(77, &TickPipeline::new(shards, 1), 10);
            let parallel = run_batched(77, &TickPipeline::new(shards, 4), 10);
            assert_eq!(
                reference, parallel,
                "shards={shards} threads=4 diverged from the sequential path"
            );
        }
    }

    #[test]
    fn batched_tick_detonates_tnt_and_chains() {
        let (reports, _, _) = run_batched(9, &TickPipeline::new(4, 2), 10);
        let explosions: u64 = reports.iter().map(|r| r.explosions).sum();
        assert!(explosions >= 4, "all primed TNT should detonate");
        let spawned: usize = reports.iter().map(|r| r.spawned.len()).sum();
        assert!(spawned >= 4, "chain reactions should prime the TNT blocks");
    }

    #[test]
    fn batched_tick_respects_the_tnt_cap() {
        let (mut m, mut w) = batched_setup(31);
        m.max_tnt_per_tick = 1;
        let pipeline = TickPipeline::new(4, 2);
        // Fuses are 2: with the cap only one TNT progresses per tick.
        let mut first_explosion_report = None;
        for tick in 0..6 {
            let (report, _) = m.tick_batched(&mut w, &[], &pipeline);
            if report.explosions > 0 {
                first_explosion_report = Some((tick, report.explosions));
                break;
            }
        }
        let (_, explosions) = first_explosion_report.expect("one TNT must explode");
        assert_eq!(explosions, 1, "the cap limits detonations per tick");
    }

    #[test]
    fn clear_empties_the_manager() {
        let mut m = manager();
        m.spawn(EntityKind::Cow, Vec3::ZERO);
        m.spawn(EntityKind::Villager, Vec3::ZERO);
        m.clear();
        assert_eq!(m.count(), 0);
        assert_eq!(m.iter().count(), 0);
    }
}
