//! The entity manager: one entity-simulation stage per game tick.
//!
//! This is element 6 of the paper's operational model (Figure 4): "Entities
//! are primarily driven by the Game State, including the state of the terrain,
//! players, and entities themselves." The manager owns every entity, runs
//! physics, AI, fuses, item maintenance and spawning each tick, and reports
//! the work performed — the paper's MF4 finding is that this stage dominates
//! non-idle tick time.
//!
//! Entity state lives in the columnar [`EntityStore`]: dense parallel
//! columns in spawn order, tombstoned removal, stable compaction. The
//! spatial grid is maintained incrementally from the store's position
//! column at the start of each tick and then **frozen** for the tick's
//! duration: mid-tick removals record a deferred grid eviction instead of
//! touching the index, so every proximity query in a tick sees the same
//! tick-start snapshot regardless of processing order — a load-bearing
//! piece of the bit-identity contract.

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mlg_world::shard::{FrozenChunks, TickPipeline};
use mlg_world::world::WorldSnapshot;
use mlg_world::{BlockPos, World};

use crate::ai;
use crate::entity::{Entity, EntityId, EntityKind};
use crate::items;
use crate::math::Vec3;
use crate::physics;
use crate::spatial::SpatialGrid;
use crate::spawning::Spawner;
use crate::store::EntityStore;
use crate::tnt;

/// Counters and change lists describing one entity stage tick.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EntityTickReport {
    /// Number of live entities processed this tick.
    pub entities_processed: u64,
    /// World block reads performed by movement/collision physics.
    pub physics_blocks_checked: u64,
    /// Pathfinding nodes expanded by mob AI.
    pub path_nodes_expanded: u64,
    /// Entity-pair proximity candidates examined (collisions, merging).
    pub proximity_candidates: u64,
    /// Spawn candidate positions scanned.
    pub spawn_positions_scanned: u64,
    /// Item entities merged away.
    pub items_merged: u64,
    /// Item entities collected by hoppers.
    pub items_collected: u64,
    /// TNT explosions that went off.
    pub explosions: u64,
    /// Terrain blocks destroyed by explosions this tick.
    pub blocks_destroyed: u64,
    /// Entities spawned this tick (id and kind), for state-update packets.
    pub spawned: Vec<(EntityId, EntityKind)>,
    /// Entities removed this tick, for state-update packets.
    pub removed: Vec<EntityId>,
    /// Entities that moved this tick and their new positions.
    pub moved: Vec<(EntityId, Vec3)>,
}

impl EntityTickReport {
    /// Abstract work units represented by this report, before server-flavor
    /// or environment scaling.
    ///
    /// The per-entity weight is deliberately the largest contributor: the
    /// paper's MF4 finding is that entity processing dominates non-idle tick
    /// time, and real per-mob costs (collision sweeps, sensors, AI goal
    /// selection) are far larger than the handful of block reads the
    /// simulation performs explicitly.
    #[must_use]
    pub fn base_work_units(&self) -> u64 {
        self.entities_processed * 350
            + self.physics_blocks_checked * 3
            + self.path_nodes_expanded * 10
            + self.proximity_candidates * 4
            + self.spawn_positions_scanned * 30
            + self.items_merged * 15
            + self.items_collected * 15
            + self.explosions * 800
            + self.blocks_destroyed * 35
            + self.spawned.len() as u64 * 60
            + self.removed.len() as u64 * 10
    }
}

/// Owns and simulates all entities of one server instance.
pub struct EntityManager {
    store: EntityStore,
    next_id: u64,
    grid: SpatialGrid,
    /// Grid entries owed an eviction at the next tick start: entities
    /// removed mid-tick stay visible to the tick's remaining proximity
    /// queries (frozen tick-start snapshot semantics).
    grid_evictions: Vec<(EntityId, Vec3)>,
    spawner: Spawner,
    rng: StdRng,
    /// Maximum number of primed TNT entities processed per tick; the PaperMC
    /// flavor lowers this (explosion batching/merging optimization).
    pub max_tnt_per_tick: usize,
    /// Whether natural hostile spawning is enabled.
    pub natural_spawning: bool,
}

impl std::fmt::Debug for EntityManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EntityManager")
            .field("entities", &self.store.live_count())
            .field("next_id", &self.next_id)
            .finish()
    }
}

impl EntityManager {
    /// Creates an empty entity manager seeded for deterministic behaviour.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        EntityManager {
            store: EntityStore::new(),
            next_id: 1,
            grid: SpatialGrid::new(),
            grid_evictions: Vec::new(),
            spawner: Spawner::new(),
            rng: StdRng::seed_from_u64(seed),
            max_tnt_per_tick: usize::MAX,
            natural_spawning: true,
        }
    }

    /// Spawns an entity of `kind` at `pos` and returns its id.
    pub fn spawn(&mut self, kind: EntityKind, pos: Vec3) -> EntityId {
        let id = EntityId(self.next_id);
        self.next_id += 1;
        self.store.push(Entity::new(id, kind, pos));
        id
    }

    /// Removes an entity by id in O(log n). Returns the entity if it
    /// existed. The spatial index keeps its entry until the next tick
    /// start (see [`EntityManager`] docs on frozen-grid semantics).
    pub fn remove(&mut self, id: EntityId) -> Option<Entity> {
        let (entity, grid_entry) = self.store.kill(id)?;
        if let Some(pos) = grid_entry {
            self.grid_evictions.push((id, pos));
        }
        Some(entity)
    }

    /// Removes all entities (used when resetting between iterations).
    pub fn clear(&mut self) {
        self.store.clear();
        self.grid.clear();
        self.grid_evictions.clear();
    }

    /// Number of live entities.
    #[must_use]
    pub fn count(&self) -> usize {
        self.store.live_count()
    }

    /// Number of live hostile mobs: a dense walk over the kind column.
    #[must_use]
    pub fn hostile_count(&self) -> usize {
        (0..self.store.rows())
            .filter(|&row| self.store.is_live(row) && self.store.kind_at(row).is_hostile())
            .count()
    }

    /// Returns the entity with `id`, materialized from its columns.
    #[must_use]
    pub fn get(&self, id: EntityId) -> Option<Entity> {
        self.store.get(id)
    }

    /// Applies `f` to the entity with `id` and writes the result back.
    /// Returns `false` when no such live entity exists. Position changes
    /// are picked up by the next tick's grid sync.
    pub fn modify(&mut self, id: EntityId, f: impl FnOnce(&mut Entity)) -> bool {
        let Some(row) = self.store.row_of(id) else {
            return false;
        };
        let mut entity = self.store.entity_at(row);
        f(&mut entity);
        self.store.write_row(row, &entity);
        true
    }

    /// Iterates over all live entities in spawn order, materialized.
    pub fn iter(&self) -> impl Iterator<Item = Entity> + '_ {
        self.store.iter_live()
    }

    /// Brings the spatial index to this tick's frozen snapshot: applies
    /// the evictions deferred from last tick, compacts the store if
    /// tombstones dominate, and re-indexes entities that spawned or moved
    /// since the last sync. Equivalent to (but much cheaper than) a full
    /// clear-and-rebuild in spawn order.
    fn prepare_grid(&mut self) {
        for (id, pos) in self.grid_evictions.drain(..) {
            self.grid.remove(id, pos);
        }
        self.store.maybe_compact();
        self.store.sync_grid(&mut self.grid);
    }

    /// Runs one entity-simulation tick.
    ///
    /// `players` are the positions of connected players (used by AI targeting,
    /// hostile despawning and the spawner). Returns the work report, which
    /// also carries the spawn/remove/move lists the server turns into
    /// state-update packets.
    pub fn tick(&mut self, world: &mut World, players: &[Vec3]) -> EntityTickReport {
        let mut report = EntityTickReport::default();

        self.prepare_grid();

        // Entities spawned during the tick occupy rows past this bound and
        // are first processed next tick — the same visibility rule the old
        // id-snapshot loop enforced.
        let rows_at_start = self.store.rows();
        let mut exploded: Vec<(EntityId, Vec3)> = Vec::new();
        let mut chain_ignitions: Vec<mlg_world::BlockPos> = Vec::new();
        let mut tnt_processed = 0usize;

        for row in 0..rows_at_start {
            if !self.store.is_live(row) {
                continue;
            }
            let mut entity = self.store.entity_at(row);
            report.entities_processed += 1;
            entity.age += 1;
            let before_pos = entity.pos;

            // Movement physics for everything.
            let move_out = physics::step(world, &mut entity);
            report.physics_blocks_checked += u64::from(move_out.blocks_checked);

            // Kind-specific behaviour.
            match entity.kind {
                EntityKind::PrimedTnt if tnt_processed < self.max_tnt_per_tick => {
                    tnt_processed += 1;
                    let out = tnt::tick_fuse(world, &mut entity);
                    if out.exploded {
                        let explosion = out.explosion.expect("explosion present when exploded");
                        report.explosions += 1;
                        report.blocks_destroyed += explosion.blocks_destroyed;
                        chain_ignitions.extend(explosion.tnt_ignited);
                        exploded.push((entity.id, entity.pos));
                    }
                }
                kind if kind.is_mob() => {
                    let ai_out = ai::decide(world, &mut entity, players, &mut self.rng);
                    report.path_nodes_expanded += u64::from(ai_out.path_nodes_expanded);
                }
                _ => {}
            }

            // Entity-entity proximity (collision candidates). The query
            // discards hits, so only the candidate count is computed.
            let examined = self.grid.proximity_examined(entity.pos, 1.0);
            report.proximity_candidates += u64::from(examined);

            if entity.pos.distance_squared(before_pos) > 1e-8 {
                report.moved.push((entity.id, entity.pos));
            }

            self.store.write_row(row, &entity);
        }

        self.resolve_explosions(exploded, chain_ignitions, &mut report);
        self.maintain_items_and_lifecycle(world, players, &mut report);
        report
    }

    /// Runs one entity-simulation tick through the sharded pipeline.
    ///
    /// Entities are batched by owning shard (the shard of the chunk their
    /// position falls in) and the per-entity phase — aging, movement
    /// physics, AI, fuse countdown, proximity queries — fans out across the
    /// worker pool. That phase reads the terrain through a frozen snapshot
    /// and mutates only the entities of its own batch, so batches are fully
    /// independent; results merge in canonical shard order. World-mutating
    /// effects (TNT detonations) and cross-entity phases (knockback, item
    /// merging, hopper collection, despawning, natural spawning) run in a
    /// serial phase afterwards, in the same canonical order.
    ///
    /// Entities are partitioned against the pipeline's *current* shard
    /// map every tick, so after an adaptive rebalance (split or merge of a
    /// quadtree region) they re-batch onto the new partition automatically
    /// — no migration bookkeeping exists to get wrong.
    ///
    /// Mob wander randomness comes from per-shard RNG streams derived from
    /// one serial draw per tick, so the result is **bit-identical at any
    /// thread count**; `pipeline.threads() == 1` is the sequential
    /// reference path. Returns the tick report plus the per-shard entity
    /// counts the compute model uses for its load-balance floor.
    pub fn tick_batched(
        &mut self,
        world: &mut World,
        players: &[Vec3],
        pipeline: &TickPipeline,
    ) -> (EntityTickReport, Vec<u64>) {
        let map = pipeline.shard_map();
        let shard_count = map.count();
        let mut report = EntityTickReport::default();

        self.prepare_grid();

        // Explosion batching (PaperMC): the first `max_tnt_per_tick` primed
        // TNT entities in canonical spawn order are processed this tick.
        let mut tnt_allowed: HashSet<EntityId> = HashSet::new();
        for row in 0..self.store.rows() {
            if tnt_allowed.len() >= self.max_tnt_per_tick {
                break;
            }
            if self.store.is_live(row) && self.store.kind_at(row) == EntityKind::PrimedTnt {
                tnt_allowed.insert(self.store.id_at(row));
            }
        }

        // One serial draw per tick seeds the per-shard RNG streams, keeping
        // wander decisions deterministic at any thread count.
        let tick_seed: u64 = self.rng.gen();

        // Partition entities by owning shard, preserving spawn order; each
        // task remembers its rows for the direct column write-back.
        let mut tasks: Vec<EntityShardTask> = (0..shard_count).map(EntityShardTask::new).collect();
        for row in 0..self.store.rows() {
            if !self.store.is_live(row) {
                continue;
            }
            let entity = self.store.entity_at(row);
            let shard = map.shard_of_block(entity.pos.block_pos());
            tasks[shard].rows.push(row);
            tasks[shard].batch.push(entity);
        }

        // The per-entity phase reads terrain through an owned chunk
        // snapshot (moved out of the world, not copied) so it can run on
        // the persistent worker pool, whose jobs cannot borrow the tick's
        // stack; the spatial grid rides along the same way and both move
        // back as soon as the phase completes.
        let ctx = EntityPhaseCtx {
            snapshot: world.snapshot_chunks(),
            grid: std::mem::take(&mut self.grid),
            allowed: tnt_allowed,
            players: players.to_vec(),
            tick_seed,
        };
        let (returned, ctx) =
            pipeline
                .scope()
                .run_tasks_ctx(tasks, ctx, |_, task, ctx: &EntityPhaseCtx| {
                    let mut rng = StdRng::seed_from_u64(
                        ctx.tick_seed ^ (task.shard as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    let mut frozen = FrozenChunks(&ctx.snapshot);
                    for entity in &mut task.batch {
                        task.processed += 1;
                        entity.age += 1;
                        let before_pos = entity.pos;
                        let move_out = physics::step(&mut frozen, entity);
                        task.physics_blocks_checked += u64::from(move_out.blocks_checked);
                        match entity.kind {
                            EntityKind::PrimedTnt if ctx.allowed.contains(&entity.id) => {
                                if entity.fuse > 0 {
                                    entity.fuse -= 1;
                                } else {
                                    // World mutation is deferred to the serial
                                    // phase; only mark the detonation here.
                                    task.detonations.push((entity.id, entity.pos));
                                }
                            }
                            kind if kind.is_mob() => {
                                let ai_out =
                                    ai::decide(&mut frozen, entity, &ctx.players, &mut rng);
                                task.path_nodes_expanded += u64::from(ai_out.path_nodes_expanded);
                            }
                            _ => {}
                        }
                        let examined = ctx.grid.proximity_examined(entity.pos, 1.0);
                        task.proximity_candidates += u64::from(examined);
                        if entity.pos.distance_squared(before_pos) > 1e-8 {
                            task.moved.push((entity.id, entity.pos));
                        }
                    }
                });
        tasks = returned;
        world.restore_chunks(ctx.snapshot);
        self.grid = ctx.grid;

        // Merge in canonical shard order, writing each batch straight back
        // into its recorded rows.
        let mut per_shard = vec![0u64; shard_count];
        let mut detonations: Vec<(EntityId, Vec3)> = Vec::new();
        for task in &mut tasks {
            per_shard[task.shard] = task.processed;
            report.entities_processed += task.processed;
            report.physics_blocks_checked += task.physics_blocks_checked;
            report.path_nodes_expanded += task.path_nodes_expanded;
            report.proximity_candidates += task.proximity_candidates;
            report.moved.append(&mut task.moved);
            detonations.append(&mut task.detonations);
            for (&row, entity) in task.rows.iter().zip(task.batch.drain(..)) {
                self.store.write_row(row, &entity);
            }
        }

        // Serial phase: detonations against the real world, in canonical
        // order, then the shared cross-entity tail.
        let mut exploded: Vec<(EntityId, Vec3)> = Vec::new();
        let mut chain_ignitions: Vec<BlockPos> = Vec::new();
        for (id, pos) in detonations {
            let explosion = mlg_world::sim::explode(world, pos.block_pos(), tnt::TNT_POWER);
            report.explosions += 1;
            report.blocks_destroyed += explosion.blocks_destroyed;
            chain_ignitions.extend(explosion.tnt_ignited);
            exploded.push((id, pos));
        }
        self.resolve_explosions(exploded, chain_ignitions, &mut report);
        self.maintain_items_and_lifecycle(world, players, &mut report);
        (report, per_shard)
    }

    /// Removes exploded TNT entities (with knockback on everything nearby)
    /// and primes the chain-reaction spawns.
    fn resolve_explosions(
        &mut self,
        exploded: Vec<(EntityId, Vec3)>,
        chain_ignitions: Vec<BlockPos>,
        report: &mut EntityTickReport,
    ) {
        // Remove exploded TNT and knock back nearby entities, in spawn
        // order. Each entity's velocity update is independent, but spawn
        // order keeps the traversal canonical (and any future non-commutative
        // effect deterministic by construction). The knockback is applied
        // unconditionally (it is zero outside the blast radius) so the
        // float operations match the original map-based loop bit-for-bit.
        for (id, blast_pos) in &exploded {
            self.remove(*id);
            report.removed.push(*id);
            for row in 0..self.store.rows() {
                if !self.store.is_live(row) {
                    continue;
                }
                let push = tnt::knockback(*blast_pos, self.store.position_at(row));
                self.store.add_velocity(row, push);
            }
        }

        // Chain reaction: ignited TNT blocks become primed TNT entities with
        // short, staggered fuses so the chain progresses over several ticks.
        for (i, pos) in chain_ignitions.iter().enumerate() {
            let fuse = 10 + (i % 10) as u16;
            let id = self.spawn(EntityKind::PrimedTnt, Vec3::from_block_center(*pos));
            if let Some(row) = self.store.row_of(id) {
                self.store.set_fuse(row, fuse);
            }
            report.spawned.push((id, EntityKind::PrimedTnt));
        }
    }

    /// The cross-entity tail every tick variant shares: item merging,
    /// hopper collection, despawning and natural spawning.
    fn maintain_items_and_lifecycle(
        &mut self,
        world: &mut World,
        players: &[Vec3],
        report: &mut EntityTickReport,
    ) {
        // Item maintenance: merging and hopper collection share one
        // materialized pass over the live population (the hopper snapshot
        // is the merge list minus the merged-away entities — no second
        // full copy).
        let mut all: Vec<Entity> = self.store.iter_live().collect();
        let merge_out = items::merge_items(&mut all, &self.grid);
        report.proximity_candidates += u64::from(merge_out.candidates_examined);
        report.items_merged += merge_out.merged_away.len() as u64;
        for e in &all {
            self.store.set_stack_size(e.id, e.stack_size);
        }
        let merged: HashSet<EntityId> = merge_out.merged_away.iter().copied().collect();
        for id in merge_out.merged_away {
            self.remove(id);
            report.removed.push(id);
        }
        all.retain(|e| !merged.contains(&e.id));
        let collect_out = items::collect_into_hoppers(world, &all);
        report.items_collected += collect_out.collected.len() as u64;
        for id in collect_out.collected {
            self.remove(id);
            report.removed.push(id);
        }

        // Despawning: a dense walk in spawn order so the removal list is
        // deterministic.
        let mut despawn_ids: Vec<EntityId> = Vec::new();
        for row in 0..self.store.rows() {
            if !self.store.is_live(row) {
                continue;
            }
            let entity = self.store.entity_at(row);
            let nearest = players
                .iter()
                .map(|p| p.distance(entity.pos))
                .fold(f64::INFINITY, f64::min);
            if entity.should_despawn(nearest) {
                despawn_ids.push(entity.id);
            }
        }
        for id in despawn_ids {
            self.remove(id);
            report.removed.push(id);
        }

        // Natural spawning near players.
        if self.natural_spawning && !players.is_empty() {
            let hostile = self.hostile_count();
            let spawn_out = self.spawner.tick(world, players, hostile, &mut self.rng);
            report.spawn_positions_scanned += u64::from(spawn_out.positions_scanned);
            for (kind, pos) in spawn_out.spawns {
                let id = self.spawn(kind, pos);
                report.spawned.push((id, kind));
            }
        }
    }
}

/// Per-shard entity batch processed by one worker during
/// [`EntityManager::tick_batched`].
struct EntityShardTask {
    shard: usize,
    /// Store rows of the shard's entities, parallel to `batch`, for the
    /// direct column write-back after the phase.
    rows: Vec<usize>,
    /// The shard's entities in spawn order (named distinctly from any
    /// hash-typed identifier: detlint's scanner tracks such names within a
    /// file).
    batch: Vec<Entity>,
    moved: Vec<(EntityId, Vec3)>,
    detonations: Vec<(EntityId, Vec3)>,
    processed: u64,
    physics_blocks_checked: u64,
    path_nodes_expanded: u64,
    proximity_candidates: u64,
}

impl EntityShardTask {
    fn new(shard: usize) -> Self {
        EntityShardTask {
            shard,
            rows: Vec::new(),
            batch: Vec::new(),
            moved: Vec::new(),
            detonations: Vec::new(),
            processed: 0,
            physics_blocks_checked: 0,
            path_nodes_expanded: 0,
            proximity_candidates: 0,
        }
    }
}

/// Shared context of the parallel per-entity phase: the world's chunks
/// (moved, not copied), the tick's spatial grid, the TNT batching
/// allowance, player positions and the tick's RNG seed — everything the
/// shard workers read, owned so the phase can run on the persistent worker
/// pool. The snapshot and grid move back into place when the phase ends.
struct EntityPhaseCtx {
    snapshot: WorldSnapshot,
    grid: SpatialGrid,
    allowed: HashSet<EntityId>,
    players: Vec<Vec3>,
    tick_seed: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlg_world::generation::FlatGenerator;
    use mlg_world::{Block, BlockKind, BlockPos};

    fn world() -> World {
        World::new(Box::new(FlatGenerator::grassland()), 7)
    }

    fn manager() -> EntityManager {
        let mut m = EntityManager::new(11);
        m.natural_spawning = false;
        m
    }

    #[test]
    fn spawn_and_remove_entities() {
        let mut m = manager();
        let id = m.spawn(EntityKind::Cow, Vec3::new(0.5, 61.0, 0.5));
        assert_eq!(m.count(), 1);
        assert!(m.get(id).is_some());
        let removed = m.remove(id).unwrap();
        assert_eq!(removed.id, id);
        assert_eq!(m.count(), 0);
    }

    #[test]
    fn ids_are_unique_and_increasing() {
        let mut m = manager();
        let a = m.spawn(EntityKind::Cow, Vec3::ZERO);
        let b = m.spawn(EntityKind::Cow, Vec3::ZERO);
        assert!(b > a);
    }

    #[test]
    fn modify_edits_live_entities_only() {
        let mut m = manager();
        let id = m.spawn(EntityKind::Cow, Vec3::ZERO);
        assert!(m.modify(id, |e| e.age = 99));
        assert_eq!(m.get(id).unwrap().age, 99);
        m.remove(id);
        assert!(!m.modify(id, |e| e.age = 7));
    }

    #[test]
    fn tick_processes_every_entity() {
        let mut m = manager();
        let mut w = world();
        for i in 0..10 {
            m.spawn(EntityKind::Cow, Vec3::new(i as f64, 65.0, 0.5));
        }
        let report = m.tick(&mut w, &[]);
        assert_eq!(report.entities_processed, 10);
        assert!(report.physics_blocks_checked > 0);
        // Falling cows moved.
        assert_eq!(report.moved.len(), 10);
    }

    #[test]
    fn tnt_explosion_removes_entity_and_reports_destruction() {
        let mut m = manager();
        let mut w = world();
        let id = m.spawn(EntityKind::PrimedTnt, Vec3::new(8.5, 61.0, 8.5));
        // Shorten the fuse so it detonates on the second tick.
        m.modify(id, |e| e.fuse = 1);
        let first = m.tick(&mut w, &[]);
        assert_eq!(first.explosions, 0);
        let second = m.tick(&mut w, &[]);
        assert_eq!(second.explosions, 1);
        assert!(second.blocks_destroyed > 0);
        assert!(second.removed.contains(&id));
        assert_eq!(m.count(), 0);
    }

    #[test]
    fn tnt_chain_reaction_spawns_more_primed_tnt() {
        let mut m = manager();
        let mut w = world();
        // A small cluster of TNT blocks next to the primed charge.
        for dx in 0..4 {
            w.set_block_silent(BlockPos::new(9 + dx, 61, 8), Block::simple(BlockKind::Tnt));
        }
        let id = m.spawn(EntityKind::PrimedTnt, Vec3::new(8.5, 61.0, 8.5));
        m.modify(id, |e| e.fuse = 0);
        let report = m.tick(&mut w, &[]);
        assert_eq!(report.explosions, 1);
        assert_eq!(
            report.spawned.len(),
            4,
            "ignited blocks become primed TNT entities"
        );
        assert_eq!(m.count(), 4);
    }

    #[test]
    fn explosions_knock_back_other_entities() {
        let mut m = manager();
        let mut w = world();
        let bystander = m.spawn(EntityKind::Cow, Vec3::new(11.5, 61.0, 8.5));
        let charge = m.spawn(EntityKind::PrimedTnt, Vec3::new(8.5, 61.0, 8.5));
        m.modify(charge, |e| e.fuse = 0);
        m.tick(&mut w, &[]);
        let cow = m.get(bystander).unwrap();
        assert!(
            cow.velocity.x > 0.0,
            "cow should be pushed away from the blast"
        );
    }

    #[test]
    fn item_merging_reduces_entity_count() {
        let mut m = manager();
        let mut w = world();
        for i in 0..5 {
            m.spawn(
                EntityKind::Item(BlockKind::Cobblestone),
                Vec3::new(4.0 + 0.1 * i as f64, 61.5, 4.0),
            );
        }
        let report = m.tick(&mut w, &[]);
        assert!(report.items_merged > 0);
        assert!(m.count() < 5);
    }

    #[test]
    fn hoppers_collect_dropped_items() {
        let mut m = manager();
        let mut w = world();
        w.set_block_silent(BlockPos::new(4, 61, 4), Block::simple(BlockKind::Hopper));
        m.spawn(EntityKind::Item(BlockKind::Kelp), Vec3::new(4.5, 62.2, 4.5));
        // Give the item a couple of ticks to settle onto the hopper.
        let mut collected = 0;
        for _ in 0..5 {
            let r = m.tick(&mut w, &[]);
            collected += r.items_collected;
        }
        assert!(collected >= 1);
        assert_eq!(m.count(), 0);
    }

    #[test]
    fn old_items_despawn() {
        let mut m = manager();
        let mut w = world();
        let id = m.spawn(
            EntityKind::Item(BlockKind::Stone),
            Vec3::new(4.5, 61.5, 4.5),
        );
        m.modify(id, |e| e.age = 7_000);
        let report = m.tick(&mut w, &[]);
        assert!(report.removed.contains(&id));
        assert_eq!(m.count(), 0);
    }

    #[test]
    fn natural_spawning_requires_players_and_darkness() {
        let mut m = EntityManager::new(5);
        m.natural_spawning = true;
        let mut w = world();
        // No players: nothing spawns and nothing is scanned.
        let r = m.tick(&mut w, &[]);
        assert_eq!(r.spawn_positions_scanned, 0);
        // With a player on the bright surface, positions are scanned but the
        // surface is too bright to spawn hostiles.
        let r2 = m.tick(&mut w, &[Vec3::new(0.5, 61.0, 0.5)]);
        assert!(r2.spawn_positions_scanned > 0);
    }

    #[test]
    fn work_units_reflect_activity() {
        let report = EntityTickReport {
            entities_processed: 10,
            explosions: 1,
            ..EntityTickReport::default()
        };
        assert!(report.base_work_units() >= 10 * 20 + 500);
        assert_eq!(EntityTickReport::default().base_work_units(), 0);
    }

    /// A cross-stripe entity population: cows, zombies, items and fused
    /// TNT spread over several shard stripes.
    fn batched_setup(seed: u64) -> (EntityManager, World) {
        let mut m = EntityManager::new(seed);
        m.natural_spawning = false;
        let mut w = world();
        w.ensure_area(mlg_world::ChunkPos::new(2, 0), 4);
        for x in [5, 40, 75, 100] {
            m.spawn(EntityKind::Cow, Vec3::new(x as f64 + 0.5, 64.0, 8.5));
            m.spawn(EntityKind::Zombie, Vec3::new(x as f64 + 2.5, 61.0, 8.5));
            m.spawn(
                EntityKind::Item(BlockKind::Cobblestone),
                Vec3::new(x as f64 + 0.6, 61.5, 8.6),
            );
            m.spawn(
                EntityKind::Item(BlockKind::Cobblestone),
                Vec3::new(x as f64 + 0.9, 61.5, 8.7),
            );
            let tnt = m.spawn(EntityKind::PrimedTnt, Vec3::new(x as f64 + 5.5, 61.0, 12.5));
            m.modify(tnt, |e| e.fuse = 2);
            w.set_block_silent(
                BlockPos::new(x + 7, 61, 12),
                mlg_world::Block::simple(BlockKind::Tnt),
            );
        }
        (m, w)
    }

    fn run_batched(
        seed: u64,
        pipeline: &TickPipeline,
        ticks: u32,
    ) -> (Vec<EntityTickReport>, usize, u64) {
        let (mut m, mut w) = batched_setup(seed);
        let players = [Vec3::new(8.5, 61.0, 8.5)];
        let mut reports = Vec::new();
        for _ in 0..ticks {
            let (report, per_shard) = m.tick_batched(&mut w, &players, pipeline);
            assert_eq!(per_shard.len(), pipeline.shards() as usize);
            assert_eq!(
                per_shard.iter().sum::<u64>(),
                report.entities_processed,
                "per-shard counts must cover every processed entity"
            );
            reports.push(report);
        }
        (reports, m.count(), w.total_non_air_blocks())
    }

    #[test]
    fn batched_tick_is_bit_identical_across_thread_counts() {
        for shards in [1, 2, 4, 8] {
            let reference = run_batched(77, &TickPipeline::new(shards, 1), 10);
            let parallel = run_batched(77, &TickPipeline::new(shards, 4), 10);
            assert_eq!(
                reference, parallel,
                "shards={shards} threads=4 diverged from the sequential path"
            );
        }
    }

    #[test]
    fn batched_tick_detonates_tnt_and_chains() {
        let (reports, _, _) = run_batched(9, &TickPipeline::new(4, 2), 10);
        let explosions: u64 = reports.iter().map(|r| r.explosions).sum();
        assert!(explosions >= 4, "all primed TNT should detonate");
        let spawned: usize = reports.iter().map(|r| r.spawned.len()).sum();
        assert!(spawned >= 4, "chain reactions should prime the TNT blocks");
    }

    #[test]
    fn batched_tick_respects_the_tnt_cap() {
        let (mut m, mut w) = batched_setup(31);
        m.max_tnt_per_tick = 1;
        let pipeline = TickPipeline::new(4, 2);
        // Fuses are 2: with the cap only one TNT progresses per tick.
        let mut first_explosion_report = None;
        for tick in 0..6 {
            let (report, _) = m.tick_batched(&mut w, &[], &pipeline);
            if report.explosions > 0 {
                first_explosion_report = Some((tick, report.explosions));
                break;
            }
        }
        let (_, explosions) = first_explosion_report.expect("one TNT must explode");
        assert_eq!(explosions, 1, "the cap limits detonations per tick");
    }

    #[test]
    fn clear_empties_the_manager() {
        let mut m = manager();
        m.spawn(EntityKind::Cow, Vec3::ZERO);
        m.spawn(EntityKind::Villager, Vec3::ZERO);
        m.clear();
        assert_eq!(m.count(), 0);
        assert_eq!(m.iter().count(), 0);
    }

    #[test]
    fn despawn_heavy_churn_stays_consistent() {
        // Spawn/despawn churn far past the compaction threshold: lookups,
        // counts and ticks must stay correct as rows tombstone and compact.
        let mut m = manager();
        let mut w = world();
        let mut live: Vec<EntityId> = Vec::new();
        for wave in 0..10 {
            for i in 0..40 {
                let x = ((wave * 40 + i) % 96) as f64;
                live.push(m.spawn(EntityKind::Cow, Vec3::new(x + 0.5, 61.0, 8.5)));
            }
            // Remove the older half of the population.
            let half = live.len() / 2;
            for id in live.drain(..half) {
                assert!(m.remove(id).is_some());
            }
            m.tick(&mut w, &[]);
            assert_eq!(m.count(), live.len());
            for id in &live {
                assert!(m.get(*id).is_some(), "live entity lost after churn");
            }
        }
    }

    proptest::proptest! {
        #[test]
        fn manager_matches_reference_model_on_random_sequences(seed in proptest::prelude::any::<u64>()) {
            use std::collections::BTreeMap;

            // Random spawn/remove/modify sequences against a BTreeMap
            // reference model. Ids are monotonic, so the model's key order
            // is spawn order and must match the store's canonical dense
            // iteration — through tombstoning and compaction alike.
            let kinds = [
                EntityKind::Cow,
                EntityKind::Zombie,
                EntityKind::Item(mlg_world::BlockKind::Dirt),
                EntityKind::PrimedTnt,
                EntityKind::FallingBlock(mlg_world::BlockKind::Sand),
            ];
            let mut m = manager();
            let mut model: BTreeMap<EntityId, Entity> = BTreeMap::new();
            let mut s = seed | 1;
            let mut next = move || {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                s
            };
            for _ in 0..400 {
                match next() % 4 {
                    0 | 1 => {
                        let kind = kinds[(next() as usize) % kinds.len()];
                        let pos = Vec3::new(
                            (next() % 192) as f64 - 96.0,
                            80.0,
                            (next() % 192) as f64 - 96.0,
                        );
                        let id = m.spawn(kind, pos);
                        model.insert(id, Entity::new(id, kind, pos));
                    }
                    2 if !model.is_empty() => {
                        let keys: Vec<EntityId> = model.keys().copied().collect();
                        let id = keys[(next() as usize) % keys.len()];
                        assert_eq!(m.remove(id), model.remove(&id));
                        assert_eq!(m.remove(id), None, "double remove must miss");
                    }
                    _ => {
                        let id = EntityId(next() % 320 + 1);
                        let bump = next() % 7;
                        let changed = m.modify(id, |e| {
                            e.age += bump;
                            e.pos.x += 0.25;
                        });
                        assert_eq!(changed, model.contains_key(&id));
                        if let Some(e) = model.get_mut(&id) {
                            e.age += bump;
                            e.pos.x += 0.25;
                        }
                    }
                }
                let probe = EntityId(next() % 320 + 1);
                assert_eq!(m.get(probe), model.get(&probe).copied());
            }
            assert_eq!(m.count(), model.len());
            let live: Vec<Entity> = m.iter().collect();
            let expected: Vec<Entity> = model.values().copied().collect();
            assert_eq!(live, expected, "iteration must walk spawn (= id) order");
            // One tick drains the deferred grid evictions and compacts the
            // tombstoned rows; every survivor must be processed exactly once.
            let report = m.tick(&mut world(), &[Vec3::ZERO]);
            assert_eq!(report.entities_processed as usize, model.len());
        }
    }
}
