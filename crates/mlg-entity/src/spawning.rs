//! Dynamic entity spawning.
//!
//! "In contrast to static environments, where game developers typically place
//! these spawn points manually, MLGs need to compute spawn points dynamically
//! as terrain modification may obstruct existing spawn points."
//! (Section 2.2.3.)
//!
//! Hostile mobs spawn on dark, spawnable surfaces near players (the mechanism
//! exploited by the entity farms of the Farm workload); the spawner scans
//! candidate positions every tick, which costs work even when nothing spawns.

use rand::Rng;

use mlg_world::light::sky_light_at;
use mlg_world::{BlockPos, World};

use crate::entity::EntityKind;
use crate::math::Vec3;

/// Maximum number of hostile mobs per loaded "spawning area" before spawning
/// pauses (the hostile mob cap).
pub const HOSTILE_MOB_CAP: usize = 70;

/// Sky-light level at or below which hostile mobs may spawn.
pub const MAX_SPAWN_LIGHT: u8 = 0;

/// Horizontal radius around players in which spawning is attempted.
pub const SPAWN_RADIUS: i32 = 48;

/// Result of one spawning pass.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpawnOutcome {
    /// Positions (and kinds) at which new mobs should be created.
    pub spawns: Vec<(EntityKind, Vec3)>,
    /// Candidate positions examined.
    pub positions_scanned: u32,
}

/// Configuration of the spawning pass.
#[derive(Debug, Clone, Copy)]
pub struct Spawner {
    /// Spawn attempts per player per tick.
    pub attempts_per_player: u32,
    /// Whether hostile spawning is enabled at all.
    pub hostile_spawning: bool,
}

impl Default for Spawner {
    fn default() -> Self {
        Spawner {
            attempts_per_player: 40,
            hostile_spawning: true,
        }
    }
}

impl Spawner {
    /// Creates a spawner with default settings.
    #[must_use]
    pub fn new() -> Self {
        Spawner::default()
    }

    /// Returns `true` if a hostile mob could spawn standing at `pos`:
    /// spawnable solid ground below, two passable blocks of room, and no sky
    /// light (dark).
    pub fn is_valid_spawn_position(&self, world: &mut World, pos: BlockPos) -> bool {
        let ground = world.block(pos.down());
        let feet = world.block(pos);
        let head = world.block(pos.up());
        if !ground.kind().is_spawnable_surface() || feet.is_solid() || head.is_solid() {
            return false;
        }
        if feet.kind().is_fluid() {
            return false;
        }
        // `<=` keeps the comparison correct if MAX_SPAWN_LIGHT is ever
        // raised above 0 (its current value makes this equivalent to `==`).
        #[allow(clippy::absurd_extreme_comparisons)]
        let dark_enough = sky_light_at(world, pos) <= MAX_SPAWN_LIGHT;
        dark_enough
    }

    /// Runs one spawning pass around the given player positions.
    ///
    /// `current_hostile_count` is the number of hostile mobs already alive;
    /// when it is at or above [`HOSTILE_MOB_CAP`] no new mobs spawn, but the
    /// candidate scan (and its cost) still happens, matching real servers.
    pub fn tick<R: Rng>(
        &self,
        world: &mut World,
        players: &[Vec3],
        current_hostile_count: usize,
        rng: &mut R,
    ) -> SpawnOutcome {
        let mut outcome = SpawnOutcome::default();
        if !self.hostile_spawning {
            return outcome;
        }
        for player in players {
            for _ in 0..self.attempts_per_player {
                let dx = rng.gen_range(-SPAWN_RADIUS..=SPAWN_RADIUS);
                let dz = rng.gen_range(-SPAWN_RADIUS..=SPAWN_RADIUS);
                let dy = rng.gen_range(-8..=8);
                let candidate = BlockPos::new(
                    player.x.floor() as i32 + dx,
                    (player.y.floor() as i32 + dy).max(1),
                    player.z.floor() as i32 + dz,
                );
                outcome.positions_scanned += 1;
                if current_hostile_count + outcome.spawns.len() >= HOSTILE_MOB_CAP {
                    continue;
                }
                if self.is_valid_spawn_position(world, candidate) {
                    let kind = if rng.gen_bool(0.7) {
                        EntityKind::Zombie
                    } else {
                        EntityKind::Skeleton
                    };
                    outcome
                        .spawns
                        .push((kind, Vec3::from_block_center(candidate)));
                }
            }
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlg_world::generation::FlatGenerator;
    use mlg_world::{Block, BlockKind, ChunkPos};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn world() -> World {
        World::new(Box::new(FlatGenerator::grassland()), 7)
    }

    /// Builds a dark platform (roofed area) like an entity farm's spawning
    /// floor, and returns a position on it.
    fn build_dark_platform(w: &mut World) -> BlockPos {
        let base = BlockPos::new(4, 61, 4);
        for dx in -3..=3 {
            for dz in -3..=3 {
                // Roof 3 blocks above the floor blocks all sky light.
                w.set_block_silent(base.offset(dx, 3, dz), Block::simple(BlockKind::Stone));
            }
        }
        base
    }

    #[test]
    fn surface_positions_are_too_bright() {
        let mut w = world();
        let spawner = Spawner::new();
        // Open grass at noon: sky light 15, no spawning.
        assert!(!spawner.is_valid_spawn_position(&mut w, BlockPos::new(0, 61, 0)));
    }

    #[test]
    fn dark_covered_positions_are_valid() {
        let mut w = world();
        let spawner = Spawner::new();
        let pos = build_dark_platform(&mut w);
        assert!(spawner.is_valid_spawn_position(&mut w, pos));
    }

    #[test]
    fn blocked_positions_are_invalid() {
        let mut w = world();
        let spawner = Spawner::new();
        let pos = build_dark_platform(&mut w);
        w.set_block_silent(pos, Block::simple(BlockKind::Stone));
        assert!(!spawner.is_valid_spawn_position(&mut w, pos));
    }

    #[test]
    fn water_positions_are_invalid() {
        let mut w = world();
        let spawner = Spawner::new();
        let pos = build_dark_platform(&mut w);
        w.set_block_silent(pos, Block::simple(BlockKind::Water));
        assert!(!spawner.is_valid_spawn_position(&mut w, pos));
    }

    #[test]
    fn spawning_pass_finds_dark_platform() {
        let mut w = world();
        w.ensure_area(ChunkPos::new(0, 0), 3);
        // Build a large dark platform so random attempts hit it.
        for dx in -20..=20 {
            for dz in -20..=20 {
                w.set_block_silent(BlockPos::new(dx, 64, dz), Block::simple(BlockKind::Stone));
            }
        }
        let spawner = Spawner {
            attempts_per_player: 1_000,
            hostile_spawning: true,
        };
        let mut rng = StdRng::seed_from_u64(3);
        let players = vec![Vec3::new(0.5, 61.0, 0.5)];
        let outcome = spawner.tick(&mut w, &players, 0, &mut rng);
        assert!(outcome.positions_scanned == 1_000);
        assert!(
            !outcome.spawns.is_empty(),
            "the dark area should produce spawns"
        );
        for (kind, _) in &outcome.spawns {
            assert!(kind.is_hostile());
        }
    }

    #[test]
    fn mob_cap_stops_spawning_but_not_scanning() {
        let mut w = world();
        for dx in -20..=20 {
            for dz in -20..=20 {
                w.set_block_silent(BlockPos::new(dx, 64, dz), Block::simple(BlockKind::Stone));
            }
        }
        let spawner = Spawner {
            attempts_per_player: 100,
            hostile_spawning: true,
        };
        let mut rng = StdRng::seed_from_u64(3);
        let players = vec![Vec3::new(0.5, 61.0, 0.5)];
        let outcome = spawner.tick(&mut w, &players, HOSTILE_MOB_CAP, &mut rng);
        assert!(outcome.spawns.is_empty());
        assert_eq!(outcome.positions_scanned, 100);
    }

    #[test]
    fn disabled_spawner_does_nothing() {
        let mut w = world();
        let spawner = Spawner {
            attempts_per_player: 100,
            hostile_spawning: false,
        };
        let mut rng = StdRng::seed_from_u64(3);
        let outcome = spawner.tick(&mut w, &[Vec3::ZERO], 0, &mut rng);
        assert_eq!(outcome, SpawnOutcome::default());
    }
}
