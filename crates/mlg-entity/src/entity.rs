//! Entity kinds and entity state.

use serde::{Deserialize, Serialize};

use mlg_world::BlockKind;

use crate::math::{Aabb, Vec3};

/// Unique identifier of an entity within one server instance.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct EntityId(pub u64);

impl std::fmt::Display for EntityId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "entity#{}", self.0)
    }
}

/// The kind of an entity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum EntityKind {
    /// A dropped item stack; carries the block kind it represents.
    Item(BlockKind),
    /// Primed TNT counting down to its explosion.
    PrimedTnt,
    /// A block that is currently falling (sand/gravel in mid-air).
    FallingBlock(BlockKind),
    /// Hostile mob (zombie-like): wanders, paths towards players.
    Zombie,
    /// Hostile ranged mob (skeleton-like).
    Skeleton,
    /// Passive mob (cow-like): wanders slowly.
    Cow,
    /// Villager NPC: wanders and paths between points of interest.
    Villager,
    /// Experience orb dropped by farms; merges aggressively.
    ExperienceOrb,
}

impl EntityKind {
    /// Half-width of the entity's collision box, in blocks.
    #[must_use]
    pub fn half_width(self) -> f64 {
        match self {
            EntityKind::Item(_) | EntityKind::ExperienceOrb => 0.125,
            EntityKind::PrimedTnt | EntityKind::FallingBlock(_) => 0.49,
            EntityKind::Zombie | EntityKind::Skeleton | EntityKind::Villager => 0.3,
            EntityKind::Cow => 0.45,
        }
    }

    /// Height of the entity's collision box, in blocks.
    #[must_use]
    pub fn height(self) -> f64 {
        match self {
            EntityKind::Item(_) | EntityKind::ExperienceOrb => 0.25,
            EntityKind::PrimedTnt | EntityKind::FallingBlock(_) => 0.98,
            EntityKind::Zombie | EntityKind::Skeleton | EntityKind::Villager => 1.95,
            EntityKind::Cow => 1.4,
        }
    }

    /// Returns `true` for mobs that make movement decisions (AI + pathfinding).
    #[must_use]
    pub fn is_mob(self) -> bool {
        matches!(
            self,
            EntityKind::Zombie | EntityKind::Skeleton | EntityKind::Cow | EntityKind::Villager
        )
    }

    /// Returns `true` for hostile mobs (spawned by the dark-room entity farms).
    #[must_use]
    pub fn is_hostile(self) -> bool {
        matches!(self, EntityKind::Zombie | EntityKind::Skeleton)
    }

    /// Returns `true` for item-like entities that merge when close together.
    #[must_use]
    pub fn is_item_like(self) -> bool {
        matches!(self, EntityKind::Item(_) | EntityKind::ExperienceOrb)
    }

    /// Ticks after which an unattended entity of this kind despawns, if any.
    #[must_use]
    pub fn despawn_after_ticks(self) -> Option<u64> {
        match self {
            // Items vanish after 5 minutes (6000 ticks).
            EntityKind::Item(_) | EntityKind::ExperienceOrb => Some(6_000),
            // Hostile mobs despawn after 30 seconds when far from players;
            // the manager applies the distance condition.
            EntityKind::Zombie | EntityKind::Skeleton => Some(600),
            _ => None,
        }
    }

    /// Base movement speed in blocks per tick.
    #[must_use]
    pub fn base_speed(self) -> f64 {
        match self {
            EntityKind::Zombie => 0.115,
            EntityKind::Skeleton => 0.125,
            EntityKind::Cow => 0.1,
            EntityKind::Villager => 0.125,
            _ => 0.0,
        }
    }

    /// A short name for reports and packet dumps.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EntityKind::Item(_) => "item",
            EntityKind::PrimedTnt => "primed_tnt",
            EntityKind::FallingBlock(_) => "falling_block",
            EntityKind::Zombie => "zombie",
            EntityKind::Skeleton => "skeleton",
            EntityKind::Cow => "cow",
            EntityKind::Villager => "villager",
            EntityKind::ExperienceOrb => "experience_orb",
        }
    }
}

impl std::fmt::Display for EntityKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A single entity instance.
///
/// All fields are plain-old-data so the struct is `Copy`: the columnar
/// [`store::EntityStore`](crate::store::EntityStore) materializes and
/// writes back entities by value on the tick hot path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Entity {
    /// Unique identifier.
    pub id: EntityId,
    /// Kind of entity.
    pub kind: EntityKind,
    /// Position of the entity's feet.
    pub pos: Vec3,
    /// Velocity in blocks per tick.
    pub velocity: Vec3,
    /// Whether the entity is standing on solid ground.
    pub on_ground: bool,
    /// Age in ticks since the entity was spawned.
    pub age: u64,
    /// Remaining fuse ticks (primed TNT only).
    pub fuse: u16,
    /// Stack size for item entities (merging increases it).
    pub stack_size: u32,
    /// Health points for mobs.
    pub health: f64,
    /// Current pathfinding target, if the AI chose one.
    pub path_target: Option<Vec3>,
}

impl Entity {
    /// Default TNT fuse length in ticks (4 seconds at 20 Hz).
    pub const TNT_FUSE_TICKS: u16 = 80;

    /// Creates a new entity of `kind` at `pos` with sensible defaults.
    #[must_use]
    pub fn new(id: EntityId, kind: EntityKind, pos: Vec3) -> Self {
        Entity {
            id,
            kind,
            pos,
            velocity: Vec3::ZERO,
            on_ground: false,
            age: 0,
            fuse: if kind == EntityKind::PrimedTnt {
                Self::TNT_FUSE_TICKS
            } else {
                0
            },
            stack_size: 1,
            health: if kind.is_mob() { 20.0 } else { 1.0 },
            path_target: None,
        }
    }

    /// The entity's collision box at its current position.
    #[must_use]
    pub fn aabb(&self) -> Aabb {
        Aabb::from_feet(self.pos, self.kind.half_width(), self.kind.height())
    }

    /// Returns `true` if this entity should despawn given its age and the
    /// distance (in blocks) to the nearest player.
    #[must_use]
    pub fn should_despawn(&self, nearest_player_distance: f64) -> bool {
        match self.kind.despawn_after_ticks() {
            None => false,
            Some(limit) => {
                if self.kind.is_hostile() {
                    // Hostile mobs only despawn when no player is nearby.
                    self.age > limit && nearest_player_distance > 32.0
                } else {
                    self.age > limit
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_entity_defaults() {
        let e = Entity::new(EntityId(1), EntityKind::Zombie, Vec3::new(0.0, 64.0, 0.0));
        assert_eq!(e.age, 0);
        assert_eq!(e.health, 20.0);
        assert_eq!(e.fuse, 0);
        assert!(e.kind.is_mob());
    }

    #[test]
    fn primed_tnt_gets_a_fuse() {
        let e = Entity::new(EntityId(2), EntityKind::PrimedTnt, Vec3::ZERO);
        assert_eq!(e.fuse, Entity::TNT_FUSE_TICKS);
        assert!(!e.kind.is_mob());
    }

    #[test]
    fn aabb_matches_kind_dimensions() {
        let e = Entity::new(EntityId(3), EntityKind::Cow, Vec3::new(10.0, 64.0, 10.0));
        let aabb = e.aabb();
        assert!((aabb.max.y - aabb.min.y - EntityKind::Cow.height()).abs() < 1e-9);
        assert!((aabb.max.x - aabb.min.x - 2.0 * EntityKind::Cow.half_width()).abs() < 1e-9);
    }

    #[test]
    fn items_despawn_when_old() {
        let mut e = Entity::new(
            EntityId(4),
            EntityKind::Item(BlockKind::Cobblestone),
            Vec3::ZERO,
        );
        assert!(!e.should_despawn(1.0));
        e.age = 6_001;
        assert!(e.should_despawn(1.0));
    }

    #[test]
    fn hostile_mobs_only_despawn_far_from_players() {
        let mut e = Entity::new(EntityId(5), EntityKind::Zombie, Vec3::ZERO);
        e.age = 10_000;
        assert!(!e.should_despawn(5.0));
        assert!(e.should_despawn(100.0));
    }

    #[test]
    fn villagers_never_despawn() {
        let mut e = Entity::new(EntityId(6), EntityKind::Villager, Vec3::ZERO);
        e.age = 1_000_000;
        assert!(!e.should_despawn(1_000.0));
    }

    #[test]
    fn kind_classification() {
        assert!(EntityKind::Item(BlockKind::Kelp).is_item_like());
        assert!(EntityKind::ExperienceOrb.is_item_like());
        assert!(!EntityKind::Zombie.is_item_like());
        assert!(EntityKind::Zombie.is_hostile());
        assert!(!EntityKind::Cow.is_hostile());
        assert!(EntityKind::Cow.is_mob());
    }

    #[test]
    fn mobs_move_items_do_not() {
        assert!(EntityKind::Zombie.base_speed() > 0.0);
        assert_eq!(EntityKind::Item(BlockKind::Stone).base_speed(), 0.0);
    }

    #[test]
    fn display_names() {
        assert_eq!(EntityKind::PrimedTnt.to_string(), "primed_tnt");
        assert_eq!(EntityId(9).to_string(), "entity#9");
    }
}
