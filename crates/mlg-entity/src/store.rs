//! Struct-of-arrays entity storage: the columnar backing of the
//! [`EntityManager`](crate::manager::EntityManager).
//!
//! Entity state lives in parallel columns (position, velocity, kind, fuse,
//! health, …) appended in spawn order. Because entity ids are allocated
//! monotonically and never reused, the id column is always sorted, so the
//! row of any id is a binary search away — no id→row hash map exists, and
//! every iteration is a dense array walk in canonical spawn order, which
//! keeps the determinism contract structural.
//!
//! Removal tombstones the row in O(1) (the `alive` mask) and a stable
//! compaction sweep reclaims rows once tombstones outnumber live entities,
//! giving amortized O(1) removal without ever disturbing the canonical
//! order of the survivors. The monotonic id doubles as the slot
//! generation: a stale id can never alias a new entity, so lookups after
//! compaction are ABA-safe by construction ([`EntityStore::generation`]
//! counts the sweeps for observability).
//!
//! The store also tracks, per row, the position under which the entity is
//! currently indexed in the tick's [`SpatialGrid`], so the per-tick grid
//! maintenance touches only entities that moved across ticks instead of
//! re-inserting the whole population.

use crate::entity::{Entity, EntityId, EntityKind};
use crate::math::Vec3;
use crate::spatial::SpatialGrid;

/// Columnar (struct-of-arrays) storage for the live entity population.
#[derive(Default)]
pub struct EntityStore {
    ids: Vec<EntityId>,
    kinds: Vec<EntityKind>,
    positions: Vec<Vec3>,
    velocities: Vec<Vec3>,
    on_ground: Vec<bool>,
    ages: Vec<u64>,
    fuses: Vec<u16>,
    stack_sizes: Vec<u32>,
    healths: Vec<f64>,
    path_targets: Vec<Option<Vec3>>,
    alive: Vec<bool>,
    /// Position each row is currently indexed under in the spatial grid
    /// (meaningful only when `in_grid` is set).
    grid_positions: Vec<Vec3>,
    in_grid: Vec<bool>,
    live: usize,
    generation: u64,
}

impl std::fmt::Debug for EntityStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EntityStore")
            .field("live", &self.live)
            .field("rows", &self.ids.len())
            .field("generation", &self.generation)
            .finish()
    }
}

/// Tombstone count below which compaction never runs (avoids churning tiny
/// populations).
const COMPACT_MIN_DEAD: usize = 64;

impl EntityStore {
    /// Creates an empty store.
    #[must_use]
    pub fn new() -> Self {
        EntityStore::default()
    }

    /// Number of live entities.
    #[must_use]
    pub fn live_count(&self) -> usize {
        self.live
    }

    /// Returns `true` when no live entities exist.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Number of rows including tombstones — the bound for row-indexed
    /// walks.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.ids.len()
    }

    /// Number of stable compaction sweeps performed so far.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Whether the row holds a live entity.
    #[must_use]
    pub fn is_live(&self, row: usize) -> bool {
        self.alive[row]
    }

    /// The id stored at `row` (live or tombstoned).
    #[must_use]
    pub fn id_at(&self, row: usize) -> EntityId {
        self.ids[row]
    }

    /// The kind stored at `row`.
    #[must_use]
    pub fn kind_at(&self, row: usize) -> EntityKind {
        self.kinds[row]
    }

    /// The position stored at `row`.
    #[must_use]
    pub fn position_at(&self, row: usize) -> Vec3 {
        self.positions[row]
    }

    /// Adds `delta` to the velocity stored at `row`.
    pub fn add_velocity(&mut self, row: usize, delta: Vec3) {
        self.velocities[row] = self.velocities[row].add(delta);
    }

    /// Sets the fuse at `row` (chain-reaction staggering).
    pub fn set_fuse(&mut self, row: usize, fuse: u16) {
        self.fuses[row] = fuse;
    }

    /// Appends a new entity row. Ids must arrive in strictly increasing
    /// order (the manager allocates them monotonically), which keeps the id
    /// column sorted and row lookup a binary search.
    ///
    /// # Panics
    ///
    /// Panics if `entity.id` is not greater than every stored id.
    pub fn push(&mut self, entity: Entity) -> usize {
        assert!(
            self.ids.last().is_none_or(|&last| last < entity.id),
            "entity ids must be appended in increasing order"
        );
        let row = self.ids.len();
        self.ids.push(entity.id);
        self.kinds.push(entity.kind);
        self.positions.push(entity.pos);
        self.velocities.push(entity.velocity);
        self.on_ground.push(entity.on_ground);
        self.ages.push(entity.age);
        self.fuses.push(entity.fuse);
        self.stack_sizes.push(entity.stack_size);
        self.healths.push(entity.health);
        self.path_targets.push(entity.path_target);
        self.alive.push(true);
        self.grid_positions.push(entity.pos);
        self.in_grid.push(false);
        self.live += 1;
        row
    }

    /// The row holding `id`, if that entity is live.
    #[must_use]
    pub fn row_of(&self, id: EntityId) -> Option<usize> {
        let row = self.ids.binary_search(&id).ok()?;
        self.alive[row].then_some(row)
    }

    /// Materializes the entity at `row` from its columns.
    #[must_use]
    pub fn entity_at(&self, row: usize) -> Entity {
        Entity {
            id: self.ids[row],
            kind: self.kinds[row],
            pos: self.positions[row],
            velocity: self.velocities[row],
            on_ground: self.on_ground[row],
            age: self.ages[row],
            fuse: self.fuses[row],
            stack_size: self.stack_sizes[row],
            health: self.healths[row],
            path_target: self.path_targets[row],
        }
    }

    /// Materializes the live entity with `id`, if any.
    #[must_use]
    pub fn get(&self, id: EntityId) -> Option<Entity> {
        self.row_of(id).map(|row| self.entity_at(row))
    }

    /// Writes an entity's mutable state back into its row's columns. The
    /// id and kind are fixed at spawn and not rewritten.
    pub fn write_row(&mut self, row: usize, entity: &Entity) {
        debug_assert_eq!(self.ids[row], entity.id, "row/id mismatch on write-back");
        self.positions[row] = entity.pos;
        self.velocities[row] = entity.velocity;
        self.on_ground[row] = entity.on_ground;
        self.ages[row] = entity.age;
        self.fuses[row] = entity.fuse;
        self.stack_sizes[row] = entity.stack_size;
        self.healths[row] = entity.health;
        self.path_targets[row] = entity.path_target;
    }

    /// Sets the stack size of the live entity with `id`, if any.
    pub fn set_stack_size(&mut self, id: EntityId, stack_size: u32) {
        if let Some(row) = self.row_of(id) {
            self.stack_sizes[row] = stack_size;
        }
    }

    /// Tombstones the entity with `id` in O(log n). Returns the removed
    /// entity and, when the row was indexed in the spatial grid, the
    /// position it is indexed under (the caller owes the grid a deferred
    /// eviction — the tick-start snapshot semantics keep the grid frozen
    /// mid-tick).
    pub fn kill(&mut self, id: EntityId) -> Option<(Entity, Option<Vec3>)> {
        let row = self.row_of(id)?;
        let entity = self.entity_at(row);
        self.alive[row] = false;
        self.live -= 1;
        let grid_entry = self.in_grid[row].then_some(self.grid_positions[row]);
        self.in_grid[row] = false;
        Some((entity, grid_entry))
    }

    /// Removes every entity. Grid state must be reset by the caller.
    pub fn clear(&mut self) {
        self.ids.clear();
        self.kinds.clear();
        self.positions.clear();
        self.velocities.clear();
        self.on_ground.clear();
        self.ages.clear();
        self.fuses.clear();
        self.stack_sizes.clear();
        self.healths.clear();
        self.path_targets.clear();
        self.alive.clear();
        self.grid_positions.clear();
        self.in_grid.clear();
        self.live = 0;
    }

    /// Iterates the live entities in canonical spawn order, materialized.
    pub fn iter_live(&self) -> impl Iterator<Item = Entity> + '_ {
        (0..self.rows())
            .filter(|&row| self.alive[row])
            .map(|row| self.entity_at(row))
    }

    /// Stable-compacts the columns if tombstones dominate, dropping dead
    /// rows while preserving the relative (spawn) order of the survivors.
    /// Amortized O(1) per removal: a sweep over n rows reclaims at least
    /// n/2 tombstones.
    pub fn maybe_compact(&mut self) {
        let dead = self.ids.len() - self.live;
        if dead < COMPACT_MIN_DEAD || dead <= self.live {
            return;
        }
        let mut write = 0usize;
        for read in 0..self.ids.len() {
            if !self.alive[read] {
                continue;
            }
            if write != read {
                self.ids[write] = self.ids[read];
                self.kinds[write] = self.kinds[read];
                self.positions[write] = self.positions[read];
                self.velocities[write] = self.velocities[read];
                self.on_ground[write] = self.on_ground[read];
                self.ages[write] = self.ages[read];
                self.fuses[write] = self.fuses[read];
                self.stack_sizes[write] = self.stack_sizes[read];
                self.healths[write] = self.healths[read];
                self.path_targets[write] = self.path_targets[read];
                self.alive[write] = true;
                self.grid_positions[write] = self.grid_positions[read];
                self.in_grid[write] = self.in_grid[read];
            }
            write += 1;
        }
        self.ids.truncate(write);
        self.kinds.truncate(write);
        self.positions.truncate(write);
        self.velocities.truncate(write);
        self.on_ground.truncate(write);
        self.ages.truncate(write);
        self.fuses.truncate(write);
        self.stack_sizes.truncate(write);
        self.healths.truncate(write);
        self.path_targets.truncate(write);
        self.alive.truncate(write);
        self.grid_positions.truncate(write);
        self.in_grid.truncate(write);
        self.generation += 1;
    }

    /// Brings `grid` in sync with the live population: evicts nothing (the
    /// caller evicts tombstoned rows from their recorded grid positions),
    /// inserts rows not yet indexed, and re-indexes rows whose position
    /// changed since they were last indexed. The result is exactly the
    /// grid a full rebuild in spawn order would produce — buckets are
    /// id-sorted either way — at the cost of touching only what moved.
    pub fn sync_grid(&mut self, grid: &mut SpatialGrid) {
        for row in 0..self.ids.len() {
            if !self.alive[row] {
                continue;
            }
            let pos = self.positions[row];
            if !self.in_grid[row] {
                grid.insert(self.ids[row], pos);
                self.in_grid[row] = true;
                self.grid_positions[row] = pos;
            } else if self.grid_positions[row] != pos {
                grid.remove(self.ids[row], self.grid_positions[row]);
                grid.insert(self.ids[row], pos);
                self.grid_positions[row] = pos;
            }
        }
        debug_assert_eq!(grid.len(), self.live, "grid out of sync with store");
    }

    /// Marks every row as unindexed (after the grid itself was cleared).
    pub fn reset_grid_tracking(&mut self) {
        for flag in &mut self.in_grid {
            *flag = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entity(id: u64, x: f64) -> Entity {
        Entity::new(EntityId(id), EntityKind::Cow, Vec3::new(x, 64.0, 0.0))
    }

    #[test]
    fn push_get_and_kill_round_trip() {
        let mut store = EntityStore::new();
        store.push(entity(1, 0.0));
        store.push(entity(2, 1.0));
        assert_eq!(store.live_count(), 2);
        let got = store.get(EntityId(2)).unwrap();
        assert_eq!(got.pos.x, 1.0);
        let (killed, grid_entry) = store.kill(EntityId(1)).unwrap();
        assert_eq!(killed.id, EntityId(1));
        assert!(grid_entry.is_none(), "never indexed, no eviction owed");
        assert_eq!(store.live_count(), 1);
        assert!(store.get(EntityId(1)).is_none());
        assert!(store.kill(EntityId(1)).is_none(), "double kill is a no-op");
    }

    #[test]
    fn ids_must_increase() {
        let mut store = EntityStore::new();
        store.push(entity(5, 0.0));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            store.push(entity(3, 0.0));
        }));
        assert!(result.is_err(), "out-of-order id must be rejected");
    }

    #[test]
    fn iter_live_skips_tombstones_in_spawn_order() {
        let mut store = EntityStore::new();
        for id in 1..=5 {
            store.push(entity(id, id as f64));
        }
        store.kill(EntityId(2));
        store.kill(EntityId(4));
        let ids: Vec<u64> = store.iter_live().map(|e| e.id.0).collect();
        assert_eq!(ids, vec![1, 3, 5]);
    }

    #[test]
    fn compaction_preserves_survivors_and_order() {
        let mut store = EntityStore::new();
        for id in 1..=300 {
            store.push(entity(id, id as f64));
        }
        for id in 1..=200 {
            store.kill(EntityId(id));
        }
        assert_eq!(store.rows(), 300);
        store.maybe_compact();
        assert_eq!(store.rows(), 100, "tombstones reclaimed");
        assert_eq!(store.generation(), 1);
        let ids: Vec<u64> = store.iter_live().map(|e| e.id.0).collect();
        assert_eq!(ids, (201..=300).collect::<Vec<_>>());
        // Lookup still works over the compacted column.
        assert_eq!(store.get(EntityId(250)).unwrap().pos.x, 250.0);
    }

    #[test]
    fn compaction_skips_small_tombstone_counts() {
        let mut store = EntityStore::new();
        for id in 1..=10 {
            store.push(entity(id, id as f64));
        }
        store.kill(EntityId(1));
        store.maybe_compact();
        assert_eq!(store.rows(), 10, "small dead counts are not worth a sweep");
    }

    #[test]
    fn sync_grid_tracks_inserts_moves_and_evictions() {
        let mut store = EntityStore::new();
        let mut grid = SpatialGrid::new();
        for id in 1..=3 {
            store.push(entity(id, id as f64));
        }
        store.sync_grid(&mut grid);
        assert_eq!(grid.len(), 3);

        // Move one entity far away; sync touches only that entry.
        let mut moved = store.get(EntityId(2)).unwrap();
        moved.pos = Vec3::new(100.0, 64.0, 0.0);
        let row = store.row_of(EntityId(2)).unwrap();
        store.write_row(row, &moved);
        store.sync_grid(&mut grid);
        let (hits, _) = grid.query_radius(Vec3::new(100.0, 64.0, 0.0), 1.0, None);
        assert_eq!(hits, vec![EntityId(2)]);

        // Kill returns the indexed position for the deferred eviction.
        let (_, grid_entry) = store.kill(EntityId(2)).unwrap();
        let evict_pos = grid_entry.expect("was indexed");
        assert!(grid.remove(EntityId(2), evict_pos));
        store.sync_grid(&mut grid);
        assert_eq!(grid.len(), 2);
    }

    #[test]
    fn write_back_updates_columns() {
        let mut store = EntityStore::new();
        store.push(entity(1, 0.0));
        let row = store.row_of(EntityId(1)).unwrap();
        let mut e = store.entity_at(row);
        e.age = 42;
        e.fuse = 7;
        e.velocity = Vec3::new(0.0, -1.0, 0.0);
        store.write_row(row, &e);
        let back = store.get(EntityId(1)).unwrap();
        assert_eq!(back.age, 42);
        assert_eq!(back.fuse, 7);
        assert_eq!(back.velocity.y, -1.0);
    }
}
