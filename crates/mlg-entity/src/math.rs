//! Minimal vector and bounding-box math used by entity simulation.

use serde::{Deserialize, Serialize};

use mlg_world::BlockPos;

/// A 3-component floating-point vector (position, velocity, offset).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec3 {
    /// East–west component.
    pub x: f64,
    /// Vertical component.
    pub y: f64,
    /// North–south component.
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Creates a vector from components.
    #[must_use]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Component-wise addition.
    // Inherent rather than `std::ops::Add` so call sites stay explicit
    // method chains (`a.add(b).scale(c)`); widely used across the physics
    // and pathfinding code.
    #[allow(clippy::should_implement_trait)]
    #[must_use]
    pub fn add(self, other: Vec3) -> Vec3 {
        Vec3::new(self.x + other.x, self.y + other.y, self.z + other.z)
    }

    /// Component-wise subtraction.
    #[allow(clippy::should_implement_trait)]
    #[must_use]
    pub fn sub(self, other: Vec3) -> Vec3 {
        Vec3::new(self.x - other.x, self.y - other.y, self.z - other.z)
    }

    /// Multiplication by a scalar.
    #[must_use]
    pub fn scale(self, factor: f64) -> Vec3 {
        Vec3::new(self.x * factor, self.y * factor, self.z * factor)
    }

    /// Euclidean length of the vector.
    #[must_use]
    pub fn length(self) -> f64 {
        self.length_squared().sqrt()
    }

    /// Squared Euclidean length (avoids the square root).
    #[must_use]
    pub fn length_squared(self) -> f64 {
        self.x * self.x + self.y * self.y + self.z * self.z
    }

    /// Distance to another point.
    #[must_use]
    pub fn distance(self, other: Vec3) -> f64 {
        self.sub(other).length()
    }

    /// Squared distance to another point.
    #[must_use]
    pub fn distance_squared(self, other: Vec3) -> f64 {
        self.sub(other).length_squared()
    }

    /// Returns the unit vector in the same direction, or zero for the zero
    /// vector.
    #[must_use]
    pub fn normalized(self) -> Vec3 {
        let len = self.length();
        if len < 1e-12 {
            Vec3::ZERO
        } else {
            self.scale(1.0 / len)
        }
    }

    /// The block position containing this point.
    #[must_use]
    pub fn block_pos(self) -> BlockPos {
        BlockPos::new(
            self.x.floor() as i32,
            self.y.floor() as i32,
            self.z.floor() as i32,
        )
    }

    /// The centre of the given block, at foot level.
    #[must_use]
    pub fn from_block_center(pos: BlockPos) -> Vec3 {
        Vec3::new(
            f64::from(pos.x) + 0.5,
            f64::from(pos.y),
            f64::from(pos.z) + 0.5,
        )
    }
}

impl std::ops::Add for Vec3 {
    type Output = Vec3;
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::add(self, rhs)
    }
}

impl std::ops::Sub for Vec3 {
    type Output = Vec3;
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::sub(self, rhs)
    }
}

impl std::ops::Mul<f64> for Vec3 {
    type Output = Vec3;
    fn mul(self, rhs: f64) -> Vec3 {
        self.scale(rhs)
    }
}

impl From<BlockPos> for Vec3 {
    fn from(pos: BlockPos) -> Self {
        Vec3::from_block_center(pos)
    }
}

/// An axis-aligned bounding box, used for entity collision volumes.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Aabb {
    /// Minimum corner.
    pub min: Vec3,
    /// Maximum corner.
    pub max: Vec3,
}

impl Aabb {
    /// Creates a bounding box from two corners (normalized automatically).
    #[must_use]
    pub fn new(a: Vec3, b: Vec3) -> Self {
        Aabb {
            min: Vec3::new(a.x.min(b.x), a.y.min(b.y), a.z.min(b.z)),
            max: Vec3::new(a.x.max(b.x), a.y.max(b.y), a.z.max(b.z)),
        }
    }

    /// Creates a box centred horizontally on `feet` with the given half-width
    /// and height (how entity hitboxes are defined in MLGs).
    #[must_use]
    pub fn from_feet(feet: Vec3, half_width: f64, height: f64) -> Self {
        Aabb {
            min: Vec3::new(feet.x - half_width, feet.y, feet.z - half_width),
            max: Vec3::new(feet.x + half_width, feet.y + height, feet.z + half_width),
        }
    }

    /// Returns `true` if the two boxes overlap.
    #[must_use]
    pub fn intersects(&self, other: &Aabb) -> bool {
        self.min.x < other.max.x
            && self.max.x > other.min.x
            && self.min.y < other.max.y
            && self.max.y > other.min.y
            && self.min.z < other.max.z
            && self.max.z > other.min.z
    }

    /// Returns `true` if the point is inside the box.
    #[must_use]
    pub fn contains(&self, p: Vec3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    /// Returns the box translated by `offset`.
    #[must_use]
    pub fn translated(&self, offset: Vec3) -> Aabb {
        Aabb {
            min: self.min.add(offset),
            max: self.max.add(offset),
        }
    }

    /// The centre point of the box.
    #[must_use]
    pub fn center(&self) -> Vec3 {
        self.min.add(self.max).scale(0.5)
    }

    /// All block positions overlapped by the box.
    #[must_use]
    pub fn overlapping_blocks(&self) -> Vec<BlockPos> {
        let mut out = Vec::new();
        let (x0, y0, z0) = (
            self.min.x.floor() as i32,
            self.min.y.floor() as i32,
            self.min.z.floor() as i32,
        );
        let (x1, y1, z1) = (
            self.max.x.ceil() as i32 - 1,
            self.max.y.ceil() as i32 - 1,
            self.max.z.ceil() as i32 - 1,
        );
        for x in x0..=x1.max(x0) {
            for y in y0..=y1.max(y0) {
                for z in z0..=z1.max(z0) {
                    out.push(BlockPos::new(x, y, z));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_arithmetic() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, -2.0, 0.5);
        assert_eq!(a + b, Vec3::new(5.0, 0.0, 3.5));
        assert_eq!(a - b, Vec3::new(-3.0, 4.0, 2.5));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
    }

    #[test]
    fn length_and_distance() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        assert!((v.length() - 5.0).abs() < 1e-12);
        assert_eq!(v.length_squared(), 25.0);
        assert!((Vec3::ZERO.distance(v) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn normalization() {
        let v = Vec3::new(0.0, 10.0, 0.0).normalized();
        assert!((v.length() - 1.0).abs() < 1e-12);
        assert_eq!(Vec3::ZERO.normalized(), Vec3::ZERO);
    }

    #[test]
    fn block_pos_conversion_floors() {
        assert_eq!(
            Vec3::new(1.9, 64.0, -0.1).block_pos(),
            BlockPos::new(1, 64, -1)
        );
        let center = Vec3::from_block_center(BlockPos::new(2, 60, -3));
        assert_eq!(center, Vec3::new(2.5, 60.0, -2.5));
        assert_eq!(center.block_pos(), BlockPos::new(2, 60, -3));
    }

    #[test]
    fn aabb_intersection() {
        let a = Aabb::from_feet(Vec3::new(0.0, 0.0, 0.0), 0.5, 2.0);
        let b = Aabb::from_feet(Vec3::new(0.6, 0.0, 0.0), 0.5, 2.0);
        let c = Aabb::from_feet(Vec3::new(5.0, 0.0, 0.0), 0.5, 2.0);
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
    }

    #[test]
    fn aabb_touching_boxes_do_not_intersect() {
        let a = Aabb::new(Vec3::ZERO, Vec3::new(1.0, 1.0, 1.0));
        let b = Aabb::new(Vec3::new(1.0, 0.0, 0.0), Vec3::new(2.0, 1.0, 1.0));
        assert!(!a.intersects(&b));
    }

    #[test]
    fn aabb_contains_and_center() {
        let b = Aabb::new(Vec3::ZERO, Vec3::new(2.0, 4.0, 2.0));
        assert!(b.contains(Vec3::new(1.0, 2.0, 1.0)));
        assert!(!b.contains(Vec3::new(3.0, 2.0, 1.0)));
        assert_eq!(b.center(), Vec3::new(1.0, 2.0, 1.0));
    }

    #[test]
    fn aabb_translation() {
        let b = Aabb::new(Vec3::ZERO, Vec3::new(1.0, 1.0, 1.0));
        let t = b.translated(Vec3::new(0.0, 5.0, 0.0));
        assert_eq!(t.min.y, 5.0);
        assert_eq!(t.max.y, 6.0);
    }

    #[test]
    fn overlapping_blocks_cover_the_box() {
        let b = Aabb::from_feet(Vec3::new(0.5, 64.0, 0.5), 0.3, 1.8);
        let blocks = b.overlapping_blocks();
        assert!(blocks.contains(&BlockPos::new(0, 64, 0)));
        assert!(blocks.contains(&BlockPos::new(0, 65, 0)));
        // A wide box spans multiple columns.
        let wide = Aabb::from_feet(Vec3::new(0.0, 64.0, 0.0), 1.0, 1.0);
        let wide_blocks = wide.overlapping_blocks();
        assert!(wide_blocks.len() >= 4);
    }
}
