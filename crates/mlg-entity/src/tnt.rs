//! Primed TNT: fuses, explosions and chain reactions.
//!
//! "In the systems tested, TNT operates by spawning an entity, which can be
//! interacted with by other entities, including other TNT entities. Thus, when
//! a large section of TNT is activated, the MLG must perform a large number of
//! both entity-collision and physics calculations." (Section 3.3.1.)

use mlg_world::sim::{explode, ExplosionOutcome};
use mlg_world::World;

use crate::entity::Entity;
use crate::math::Vec3;

/// Blast radius of a single TNT explosion, in blocks.
pub const TNT_POWER: u32 = 4;

/// Radius within which an explosion knocks back other entities.
pub const KNOCKBACK_RADIUS: f64 = 8.0;

/// What happened when a primed TNT entity was ticked.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TntTickOutcome {
    /// Whether the entity exploded this tick (and must be removed).
    pub exploded: bool,
    /// The terrain outcome of the explosion, if any.
    pub explosion: Option<ExplosionOutcome>,
}

/// Ticks the fuse of a primed TNT entity; when it reaches zero the entity
/// explodes, destroying terrain and igniting any TNT blocks caught in the
/// blast (returned inside [`ExplosionOutcome::tnt_ignited`]).
pub fn tick_fuse(world: &mut World, entity: &mut Entity) -> TntTickOutcome {
    let mut outcome = TntTickOutcome::default();
    if entity.fuse > 0 {
        entity.fuse -= 1;
        return outcome;
    }
    let center = entity.pos.block_pos();
    let explosion = explode(world, center, TNT_POWER);
    outcome.exploded = true;
    outcome.explosion = Some(explosion);
    outcome
}

/// Applies explosion knockback to an entity at `target_pos` from a blast at
/// `blast_pos`, returning the velocity change to add.
#[must_use]
pub fn knockback(blast_pos: Vec3, target_pos: Vec3) -> Vec3 {
    let offset = target_pos.sub(blast_pos);
    let distance = offset.length();
    if !(1e-9..KNOCKBACK_RADIUS).contains(&distance) {
        return Vec3::ZERO;
    }
    let strength = (KNOCKBACK_RADIUS - distance) / KNOCKBACK_RADIUS;
    offset.normalized().scale(strength * 1.2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::{EntityId, EntityKind};
    use mlg_world::generation::FlatGenerator;
    use mlg_world::{Block, BlockKind, BlockPos};

    fn world() -> World {
        World::new(Box::new(FlatGenerator::grassland()), 7)
    }

    #[test]
    fn fuse_counts_down_before_exploding() {
        let mut w = world();
        let mut tnt = Entity::new(
            EntityId(1),
            EntityKind::PrimedTnt,
            Vec3::new(8.5, 61.0, 8.5),
        );
        tnt.fuse = 3;
        for _ in 0..3 {
            let out = tick_fuse(&mut w, &mut tnt);
            assert!(!out.exploded);
        }
        let out = tick_fuse(&mut w, &mut tnt);
        assert!(out.exploded);
        assert!(out.explosion.is_some());
    }

    #[test]
    fn explosion_destroys_surrounding_terrain() {
        let mut w = world();
        let mut tnt = Entity::new(
            EntityId(1),
            EntityKind::PrimedTnt,
            Vec3::new(8.5, 61.0, 8.5),
        );
        tnt.fuse = 0;
        let out = tick_fuse(&mut w, &mut tnt);
        let explosion = out.explosion.unwrap();
        assert!(explosion.blocks_destroyed > 20);
        // Ground zero is now a crater.
        assert_eq!(w.block(BlockPos::new(8, 60, 8)), Block::AIR);
    }

    #[test]
    fn explosion_ignites_adjacent_tnt_blocks() {
        let mut w = world();
        // Place a small cluster of TNT blocks near the blast.
        for dx in 0..3 {
            w.set_block_silent(BlockPos::new(9 + dx, 61, 8), Block::simple(BlockKind::Tnt));
        }
        let mut tnt = Entity::new(
            EntityId(1),
            EntityKind::PrimedTnt,
            Vec3::new(8.5, 61.0, 8.5),
        );
        tnt.fuse = 0;
        let out = tick_fuse(&mut w, &mut tnt);
        let explosion = out.explosion.unwrap();
        assert_eq!(explosion.tnt_ignited.len(), 3, "all TNT in range chains");
        for pos in &explosion.tnt_ignited {
            assert_eq!(w.block(*pos), Block::AIR, "ignited TNT blocks are removed");
        }
    }

    #[test]
    fn knockback_decreases_with_distance() {
        let blast = Vec3::new(0.0, 64.0, 0.0);
        let near = knockback(blast, Vec3::new(1.0, 64.0, 0.0));
        let far = knockback(blast, Vec3::new(6.0, 64.0, 0.0));
        assert!(near.length() > far.length());
        assert!(far.length() > 0.0);
        let out_of_range = knockback(blast, Vec3::new(20.0, 64.0, 0.0));
        assert_eq!(out_of_range, Vec3::ZERO);
    }

    #[test]
    fn knockback_points_away_from_the_blast() {
        let blast = Vec3::new(0.0, 64.0, 0.0);
        let push = knockback(blast, Vec3::new(2.0, 64.0, 0.0));
        assert!(push.x > 0.0);
        assert_eq!(push.y, 0.0);
    }

    #[test]
    fn zero_distance_knockback_is_zero() {
        let blast = Vec3::new(1.0, 64.0, 1.0);
        assert_eq!(knockback(blast, blast), Vec3::ZERO);
    }
}
