//! Item entities: merging nearby stacks and hopper collection.
//!
//! Resource farms produce large numbers of item entities ("The Stone and Kelp
//! farm continuously destroy blocks, which create passive entities to
//! represent items", Section 3.3.1). Servers keep the entity count manageable
//! by merging nearby identical items into stacks and by letting hoppers
//! collect items into chests; both behaviours cost proximity queries every
//! tick, contributing to the entity share of tick time (MF4).

use mlg_world::{BlockKind, BlockPos, BlockReader};

use crate::entity::{Entity, EntityId, EntityKind};
use crate::spatial::SpatialGrid;

/// Radius within which identical item entities merge into one stack.
pub const MERGE_RADIUS: f64 = 1.5;

/// Maximum stack size after merging.
pub const MAX_STACK: u32 = 64;

/// Result of one item-maintenance pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ItemPassOutcome {
    /// Ids of entities removed because they merged into another stack.
    pub merged_away: Vec<EntityId>,
    /// Ids of entities removed because a hopper collected them.
    pub collected: Vec<EntityId>,
    /// Number of proximity candidates examined.
    pub candidates_examined: u32,
}

/// Merges nearby identical item entities.
///
/// `entities` is the full entity list; only item-like entities are touched.
/// Entities whose ids end up in [`ItemPassOutcome::merged_away`] had their
/// stack size folded into a surviving entity and must be removed by the
/// caller.
pub fn merge_items(entities: &mut [Entity], grid: &SpatialGrid) -> ItemPassOutcome {
    let mut outcome = ItemPassOutcome::default();
    let mut absorbed: std::collections::HashSet<EntityId> = std::collections::HashSet::new();
    // Index entities by id for stack bookkeeping.
    let mut kind_by_id: std::collections::HashMap<EntityId, EntityKind> =
        std::collections::HashMap::new();
    for e in entities.iter() {
        kind_by_id.insert(e.id, e.kind);
    }
    let mut gains: std::collections::HashMap<EntityId, u32> = std::collections::HashMap::new();

    for e in entities.iter() {
        if !e.kind.is_item_like() || absorbed.contains(&e.id) {
            continue;
        }
        let (near, examined) = grid.query_radius(e.pos, MERGE_RADIUS, Some(e.id));
        outcome.candidates_examined += examined;
        for other_id in near {
            if absorbed.contains(&other_id) || other_id <= e.id {
                continue;
            }
            if kind_by_id.get(&other_id) == Some(&e.kind) && e.stack_size < MAX_STACK {
                if absorbed.insert(other_id) {
                    // Encounter order, not hash order: the removal list must
                    // be deterministic for the sharded pipeline's
                    // bit-identity guarantee.
                    outcome.merged_away.push(other_id);
                }
                *gains.entry(e.id).or_insert(0) += 1;
            }
        }
    }

    for e in entities.iter_mut() {
        if let Some(gain) = gains.get(&e.id) {
            // Each absorbed entity contributes its stack (assumed 1 per merge
            // round; multi-stack merges resolve over successive rounds).
            e.stack_size = (e.stack_size + gain).min(MAX_STACK);
        }
    }
    outcome
}

/// Lets hoppers collect item entities resting on top of them.
///
/// Any item entity whose supporting block (directly below its position) is a
/// hopper is collected: its id is returned for removal, modelling transfer
/// into storage.
pub fn collect_into_hoppers<W: BlockReader>(world: &mut W, entities: &[Entity]) -> ItemPassOutcome {
    let mut outcome = ItemPassOutcome::default();
    for e in entities {
        if !e.kind.is_item_like() {
            continue;
        }
        outcome.candidates_examined += 1;
        let below = BlockPos::new(
            e.pos.x.floor() as i32,
            e.pos.y.floor() as i32 - 1,
            e.pos.z.floor() as i32,
        );
        let standing_in = e.pos.block_pos();
        if world.block(below).kind() == BlockKind::Hopper
            || world.block(standing_in).kind() == BlockKind::Hopper
        {
            outcome.collected.push(e.id);
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math::Vec3;
    use mlg_world::generation::FlatGenerator;
    use mlg_world::Block;
    use mlg_world::World;

    fn world() -> World {
        World::new(Box::new(FlatGenerator::grassland()), 7)
    }

    fn item(id: u64, kind: BlockKind, pos: Vec3) -> Entity {
        Entity::new(EntityId(id), EntityKind::Item(kind), pos)
    }

    fn grid_for(entities: &[Entity]) -> SpatialGrid {
        let mut grid = SpatialGrid::new();
        for e in entities {
            grid.insert(e.id, e.pos);
        }
        grid
    }

    #[test]
    fn identical_items_close_together_merge() {
        let mut entities = vec![
            item(1, BlockKind::Cobblestone, Vec3::new(0.0, 61.0, 0.0)),
            item(2, BlockKind::Cobblestone, Vec3::new(0.5, 61.0, 0.0)),
            item(3, BlockKind::Cobblestone, Vec3::new(0.9, 61.0, 0.3)),
        ];
        let grid = grid_for(&entities);
        let outcome = merge_items(&mut entities, &grid);
        assert_eq!(outcome.merged_away.len(), 2);
        let survivor = entities.iter().find(|e| e.id == EntityId(1)).unwrap();
        assert_eq!(survivor.stack_size, 3);
    }

    #[test]
    fn different_item_kinds_do_not_merge() {
        let mut entities = vec![
            item(1, BlockKind::Cobblestone, Vec3::new(0.0, 61.0, 0.0)),
            item(2, BlockKind::Kelp, Vec3::new(0.5, 61.0, 0.0)),
        ];
        let grid = grid_for(&entities);
        let outcome = merge_items(&mut entities, &grid);
        assert!(outcome.merged_away.is_empty());
    }

    #[test]
    fn distant_items_do_not_merge() {
        let mut entities = vec![
            item(1, BlockKind::Cobblestone, Vec3::new(0.0, 61.0, 0.0)),
            item(2, BlockKind::Cobblestone, Vec3::new(10.0, 61.0, 0.0)),
        ];
        let grid = grid_for(&entities);
        let outcome = merge_items(&mut entities, &grid);
        assert!(outcome.merged_away.is_empty());
    }

    #[test]
    fn mobs_are_never_merged() {
        let mut entities = vec![
            Entity::new(EntityId(1), EntityKind::Zombie, Vec3::new(0.0, 61.0, 0.0)),
            Entity::new(EntityId(2), EntityKind::Zombie, Vec3::new(0.2, 61.0, 0.0)),
        ];
        let grid = grid_for(&entities);
        let outcome = merge_items(&mut entities, &grid);
        assert!(outcome.merged_away.is_empty());
    }

    #[test]
    fn hopper_collects_items_resting_on_it() {
        let mut w = world();
        let hopper_pos = BlockPos::new(4, 61, 4);
        w.set_block_silent(hopper_pos, Block::simple(BlockKind::Hopper));
        let entities = vec![
            item(1, BlockKind::Kelp, Vec3::new(4.5, 62.0, 4.5)), // on top of the hopper
            item(2, BlockKind::Kelp, Vec3::new(8.5, 62.0, 8.5)), // elsewhere
        ];
        let outcome = collect_into_hoppers(&mut w, &entities);
        assert_eq!(outcome.collected, vec![EntityId(1)]);
    }

    #[test]
    fn items_inside_hopper_block_are_collected() {
        let mut w = world();
        let hopper_pos = BlockPos::new(4, 61, 4);
        w.set_block_silent(hopper_pos, Block::simple(BlockKind::Hopper));
        let entities = vec![item(1, BlockKind::Stone, Vec3::new(4.5, 61.5, 4.5))];
        let outcome = collect_into_hoppers(&mut w, &entities);
        assert_eq!(outcome.collected.len(), 1);
    }

    #[test]
    fn stack_size_never_exceeds_max() {
        let mut entities: Vec<Entity> = (0..80)
            .map(|i| {
                let mut e = item(
                    i,
                    BlockKind::Cobblestone,
                    Vec3::new(0.1 * i as f64 % 1.0, 61.0, 0.0),
                );
                e.stack_size = 1;
                e
            })
            .collect();
        let grid = grid_for(&entities);
        merge_items(&mut entities, &grid);
        for e in &entities {
            assert!(e.stack_size <= MAX_STACK);
        }
    }
}
