//! Rendering of lint results: `file:line: rule: message` findings, the
//! waiver audit, and the summary line the CI gates key on.

use std::fmt::Write as _;

use crate::rules::{Finding, Waiver};

/// The combined result of linting a workspace.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Surviving (un-waived) findings across all files, sorted by
    /// file and line.
    pub findings: Vec<Finding>,
    /// Every waiver annotation in the workspace — each one is a deliberate,
    /// justified exception to the contract and is printed for audit.
    pub waivers: Vec<Waiver>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of member crates walked (excluding the umbrella package).
    pub crates_scanned: usize,
}

impl Report {
    /// Returns `true` when the workspace is clean (no surviving findings).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Renders the full human-readable report.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "detlint: scanned {} files across {} member crates (+ umbrella)",
            self.files_scanned, self.crates_scanned
        );
        if !self.findings.is_empty() {
            let _ = writeln!(out);
            for f in &self.findings {
                let _ = writeln!(
                    out,
                    "{}:{}: {}: {}",
                    f.file,
                    f.line,
                    f.rule.name(),
                    f.message
                );
            }
        }
        if !self.waivers.is_empty() {
            let _ = writeln!(out, "\nwaivers ({}):", self.waivers.len());
            for w in &self.waivers {
                let rules = w
                    .rules
                    .iter()
                    .map(|r| r.name())
                    .collect::<Vec<_>>()
                    .join(", ");
                let scope = if w.file_level { " [file]" } else { "" };
                let _ = writeln!(
                    out,
                    "  {}:{}: {}{} -- {}",
                    w.file, w.line, rules, scope, w.reason
                );
            }
        }
        let _ = writeln!(
            out,
            "\ndetlint: {} finding(s), {} waiver(s)",
            self.findings.len(),
            self.waivers.len()
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RuleId;

    #[test]
    fn render_lists_findings_and_waivers() {
        let report = Report {
            findings: vec![Finding {
                file: "crates/x/src/lib.rs".into(),
                line: 7,
                rule: RuleId::NoWallClock,
                message: "bad".into(),
            }],
            waivers: vec![Waiver {
                file: "crates/y/src/lib.rs".into(),
                line: 3,
                rules: vec![RuleId::NoHashIteration],
                reason: "order cannot escape".into(),
                file_level: false,
            }],
            files_scanned: 2,
            crates_scanned: 2,
        };
        let text = report.render();
        assert!(text.contains("crates/x/src/lib.rs:7: no-wall-clock: bad"));
        assert!(text.contains("waivers (1):"));
        assert!(text.contains("no-hash-iteration -- order cannot escape"));
        assert!(text.contains("1 finding(s), 1 waiver(s)"));
        assert!(!report.is_clean());
        assert!(Report::default().is_clean());
    }
}
