//! The `detlint` command-line gate.
//!
//! ```text
//! cargo run -p detlint -- --workspace          # lint the whole workspace
//! cargo run -p detlint -- --root /path --workspace
//! ```
//!
//! Exits nonzero when any finding survives its waivers, so CI can use the
//! exit code directly.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root: Option<PathBuf> = None;
    let mut workspace = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--root" => {
                let Some(path) = args.next() else {
                    eprintln!("detlint: --root requires a path");
                    return ExitCode::from(2);
                };
                root = Some(PathBuf::from(path));
            }
            "--help" | "-h" => {
                println!(
                    "usage: detlint [--root <workspace-root>] --workspace\n\n\
                     Machine-checks the Meterstick determinism contract; see\n\
                     docs/ARCHITECTURE.md (\"Machine-checked determinism contract\")."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("detlint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    if !workspace {
        eprintln!("detlint: nothing to do; pass --workspace (try --help)");
        return ExitCode::from(2);
    }
    let root = root.unwrap_or_else(detlint::workspace_root_from_build);
    match detlint::lint_workspace(&root) {
        Ok(report) => {
            print!("{}", report.render());
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(err) => {
            eprintln!("detlint: failed to scan {}: {err}", root.display());
            ExitCode::from(2)
        }
    }
}
