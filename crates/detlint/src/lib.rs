//! `detlint` — the determinism & concurrency static-analysis gate for the
//! Meterstick workspace.
//!
//! Meterstick's variability results are only trustworthy if the simulator
//! is bit-identical at any `tick_threads`. CI proves that *dynamically* by
//! diffing campaign CSVs at 1/4/8 worker threads; `detlint` excludes whole
//! classes of nondeterminism *statically*, before a run, by machine-checking
//! the tick contract stated in `docs/ARCHITECTURE.md`:
//!
//! | rule | contract clause |
//! |------|-----------------|
//! | `no-hash-iteration` | tick-path crates never iterate `HashMap`/`HashSet` (order would leak into merged output) |
//! | `no-wall-clock` | modeled time never reads `Instant::now`/`SystemTime` (bench crate exempt) |
//! | `no-ambient-rng` | no `thread_rng`/`from_entropy`/`from_os_rng`/`OsRng`; all randomness flows from campaign seeds |
//! | `no-unsafe` | no `unsafe` token anywhere; every crate root carries `forbid(unsafe_code)` |
//! | `no-bare-spawn` | no `thread::spawn`/`thread::Builder` outside `mlg_world::pool` |
//! | `no-debug-output` | no `println!`/`eprintln!`/`dbg!` in library crates (sinks, bench exempt) |
//!
//! Violations are waivable inline with
//! `// detlint: allow(<rule>) -- <reason>`; every waiver is counted and
//! printed in the report so exceptions stay auditable. Run it locally with:
//!
//! ```text
//! cargo run -p detlint -- --workspace
//! ```
//!
//! The scanner is hand-rolled and comment/string-aware (the build container
//! is offline, so no `syn` — the same discipline as the vendored dependency
//! shims): rule patterns can never fire on comments, doc text or string
//! literals, which also lets this crate's own fixtures and pattern tables
//! live in plain strings.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod report;
pub mod rules;
pub mod scanner;
pub mod workspace;

pub use report::Report;
pub use rules::{check_file, FileOutcome, Finding, RuleId, Waiver};
pub use workspace::{classify, lint_workspace, workspace_root_from_build, FileContext};

/// Lints a single source text as if it lived at `rel_path` in the
/// workspace. This is the entry point the fixture tests use; files the
/// workspace walk would skip (e.g. under `vendor/`) produce an empty
/// outcome.
#[must_use]
pub fn lint_source(rel_path: &str, source: &str) -> FileOutcome {
    match classify(rel_path) {
        Some(ctx) => check_file(&ctx, source),
        None => FileOutcome::default(),
    }
}
