//! Workspace discovery: which files to lint and under which context.
//!
//! The walk is manifest-driven: every `crates/<dir>` with a `Cargo.toml` is
//! a member, plus the umbrella package rooted at the workspace root
//! (`src/`, `tests/`, `examples/`). The vendored dependency shims under
//! `vendor/` are third-party stand-ins and are exempt, as are build
//! artifacts (`target/`).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::report::Report;
use crate::rules::check_file;

/// What kind of compilation target a file belongs to; several rules only
/// apply to library code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetKind {
    /// Part of the crate's library (`src/**` minus `src/bin` and
    /// `src/main.rs`).
    Lib,
    /// A binary target (`src/main.rs`, `src/bin/**`).
    Bin,
    /// An integration test (`tests/**`).
    Test,
    /// A benchmark target (`benches/**`).
    Bench,
    /// An example (`examples/**`).
    Example,
}

/// Everything the rule engine needs to know about a file's place in the
/// workspace.
#[derive(Debug, Clone)]
pub struct FileContext {
    /// Workspace-relative path, `/`-separated.
    pub rel_path: String,
    /// The member directory name (`mlg-world`, `core`, …); the umbrella
    /// package is `"."`.
    pub crate_dir: String,
    /// The target the file belongs to.
    pub kind: TargetKind,
    /// Whether the file is the crate's library root (`src/lib.rs`), which
    /// must carry the `forbid(unsafe_code)` attribute.
    pub is_crate_root: bool,
}

impl FileContext {
    /// Returns `true` when the file's crate directory is in `dirs`.
    #[must_use]
    pub fn crate_in(&self, dirs: &[&str]) -> bool {
        dirs.contains(&self.crate_dir.as_str())
    }
}

/// Classifies a workspace-relative path (`/`-separated). Returns `None`
/// for files detlint does not lint: the vendored shims and anything
/// outside the member layout.
#[must_use]
pub fn classify(rel_path: &str) -> Option<FileContext> {
    if !rel_path.ends_with(".rs") {
        return None;
    }
    let parts: Vec<&str> = rel_path.split('/').collect();
    let (crate_dir, in_crate): (&str, &[&str]) = match parts.as_slice() {
        ["vendor", ..] | ["target", ..] => return None,
        ["crates", dir, rest @ ..] => (dir, rest),
        rest => (".", rest),
    };
    let kind = match in_crate {
        ["src", "main.rs"] | ["src", "bin", ..] => TargetKind::Bin,
        ["src", ..] => TargetKind::Lib,
        ["tests", ..] => TargetKind::Test,
        ["benches", ..] => TargetKind::Bench,
        ["examples", ..] => TargetKind::Example,
        _ => return None,
    };
    Some(FileContext {
        rel_path: rel_path.to_string(),
        crate_dir: crate_dir.to_string(),
        kind,
        is_crate_root: in_crate == ["src", "lib.rs"],
    })
}

/// The workspace root this binary was compiled in, for `cargo run -p
/// detlint` and the bench probes (which run from a checkout of the same
/// tree).
#[must_use]
pub fn workspace_root_from_build() -> PathBuf {
    // crates/detlint -> crates -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("detlint sits two levels below the workspace root")
        .to_path_buf()
}

/// Lints every member source file under `root` and returns the combined
/// report.
///
/// # Errors
///
/// Returns any I/O error encountered while walking the tree or reading a
/// source file.
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    let mut report = Report::default();
    let mut files: Vec<PathBuf> = Vec::new();

    // Umbrella package at the root.
    for dir in ["src", "tests", "examples"] {
        collect_rs_files(&root.join(dir), &mut files)?;
    }
    // Member crates: each crates/<dir> with a manifest.
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.is_dir() && p.join("Cargo.toml").is_file())
            .collect();
        members.sort();
        for member in members {
            report.crates_scanned += 1;
            for dir in ["src", "tests", "benches", "examples"] {
                collect_rs_files(&member.join(dir), &mut files)?;
            }
        }
    }

    files.sort();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let Some(ctx) = classify(&rel) else {
            continue;
        };
        let source = fs::read_to_string(&path)?;
        let outcome = check_file(&ctx, &source);
        report.files_scanned += 1;
        report.findings.extend(outcome.findings);
        report.waivers.extend(outcome.waivers);
    }
    report
        .findings
        .sort_by(|a, b| a.file.cmp(&b.file).then(a.line.cmp(&b.line)));
    Ok(report)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    entries.sort();
    for entry in entries {
        if entry.is_dir() {
            collect_rs_files(&entry, out)?;
        } else if entry.extension().is_some_and(|e| e == "rs") {
            out.push(entry);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_covers_the_member_layout() {
        let lib = classify("crates/mlg-world/src/world.rs").unwrap();
        assert_eq!(lib.crate_dir, "mlg-world");
        assert_eq!(lib.kind, TargetKind::Lib);
        assert!(!lib.is_crate_root);

        let root = classify("crates/core/src/lib.rs").unwrap();
        assert!(root.is_crate_root);

        let bin = classify("crates/bench/src/bin/calibrate.rs").unwrap();
        assert_eq!(bin.kind, TargetKind::Bin);

        let umbrella = classify("src/lib.rs").unwrap();
        assert_eq!(umbrella.crate_dir, ".");
        assert!(umbrella.is_crate_root);

        let test = classify("tests/end_to_end.rs").unwrap();
        assert_eq!(test.kind, TargetKind::Test);

        assert!(classify("vendor/rand/src/lib.rs").is_none());
        assert!(classify("target/debug/build/foo.rs").is_none());
        assert!(classify("docs/ARCHITECTURE.md").is_none());
    }
}
