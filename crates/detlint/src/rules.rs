//! The determinism-contract rules and the per-file checking pass.
//!
//! Each rule encodes one clause of the tick contract stated in
//! `docs/ARCHITECTURE.md` ("Machine-checked determinism contract"):
//!
//! * [`RuleId::NoHashIteration`] — iterating a `std` `HashMap`/`HashSet`
//!   (or calling `.iter()`/`.keys()`/`.values()`/`.drain()`/… on one) is
//!   forbidden in the tick-path crates, where iteration order leaks into
//!   merged tick output.
//! * [`RuleId::NoWallClock`] — `Instant::now`/`SystemTime` are forbidden
//!   outside the bench crate: modeled time must never read the host clock.
//! * [`RuleId::NoAmbientRng`] — `thread_rng`, `from_entropy`, `from_os_rng`
//!   and `OsRng` are forbidden everywhere: all randomness flows from
//!   campaign seeds.
//! * [`RuleId::NoUnsafe`] — no `unsafe` token anywhere, and every crate
//!   root must carry the `forbid(unsafe_code)` attribute.
//! * [`RuleId::NoBareSpawn`] — `thread::spawn`/`thread::Builder` are
//!   forbidden outside `mlg_world::pool`: all tick fan-out goes through
//!   `TickPipeline::scope()`.
//! * [`RuleId::NoDebugOutput`] — `println!`/`eprintln!`/`dbg!` are
//!   forbidden in library crates (sinks and bench binaries are exempt).
//!
//! Violations can be waived inline:
//!
//! ```text
//! // detlint: allow(no-wall-clock) -- measuring substrate overhead itself
//! ```
//!
//! on the offending line or on a standalone comment line directly above it.
//! The reason after `--` is mandatory; a reason-less waiver is itself a
//! finding. A file-level `// detlint: substrate-timing -- <reason>` marker
//! exempts a whole module from the wall-clock rule (for explicitly-marked
//! substrate-timing code) and is counted as a waiver like any other.

use crate::scanner::{scan, tokenize, ScannedFile, Token};
use crate::workspace::{FileContext, TargetKind};

/// Identifies one rule of the determinism contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// Hash-order iteration in a tick-path crate.
    NoHashIteration,
    /// Host-clock reads outside the bench crate.
    NoWallClock,
    /// Entropy-seeded randomness anywhere.
    NoAmbientRng,
    /// `unsafe` code or a crate root missing `forbid(unsafe_code)`.
    NoUnsafe,
    /// Thread creation outside the tick worker pool.
    NoBareSpawn,
    /// Debug printing in library crates.
    NoDebugOutput,
    /// A detlint annotation that does not parse (unknown rule, missing
    /// reason); never waivable.
    InvalidWaiver,
}

impl RuleId {
    /// Every rule, in report order.
    pub const ALL: [RuleId; 7] = [
        RuleId::NoHashIteration,
        RuleId::NoWallClock,
        RuleId::NoAmbientRng,
        RuleId::NoUnsafe,
        RuleId::NoBareSpawn,
        RuleId::NoDebugOutput,
        RuleId::InvalidWaiver,
    ];

    /// The kebab-case id used in reports and waiver annotations.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            RuleId::NoHashIteration => "no-hash-iteration",
            RuleId::NoWallClock => "no-wall-clock",
            RuleId::NoAmbientRng => "no-ambient-rng",
            RuleId::NoUnsafe => "no-unsafe",
            RuleId::NoBareSpawn => "no-bare-spawn",
            RuleId::NoDebugOutput => "no-debug-output",
            RuleId::InvalidWaiver => "invalid-waiver",
        }
    }

    /// Parses a kebab-case rule id as written in a waiver annotation.
    /// `invalid-waiver` is deliberately not accepted: it cannot be waived.
    #[must_use]
    pub fn parse(name: &str) -> Option<RuleId> {
        RuleId::ALL
            .into_iter()
            .filter(|r| *r != RuleId::InvalidWaiver)
            .find(|r| r.name() == name.trim())
    }
}

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-indexed line.
    pub line: usize,
    /// The violated rule.
    pub rule: RuleId,
    /// Human-readable explanation.
    pub message: String,
}

/// One waiver annotation found in a file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    /// Workspace-relative path of the file carrying the waiver.
    pub file: String,
    /// 1-indexed line of the annotation.
    pub line: usize,
    /// The rules it waives.
    pub rules: Vec<RuleId>,
    /// The mandatory justification after `--`.
    pub reason: String,
    /// Whether the waiver is the file-level substrate-timing marker.
    pub file_level: bool,
}

/// Result of linting one file.
#[derive(Debug, Clone, Default)]
pub struct FileOutcome {
    /// Surviving (un-waived) findings.
    pub findings: Vec<Finding>,
    /// Every waiver annotation present in the file.
    pub waivers: Vec<Waiver>,
}

/// Crate directories on the tick path, where hash-order iteration leaks
/// into merged tick output.
///
/// The `daemon` crate is deliberately **not** here: it observes ticks
/// after the fact through `TickObserver` and can never feed data back
/// into the simulation, so its containers cannot perturb tick output.
pub const TICK_PATH_CRATES: [&str; 5] = [
    "mlg-world",
    "mlg-entity",
    "mlg-server",
    "mlg-bots",
    "mlg-protocol",
];

/// Entity-substrate modules that must exist and be scanned under the
/// tick-path coverage: the columnar store, the deterministic spatial
/// index, and the per-tick simulation passes that consume them. A module
/// rename or split must update this table (and gets fresh coverage for
/// free); losing one silently would shrink the lint surface.
pub const TICK_PATH_ENTITY_MODULES: [&str; 8] = [
    "crates/mlg-entity/src/ai.rs",
    "crates/mlg-entity/src/items.rs",
    "crates/mlg-entity/src/manager.rs",
    "crates/mlg-entity/src/physics.rs",
    "crates/mlg-entity/src/spatial.rs",
    "crates/mlg-entity/src/spawning.rs",
    "crates/mlg-entity/src/store.rs",
    "crates/mlg-entity/src/tnt.rs",
];

/// Cloud-model modules pulled under the hash-iteration rule individually:
/// the `cloud-sim` crate as a whole sits outside the tick path (its
/// recommendation/reporting helpers are free to use hash containers), but
/// these modules run *inside* the tick loop — the compute engine converts
/// per-tick work to durations and the interference/tenancy models perturb
/// them — so hash-order iteration there would leak into tick output just
/// like in a tick-path crate. Renaming or splitting one must update this
/// table; `crates/detlint/tests/workspace_clean.rs` pins their existence.
pub const TICK_PATH_MODEL_MODULES: [&str; 3] = [
    "crates/cloud-sim/src/engine.rs",
    "crates/cloud-sim/src/interference.rs",
    "crates/cloud-sim/src/temporal.rs",
];

/// Crate directories exempt from the wall-clock rule:
///
/// * `bench` — the benchmark harness legitimately measures host time;
/// * `daemon` — the resident daemon *presents* runs in wall-clock terms
///   (real-time pacing, liveness of SSE streams); it sits outside the
///   tick loop, whose modeled time stays host-clock-free.
pub const WALL_CLOCK_EXEMPT_CRATES: [&str; 2] = ["bench", "daemon"];

/// Files allowed to create threads:
///
/// * the persistent tick worker pool (all tick fan-out goes through
///   `TickPipeline::scope()`);
/// * the daemon's HTTP surface (the accept thread and per-connection
///   threads are control plane, not tick fan-out, and touch simulation
///   state only through the `DaemonHandle` lock).
pub const SPAWN_EXEMPT_FILES: [&str; 2] =
    ["crates/mlg-world/src/pool.rs", "crates/daemon/src/http.rs"];

/// Crate directories exempt from the debug-output rule in *library* code.
/// Split from [`WALL_CLOCK_EXEMPT_CRATES`] on purpose: the daemon crate is
/// wall-clock-exempt but its library must still route output through
/// sinks/streams, never print.
pub const DEBUG_OUTPUT_EXEMPT_CRATES: [&str; 1] = ["bench"];

/// Library files exempt from the debug-output rule: result sinks write to
/// their configured streams by design.
pub const DEBUG_OUTPUT_EXEMPT_FILES: [&str; 1] = ["crates/core/src/sink.rs"];

const HASH_TYPES: [&str; 2] = ["HashMap", "HashSet"];
const HASH_ITER_METHODS: [&str; 10] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];
const HASH_CTORS: [&str; 4] = ["new", "with_capacity", "default", "from"];
const AMBIENT_RNG_IDENTS: [&str; 4] = ["thread_rng", "from_entropy", "from_os_rng", "OsRng"];
const DEBUG_MACROS: [&str; 3] = ["println", "eprintln", "dbg"];

/// Lints one file's source text under the rules that apply to `ctx`.
#[must_use]
pub fn check_file(ctx: &FileContext, source: &str) -> FileOutcome {
    let scanned = scan(source);
    let tokens = tokenize(&scanned);
    let mut outcome = FileOutcome::default();
    collect_waivers(ctx, &scanned, &mut outcome);
    let substrate_timing_file = outcome.waivers.iter().any(|w| w.file_level);

    let mut raw: Vec<Finding> = Vec::new();
    if ctx.crate_in(&TICK_PATH_CRATES) || TICK_PATH_MODEL_MODULES.contains(&ctx.rel_path.as_str()) {
        check_hash_iteration(ctx, &tokens, &mut raw);
    }
    if !ctx.crate_in(&WALL_CLOCK_EXEMPT_CRATES) && !substrate_timing_file {
        check_wall_clock(ctx, &tokens, &mut raw);
    }
    check_ambient_rng(ctx, &tokens, &mut raw);
    check_no_unsafe(ctx, &tokens, &mut raw);
    if !SPAWN_EXEMPT_FILES.contains(&ctx.rel_path.as_str()) {
        check_bare_spawn(ctx, &tokens, &mut raw);
    }
    if ctx.kind == TargetKind::Lib
        && !ctx.crate_in(&DEBUG_OUTPUT_EXEMPT_CRATES)
        && !DEBUG_OUTPUT_EXEMPT_FILES.contains(&ctx.rel_path.as_str())
    {
        check_debug_output(ctx, &tokens, &mut raw);
    }

    // Apply line waivers: a finding survives unless a waiver for its rule
    // sits on the same line or on a comment-only line directly above it.
    for finding in raw {
        let waived = outcome.waivers.iter().any(|w| {
            !w.file_level
                && w.rules.contains(&finding.rule)
                && (w.line == finding.line
                    || (w.line + 1 == finding.line
                        && scanned
                            .lines
                            .get(w.line - 1)
                            .is_some_and(|l| l.is_comment_only())))
        });
        if !waived {
            outcome.findings.push(finding);
        }
    }
    outcome.findings.sort_by_key(|f| f.line);
    outcome
}

fn collect_waivers(ctx: &FileContext, scanned: &ScannedFile, outcome: &mut FileOutcome) {
    for (idx, line) in scanned.lines.iter().enumerate() {
        for comment in &line.comments {
            let Some(rest) = comment.trim().strip_prefix("detlint:") else {
                continue;
            };
            let rest = rest.trim();
            if let Some(marker) = rest.strip_prefix("substrate-timing") {
                let reason = marker.trim().strip_prefix("--").map(str::trim);
                match reason {
                    Some(r) if !r.is_empty() => outcome.waivers.push(Waiver {
                        file: ctx.rel_path.clone(),
                        line: idx + 1,
                        rules: vec![RuleId::NoWallClock],
                        reason: r.to_string(),
                        file_level: true,
                    }),
                    _ => outcome.findings.push(malformed_waiver(ctx, idx + 1)),
                }
            } else if let Some(spec) = rest.strip_prefix("allow(") {
                let Some((rules_part, tail)) = spec.split_once(')') else {
                    outcome.findings.push(malformed_waiver(ctx, idx + 1));
                    continue;
                };
                let names: Vec<&str> = rules_part.split(',').collect();
                let rules: Vec<RuleId> = names.iter().filter_map(|n| RuleId::parse(n)).collect();
                // Every named rule must parse; a typo'd rule id must not
                // silently waive nothing (or the wrong thing).
                if rules.len() != names.len() {
                    outcome.findings.push(malformed_waiver(ctx, idx + 1));
                    continue;
                }
                let reason = tail.trim().strip_prefix("--").map(str::trim);
                match reason {
                    Some(r) if !rules.is_empty() && !r.is_empty() => {
                        outcome.waivers.push(Waiver {
                            file: ctx.rel_path.clone(),
                            line: idx + 1,
                            rules,
                            reason: r.to_string(),
                            file_level: false,
                        });
                    }
                    _ => outcome.findings.push(malformed_waiver(ctx, idx + 1)),
                }
            } else {
                outcome.findings.push(malformed_waiver(ctx, idx + 1));
            }
        }
    }
}

fn malformed_waiver(ctx: &FileContext, line: usize) -> Finding {
    Finding {
        file: ctx.rel_path.clone(),
        line,
        rule: RuleId::InvalidWaiver,
        message: "malformed detlint annotation; use `detlint: allow(<rule>) -- <reason>` \
                  or `detlint: substrate-timing -- <reason>` (the reason is mandatory)"
            .to_string(),
    }
}

/// Identifiers in this file declared (or bound) with a `HashMap`/`HashSet`
/// type: struct fields and `let` bindings with an explicit type, plus
/// bindings initialized from a hash-type constructor.
fn tracked_hash_idents(tokens: &[Token]) -> Vec<String> {
    let mut tracked = Vec::new();
    for i in 0..tokens.len() {
        let t = &tokens[i];
        if !HASH_TYPES.contains(&t.text.as_str()) {
            continue;
        }
        // Walk back over a qualifying path (`std :: collections ::`).
        let mut j = i;
        while j >= 2 && tokens[j - 1].text == "::" {
            j -= 2;
        }
        // `name : [path ::] HashMap` — a field or typed binding.
        if j >= 2 && tokens[j - 1].text == ":" && is_ident(&tokens[j - 2].text) {
            push_unique(&mut tracked, tokens[j - 2].text.clone());
            continue;
        }
        // `name = [path ::] HashMap :: ctor` — an inferred binding.
        if j >= 2
            && tokens[j - 1].text == "="
            && is_ident(&tokens[j - 2].text)
            && tokens.get(i + 1).is_some_and(|t| t.text == "::")
            && tokens
                .get(i + 2)
                .is_some_and(|t| HASH_CTORS.contains(&t.text.as_str()))
        {
            push_unique(&mut tracked, tokens[j - 2].text.clone());
        }
    }
    tracked
}

fn is_ident(text: &str) -> bool {
    text.chars()
        .next()
        .is_some_and(|c| c.is_alphabetic() || c == '_')
}

fn push_unique(v: &mut Vec<String>, s: String) {
    if !v.contains(&s) {
        v.push(s);
    }
}

fn check_hash_iteration(ctx: &FileContext, tokens: &[Token], out: &mut Vec<Finding>) {
    let tracked = tracked_hash_idents(tokens);
    if tracked.is_empty() {
        return;
    }
    for i in 0..tokens.len() {
        let t = &tokens[i];
        if tracked.contains(&t.text) {
            // `name . iter ( …` and friends.
            if tokens.get(i + 1).is_some_and(|n| n.text == ".") {
                if let Some(m) = tokens.get(i + 2) {
                    if HASH_ITER_METHODS.contains(&m.text.as_str())
                        && tokens.get(i + 3).is_some_and(|p| p.text == "(")
                    {
                        out.push(Finding {
                            file: ctx.rel_path.clone(),
                            line: m.line,
                            rule: RuleId::NoHashIteration,
                            message: format!(
                                "`.{}()` on `{}` iterates a hash container in a tick-path \
                                 crate; use an ordered container or iterate a sorted/insertion \
                                 key order instead",
                                m.text, t.text
                            ),
                        });
                    }
                }
            }
        }
        // `for pat in [&][mut] path.to.name {` — iterating the map itself.
        // The iterated expression is a (possibly dotted) path whose final
        // segment is a tracked identifier, directly followed by the loop
        // body's opening brace.
        if t.text == "in" {
            let mut j = i + 1;
            while tokens
                .get(j)
                .is_some_and(|n| n.text == "&" || n.text == "mut")
            {
                j += 1;
            }
            let mut last_ident: Option<&Token> = None;
            while let Some(seg) = tokens.get(j) {
                if !is_ident(&seg.text) {
                    break;
                }
                last_ident = Some(seg);
                if tokens.get(j + 1).is_some_and(|n| n.text == ".")
                    && tokens.get(j + 2).is_some_and(|n| is_ident(&n.text))
                {
                    j += 2;
                } else {
                    j += 1;
                    break;
                }
            }
            if let Some(name) = last_ident {
                if tracked.contains(&name.text) && tokens.get(j).is_some_and(|n| n.text == "{") {
                    out.push(Finding {
                        file: ctx.rel_path.clone(),
                        line: name.line,
                        rule: RuleId::NoHashIteration,
                        message: format!(
                            "`for … in {}` iterates a hash container in a tick-path crate; \
                             iterate an ordered key list instead",
                            name.text
                        ),
                    });
                }
            }
        }
    }
}

fn check_wall_clock(ctx: &FileContext, tokens: &[Token], out: &mut Vec<Finding>) {
    for i in 0..tokens.len() {
        let t = &tokens[i];
        if t.text == "Instant"
            && tokens.get(i + 1).is_some_and(|n| n.text == "::")
            && tokens.get(i + 2).is_some_and(|n| n.text == "now")
        {
            out.push(Finding {
                file: ctx.rel_path.clone(),
                line: t.line,
                rule: RuleId::NoWallClock,
                message: "`Instant::now` reads the host clock; modeled time must come from \
                          the compute engine (bench crate and marked substrate-timing \
                          modules are exempt)"
                    .to_string(),
            });
        } else if t.text == "SystemTime" {
            out.push(Finding {
                file: ctx.rel_path.clone(),
                line: t.line,
                rule: RuleId::NoWallClock,
                message: "`SystemTime` reads the host clock; modeled time must come from \
                          the compute engine"
                    .to_string(),
            });
        }
    }
}

fn check_ambient_rng(ctx: &FileContext, tokens: &[Token], out: &mut Vec<Finding>) {
    for t in tokens {
        if AMBIENT_RNG_IDENTS.contains(&t.text.as_str()) {
            out.push(Finding {
                file: ctx.rel_path.clone(),
                line: t.line,
                rule: RuleId::NoAmbientRng,
                message: format!(
                    "`{}` draws entropy from the environment; all randomness must flow \
                     from campaign seeds (`StdRng::seed_from_u64`)",
                    t.text
                ),
            });
        }
    }
}

fn check_no_unsafe(ctx: &FileContext, tokens: &[Token], out: &mut Vec<Finding>) {
    for t in tokens {
        if t.text == "unsafe" {
            out.push(Finding {
                file: ctx.rel_path.clone(),
                line: t.line,
                rule: RuleId::NoUnsafe,
                message: "the workspace is `unsafe`-free by contract; every crate root \
                          forbids unsafe_code"
                    .to_string(),
            });
        }
    }
    if ctx.is_crate_root && !has_forbid_unsafe(tokens) {
        out.push(Finding {
            file: ctx.rel_path.clone(),
            line: 1,
            rule: RuleId::NoUnsafe,
            message: "crate root is missing the `#![forbid(unsafe_code)]` attribute".to_string(),
        });
    }
}

fn has_forbid_unsafe(tokens: &[Token]) -> bool {
    tokens
        .windows(3)
        .any(|w| w[0].text == "forbid" && w[1].text == "(" && w[2].text == "unsafe_code")
}

fn check_bare_spawn(ctx: &FileContext, tokens: &[Token], out: &mut Vec<Finding>) {
    for i in 0..tokens.len() {
        if tokens[i].text == "thread"
            && tokens.get(i + 1).is_some_and(|n| n.text == "::")
            && tokens
                .get(i + 2)
                .is_some_and(|n| n.text == "spawn" || n.text == "Builder")
        {
            out.push(Finding {
                file: ctx.rel_path.clone(),
                line: tokens[i].line,
                rule: RuleId::NoBareSpawn,
                message: format!(
                    "`thread::{}` outside `mlg_world::pool`; all tick fan-out goes through \
                     `TickPipeline::scope()` so worker count and lifecycle stay centralized",
                    tokens[i + 2].text
                ),
            });
        }
    }
}

fn check_debug_output(ctx: &FileContext, tokens: &[Token], out: &mut Vec<Finding>) {
    for i in 0..tokens.len() {
        let t = &tokens[i];
        if DEBUG_MACROS.contains(&t.text.as_str())
            && tokens.get(i + 1).is_some_and(|n| n.text == "!")
        {
            out.push(Finding {
                file: ctx.rel_path.clone(),
                line: t.line,
                rule: RuleId::NoDebugOutput,
                message: format!(
                    "`{}!` in a library crate; route output through a `ResultSink` (bench \
                     binaries and sinks are exempt)",
                    t.text
                ),
            });
        }
    }
}
