//! A hand-rolled, comment- and string-aware scanner for Rust source.
//!
//! The build container is offline, so `detlint` cannot lean on `syn` the way
//! a networked lint would — the same discipline as the vendored dependency
//! shims. Instead this module does the one lexical job the rule engine
//! actually needs: split a source file into *code* and *comments*, with the
//! bodies of string/char literals blanked out of the code channel. Rule
//! patterns then match on tokens that are guaranteed to be real code —
//! `thread_rng` inside a doc comment or an error-message string can never
//! fire — while waiver annotations are parsed from the comment channel.
//!
//! Handled forms: line comments, (nested) block comments, string literals
//! with escapes, raw strings `r"…"`/`r#"…"#` (any hash depth), byte and
//! byte-raw strings, char and byte-char literals, and lifetimes (`'a` is
//! *not* a char literal). Multi-line strings and block comments carry their
//! state across lines.

/// One physical source line after scanning.
#[derive(Debug, Clone, Default)]
pub struct ScannedLine {
    /// The line's code with comments removed and literal bodies blanked.
    /// Quote characters are kept so the token stream still sees literal
    /// boundaries.
    pub code: String,
    /// Text of every comment (or trailing fragment of a multi-line block
    /// comment) that ends or continues on this line.
    pub comments: Vec<String>,
}

impl ScannedLine {
    /// Returns `true` when the line contains no code tokens at all (only
    /// whitespace and/or comments). Used to attach standalone waiver
    /// comments to the next code line.
    #[must_use]
    pub fn is_comment_only(&self) -> bool {
        self.code.trim().is_empty()
    }
}

/// A whole source file after scanning; lines are 0-indexed here and
/// 1-indexed everywhere user-facing.
#[derive(Debug, Clone, Default)]
pub struct ScannedFile {
    /// The scanned lines, in order.
    pub lines: Vec<ScannedLine>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
}

/// Scans `source` into per-line code and comment channels.
#[must_use]
pub fn scan(source: &str) -> ScannedFile {
    let chars: Vec<char> = source.chars().collect();
    let n = chars.len();
    let mut lines: Vec<ScannedLine> = Vec::new();
    let mut line = ScannedLine::default();
    let mut comment = String::new();
    let mut mode = Mode::Code;
    let mut i = 0usize;
    // The previous code character, used to tell a raw-string prefix from an
    // identifier that merely ends in `r` or `b`.
    let mut prev_code: char = ' ';

    while i < n {
        let c = chars[i];
        if c == '\n' {
            match mode {
                Mode::LineComment => {
                    line.comments.push(std::mem::take(&mut comment));
                    mode = Mode::Code;
                }
                Mode::BlockComment(_) => {
                    // Attribute the fragment so single-line `/* … */` waivers
                    // land on their own line; reset for the next line.
                    line.comments.push(std::mem::take(&mut comment));
                }
                _ => {}
            }
            lines.push(std::mem::take(&mut line));
            i += 1;
            continue;
        }
        match mode {
            Mode::Code => {
                let next = chars.get(i + 1).copied().unwrap_or(' ');
                if c == '/' && next == '/' {
                    mode = Mode::LineComment;
                    comment.clear();
                    i += 2;
                } else if c == '/' && next == '*' {
                    mode = Mode::BlockComment(1);
                    comment.clear();
                    i += 2;
                } else if c == '"' {
                    line.code.push('"');
                    mode = Mode::Str;
                    prev_code = '"';
                    i += 1;
                } else if (c == 'r' || c == 'b') && !is_ident_char(prev_code) {
                    // Possible raw/byte literal prefix: r", r#", br", b", b'.
                    if let Some((hashes, consumed)) = raw_string_start(&chars, i) {
                        line.code.push('"');
                        mode = Mode::RawStr(hashes);
                        prev_code = '"';
                        i += consumed;
                    } else if c == 'b' && next == '"' {
                        line.code.push('"');
                        mode = Mode::Str;
                        prev_code = '"';
                        i += 2;
                    } else if c == 'b' && next == '\'' {
                        i += 1 + char_literal_len(&chars, i + 1);
                        prev_code = '\'';
                    } else {
                        line.code.push(c);
                        prev_code = c;
                        i += 1;
                    }
                } else if c == '\'' {
                    let len = char_literal_len(&chars, i);
                    if len > 0 {
                        // A real char literal: blank its body.
                        i += len;
                        prev_code = '\'';
                    } else {
                        // A lifetime; keep the tick out of the code channel
                        // (the following identifier is harmless).
                        line.code.push(' ');
                        prev_code = '\'';
                        i += 1;
                    }
                } else {
                    line.code.push(c);
                    prev_code = c;
                    i += 1;
                }
            }
            Mode::LineComment => {
                comment.push(c);
                i += 1;
            }
            Mode::BlockComment(depth) => {
                let next = chars.get(i + 1).copied().unwrap_or(' ');
                if c == '*' && next == '/' {
                    if depth == 1 {
                        line.comments.push(std::mem::take(&mut comment));
                        mode = Mode::Code;
                    } else {
                        mode = Mode::BlockComment(depth - 1);
                    }
                    i += 2;
                } else if c == '/' && next == '*' {
                    mode = Mode::BlockComment(depth + 1);
                    comment.push_str("/*");
                    i += 2;
                } else {
                    comment.push(c);
                    i += 1;
                }
            }
            Mode::Str => {
                if c == '\\' {
                    i += 2; // Skip the escaped character (even a quote).
                } else if c == '"' {
                    line.code.push('"');
                    mode = Mode::Code;
                    i += 1;
                } else {
                    i += 1; // Blank the literal body.
                }
            }
            Mode::RawStr(hashes) => {
                if c == '"' && raw_string_ends(&chars, i, hashes) {
                    line.code.push('"');
                    mode = Mode::Code;
                    i += 1 + hashes as usize;
                } else {
                    i += 1;
                }
            }
        }
    }
    match mode {
        Mode::LineComment | Mode::BlockComment(_) => {
            line.comments.push(comment);
        }
        _ => {}
    }
    if !line.code.is_empty() || !line.comments.is_empty() {
        lines.push(line);
    }
    ScannedFile { lines }
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// If `chars[i..]` starts a raw (or byte-raw) string literal, returns the
/// hash depth and the number of characters up to and including the opening
/// quote.
fn raw_string_start(chars: &[char], i: usize) -> Option<(u32, usize)> {
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0u32;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) == Some(&'"') {
        Some((hashes, j + 1 - i))
    } else {
        None
    }
}

/// Returns `true` when the quote at `chars[i]` closes a raw string with the
/// given hash depth.
fn raw_string_ends(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Length in characters of the char literal starting at `chars[i]` (which
/// must be `'`), or 0 when it is a lifetime rather than a literal.
fn char_literal_len(chars: &[char], i: usize) -> usize {
    match chars.get(i + 1) {
        Some('\\') => {
            // Escaped char: scan to the closing tick.
            let mut j = i + 2;
            while j < chars.len() && chars[j] != '\'' && chars[j] != '\n' {
                j += 1;
            }
            j + 1 - i
        }
        Some(_) if chars.get(i + 2) == Some(&'\'') => 3,
        _ => 0,
    }
}

/// A code token: an identifier/number word or a single punctuation
/// character, with `::` kept as one token for path matching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token text.
    pub text: String,
    /// 1-indexed source line the token starts on.
    pub line: usize,
}

/// Tokenizes the code channel of a scanned file.
#[must_use]
pub fn tokenize(file: &ScannedFile) -> Vec<Token> {
    let mut out = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        let lineno = idx + 1;
        let chars: Vec<char> = line.code.chars().collect();
        let mut i = 0usize;
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
            } else if is_ident_char(c) {
                let start = i;
                while i < chars.len() && is_ident_char(chars[i]) {
                    i += 1;
                }
                out.push(Token {
                    text: chars[start..i].iter().collect(),
                    line: lineno,
                });
            } else if c == ':' && chars.get(i + 1) == Some(&':') {
                out.push(Token {
                    text: "::".to_string(),
                    line: lineno,
                });
                i += 2;
            } else {
                out.push(Token {
                    text: c.to_string(),
                    line: lineno,
                });
                i += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_of(src: &str) -> String {
        scan(src)
            .lines
            .iter()
            .map(|l| l.code.clone())
            .collect::<Vec<_>>()
            .join("\n")
    }

    #[test]
    fn strips_line_and_block_comments() {
        let src = "let x = 1; // thread_rng here\nlet y = /* SystemTime */ 2;\n";
        let code = code_of(src);
        assert!(!code.contains("thread_rng"));
        assert!(!code.contains("SystemTime"));
        assert!(code.contains("let x = 1;"));
        assert!(code.contains("let y =  2;"));
        let scanned = scan(src);
        assert_eq!(scanned.lines[0].comments.len(), 1);
        assert!(scanned.lines[0].comments[0].contains("thread_rng"));
    }

    #[test]
    fn blanks_string_literal_bodies() {
        let src = "let s = \"Instant::now inside a string\";\nlet r = r#\"dbg! in raw\"#;\n";
        let code = code_of(src);
        assert!(!code.contains("Instant"));
        assert!(!code.contains("dbg"));
        assert!(code.contains('"'));
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let code = code_of("let s = \"a\\\"b unsafe c\"; let t = 1;");
        assert!(!code.contains("unsafe"));
        assert!(code.contains("let t = 1;"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let code = code_of("fn f<'a>(x: &'a str) -> &'a str { x }\nlet c = 'y'; let d = '\\n';");
        assert!(code.contains("fn f"));
        assert!(code.contains("str { x }"));
        assert!(!code.contains('y'), "char literal body must be blanked");
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let code = code_of("/* outer /* inner */ still comment */ let z = 3;");
        assert!(code.contains("let z = 3;"));
        assert!(!code.contains("inner"));
    }

    #[test]
    fn multiline_strings_stay_blanked() {
        let code = code_of("let s = \"line one\nthread_rng line two\";\nlet after = 4;");
        assert!(!code.contains("thread_rng"));
        assert!(code.contains("let after = 4;"));
    }

    #[test]
    fn identifier_ending_in_r_is_not_raw_string() {
        let code = code_of("for r in 0..3 { tr(\"x\"); }");
        assert!(code.contains("for r in 0..3"));
    }

    #[test]
    fn tokenizer_combines_path_separators() {
        let toks = tokenize(&scan("thread::spawn(|| {});"));
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(&texts[..3], &["thread", "::", "spawn"]);
    }

    #[test]
    fn tokens_carry_line_numbers() {
        let toks = tokenize(&scan("let a = 1;\nlet b = 2;"));
        assert_eq!(toks.first().unwrap().line, 1);
        assert_eq!(toks.last().unwrap().line, 2);
    }
}
