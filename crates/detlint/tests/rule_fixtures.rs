//! Per-rule fixture tests: every rule fires on a bad snippet, stays quiet
//! on a good one, and respects an inline waiver.
//!
//! Fixtures are inline string literals rather than files on disk, for a
//! reason worth keeping: detlint's scanner blanks string-literal bodies, so
//! these deliberately-violating snippets can live inside the linted
//! workspace without tripping the workspace-clean meta-test.

use detlint::{lint_source, RuleId};

/// Lints `src` as if it were the named file and returns the rules of the
/// surviving findings.
fn rules_at(path: &str, src: &str) -> Vec<RuleId> {
    lint_source(path, src)
        .findings
        .iter()
        .map(|f| f.rule)
        .collect()
}

const TICK_PATH_FILE: &str = "crates/mlg-world/src/fixture.rs";
const LIB_FILE: &str = "crates/core/src/fixture.rs";

// ---------------------------------------------------------------- rule 1

#[test]
fn hash_iteration_fires_on_method_iteration_in_tick_path() {
    let src = "use std::collections::HashMap;\n\
               struct S { cells: HashMap<u32, u32> }\n\
               impl S { fn f(&self) { for v in self.cells.values() { drop(v); } } }\n";
    assert_eq!(rules_at(TICK_PATH_FILE, src), vec![RuleId::NoHashIteration]);
}

#[test]
fn hash_iteration_fires_on_for_loop_over_map() {
    let src = "fn f() {\n\
               let mut m = std::collections::HashSet::new();\n\
               m.insert(1u32);\n\
               for v in &m { drop(v); }\n\
               }\n";
    assert_eq!(rules_at(TICK_PATH_FILE, src), vec![RuleId::NoHashIteration]);
}

#[test]
fn hash_iteration_fires_on_drain_and_keys() {
    let src = "fn f(mut m: std::collections::HashMap<u32, u32>) {\n\
               m.drain();\n\
               let _k = m.keys();\n\
               }\n";
    assert_eq!(
        rules_at(TICK_PATH_FILE, src),
        vec![RuleId::NoHashIteration, RuleId::NoHashIteration]
    );
}

#[test]
fn hash_lookup_without_iteration_is_clean() {
    let src = "use std::collections::HashMap;\n\
               struct S { cells: HashMap<u32, u32> }\n\
               impl S { fn f(&self) -> Option<&u32> { self.cells.get(&1) } }\n";
    assert!(rules_at(TICK_PATH_FILE, src).is_empty());
}

#[test]
fn hash_iteration_is_allowed_outside_tick_path_crates() {
    let src = "fn f(m: &std::collections::HashMap<u32, u32>) -> usize { m.values().count() }\n";
    assert!(rules_at("crates/cloud-sim/src/fixture.rs", src).is_empty());
}

#[test]
fn hash_iteration_respects_waiver() {
    let src = "use std::collections::HashMap;\n\
               struct S { cells: HashMap<u32, u32> }\n\
               impl S { fn f(&mut self) {\n\
               // detlint: allow(no-hash-iteration) -- clears buckets; order-free\n\
               for v in self.cells.values_mut() { *v = 0; }\n\
               } }\n";
    let outcome = lint_source(TICK_PATH_FILE, src);
    assert!(outcome.findings.is_empty());
    assert_eq!(outcome.waivers.len(), 1);
    assert_eq!(outcome.waivers[0].rules, vec![RuleId::NoHashIteration]);
    assert_eq!(outcome.waivers[0].reason, "clears buckets; order-free");
}

// ---------------------------------------------------------------- rule 2

#[test]
fn wall_clock_fires_on_instant_now_and_system_time() {
    let src = "fn f() { let _t = std::time::Instant::now(); }\n\
               fn g() -> std::time::SystemTime { std::time::SystemTime::now() }\n";
    let rules = rules_at(LIB_FILE, src);
    assert!(rules.contains(&RuleId::NoWallClock));
    assert!(rules.len() >= 2, "both clock reads must be reported");
}

#[test]
fn wall_clock_is_exempt_in_bench_crate() {
    let src = "fn f() { let _t = std::time::Instant::now(); }\n";
    assert!(rules_at("crates/bench/src/fixture.rs", src).is_empty());
}

#[test]
fn wall_clock_respects_line_waiver_and_file_marker() {
    let waived = "// detlint: allow(no-wall-clock) -- measuring the substrate itself\n\
                  fn f() { let _t = std::time::Instant::now(); }\n";
    assert!(rules_at(LIB_FILE, waived).is_empty());

    let marked = "// detlint: substrate-timing -- this module measures host overhead\n\
                  fn f() { let _t = std::time::Instant::now(); }\n\
                  fn g() { let _u = std::time::Instant::now(); }\n";
    let outcome = lint_source(LIB_FILE, marked);
    assert!(outcome.findings.is_empty(), "file marker covers every site");
    assert_eq!(outcome.waivers.len(), 1);
    assert!(outcome.waivers[0].file_level);
}

#[test]
fn wall_clock_is_exempt_in_daemon_crate_by_table() {
    // The resident daemon presents runs in wall-clock terms (pacing, SSE
    // liveness); the crate is classified in WALL_CLOCK_EXEMPT_CRATES
    // rather than accreting per-line waivers.
    let src = "fn f() { let _t = std::time::Instant::now(); }\n";
    assert!(rules_at("crates/daemon/src/fixture.rs", src).is_empty());
}

// ---------------------------------------------------------------- rule 3

#[test]
fn ambient_rng_fires_everywhere_even_in_bench() {
    let src = "fn f() { let _r = rand::thread_rng(); }\n";
    assert_eq!(
        rules_at("crates/bench/src/fixture.rs", src),
        vec![RuleId::NoAmbientRng]
    );
    let src2 = "fn f() { let _r = StdRng::from_entropy(); }\n";
    assert_eq!(rules_at(LIB_FILE, src2), vec![RuleId::NoAmbientRng]);
    let src3 = "fn f() { let _r = StdRng::from_os_rng(); let _o = OsRng; }\n";
    assert_eq!(
        rules_at(LIB_FILE, src3),
        vec![RuleId::NoAmbientRng, RuleId::NoAmbientRng]
    );
}

#[test]
fn seeded_rng_is_clean() {
    let src = "fn f(seed: u64) { let _r = StdRng::seed_from_u64(seed); }\n";
    assert!(rules_at(LIB_FILE, src).is_empty());
}

#[test]
fn ambient_rng_respects_waiver() {
    let src = "// detlint: allow(no-ambient-rng) -- fixture exercising the waiver path\n\
               fn f() { let _r = rand::thread_rng(); }\n";
    let outcome = lint_source(LIB_FILE, src);
    assert!(outcome.findings.is_empty());
    assert_eq!(outcome.waivers.len(), 1);
}

// ---------------------------------------------------------------- rule 4

#[test]
fn unsafe_token_fires_anywhere() {
    let src = "fn f() { let p = 0u8; let _v = unsafe { *(&p as *const u8) }; }\n";
    assert_eq!(rules_at("tests/fixture.rs", src), vec![RuleId::NoUnsafe]);
}

#[test]
fn crate_root_must_forbid_unsafe_code() {
    let bare = "pub fn f() {}\n";
    assert_eq!(
        rules_at("crates/mlg-world/src/lib.rs", bare),
        vec![RuleId::NoUnsafe]
    );
    let good = "#![forbid(unsafe_code)]\npub fn f() {}\n";
    assert!(rules_at("crates/mlg-world/src/lib.rs", good).is_empty());
    // Non-root files don't need the attribute.
    assert!(rules_at("crates/mlg-world/src/other.rs", bare).is_empty());
}

#[test]
fn unsafe_in_comments_and_strings_does_not_fire() {
    let src = "// this comment says unsafe\nconst S: &str = \"unsafe\";\n";
    assert!(rules_at("crates/mlg-world/src/other.rs", src).is_empty());
}

#[test]
fn unsafe_respects_waiver() {
    let src = "// detlint: allow(no-unsafe) -- fixture exercising the waiver path\n\
               fn f() { unsafe { std::hint::unreachable_unchecked() } }\n";
    assert!(lint_source("crates/mlg-world/src/other.rs", src)
        .findings
        .is_empty());
}

// ---------------------------------------------------------------- rule 5

#[test]
fn bare_spawn_fires_outside_the_pool() {
    let src = "fn f() { std::thread::spawn(|| {}); }\n";
    assert_eq!(rules_at(LIB_FILE, src), vec![RuleId::NoBareSpawn]);
    let builder = "fn f() { std::thread::Builder::new(); }\n";
    assert_eq!(rules_at(LIB_FILE, builder), vec![RuleId::NoBareSpawn]);
}

#[test]
fn the_pool_may_spawn() {
    let src = "fn f() { std::thread::Builder::new(); }\n";
    assert!(rules_at("crates/mlg-world/src/pool.rs", src).is_empty());
}

#[test]
fn scoped_helpers_are_not_bare_spawns() {
    let src = "fn f() { std::thread::scope(|s| { s.spawn(|| {}); }); }\n";
    assert!(rules_at(LIB_FILE, src).is_empty());
}

#[test]
fn daemon_http_surface_may_spawn_but_the_rest_of_the_crate_may_not() {
    // Control-plane threads (accept loop, per-connection handlers) are
    // confined to the daemon's http.rs; thread creation anywhere else in
    // the crate still violates the contract.
    let src = "fn f() { std::thread::spawn(|| {}); }\n";
    assert!(rules_at("crates/daemon/src/http.rs", src).is_empty());
    assert_eq!(
        rules_at("crates/daemon/src/daemon.rs", src),
        vec![RuleId::NoBareSpawn]
    );
}

#[test]
fn bare_spawn_respects_waiver() {
    let src = "// detlint: allow(no-bare-spawn) -- fixture exercising the waiver path\n\
               fn f() { std::thread::spawn(|| {}); }\n";
    assert!(lint_source(LIB_FILE, src).findings.is_empty());
}

// ---------------------------------------------------------------- rule 6

#[test]
fn debug_output_fires_in_library_code() {
    let src = "fn f() { println!(\"x\"); eprintln!(\"y\"); let _v = dbg!(1); }\n";
    assert_eq!(
        rules_at(LIB_FILE, src),
        vec![
            RuleId::NoDebugOutput,
            RuleId::NoDebugOutput,
            RuleId::NoDebugOutput
        ]
    );
}

#[test]
fn debug_output_is_exempt_in_binaries_sinks_and_bench() {
    let src = "fn main() { println!(\"table row\"); }\n";
    assert!(rules_at("crates/bench/src/bin/fixture.rs", src).is_empty());
    assert!(rules_at("crates/core/src/sink.rs", src).is_empty());
    assert!(rules_at("crates/bench/src/fixture.rs", src).is_empty());
    assert!(rules_at("tests/fixture.rs", src).is_empty());
    assert!(rules_at("examples/fixture.rs", src).is_empty());
}

#[test]
fn debug_output_still_fires_in_the_daemon_library() {
    // The wall-clock and debug-output exemption tables are split on
    // purpose: the daemon crate is wall-clock-exempt, but its library
    // must still route output through sinks, never print.
    let src = "fn f() { println!(\"x\"); }\n";
    assert_eq!(
        rules_at("crates/daemon/src/daemon.rs", src),
        vec![RuleId::NoDebugOutput]
    );
    // The daemon binary, like every binary, may print.
    let bin = "fn main() { println!(\"x\"); }\n";
    assert!(rules_at("crates/daemon/src/main.rs", bin).is_empty());
}

#[test]
fn debug_output_respects_waiver() {
    let src = "fn f() { println!(\"x\"); } // detlint: allow(no-debug-output) -- fixture\n";
    let outcome = lint_source(LIB_FILE, src);
    assert!(outcome.findings.is_empty(), "same-line waiver applies");
    assert_eq!(outcome.waivers.len(), 1);
}

// ------------------------------------------------------- waiver mechanism

#[test]
fn waiver_must_name_the_right_rule() {
    let src = "// detlint: allow(no-debug-output) -- wrong rule for this site\n\
               fn f() { let _t = std::time::Instant::now(); }\n";
    assert_eq!(rules_at(LIB_FILE, src), vec![RuleId::NoWallClock]);
}

#[test]
fn waiver_only_covers_the_adjacent_line() {
    let src = "// detlint: allow(no-wall-clock) -- too far away\n\
               fn unrelated() {}\n\
               fn f() { let _t = std::time::Instant::now(); }\n";
    assert_eq!(rules_at(LIB_FILE, src), vec![RuleId::NoWallClock]);
}

#[test]
fn waiver_without_reason_is_a_finding() {
    let src = "// detlint: allow(no-wall-clock)\n\
               fn f() {}\n";
    assert_eq!(rules_at(LIB_FILE, src), vec![RuleId::InvalidWaiver]);
}

#[test]
fn waiver_with_unknown_rule_is_a_finding() {
    let src = "// detlint: allow(no-such-rule) -- typo'd rule id\nfn f() {}\n";
    assert_eq!(rules_at(LIB_FILE, src), vec![RuleId::InvalidWaiver]);
}

#[test]
fn one_waiver_can_name_several_rules() {
    let src = "// detlint: allow(no-wall-clock, no-debug-output) -- fixture\n\
               fn f() { println!(\"{:?}\", std::time::Instant::now()); }\n";
    let outcome = lint_source(LIB_FILE, src);
    assert!(outcome.findings.is_empty());
    assert_eq!(outcome.waivers[0].rules.len(), 2);
}

#[test]
fn vendored_shims_are_exempt_entirely() {
    let src = "fn f() { unsafe { std::thread::spawn(|| {}) }; }\n";
    assert!(lint_source("vendor/rand/src/lib.rs", src)
        .findings
        .is_empty());
}

#[test]
fn patterns_inside_strings_and_comments_never_fire() {
    let src = "// Instant::now, thread_rng, println! in a comment\n\
               const DOC: &str = \"dbg! thread::spawn SystemTime\";\n\
               fn f() -> &'static str { DOC }\n";
    assert!(rules_at(LIB_FILE, src).is_empty());
}
