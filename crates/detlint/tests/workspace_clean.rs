//! Meta-test: the workspace itself must lint clean, so a fresh contract
//! violation fails plain `cargo test -q` even before the dedicated CI job
//! runs. Every waiver that is supposed to exist is pinned below — adding a
//! waiver means consciously updating this test.

use detlint::{lint_workspace, workspace_root_from_build};

#[test]
fn the_workspace_lints_clean() {
    let root = workspace_root_from_build();
    let report = lint_workspace(&root).expect("workspace sources are readable");
    assert!(
        report.crates_scanned >= 12,
        "sanity: the walk found the member crates (got {})",
        report.crates_scanned
    );
    assert!(
        report.files_scanned > 40,
        "sanity: the walk found the source files (got {})",
        report.files_scanned
    );
    assert!(
        report.is_clean(),
        "detlint found contract violations:\n{}",
        report.render()
    );
}

#[test]
fn tick_path_entity_modules_are_covered() {
    let root = workspace_root_from_build();
    for module in detlint::rules::TICK_PATH_ENTITY_MODULES {
        assert!(
            root.join(module).is_file(),
            "expected tick-path entity module missing: {module} \
             (renamed or split? update TICK_PATH_ENTITY_MODULES)"
        );
        let crate_dir = module
            .strip_prefix("crates/")
            .and_then(|rest| rest.split('/').next())
            .expect("module paths start with crates/<name>/");
        assert!(
            detlint::rules::TICK_PATH_CRATES.contains(&crate_dir),
            "entity module {module} sits outside the tick-path crate list"
        );
    }
}

#[test]
fn tick_path_model_modules_are_covered() {
    let root = workspace_root_from_build();
    for module in detlint::rules::TICK_PATH_MODEL_MODULES {
        assert!(
            root.join(module).is_file(),
            "expected cloud-model module missing: {module} \
             (renamed or split? update TICK_PATH_MODEL_MODULES)"
        );
    }
    // The temporal module is the motivating entry: the tenancy process
    // runs inside every tick, so it must sit under hash-iteration coverage
    // (its crate-wide no-wall-clock / no-ambient-rng coverage comes for
    // free — cloud-sim is in neither exempt list).
    assert!(
        detlint::rules::TICK_PATH_MODEL_MODULES.contains(&"crates/cloud-sim/src/temporal.rs"),
        "the tenancy process module must stay under tick-path model coverage"
    );
}

#[test]
fn every_waiver_is_accounted_for() {
    let root = workspace_root_from_build();
    let report = lint_workspace(&root).expect("workspace sources are readable");
    let mut sites: Vec<String> = report
        .waivers
        .iter()
        .map(|w| format!("{}:{}", w.file, w.rules[0].name()))
        .collect();
    sites.sort();
    // The full, intentional exemption surface of the workspace. If this
    // assertion fails because you added a waiver, confirm the reason is
    // genuine and extend the list; if it fails because one disappeared,
    // the underlying code was fixed — shrink the list.
    assert_eq!(
        sites,
        [
            "crates/core/src/executor.rs:no-debug-output",
            "crates/core/src/executor.rs:no-wall-clock",
            "crates/core/src/executor.rs:no-wall-clock",
        ],
        "waiver surface changed:\n{}",
        report.render()
    );
}
