//! Daemon lifecycle: pause → resume → shutdown must drain the sink stack
//! exactly once, and the HTTP surface must serve live metrics while a
//! campaign runs.
//!
//! Threading note: the campaign loop runs on a scoped thread
//! (`std::thread::scope`) so the test thread can drive the handle; scoped
//! threads join before the test returns.

use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;
use std::time::Duration;

use cloud_sim::environment::Environment;
use meterstick::campaign::{CampaignPlan, IterationJob};
use meterstick::{Campaign, IterationResult, ResultSink, TickSample};
use meterstick_daemon::{http, Daemon, DaemonConfig, DaemonState};
use meterstick_workloads::WorkloadKind;
use mlg_server::ServerFlavor;

/// Counts every sink callback; shared with the driving thread through
/// atomics so the campaign thread can own the sink itself.
#[derive(Default)]
struct CountingSink {
    starts: AtomicU64,
    ticks: AtomicU64,
    results: AtomicU64,
    ends: AtomicU64,
}

impl ResultSink for &CountingSink {
    fn on_campaign_start(&mut self, _plan: &CampaignPlan) {
        self.starts.fetch_add(1, Ordering::SeqCst);
    }

    fn on_tick(&mut self, _job: &IterationJob, _sample: &TickSample) {
        self.ticks.fetch_add(1, Ordering::SeqCst);
    }

    fn on_result(&mut self, _job: &IterationJob, _result: &IterationResult) {
        self.results.fetch_add(1, Ordering::SeqCst);
    }

    fn on_campaign_end(&mut self) {
        self.ends.fetch_add(1, Ordering::SeqCst);
    }
}

/// A campaign long enough that the test always shuts it down mid-flight
/// (3600 virtual seconds = 72k ticks).
fn long_campaign() -> Campaign {
    Campaign::new()
        .workloads([WorkloadKind::Control])
        .flavors([ServerFlavor::Vanilla])
        .environments([Environment::das5(2)])
        .duration_secs(3_600)
        .iterations(1)
}

/// Polls `cond` until it holds or ~5 s elapse.
fn wait_for(mut cond: impl FnMut() -> bool) -> bool {
    for _ in 0..500 {
        if cond() {
            return true;
        }
        thread::sleep(Duration::from_millis(10));
    }
    false
}

#[test]
fn pause_resume_shutdown_drains_sinks_exactly_once() {
    let daemon = Daemon::new(DaemonConfig {
        window: 64,
        ..DaemonConfig::default()
    });
    let handle = daemon.handle();
    let sink = CountingSink::default();

    thread::scope(|scope| {
        let runner = scope.spawn(|| {
            let mut observer = &sink;
            daemon
                .run_campaign(&long_campaign(), &mut observer)
                .expect("the campaign plan is valid")
        });

        // Let the loop tick, then pause it.
        assert!(wait_for(|| sink.ticks.load(Ordering::SeqCst) > 10));
        handle.pause();
        assert_eq!(handle.state(), DaemonState::Paused);
        // The loop blocks between ticks: after the pause takes effect the
        // tick counter stops moving. Require three consecutive unchanged
        // 10 ms-apart reads before trusting that the pause landed (control
        // ticks take well under a millisecond, so a running loop cannot
        // sit still for 30 ms).
        let mut settled = sink.ticks.load(Ordering::SeqCst);
        let mut stable_polls = 0;
        assert!(wait_for(|| {
            let now = sink.ticks.load(Ordering::SeqCst);
            if now == settled {
                stable_polls += 1;
            } else {
                stable_polls = 0;
                settled = now;
            }
            stable_polls >= 3
        }));
        thread::sleep(Duration::from_millis(50));
        assert_eq!(
            sink.ticks.load(Ordering::SeqCst),
            settled,
            "a paused daemon must not execute ticks"
        );

        // Resume: ticks flow again.
        handle.resume();
        assert_eq!(handle.state(), DaemonState::Running);
        assert!(wait_for(|| sink.ticks.load(Ordering::SeqCst) > settled));

        // Shutdown aborts the (deliberately huge) iteration mid-flight.
        handle.request_shutdown();
        let results = runner.join().expect("campaign thread must not panic");
        handle.mark_finished();

        assert_eq!(handle.state(), DaemonState::Finished);
        assert_eq!(sink.starts.load(Ordering::SeqCst), 1);
        assert_eq!(
            sink.ends.load(Ordering::SeqCst),
            1,
            "shutdown must drain the sink stack exactly once"
        );
        assert!(sink.ticks.load(Ordering::SeqCst) > 0);
        // The aborted iteration is partial and must not be reported.
        assert_eq!(sink.results.load(Ordering::SeqCst), 0);
        assert!(results.is_empty());
    });
}

#[test]
fn completed_campaign_reports_results_and_history() {
    let daemon = Daemon::new(DaemonConfig {
        window: 32,
        ..DaemonConfig::default()
    });
    let handle = daemon.handle();
    let sink = CountingSink::default();
    let mut observer = &sink;
    let campaign = Campaign::new()
        .workloads([WorkloadKind::Control])
        .flavors([ServerFlavor::Vanilla])
        .environments([Environment::das5(2)])
        .duration_secs(2)
        .iterations(2);
    let results = daemon
        .run_campaign(&campaign, &mut observer)
        .expect("valid campaign");
    handle.mark_finished();

    assert_eq!(results.len(), 2);
    assert_eq!(sink.results.load(Ordering::SeqCst), 2);
    assert_eq!(sink.ends.load(Ordering::SeqCst), 1);
    handle.with_stats(|stats| {
        assert_eq!(stats.history.iterations_completed(), 2);
        assert!(stats.history.total_ticks() > 0);
        assert!(stats.history.len() <= 32, "history must stay windowed");
        assert!(stats.history.last_iteration_isr().is_some());
        assert!(stats.finished);
    });
    // Observed ticks flow through the sink's on_tick exactly once per
    // executed tick.
    let total = handle.with_stats(|stats| stats.history.total_ticks());
    assert_eq!(sink.ticks.load(Ordering::SeqCst), total);
}

#[test]
fn http_surface_serves_live_metrics_and_controls_the_loop() {
    let daemon = Daemon::new(DaemonConfig {
        window: 64,
        ..DaemonConfig::default()
    });
    let handle = daemon.handle();
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("ephemeral port");
    let addr = listener.local_addr().unwrap();
    let server = http::spawn(listener, handle.clone()).expect("server starts");

    let sink = CountingSink::default();
    thread::scope(|scope| {
        let runner = scope.spawn(|| {
            let mut observer = &sink;
            daemon
                .run_campaign(&long_campaign(), &mut observer)
                .expect("valid campaign")
        });
        assert!(wait_for(|| sink.ticks.load(Ordering::SeqCst) > 10));

        // Live scrape while the campaign runs.
        let (status, body) = http::fetch(addr, "GET", "/metrics", usize::MAX).unwrap();
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("meterstick_ticks_total"));
        assert!(body.contains("meterstick_stage_busy_ms_mean{stage=\"player\"}"));
        assert!(body.contains("meterstick_window_overload_ratio"));

        let (status, body) = http::fetch(addr, "GET", "/status", usize::MAX).unwrap();
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("\"state\":\"running\""), "{body}");

        // Pause over HTTP, confirm, resume.
        let (status, body) = http::fetch(addr, "POST", "/pause", usize::MAX).unwrap();
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("\"state\":\"paused\""), "{body}");
        assert!(handle.is_paused());
        let (_, body) = http::fetch(addr, "POST", "/resume", usize::MAX).unwrap();
        assert!(body.contains("\"state\":\"running\""), "{body}");

        // An SSE subscriber sees live tick events (read a few KB of the
        // stream, then hang up).
        let (status, events) = http::fetch(addr, "GET", "/events", 4_096).unwrap();
        assert!(status.contains("200"), "{status}");
        assert!(events.contains("data: {\"type\":\"tick\""), "{events}");
        assert!(events.contains("\"busy_ms\""), "{events}");

        let (_, body) = http::fetch(addr, "GET", "/alerts", usize::MAX).unwrap();
        assert!(body.starts_with('['), "{body}");

        // Shutdown over HTTP stops the loop and the accept thread.
        let (status, _) = http::fetch(addr, "POST", "/shutdown", usize::MAX).unwrap();
        assert!(status.contains("200"), "{status}");
        runner.join().expect("campaign thread must not panic");
    });
    handle.mark_finished();
    server.join().expect("HTTP thread exits after shutdown");
    assert_eq!(sink.ends.load(Ordering::SeqCst), 1);
}
