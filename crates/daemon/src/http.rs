//! The daemon's HTTP surface, hand-rolled over `std::net` (the container
//! vendors no HTTP stack, and the surface is four routes).
//!
//! Routes:
//!
//! * `GET /status` — lifecycle state and counters, JSON;
//! * `GET /metrics` — Prometheus text format (`text/plain; version=0.0.4`);
//! * `GET /alerts` — the bounded fired-alert log, JSON;
//! * `GET /events` — Server-Sent Events: live tick/alert/iteration/state
//!   events as `data:` lines;
//! * `POST /pause`, `POST /resume`, `POST /shutdown` — lifecycle control.
//!
//! Thread creation is confined to this file (the accept thread plus one
//! short-lived thread per connection) and classified in detlint's
//! `SPAWN_EXEMPT_FILES` table: these are control-plane threads, not tick
//! fan-out, and never touch simulation state except through the
//! [`DaemonHandle`] lock.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc::RecvTimeoutError;
use std::thread;
use std::time::Duration;

use meterstick::sink::json_escape;

use crate::daemon::DaemonHandle;

/// Poll interval of the non-blocking accept loop; also bounds how long
/// shutdown waits for the server thread to notice.
const ACCEPT_POLL: Duration = Duration::from_millis(5);
/// How often an idle SSE stream re-checks for shutdown / emits keepalive.
const SSE_POLL: Duration = Duration::from_millis(100);

/// Starts the HTTP server on `listener` in a background thread; the thread
/// exits once [`DaemonHandle::request_shutdown`] has been called.
///
/// # Errors
///
/// Returns the I/O error when the listener cannot be switched to
/// non-blocking accepts.
pub fn spawn(
    listener: TcpListener,
    handle: DaemonHandle,
) -> std::io::Result<thread::JoinHandle<()>> {
    listener.set_nonblocking(true)?;
    Ok(thread::spawn(move || accept_loop(&listener, &handle)))
}

fn accept_loop(listener: &TcpListener, handle: &DaemonHandle) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                let handle = handle.clone();
                thread::spawn(move || {
                    let _ = handle_connection(stream, &handle);
                });
            }
            Err(err) if err.kind() == std::io::ErrorKind::WouldBlock => {
                if handle.shutdown_requested() {
                    return;
                }
                thread::sleep(ACCEPT_POLL);
            }
            Err(_) => {
                if handle.shutdown_requested() {
                    return;
                }
                thread::sleep(ACCEPT_POLL);
            }
        }
    }
}

fn handle_connection(stream: TcpStream, handle: &DaemonHandle) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("").to_string();
    let path = parts.next().unwrap_or("").to_string();
    // Drain headers; the routes take no request body or header input.
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 || line == "\r\n" || line == "\n" {
            break;
        }
    }
    let mut stream = reader.into_inner();
    match (method.as_str(), path.as_str()) {
        ("GET", "/status") => respond(&mut stream, 200, "application/json", &status_json(handle)),
        ("GET", "/metrics") => respond(
            &mut stream,
            200,
            "text/plain; version=0.0.4",
            &prometheus_text(handle),
        ),
        ("GET", "/alerts") => respond(&mut stream, 200, "application/json", &alerts_json(handle)),
        ("GET", "/events") => serve_events(stream, handle),
        ("POST", "/pause") => {
            handle.pause();
            respond(&mut stream, 200, "application/json", &status_json(handle))
        }
        ("POST", "/resume") => {
            handle.resume();
            respond(&mut stream, 200, "application/json", &status_json(handle))
        }
        ("POST", "/shutdown") => {
            handle.request_shutdown();
            respond(&mut stream, 200, "application/json", &status_json(handle))
        }
        _ => respond(
            &mut stream,
            404,
            "application/json",
            "{\"error\":\"unknown route\"}",
        ),
    }
}

fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        404 => "Not Found",
        _ => "Error",
    };
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    )?;
    stream.flush()
}

/// Streams daemon events as Server-Sent Events until the client hangs up
/// or shutdown is requested. Idle periods emit SSE comment keepalives.
fn serve_events(mut stream: TcpStream, handle: &DaemonHandle) -> std::io::Result<()> {
    let events = handle.subscribe();
    write!(
        stream,
        "HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\n\
         Cache-Control: no-cache\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()?;
    loop {
        match events.recv_timeout(SSE_POLL) {
            Ok(event) => {
                write!(stream, "data: {event}\n\n")?;
                stream.flush()?;
            }
            Err(RecvTimeoutError::Timeout) => {
                if handle.shutdown_requested() {
                    return Ok(());
                }
                write!(stream, ": keepalive\n\n")?;
                stream.flush()?;
            }
            Err(RecvTimeoutError::Disconnected) => return Ok(()),
        }
    }
}

/// Renders the `/status` JSON body.
#[must_use]
pub fn status_json(handle: &DaemonHandle) -> String {
    let state = handle.state();
    handle.with_stats(|stats| {
        format!(
            concat!(
                "{{\"state\":\"{}\",\"job\":\"{}\",\"ticks_total\":{},",
                "\"window_ticks\":{},\"window\":{},\"iterations\":{},",
                "\"alerts_fired\":{},\"subscribers\":{}}}"
            ),
            state.name(),
            json_escape(&stats.current_job),
            stats.history.total_ticks(),
            stats.history.len(),
            stats.history.window(),
            stats.history.iterations_completed(),
            stats.alerts.fired_total(),
            handle.subscriber_count(),
        )
    })
}

/// Renders the `/alerts` JSON body: the bounded fired-alert log, oldest
/// first.
#[must_use]
pub fn alerts_json(handle: &DaemonHandle) -> String {
    handle.with_stats(|stats| {
        let entries: Vec<String> = stats
            .alerts
            .fired()
            .map(|a| {
                format!(
                    "{{\"rule\":\"{}\",\"at_tick\":{},\"message\":\"{}\"}}",
                    a.rule,
                    a.at_tick,
                    json_escape(&a.message),
                )
            })
            .collect();
        format!("[{}]", entries.join(","))
    })
}

/// Renders the `/metrics` body in the Prometheus text exposition format.
#[must_use]
pub fn prometheus_text(handle: &DaemonHandle) -> String {
    let paused = u8::from(handle.is_paused());
    handle.with_stats(|stats| {
        let stages = stats.history.windowed_stage_means();
        let mut out = String::with_capacity(1_536);
        out.push_str("# HELP meterstick_ticks_total Ticks observed since daemon start.\n");
        out.push_str("# TYPE meterstick_ticks_total counter\n");
        out.push_str(&format!(
            "meterstick_ticks_total {}\n",
            stats.history.total_ticks()
        ));
        out.push_str(
            "# HELP meterstick_overloaded_ticks_total Ticks over budget since daemon start.\n",
        );
        out.push_str("# TYPE meterstick_overloaded_ticks_total counter\n");
        out.push_str(&format!(
            "meterstick_overloaded_ticks_total {}\n",
            stats.history.total_overloaded()
        ));
        out.push_str("# HELP meterstick_iterations_total Completed iterations.\n");
        out.push_str("# TYPE meterstick_iterations_total counter\n");
        out.push_str(&format!(
            "meterstick_iterations_total {}\n",
            stats.history.iterations_completed()
        ));
        out.push_str("# HELP meterstick_alerts_fired_total Alerts fired since daemon start.\n");
        out.push_str("# TYPE meterstick_alerts_fired_total counter\n");
        out.push_str(&format!(
            "meterstick_alerts_fired_total {}\n",
            stats.alerts.fired_total()
        ));
        out.push_str(
            "# HELP meterstick_window_overload_ratio Overloaded fraction of the window.\n",
        );
        out.push_str("# TYPE meterstick_window_overload_ratio gauge\n");
        out.push_str(&format!(
            "meterstick_window_overload_ratio {:.6}\n",
            stats.history.windowed_overload_ratio()
        ));
        out.push_str(
            "# HELP meterstick_window_busy_ms_mean Mean tick busy time over the window.\n",
        );
        out.push_str("# TYPE meterstick_window_busy_ms_mean gauge\n");
        out.push_str(&format!(
            "meterstick_window_busy_ms_mean {:.6}\n",
            stats.history.windowed_mean_busy_ms()
        ));
        out.push_str(
            "# HELP meterstick_window_cov Coefficient of variation of windowed busy times.\n",
        );
        out.push_str("# TYPE meterstick_window_cov gauge\n");
        out.push_str(&format!(
            "meterstick_window_cov {:.6}\n",
            stats.history.windowed_cov()
        ));
        out.push_str(
            "# HELP meterstick_stage_busy_ms_mean Mean per-stage busy time over the window.\n",
        );
        out.push_str("# TYPE meterstick_stage_busy_ms_mean gauge\n");
        for (stage, value) in [
            ("player", stages.player_ms),
            ("terrain", stages.terrain_ms),
            ("entity", stages.entity_ms),
            ("lighting", stages.lighting_ms),
            ("dissemination", stages.dissemination_ms),
            ("other", stages.other_ms),
        ] {
            out.push_str(&format!(
                "meterstick_stage_busy_ms_mean{{stage=\"{stage}\"}} {value:.6}\n"
            ));
        }
        out.push_str("# HELP meterstick_last_iteration_isr ISR of the last completed iteration.\n");
        out.push_str("# TYPE meterstick_last_iteration_isr gauge\n");
        out.push_str(&format!(
            "meterstick_last_iteration_isr {:.6}\n",
            stats.history.last_iteration_isr().unwrap_or(0.0)
        ));
        out.push_str("# HELP meterstick_paused Whether the tick loop is paused.\n");
        out.push_str("# TYPE meterstick_paused gauge\n");
        out.push_str(&format!("meterstick_paused {paused}\n"));
        out
    })
}

/// Minimal blocking HTTP client for the smoke probe and tests: sends one
/// request to `addr` and returns `(status_line, body)`. For `/events`,
/// reads until `max_bytes` of the stream (or EOF) has arrived instead of
/// waiting for a complete body.
///
/// # Errors
///
/// Returns any socket I/O error.
pub fn fetch(
    addr: std::net::SocketAddr,
    method: &str,
    path: &str,
    max_bytes: usize,
) -> std::io::Result<(String, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    write!(stream, "{method} {path} HTTP/1.1\r\nHost: daemon\r\n\r\n")?;
    stream.flush()?;
    let mut raw = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                raw.extend_from_slice(&buf[..n]);
                if raw.len() >= max_bytes {
                    break;
                }
            }
            Err(err)
                if err.kind() == std::io::ErrorKind::WouldBlock
                    || err.kind() == std::io::ErrorKind::TimedOut =>
            {
                break;
            }
            Err(err) => return Err(err),
        }
    }
    let text = String::from_utf8_lossy(&raw).into_owned();
    let (head, body) = text.split_once("\r\n\r\n").unwrap_or((text.as_str(), ""));
    let status = head.lines().next().unwrap_or("").to_string();
    Ok((status, body.to_string()))
}
