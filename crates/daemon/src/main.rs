//! `meterstick-daemon`: the resident benchmark daemon binary.
//!
//! Runs campaign rounds back to back until `POST /shutdown` (or the
//! configured `--rounds` count) while serving live metrics:
//!
//! ```text
//! meterstick-daemon [--port N] [--workload control|tnt|farm|lag|players|crowd]
//!                   [--flavor vanilla|paper|forge] [--duration-secs N]
//!                   [--iterations N] [--rounds N] [--window N] [--seed N]
//!                   [--publish-every N] [--pace] [--jsonl PATH]
//! ```
//!
//! `--rounds 0` (the default) keeps running until shutdown. `--pace`
//! throttles replay to real time (20 ticks per wall-clock second) for
//! human-watchable dashboards; by default rounds run at full speed.

#![forbid(unsafe_code)]

use std::net::TcpListener;
use std::process::ExitCode;

use cloud_sim::environment::Environment;
use meterstick::campaign::Campaign;
use meterstick::sink::{JsonlSink, NullSink};
use meterstick_daemon::{http, Daemon, DaemonConfig};
use meterstick_workloads::WorkloadKind;
use mlg_server::ServerFlavor;

struct Options {
    port: u16,
    workload: WorkloadKind,
    flavor: ServerFlavor,
    duration_secs: u64,
    iterations: u32,
    rounds: u64,
    window: usize,
    seed: u64,
    publish_every: u64,
    pace: bool,
    jsonl: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            port: 8077,
            workload: WorkloadKind::Control,
            flavor: ServerFlavor::Vanilla,
            duration_secs: 30,
            iterations: 1,
            rounds: 0,
            window: 1024,
            seed: 42,
            publish_every: 1,
            pace: false,
            jsonl: None,
        }
    }
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} expects a value"));
        match arg.as_str() {
            "--port" => opts.port = parse(&value("--port")?)?,
            "--workload" => {
                let raw = value("--workload")?;
                opts.workload = match raw.to_ascii_lowercase().as_str() {
                    "control" => WorkloadKind::Control,
                    "tnt" => WorkloadKind::Tnt,
                    "farm" => WorkloadKind::Farm,
                    "lag" => WorkloadKind::Lag,
                    "players" => WorkloadKind::Players,
                    "crowd" => WorkloadKind::Crowd,
                    other => return Err(format!("unknown workload `{other}`")),
                };
            }
            "--flavor" => {
                let raw = value("--flavor")?;
                opts.flavor = match raw.to_ascii_lowercase().as_str() {
                    "vanilla" => ServerFlavor::Vanilla,
                    "paper" => ServerFlavor::Paper,
                    "forge" => ServerFlavor::Forge,
                    other => return Err(format!("unknown flavor `{other}`")),
                };
            }
            "--duration-secs" => opts.duration_secs = parse(&value("--duration-secs")?)?,
            "--iterations" => opts.iterations = parse(&value("--iterations")?)?,
            "--rounds" => opts.rounds = parse(&value("--rounds")?)?,
            "--window" => opts.window = parse(&value("--window")?)?,
            "--seed" => opts.seed = parse(&value("--seed")?)?,
            "--publish-every" => opts.publish_every = parse(&value("--publish-every")?)?,
            "--pace" => opts.pace = true,
            "--jsonl" => opts.jsonl = Some(value("--jsonl")?),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

fn parse<T: std::str::FromStr>(raw: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    raw.parse()
        .map_err(|err| format!("invalid value `{raw}`: {err}"))
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(err) => {
            eprintln!("meterstick-daemon: {err}");
            return ExitCode::FAILURE;
        }
    };

    let daemon = Daemon::new(DaemonConfig {
        window: opts.window,
        publish_every: opts.publish_every,
        pace_to_real_time: opts.pace,
        ..DaemonConfig::default()
    });
    let handle = daemon.handle();

    let listener = match TcpListener::bind(("127.0.0.1", opts.port)) {
        Ok(listener) => listener,
        Err(err) => {
            eprintln!("meterstick-daemon: cannot bind port {}: {err}", opts.port);
            return ExitCode::FAILURE;
        }
    };
    let addr = listener
        .local_addr()
        .expect("bound listener has an address");
    let server = match http::spawn(listener, handle.clone()) {
        Ok(join) => join,
        Err(err) => {
            eprintln!("meterstick-daemon: cannot start HTTP server: {err}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("meterstick-daemon: listening on http://{addr}");

    let mut jsonl = match &opts.jsonl {
        Some(path) => match std::fs::File::create(path) {
            Ok(file) => Some(JsonlSink::new(std::io::BufWriter::new(file))),
            Err(err) => {
                eprintln!("meterstick-daemon: cannot create {path}: {err}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };

    let mut round: u64 = 0;
    while !handle.shutdown_requested() && (opts.rounds == 0 || round < opts.rounds) {
        // Each round derives a fresh base seed so a resident daemon keeps
        // exploring iterations instead of replaying one forever.
        let campaign = Campaign::new()
            .workloads([opts.workload])
            .flavors([opts.flavor])
            .environments([Environment::das5(2)])
            .duration_secs(opts.duration_secs)
            .iterations(opts.iterations)
            .seed(opts.seed.wrapping_add(round));
        let outcome = match &mut jsonl {
            Some(sink) => daemon.run_campaign(&campaign, sink),
            None => daemon.run_campaign(&campaign, &mut NullSink),
        };
        match outcome {
            Ok(results) => {
                round += 1;
                eprintln!(
                    "meterstick-daemon: round {round} finished ({} iterations)",
                    results.len()
                );
            }
            Err(err) => {
                eprintln!("meterstick-daemon: invalid campaign: {err}");
                handle.request_shutdown();
                break;
            }
        }
    }

    handle.request_shutdown();
    handle.mark_finished();
    if let Some(sink) = jsonl {
        // Each round already drained the sink via on_campaign_end; only
        // surface a retained write error here.
        if let Some(err) = sink.error() {
            eprintln!("meterstick-daemon: JSONL sink error: {err}");
        }
    }
    let _ = server.join();
    eprintln!("meterstick-daemon: shut down after {round} round(s)");
    ExitCode::SUCCESS
}
