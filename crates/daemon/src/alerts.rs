//! The alert engine: seeded rules evaluated against the rolling history.
//!
//! Rules are *edge-triggered*: a rule fires once when its condition
//! transitions from false to true and re-arms only after the condition
//! clears, so a sustained overload produces one alert, not one per tick.
//! The fired-alert log is bounded ([`AlertEngine::FIRED_LOG_CAP`]) for the
//! same reason the history is windowed: a resident daemon must not grow
//! memory with uptime, even under a flapping rule.

use std::collections::VecDeque;

use crate::history::MetricsHistory;

/// One alert condition over the windowed metrics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AlertRule {
    /// Fires when more than `max_overloaded_fraction` of the windowed
    /// ticks ran over their budget (sustained tick overload — the live
    /// analogue of a high ISR).
    TickOverload {
        /// Fraction of the window above which the rule fires, 0..=1.
        max_overloaded_fraction: f64,
        /// Minimum windowed ticks before the rule is considered (avoids
        /// firing on a half-empty window at startup).
        min_ticks: usize,
    },
    /// Fires when the windowed coefficient of variation of tick busy
    /// times exceeds `baseline_cov * factor` (tick-time variability has
    /// regressed against the expected baseline).
    CovRegression {
        /// Expected steady-state CoV of tick busy times.
        baseline_cov: f64,
        /// Multiple of the baseline above which the rule fires.
        factor: f64,
        /// Minimum windowed ticks before the rule is considered.
        min_ticks: usize,
        /// Minimum windowed mean busy time before the rule is considered.
        /// A near-idle server has a meaninglessly large CoV (any jitter
        /// dwarfs a tiny mean), so variability only counts as a regression
        /// once the server is doing real work.
        min_mean_busy_ms: f64,
    },
}

impl AlertRule {
    /// Stable rule identifier used in alert records and metric labels.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            AlertRule::TickOverload { .. } => "tick-overload",
            AlertRule::CovRegression { .. } => "cov-regression",
        }
    }

    /// Evaluates the rule against the history; `Some(message)` when the
    /// condition currently holds.
    #[must_use]
    pub fn evaluate(&self, history: &MetricsHistory) -> Option<String> {
        match *self {
            AlertRule::TickOverload {
                max_overloaded_fraction,
                min_ticks,
            } => {
                if history.len() < min_ticks {
                    return None;
                }
                let ratio = history.windowed_overload_ratio();
                (ratio > max_overloaded_fraction).then(|| {
                    format!(
                        "{:.1}% of the last {} ticks ran over budget (limit {:.1}%)",
                        ratio * 100.0,
                        history.len(),
                        max_overloaded_fraction * 100.0,
                    )
                })
            }
            AlertRule::CovRegression {
                baseline_cov,
                factor,
                min_ticks,
                min_mean_busy_ms,
            } => {
                if history.len() < min_ticks || history.windowed_mean_busy_ms() < min_mean_busy_ms {
                    return None;
                }
                let cov = history.windowed_cov();
                let limit = baseline_cov * factor;
                (cov > limit).then(|| {
                    format!(
                        "windowed tick-time CoV {cov:.3} exceeds {factor:.1}x the \
                         baseline {baseline_cov:.3} (limit {limit:.3})",
                    )
                })
            }
        }
    }
}

/// The default rule set every daemon starts with: sustained overload over
/// half the window, and CoV regressing past twice a conservative baseline
/// once the server carries meaningful load (≥ 10% of the 50 ms budget).
#[must_use]
pub fn seeded_rules() -> Vec<AlertRule> {
    vec![
        AlertRule::TickOverload {
            max_overloaded_fraction: 0.5,
            min_ticks: 20,
        },
        AlertRule::CovRegression {
            baseline_cov: 0.5,
            factor: 2.0,
            min_ticks: 20,
            min_mean_busy_ms: 5.0,
        },
    ]
}

/// One fired alert.
#[derive(Debug, Clone, PartialEq)]
pub struct Alert {
    /// The [`AlertRule::name`] of the rule that fired.
    pub rule: &'static str,
    /// Human-readable description of the violated condition.
    pub message: String,
    /// Cumulative tick count ([`MetricsHistory::total_ticks`]) at which
    /// the rule fired.
    pub at_tick: u64,
}

/// Evaluates a fixed rule set against the history after every tick,
/// keeping a bounded log of fired alerts.
#[derive(Debug)]
pub struct AlertEngine {
    rules: Vec<AlertRule>,
    active: Vec<bool>,
    fired: VecDeque<Alert>,
    fired_total: u64,
}

impl AlertEngine {
    /// Retained fired-alert records; older records are dropped first.
    pub const FIRED_LOG_CAP: usize = 256;

    /// Creates an engine over `rules` (typically [`seeded_rules`]).
    #[must_use]
    pub fn new(rules: Vec<AlertRule>) -> Self {
        let active = vec![false; rules.len()];
        AlertEngine {
            rules,
            active,
            fired: VecDeque::new(),
            fired_total: 0,
        }
    }

    /// The configured rules.
    #[must_use]
    pub fn rules(&self) -> &[AlertRule] {
        &self.rules
    }

    /// Rules whose condition held at the last evaluation.
    #[must_use]
    pub fn active_count(&self) -> usize {
        self.active.iter().filter(|a| **a).count()
    }

    /// Alerts fired since daemon start (cumulative, unlike the bounded
    /// [`AlertEngine::fired`] log).
    #[must_use]
    pub fn fired_total(&self) -> u64 {
        self.fired_total
    }

    /// The retained fired-alert log, oldest first.
    pub fn fired(&self) -> impl Iterator<Item = &Alert> {
        self.fired.iter()
    }

    /// Re-evaluates every rule against `history`, returning the alerts
    /// that *newly* fired (false→true transitions only).
    pub fn evaluate(&mut self, history: &MetricsHistory) -> Vec<Alert> {
        let mut newly = Vec::new();
        for (rule, active) in self.rules.iter().zip(&mut self.active) {
            match rule.evaluate(history) {
                Some(message) if !*active => {
                    *active = true;
                    let alert = Alert {
                        rule: rule.name(),
                        message,
                        at_tick: history.total_ticks(),
                    };
                    if self.fired.len() == Self::FIRED_LOG_CAP {
                        self.fired.pop_front();
                    }
                    self.fired.push_back(alert.clone());
                    self.fired_total += 1;
                    newly.push(alert);
                }
                Some(_) => {}
                None => *active = false,
            }
        }
        newly
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meterstick::TickSample;
    use mlg_server::TickStageBreakdown;

    fn sample(tick: u64, busy_ms: f64) -> TickSample {
        TickSample {
            tick,
            end_ms: tick as f64 * 50.0,
            busy_ms,
            period_ms: busy_ms.max(50.0),
            budget_ms: 50.0,
            stages: TickStageBreakdown::default(),
            entity_count: 0,
            player_count: 0,
        }
    }

    #[test]
    fn overload_alert_fires_once_per_episode() {
        let mut history = MetricsHistory::new(32);
        let mut engine = AlertEngine::new(seeded_rules());

        // Sustained synthetic overload: every tick over budget.
        let mut fired = 0;
        for i in 0..64 {
            history.push(&sample(i, 80.0));
            fired += engine
                .evaluate(&history)
                .iter()
                .filter(|a| a.rule == "tick-overload")
                .count();
        }
        assert_eq!(fired, 1, "edge-triggered: one alert per episode");
        assert!(engine.active_count() >= 1);

        // The episode clears, the rule re-arms, a second episode re-fires.
        for i in 64..128 {
            history.push(&sample(i, 5.0));
            engine.evaluate(&history);
        }
        assert_eq!(engine.active_count(), 0);
        for i in 128..192 {
            history.push(&sample(i, 80.0));
            fired += engine
                .evaluate(&history)
                .iter()
                .filter(|a| a.rule == "tick-overload")
                .count();
        }
        assert_eq!(fired, 2);
        // The busy-time swings between episodes legitimately trip the
        // CoV-regression rule too (twice); the log holds both rules.
        assert_eq!(
            engine.fired().filter(|a| a.rule == "tick-overload").count(),
            2
        );
        assert_eq!(engine.fired_total(), 4);
    }

    #[test]
    fn overload_alert_waits_for_a_meaningful_window() {
        let mut history = MetricsHistory::new(32);
        let mut engine = AlertEngine::new(seeded_rules());
        for i in 0..19 {
            history.push(&sample(i, 80.0));
            assert!(
                engine.evaluate(&history).is_empty(),
                "must not fire below min_ticks"
            );
        }
    }

    #[test]
    fn cov_regression_fires_on_erratic_ticks_only() {
        let mut history = MetricsHistory::new(64);
        let mut engine = AlertEngine::new(seeded_rules());
        // Steady ticks: CoV ~0, no alert.
        for i in 0..64 {
            history.push(&sample(i, 20.0));
            assert!(engine
                .evaluate(&history)
                .iter()
                .all(|a| a.rule != "cov-regression"));
        }
        // Erratic ticks: alternate near-zero and heavy busy times. CoV of
        // {1, 41} alternating is ~0.95 < 1.0 — still under the limit — so
        // widen the swing to push CoV past baseline*factor = 1.0.
        let mut fired = 0;
        for i in 64..128 {
            let busy = if i % 8 == 0 { 200.0 } else { 2.0 };
            history.push(&sample(i, busy));
            fired += engine
                .evaluate(&history)
                .iter()
                .filter(|a| a.rule == "cov-regression")
                .count();
        }
        assert_eq!(fired, 1);
    }

    #[test]
    fn cov_regression_ignores_idle_jitter() {
        // A near-idle server: microsecond-scale busy times with relative
        // jitter far past the CoV limit. The min_mean_busy_ms floor must
        // keep the rule silent — idle variability is not a regression.
        let mut history = MetricsHistory::new(64);
        let mut engine = AlertEngine::new(seeded_rules());
        for i in 0..128 {
            let busy = if i % 4 == 0 { 0.9 } else { 0.01 };
            history.push(&sample(i, busy));
            assert!(
                engine.evaluate(&history).is_empty(),
                "idle jitter must not alert (tick {i})"
            );
        }
        assert!(history.windowed_cov() > 1.0, "jitter is past the limit");
    }

    #[test]
    fn fired_log_stays_bounded_under_flapping() {
        let mut history = MetricsHistory::new(20);
        let mut engine = AlertEngine::new(vec![AlertRule::TickOverload {
            max_overloaded_fraction: 0.5,
            min_ticks: 20,
        }]);
        // Flip between all-over and all-under budget to flap the rule.
        let mut tick = 0;
        for _ in 0..2 * AlertEngine::FIRED_LOG_CAP {
            for _ in 0..20 {
                history.push(&sample(tick, 80.0));
                engine.evaluate(&history);
                tick += 1;
            }
            for _ in 0..20 {
                history.push(&sample(tick, 5.0));
                engine.evaluate(&history);
                tick += 1;
            }
        }
        assert!(engine.fired_total() >= AlertEngine::FIRED_LOG_CAP as u64);
        assert_eq!(engine.fired().count(), AlertEngine::FIRED_LOG_CAP);
    }
}
