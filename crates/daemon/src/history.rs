//! Rolling in-memory metrics history.
//!
//! The daemon is *resident*: it observes an unbounded stream of ticks, so
//! everything it retains must be windowed. [`MetricsHistory`] keeps the
//! last `window` ticks in a ring (a `VecDeque` allocated once at
//! construction and never grown past the window) plus a handful of
//! cumulative counters — memory stays flat no matter how long the soak
//! runs. Windowed aggregates (overload ratio, busy-time mean, coefficient
//! of variation, per-stage means) are computed on demand from the ring;
//! the alert rules in [`crate::alerts`] evaluate against exactly these.

use std::collections::VecDeque;

use meterstick::TickSample;
use meterstick_metrics::stats;
use mlg_server::TickStageBreakdown;

/// The per-tick slice of a [`TickSample`] the history retains.
#[derive(Debug, Clone, Copy)]
pub struct TickStat {
    /// Tick sequence number within its iteration.
    pub tick: u64,
    /// Tick computation time, ms.
    pub busy_ms: f64,
    /// Full tick period, ms.
    pub period_ms: f64,
    /// Whether the tick ran past its budget.
    pub overloaded: bool,
    /// Per-stage busy-time breakdown.
    pub stages: TickStageBreakdown,
}

/// Bounded rolling window over the observed tick stream, plus cumulative
/// totals that cost O(1) memory.
#[derive(Debug)]
pub struct MetricsHistory {
    window: usize,
    ticks: VecDeque<TickStat>,
    total_ticks: u64,
    total_overloaded: u64,
    iterations_completed: u64,
    last_iteration_isr: Option<f64>,
}

impl MetricsHistory {
    /// Creates a history retaining the last `window` ticks (`window` must
    /// be at least 1; the ring is allocated once, up front).
    #[must_use]
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "the metrics window must hold at least one tick");
        MetricsHistory {
            window,
            ticks: VecDeque::with_capacity(window),
            total_ticks: 0,
            total_overloaded: 0,
            iterations_completed: 0,
            last_iteration_isr: None,
        }
    }

    /// The configured window size.
    #[must_use]
    pub fn window(&self) -> usize {
        self.window
    }

    /// Ticks currently held in the window (≤ the window size, always).
    #[must_use]
    pub fn len(&self) -> usize {
        self.ticks.len()
    }

    /// `true` until the first tick is observed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ticks.is_empty()
    }

    /// Ticks observed since daemon start (cumulative, not windowed).
    #[must_use]
    pub fn total_ticks(&self) -> u64 {
        self.total_ticks
    }

    /// Overloaded ticks observed since daemon start.
    #[must_use]
    pub fn total_overloaded(&self) -> u64 {
        self.total_overloaded
    }

    /// Iterations completed since daemon start.
    #[must_use]
    pub fn iterations_completed(&self) -> u64 {
        self.iterations_completed
    }

    /// ISR of the most recently completed iteration, if any.
    #[must_use]
    pub fn last_iteration_isr(&self) -> Option<f64> {
        self.last_iteration_isr
    }

    /// The most recently observed tick, if any.
    #[must_use]
    pub fn latest(&self) -> Option<&TickStat> {
        self.ticks.back()
    }

    /// Records one observed tick, evicting the oldest entry once the
    /// window is full.
    pub fn push(&mut self, sample: &TickSample) {
        if self.ticks.len() == self.window {
            self.ticks.pop_front();
        }
        let overloaded = sample.is_overloaded();
        self.ticks.push_back(TickStat {
            tick: sample.tick,
            busy_ms: sample.busy_ms,
            period_ms: sample.period_ms,
            overloaded,
            stages: sample.stages,
        });
        self.total_ticks += 1;
        self.total_overloaded += u64::from(overloaded);
    }

    /// Records one completed iteration and its Instability Ratio.
    pub fn record_iteration(&mut self, isr: f64) {
        self.iterations_completed += 1;
        self.last_iteration_isr = Some(isr);
    }

    /// Fraction of windowed ticks that ran over budget — the windowed
    /// analogue of the paper's ISR numerator. `0.0` on an empty window.
    #[must_use]
    pub fn windowed_overload_ratio(&self) -> f64 {
        if self.ticks.is_empty() {
            return 0.0;
        }
        let over = self.ticks.iter().filter(|t| t.overloaded).count();
        over as f64 / self.ticks.len() as f64
    }

    /// Mean busy time over the window, ms. `0.0` on an empty window.
    #[must_use]
    pub fn windowed_mean_busy_ms(&self) -> f64 {
        let busy: Vec<f64> = self.ticks.iter().map(|t| t.busy_ms).collect();
        stats::mean(&busy)
    }

    /// Coefficient of variation of busy times over the window — the
    /// daemon's live tick-variability signal. `0.0` on an empty window.
    #[must_use]
    pub fn windowed_cov(&self) -> f64 {
        let busy: Vec<f64> = self.ticks.iter().map(|t| t.busy_ms).collect();
        stats::coefficient_of_variation(&busy)
    }

    /// Per-stage mean busy time over the window, ms per stage.
    #[must_use]
    pub fn windowed_stage_means(&self) -> TickStageBreakdown {
        let mut sums = TickStageBreakdown::default();
        if self.ticks.is_empty() {
            return sums;
        }
        for t in &self.ticks {
            sums.accumulate(&t.stages);
        }
        let n = self.ticks.len() as f64;
        TickStageBreakdown {
            player_ms: sums.player_ms / n,
            terrain_ms: sums.terrain_ms / n,
            entity_ms: sums.entity_ms / n,
            lighting_ms: sums.lighting_ms / n,
            dissemination_ms: sums.dissemination_ms / n,
            other_ms: sums.other_ms / n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(tick: u64, busy_ms: f64) -> TickSample {
        TickSample {
            tick,
            end_ms: tick as f64 * 50.0,
            busy_ms,
            period_ms: busy_ms.max(50.0),
            budget_ms: 50.0,
            stages: TickStageBreakdown {
                player_ms: busy_ms / 2.0,
                terrain_ms: busy_ms / 2.0,
                ..TickStageBreakdown::default()
            },
            entity_count: 0,
            player_count: 0,
        }
    }

    #[test]
    fn window_stays_bounded_while_totals_accumulate() {
        let mut history = MetricsHistory::new(8);
        for i in 0..1_000 {
            history.push(&sample(i, 10.0));
            assert!(history.len() <= 8);
            // The ring never reallocates past its window.
            assert!(history.ticks.capacity() >= 8);
        }
        assert_eq!(history.len(), 8);
        assert_eq!(history.total_ticks(), 1_000);
        assert_eq!(history.latest().unwrap().tick, 999);
    }

    #[test]
    fn windowed_aggregates_only_see_the_window() {
        let mut history = MetricsHistory::new(4);
        // Four overloaded ticks, then four calm ones: the window forgets.
        for i in 0..4 {
            history.push(&sample(i, 80.0));
        }
        assert!((history.windowed_overload_ratio() - 1.0).abs() < 1e-12);
        for i in 4..8 {
            history.push(&sample(i, 10.0));
        }
        assert!((history.windowed_overload_ratio() - 0.0).abs() < 1e-12);
        assert!((history.windowed_mean_busy_ms() - 10.0).abs() < 1e-12);
        assert_eq!(history.total_overloaded(), 4);
        let stages = history.windowed_stage_means();
        assert!((stages.player_ms - 5.0).abs() < 1e-12);
    }

    #[test]
    fn cov_reflects_windowed_variability() {
        let mut history = MetricsHistory::new(16);
        for i in 0..16 {
            history.push(&sample(i, 10.0));
        }
        assert!(history.windowed_cov() < 1e-12, "constant ticks have no CoV");
        for i in 16..24 {
            history.push(&sample(i, if i % 2 == 0 { 1.0 } else { 40.0 }));
        }
        assert!(history.windowed_cov() > 0.5);
    }

    #[test]
    fn iteration_records_are_cumulative() {
        let mut history = MetricsHistory::new(2);
        assert_eq!(history.last_iteration_isr(), None);
        history.record_iteration(0.25);
        history.record_iteration(0.5);
        assert_eq!(history.iterations_completed(), 2);
        assert_eq!(history.last_iteration_isr(), Some(0.5));
    }
}
