//! # Meterstick daemon
//!
//! Turns the batch benchmark into a *resident* service: a pausable,
//! resumable campaign loop with live metrics over HTTP.
//!
//! The batch binaries run a campaign, write CSV, and exit. The daemon
//! keeps the same campaign machinery resident and adds three things:
//!
//! * **a controllable loop** — [`Daemon::run_campaign`] executes
//!   iterations through the core's observed tick loop
//!   ([`meterstick::execute_iteration_observed`]); pause, resume and
//!   shutdown arrive through a [`DaemonHandle`] and take effect *between*
//!   ticks, so a paused-then-resumed run replays bit-identically to an
//!   uninterrupted one;
//! * **a rolling metrics history** — [`MetricsHistory`] windows the tick
//!   stream so daemon memory stays flat over arbitrarily long soaks, and
//!   an [`AlertEngine`] evaluates seeded rules (tick-overload,
//!   CoV-regression) against that window after every tick;
//! * **live sinks** — the HTTP surface in [`http`] serves per-stage
//!   busy-ms and ISR as Server-Sent Events (`/events`), Prometheus text
//!   (`/metrics`), status and the alert log, while the daemon feeds the
//!   very same [`meterstick::ResultSink`] stack (JSONL, CSV, progress)
//!   that batch campaigns use — one sink API for both worlds.
//!
//! Division of labour with the core crate: everything that blocks or
//! reads the host clock lives *here*. The core's tick loop stays inside
//! the tick determinism contract; detlint classifies this crate
//! wall-clock-exempt by table, not by per-line waivers.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod alerts;
pub mod daemon;
pub mod history;
pub mod http;

pub use alerts::{seeded_rules, Alert, AlertEngine, AlertRule};
pub use daemon::{Daemon, DaemonConfig, DaemonHandle, DaemonState, DaemonStats};
pub use history::{MetricsHistory, TickStat};
