//! The resident daemon: a pausable/resumable campaign loop plus the shared
//! state the HTTP surface reads.
//!
//! The split with `meterstick::experiment` is deliberate: the core crate
//! stays inside the tick determinism contract (no wall-clock reads, no
//! blocking), while everything resident — pause blocking, wall-clock
//! pacing, event fan-out — lives here, behind the
//! [`TickObserver`] the core loop threads through
//! [`execute_iteration_observed`]. Pausing therefore never changes *what*
//! is simulated: the observer blocks between ticks, and a paused-then-
//! resumed iteration replays bit-identically to an uninterrupted one.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use meterstick::campaign::{Campaign, IterationJob};
use meterstick::sink::json_escape;
use meterstick::{
    execute_iteration_observed, BenchmarkError, IterationResult, ResultSink, TickObserver,
    TickSample,
};

use crate::alerts::{seeded_rules, AlertEngine, AlertRule};
use crate::history::MetricsHistory;

/// Buffered events per SSE subscriber; a slow client drops events rather
/// than growing daemon memory.
const SUBSCRIBER_BUFFER: usize = 1024;

/// Configuration of a [`Daemon`].
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Ticks retained in the rolling metrics window.
    pub window: usize,
    /// Alert rules evaluated after every tick.
    pub rules: Vec<AlertRule>,
    /// Publish a tick event to subscribers every Nth tick (1 = every
    /// tick). State, alert and iteration events are always published.
    pub publish_every: u64,
    /// Throttle the loop to real time (one virtual tick per 50 wall-clock
    /// milliseconds) so live dashboards see the run unfold at game speed.
    /// Off by default: tests and soaks run at full speed.
    pub pace_to_real_time: bool,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            window: 1024,
            rules: seeded_rules(),
            publish_every: 1,
            pace_to_real_time: false,
        }
    }
}

/// Lifecycle state as reported by [`DaemonHandle::state`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DaemonState {
    /// Executing ticks.
    Running,
    /// Blocked between two ticks, waiting for resume.
    Paused,
    /// Shutdown requested; the loop unwinds after the current tick.
    ShuttingDown,
    /// The campaign loop returned and sinks are drained.
    Finished,
}

impl DaemonState {
    /// The lowercase name used in `/status` and SSE state events.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            DaemonState::Running => "running",
            DaemonState::Paused => "paused",
            DaemonState::ShuttingDown => "shutting-down",
            DaemonState::Finished => "finished",
        }
    }
}

/// Mutable statistics behind the handle's lock: the rolling history, the
/// alert engine and the current-job bookkeeping.
#[derive(Debug)]
pub struct DaemonStats {
    /// Rolling tick history.
    pub history: MetricsHistory,
    /// Alert rules and their fired log.
    pub alerts: AlertEngine,
    /// Label of the job currently executing (empty before the first).
    pub current_job: String,
    /// Whether the campaign loop has returned and drained its sinks.
    pub finished: bool,
}

#[derive(Debug)]
struct Shared {
    paused: AtomicBool,
    shutdown: AtomicBool,
    pause_lock: Mutex<()>,
    pause_cv: Condvar,
    stats: Mutex<DaemonStats>,
    subscribers: Mutex<Vec<SyncSender<String>>>,
}

/// Cloneable control handle onto a running daemon: pause/resume/shutdown,
/// event subscription and stats access. This is what the HTTP surface and
/// tests hold.
#[derive(Debug, Clone)]
pub struct DaemonHandle {
    shared: Arc<Shared>,
}

impl DaemonHandle {
    fn new(config: &DaemonConfig) -> Self {
        DaemonHandle {
            shared: Arc::new(Shared {
                paused: AtomicBool::new(false),
                shutdown: AtomicBool::new(false),
                pause_lock: Mutex::new(()),
                pause_cv: Condvar::new(),
                stats: Mutex::new(DaemonStats {
                    history: MetricsHistory::new(config.window),
                    alerts: AlertEngine::new(config.rules.clone()),
                    current_job: String::new(),
                    finished: false,
                }),
                subscribers: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Requests a pause; the loop blocks before its next tick.
    pub fn pause(&self) {
        self.shared.paused.store(true, Ordering::SeqCst);
        self.publish_state();
    }

    /// Clears a pause and wakes the blocked loop.
    ///
    /// The flag store and notify happen under `pause_lock`: the loop
    /// re-checks the flag while holding that lock before it waits, so
    /// notifying without it could land in the gap between the re-check
    /// and the wait and be lost — leaving the loop paused forever.
    pub fn resume(&self) {
        {
            let _guard = self.shared.pause_lock.lock().expect("pause lock poisoned");
            self.shared.paused.store(false, Ordering::SeqCst);
            self.shared.pause_cv.notify_all();
        }
        self.publish_state();
    }

    /// Requests shutdown; wakes a paused loop so it can unwind. Holds
    /// `pause_lock` across store + notify for the same lost-wakeup
    /// reason as [`DaemonHandle::resume`].
    pub fn request_shutdown(&self) {
        {
            let _guard = self.shared.pause_lock.lock().expect("pause lock poisoned");
            self.shared.shutdown.store(true, Ordering::SeqCst);
            self.shared.pause_cv.notify_all();
        }
        self.publish_state();
    }

    /// Whether a pause is currently requested.
    #[must_use]
    pub fn is_paused(&self) -> bool {
        self.shared.paused.load(Ordering::SeqCst)
    }

    /// Whether shutdown has been requested.
    #[must_use]
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Marks the daemon finished: the campaign loop has returned and its
    /// sinks are drained. Called by the loop's owner (not by
    /// [`Daemon::run_campaign`], since a resident daemon may run several
    /// campaign rounds back to back).
    pub fn mark_finished(&self) {
        self.with_stats_mut(|stats| stats.finished = true);
        self.publish_state();
    }

    /// The current lifecycle state.
    #[must_use]
    pub fn state(&self) -> DaemonState {
        let finished = self.with_stats(|stats| stats.finished);
        if finished {
            DaemonState::Finished
        } else if self.shutdown_requested() {
            DaemonState::ShuttingDown
        } else if self.is_paused() {
            DaemonState::Paused
        } else {
            DaemonState::Running
        }
    }

    /// Runs `f` under the stats lock and returns its result.
    pub fn with_stats<R>(&self, f: impl FnOnce(&DaemonStats) -> R) -> R {
        let stats = self.shared.stats.lock().expect("daemon stats poisoned");
        f(&stats)
    }

    fn with_stats_mut<R>(&self, f: impl FnOnce(&mut DaemonStats) -> R) -> R {
        let mut stats = self.shared.stats.lock().expect("daemon stats poisoned");
        f(&mut stats)
    }

    /// Subscribes to the daemon's event stream (tick, alert, iteration and
    /// state events as JSON lines). Each subscriber gets a bounded buffer;
    /// events beyond it are dropped for that subscriber, and disconnected
    /// subscribers are pruned on the next publish.
    #[must_use]
    pub fn subscribe(&self) -> Receiver<String> {
        let (tx, rx) = mpsc::sync_channel(SUBSCRIBER_BUFFER);
        self.shared
            .subscribers
            .lock()
            .expect("subscriber list poisoned")
            .push(tx);
        rx
    }

    /// Number of live subscribers (for tests and `/status`).
    #[must_use]
    pub fn subscriber_count(&self) -> usize {
        self.shared
            .subscribers
            .lock()
            .expect("subscriber list poisoned")
            .len()
    }

    /// Publishes one event line to every subscriber.
    pub fn publish(&self, event: &str) {
        let mut subs = self
            .shared
            .subscribers
            .lock()
            .expect("subscriber list poisoned");
        subs.retain(|tx| match tx.try_send(event.to_string()) {
            Ok(()) | Err(TrySendError::Full(_)) => true,
            Err(TrySendError::Disconnected(_)) => false,
        });
    }

    fn publish_state(&self) {
        let event = format!(
            "{{\"type\":\"state\",\"state\":\"{}\"}}",
            self.state().name()
        );
        self.publish(&event);
    }

    /// Blocks while paused; returns whether shutdown was requested. This
    /// is the only place the daemon sleeps with a lock-free loop around a
    /// condvar, and it runs *between* ticks — the simulation itself never
    /// observes the pause.
    fn block_while_paused(&self) -> bool {
        if self.is_paused() && !self.shutdown_requested() {
            let mut guard = self.shared.pause_lock.lock().expect("pause lock poisoned");
            while self.is_paused() && !self.shutdown_requested() {
                guard = self
                    .shared
                    .pause_cv
                    .wait(guard)
                    .expect("pause condvar poisoned");
            }
        }
        self.shutdown_requested()
    }
}

/// Paces the observed loop to real time: one 50 ms virtual tick per 50 ms
/// of wall clock. Host-clock use is deliberate and daemon-only — the
/// `daemon` crate is classified wall-clock-exempt in detlint's tables
/// because *presenting* a run live is exactly a wall-clock concern; the
/// simulated results remain wall-clock-free.
#[derive(Debug)]
struct Pacer {
    started: Option<Instant>,
}

impl Pacer {
    fn new() -> Self {
        Pacer { started: None }
    }

    fn pace(&mut self, virtual_ms: f64) {
        let started = *self.started.get_or_insert_with(Instant::now);
        let target = Duration::from_secs_f64(virtual_ms / 1_000.0);
        let elapsed = started.elapsed();
        if target > elapsed {
            std::thread::sleep(target - elapsed);
        }
    }
}

/// The daemon-side [`TickObserver`]: bridges every tick into the sink
/// stack, the rolling history, the alert engine and the SSE subscribers,
/// and implements pause/abort blocking.
struct DaemonObserver<'a> {
    handle: &'a DaemonHandle,
    sink: &'a mut dyn ResultSink,
    job: &'a IterationJob,
    publish_every: u64,
    pacer: Option<Pacer>,
}

impl TickObserver for DaemonObserver<'_> {
    fn should_abort(&mut self) -> bool {
        self.handle.block_while_paused()
    }

    fn on_tick(&mut self, sample: &TickSample) {
        if let Some(pacer) = &mut self.pacer {
            pacer.pace(sample.end_ms);
        }
        self.sink.on_tick(self.job, sample);
        let (newly_fired, total_ticks) = self.handle.with_stats_mut(|stats| {
            stats.history.push(sample);
            (
                stats.alerts.evaluate(&stats.history),
                stats.history.total_ticks(),
            )
        });
        for alert in &newly_fired {
            let event = format!(
                "{{\"type\":\"alert\",\"rule\":\"{}\",\"at_tick\":{},\"message\":\"{}\"}}",
                alert.rule,
                alert.at_tick,
                json_escape(&alert.message),
            );
            self.handle.publish(&event);
        }
        if self.publish_every > 0
            && total_ticks % self.publish_every == 0
            && self.handle.subscriber_count() > 0
        {
            self.handle.publish(&tick_event(self.job, sample));
        }
    }
}

fn tick_event(job: &IterationJob, sample: &TickSample) -> String {
    format!(
        concat!(
            "{{\"type\":\"tick\",\"job\":\"{}\",\"tick\":{},\"end_ms\":{:.3},",
            "\"busy_ms\":{:.3},\"period_ms\":{:.3},\"overloaded\":{},",
            "\"stage_player_ms\":{:.3},\"stage_terrain_ms\":{:.3},",
            "\"stage_entity_ms\":{:.3},\"stage_lighting_ms\":{:.3},",
            "\"stage_dissemination_ms\":{:.3},\"stage_other_ms\":{:.3}}}"
        ),
        json_escape(&job.label()),
        sample.tick,
        sample.end_ms,
        sample.busy_ms,
        sample.period_ms,
        sample.is_overloaded(),
        sample.stages.player_ms,
        sample.stages.terrain_ms,
        sample.stages.entity_ms,
        sample.stages.lighting_ms,
        sample.stages.dissemination_ms,
        sample.stages.other_ms,
    )
}

/// The resident benchmark daemon.
///
/// Construction is cheap; the loop runs inside [`Daemon::run_campaign`],
/// which the caller drives (typically from a dedicated thread, with the
/// HTTP surface holding a [`DaemonHandle`]).
#[derive(Debug)]
pub struct Daemon {
    handle: DaemonHandle,
    publish_every: u64,
    pace_to_real_time: bool,
}

impl Daemon {
    /// Creates a daemon with the given configuration.
    #[must_use]
    pub fn new(config: DaemonConfig) -> Self {
        Daemon {
            handle: DaemonHandle::new(&config),
            publish_every: config.publish_every,
            pace_to_real_time: config.pace_to_real_time,
        }
    }

    /// The control handle shared with the HTTP surface and tests.
    #[must_use]
    pub fn handle(&self) -> DaemonHandle {
        self.handle.clone()
    }

    /// Runs one campaign under daemon control, streaming live ticks and
    /// finished iterations into `sink`.
    ///
    /// Lifecycle contract: `on_campaign_start` and `on_campaign_end` are
    /// called exactly once each, regardless of how many pause/resume
    /// cycles happen and whether shutdown aborts the run mid-iteration —
    /// a shutdown *drains* the sink stack, it never double-finalizes it.
    /// An iteration aborted by shutdown is partial and is not reported
    /// through `on_result`.
    ///
    /// # Errors
    ///
    /// Returns the campaign's planning errors (see [`Campaign::plan`]);
    /// execution itself is infallible.
    pub fn run_campaign(
        &self,
        campaign: &Campaign,
        sink: &mut dyn ResultSink,
    ) -> Result<Vec<IterationResult>, BenchmarkError> {
        let plan = campaign.plan()?;
        sink.on_campaign_start(&plan);
        let mut results = Vec::new();
        for job in plan.jobs() {
            if self.handle.shutdown_requested() {
                break;
            }
            self.handle
                .with_stats_mut(|stats| stats.current_job = job.label());
            let mut observer = DaemonObserver {
                handle: &self.handle,
                sink,
                job,
                publish_every: self.publish_every,
                pacer: self.pace_to_real_time.then(Pacer::new),
            };
            let result = execute_iteration_observed(
                &job.config,
                job.flavor,
                job.iteration,
                job.seed,
                &mut observer,
            );
            if self.handle.shutdown_requested() {
                // Aborted mid-iteration: the result is partial by
                // construction; drop it rather than report a short run.
                break;
            }
            self.handle
                .with_stats_mut(|stats| stats.history.record_iteration(result.instability_ratio));
            self.handle.publish(&format!(
                "{{\"type\":\"iteration\",\"job\":\"{}\",\"isr\":{:.6},\"ticks\":{}}}",
                json_escape(&job.label()),
                result.instability_ratio,
                result.ticks_executed,
            ));
            sink.on_result(job, &result);
            results.push(result);
        }
        sink.on_campaign_end();
        Ok(results)
    }
}
