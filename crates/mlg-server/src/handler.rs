//! The player handler: processing player actions once per tick.
//!
//! Component 4 of the operational model (Figure 4): "The Player Handler is
//! driven by player actions, which the Game Loop retrieves from the
//! Networking Queues once per tick. […] Because the terrain can obstruct the
//! player from performing these actions, the Player Handler must read the
//! terrain state in the vicinity of the player."

use mlg_entity::Vec3;
use mlg_protocol::ServerboundPacket;
use mlg_world::{Block, World};

use crate::player::ConnectedPlayer;

/// A chat message accepted during the player stage, waiting to be broadcast.
#[derive(Debug, Clone, PartialEq)]
pub struct PendingChat {
    /// The sender's display name.
    pub sender: String,
    /// Message text.
    pub message: String,
    /// The client timestamp carried by the chat packet (for response-time
    /// measurement).
    pub sent_at_ms: f64,
}

/// Work counters for the player-handler stage of one tick.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PlayerStageReport {
    /// Player actions processed (all packet types).
    pub actions_processed: u64,
    /// Movement packets validated against the terrain.
    pub movements: u64,
    /// Blocks placed by players.
    pub blocks_placed: u64,
    /// Blocks dug (removed) by players.
    pub blocks_dug: u64,
    /// Chat messages accepted.
    pub chat_messages: u64,
    /// Keep-alive responses received.
    pub keep_alives: u64,
    /// World block reads performed to validate actions.
    pub blocks_read: u64,
    /// Chat messages waiting to be broadcast at the end of the tick.
    pub pending_chat: Vec<PendingChat>,
}

impl PlayerStageReport {
    /// Abstract work units represented by this stage, before flavor scaling.
    #[must_use]
    pub fn base_work_units(&self) -> u64 {
        self.actions_processed * 8
            + self.movements * 30
            + (self.blocks_placed + self.blocks_dug) * 60
            + self.chat_messages * 25
            + self.blocks_read * 2
    }
}

/// Processes one player's buffered actions against the world.
///
/// Movement is validated by reading the terrain around the destination
/// (collision and support checks); block placement/digging writes the terrain
/// through the normal update path so terrain simulation reacts to it.
pub fn process_player_actions(
    world: &mut World,
    player: &mut ConnectedPlayer,
    actions: Vec<ServerboundPacket>,
    report: &mut PlayerStageReport,
) {
    for action in actions {
        report.actions_processed += 1;
        match action {
            ServerboundPacket::PlayerMove { pos, .. } => {
                report.movements += 1;
                // Validate the destination: feet and head must be passable,
                // which requires reading the terrain near the player.
                let feet = pos.block_pos();
                let head = feet.up();
                let below = feet.down();
                report.blocks_read += 3;
                let blocked = world.block(feet).is_solid() || world.block(head).is_solid();
                let _support = world.block(below).is_solid();
                if !blocked {
                    player.pos = pos;
                } else {
                    // Rejected moves keep the old position; the client will be
                    // corrected by the next position broadcast.
                }
            }
            ServerboundPacket::BlockPlace { pos, block } => {
                report.blocks_read += 1;
                if world.block(pos).is_air() {
                    world.set_block(pos, block);
                    report.blocks_placed += 1;
                }
            }
            ServerboundPacket::BlockDig { pos } => {
                report.blocks_read += 1;
                if !world.block(pos).is_air() {
                    world.set_block(pos, Block::AIR);
                    report.blocks_dug += 1;
                }
            }
            ServerboundPacket::Chat {
                message,
                sent_at_ms,
            } => {
                report.chat_messages += 1;
                report.pending_chat.push(PendingChat {
                    sender: player.name.clone(),
                    message,
                    sent_at_ms,
                });
            }
            ServerboundPacket::KeepAlive { .. } => {
                report.keep_alives += 1;
            }
            // Connection management (login/disconnect) is handled by the
            // server itself, not the per-tick action loop; future packet
            // kinds are ignored here.
            _ => {}
        }
    }
}

/// Convenience: the positions of all connected, non-disconnected players,
/// used by entity AI and the spawner.
#[must_use]
pub fn player_positions(players: &[ConnectedPlayer]) -> Vec<Vec3> {
    players
        .iter()
        .filter(|p| !p.disconnected)
        .map(|p| p.pos)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::player::PlayerId;
    use mlg_entity::EntityId;
    use mlg_world::generation::FlatGenerator;
    use mlg_world::{BlockKind, BlockPos};

    fn world() -> World {
        World::new(Box::new(FlatGenerator::grassland()), 7)
    }

    fn player() -> ConnectedPlayer {
        ConnectedPlayer {
            id: PlayerId(1),
            entity_id: EntityId(1),
            name: "bot-1".into(),
            pos: Vec3::new(0.5, 61.0, 0.5),
            connected_at_tick: 0,
            last_served_ms: 0.0,
            disconnected: false,
        }
    }

    #[test]
    fn valid_moves_update_the_position() {
        let mut w = world();
        let mut p = player();
        let mut report = PlayerStageReport::default();
        let target = Vec3::new(3.5, 61.0, 0.5);
        process_player_actions(
            &mut w,
            &mut p,
            vec![ServerboundPacket::PlayerMove {
                pos: target,
                on_ground: true,
            }],
            &mut report,
        );
        assert_eq!(p.pos, target);
        assert_eq!(report.movements, 1);
        assert!(report.blocks_read >= 3);
    }

    #[test]
    fn moves_into_walls_are_rejected() {
        let mut w = world();
        let mut p = player();
        // Moving into the solid ground (y = 60 is the grass surface).
        let inside_ground = Vec3::new(3.5, 59.0, 0.5);
        let before = p.pos;
        let mut report = PlayerStageReport::default();
        process_player_actions(
            &mut w,
            &mut p,
            vec![ServerboundPacket::PlayerMove {
                pos: inside_ground,
                on_ground: false,
            }],
            &mut report,
        );
        assert_eq!(p.pos, before, "move into terrain must be rejected");
    }

    #[test]
    fn block_place_and_dig_modify_the_world() {
        let mut w = world();
        let mut p = player();
        let mut report = PlayerStageReport::default();
        let pos = BlockPos::new(2, 61, 2);
        process_player_actions(
            &mut w,
            &mut p,
            vec![
                ServerboundPacket::BlockPlace {
                    pos,
                    block: Block::simple(BlockKind::Planks),
                },
                ServerboundPacket::BlockDig {
                    pos: BlockPos::new(4, 60, 4),
                },
            ],
            &mut report,
        );
        assert_eq!(w.block(pos).kind(), BlockKind::Planks);
        assert_eq!(w.block(BlockPos::new(4, 60, 4)), Block::AIR);
        assert_eq!(report.blocks_placed, 1);
        assert_eq!(report.blocks_dug, 1);
        // The writes went through the update path, so terrain simulation will
        // react next tick.
        assert!(w.updates().immediate_len() > 0);
    }

    #[test]
    fn placing_into_an_occupied_cell_is_rejected() {
        let mut w = world();
        let mut p = player();
        let mut report = PlayerStageReport::default();
        let pos = BlockPos::new(2, 60, 2); // already grass
        process_player_actions(
            &mut w,
            &mut p,
            vec![ServerboundPacket::BlockPlace {
                pos,
                block: Block::simple(BlockKind::Tnt),
            }],
            &mut report,
        );
        assert_eq!(report.blocks_placed, 0);
        assert_eq!(w.block(pos).kind(), BlockKind::Grass);
    }

    #[test]
    fn chat_is_collected_for_broadcast() {
        let mut w = world();
        let mut p = player();
        let mut report = PlayerStageReport::default();
        process_player_actions(
            &mut w,
            &mut p,
            vec![ServerboundPacket::Chat {
                message: "ping-1".into(),
                sent_at_ms: 123.0,
            }],
            &mut report,
        );
        assert_eq!(report.chat_messages, 1);
        assert_eq!(report.pending_chat.len(), 1);
        assert_eq!(report.pending_chat[0].sender, "bot-1");
        assert_eq!(report.pending_chat[0].sent_at_ms, 123.0);
    }

    #[test]
    fn work_units_scale_with_actions() {
        let mut report = PlayerStageReport::default();
        assert_eq!(report.base_work_units(), 0);
        report.actions_processed = 10;
        report.movements = 8;
        report.blocks_placed = 2;
        assert!(report.base_work_units() > 300);
    }

    #[test]
    fn player_positions_skip_disconnected_players() {
        let mut a = player();
        let mut b = player();
        b.id = PlayerId(2);
        b.disconnected = true;
        a.pos = Vec3::new(1.0, 61.0, 1.0);
        let positions = player_positions(&[a, b]);
        assert_eq!(positions.len(), 1);
        assert_eq!(positions[0], Vec3::new(1.0, 61.0, 1.0));
    }
}
