//! The player handler: processing player actions once per tick.
//!
//! Component 4 of the operational model (Figure 4): "The Player Handler is
//! driven by player actions, which the Game Loop retrieves from the
//! Networking Queues once per tick. […] Because the terrain can obstruct the
//! player from performing these actions, the Player Handler must read the
//! terrain state in the vicinity of the player."
//!
//! # The sharded player stage
//!
//! For sharded tick pipelines the stage runs shard-parallel:
//! [`process_players_sharded`] batches connected players by the shard that
//! owns their chunk, processes each shard's batch concurrently against a
//! per-shard [`ShardWorld`] view (side effects — block changes, neighbour
//! updates, scheduled ticks — are buffered and merged in canonical shard
//! order), and escalates *boundary players* to a serial tail:
//! players standing on a shard-boundary chunk, or whose action queue
//! touches terrain outside their shard's interior (a cross-shard block
//! placement or dig), run after the parallel phase against the full world.
//! Batching and the merge order depend only on the shard map and the
//! player list — never on scheduling — so the stage's output (the merged
//! [`PlayerStageReport`], including the `pending_chat` broadcast order, the
//! players' positions and every world side effect) is **bit-identical at
//! any worker-thread count**.
//!
//! # Determinism contract
//!
//! The stage follows the three pipeline-wide rules spelled out in
//! [`mlg_world::shard`] (pure partitioning, canonical merge order,
//! serial-tail escalation). Concretely, for the player stage:
//!
//! * **Escalation rules** ([`player_shard_assignment`]): a player runs in
//!   the parallel phase only when its own chunk is *interior* to one shard
//!   AND every terrain-touching action in its queue (move target, block
//!   placement, dig) stays inside that same shard's interior. Anything
//!   else — a boundary-chunk player, a cross-shard edit — runs in the
//!   serial tail. Chat and keep-alives touch no terrain and never
//!   escalate.
//! * **Merge order**: shard batches merge in ascending shard order with
//!   players in ascending player-index order inside each batch; the serial
//!   tail runs last, in ascending index order; the returned player vector
//!   restores the original indexing exactly.
//! * **Execution substrate**: the parallel phase dispatches through
//!   `TickPipeline::scope()` — the server's persistent
//!   [`TickWorkerPool`](mlg_world::pool::TickWorkerPool) when one is
//!   attached, fresh scoped threads otherwise — and both substrates
//!   produce identical output by the rules above.

use std::sync::Arc;

use mlg_entity::Vec3;
use mlg_protocol::ServerboundPacket;
use mlg_world::generation::ChunkGenerator;
use mlg_world::shard::{ShardMap, ShardWorld, TerrainView, TickPipeline};
use mlg_world::world::BlockChange;
use mlg_world::{Block, BlockPos, World};

use crate::player::ConnectedPlayer;

/// A chat message accepted during the player stage, waiting to be broadcast.
#[derive(Debug, Clone, PartialEq)]
pub struct PendingChat {
    /// The sender's display name.
    pub sender: String,
    /// Message text.
    pub message: String,
    /// The client timestamp carried by the chat packet (for response-time
    /// measurement).
    pub sent_at_ms: f64,
}

/// Work counters for the player-handler stage of one tick.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PlayerStageReport {
    /// Player actions processed (all packet types).
    pub actions_processed: u64,
    /// Movement packets validated against the terrain.
    pub movements: u64,
    /// Blocks placed by players.
    pub blocks_placed: u64,
    /// Blocks dug (removed) by players.
    pub blocks_dug: u64,
    /// Chat messages accepted.
    pub chat_messages: u64,
    /// Keep-alive responses received.
    pub keep_alives: u64,
    /// World block reads performed to validate actions.
    pub blocks_read: u64,
    /// Chat messages waiting to be broadcast at the end of the tick.
    pub pending_chat: Vec<PendingChat>,
}

impl PlayerStageReport {
    /// Abstract work units represented by this stage, before flavor scaling.
    #[must_use]
    pub fn base_work_units(&self) -> u64 {
        self.actions_processed * 8
            + self.movements * 30
            + (self.blocks_placed + self.blocks_dug) * 60
            + self.chat_messages * 25
            + self.blocks_read * 2
    }

    /// Folds another report into this one: counters sum, and the other
    /// report's pending chat is appended in order. The sharded player stage
    /// merges per-shard reports in canonical shard order, so the combined
    /// chat broadcast order is deterministic at any thread count.
    pub fn merge(&mut self, other: PlayerStageReport) {
        self.actions_processed += other.actions_processed;
        self.movements += other.movements;
        self.blocks_placed += other.blocks_placed;
        self.blocks_dug += other.blocks_dug;
        self.chat_messages += other.chat_messages;
        self.keep_alives += other.keep_alives;
        self.blocks_read += other.blocks_read;
        self.pending_chat.extend(other.pending_chat);
    }
}

/// Processes one player's buffered actions against a terrain view.
///
/// Movement is validated by reading the terrain around the destination
/// (collision and support checks); block placement/digging writes the terrain
/// through the normal update path so terrain simulation reacts to it.
///
/// Generic over [`TerrainView`] so the same code runs against the full
/// [`World`] (the serial loop and the sharded stage's escalation tail) and
/// against a [`ShardWorld`] view during the parallel phase.
pub fn process_player_actions<W: TerrainView>(
    world: &mut W,
    player: &mut ConnectedPlayer,
    actions: Vec<ServerboundPacket>,
    report: &mut PlayerStageReport,
) {
    for action in actions {
        report.actions_processed += 1;
        match action {
            ServerboundPacket::PlayerMove { pos, .. } => {
                report.movements += 1;
                // Validate the destination: feet and head must be passable,
                // which requires reading the terrain near the player.
                let feet = pos.block_pos();
                let head = feet.up();
                let below = feet.down();
                report.blocks_read += 3;
                let blocked = world.block(feet).is_solid() || world.block(head).is_solid();
                let _support = world.block(below).is_solid();
                if !blocked {
                    player.pos = pos;
                } else {
                    // Rejected moves keep the old position; the client will be
                    // corrected by the next position broadcast.
                }
            }
            ServerboundPacket::BlockPlace { pos, block } => {
                report.blocks_read += 1;
                if world.block(pos).is_air() {
                    world.set_block(pos, block);
                    report.blocks_placed += 1;
                }
            }
            ServerboundPacket::BlockDig { pos } => {
                report.blocks_read += 1;
                if !world.block(pos).is_air() {
                    world.set_block(pos, Block::AIR);
                    report.blocks_dug += 1;
                }
            }
            ServerboundPacket::Chat {
                message,
                sent_at_ms,
            } => {
                report.chat_messages += 1;
                report.pending_chat.push(PendingChat {
                    sender: player.name.clone(),
                    message,
                    sent_at_ms,
                });
            }
            ServerboundPacket::KeepAlive { .. } => {
                report.keep_alives += 1;
            }
            // Connection management (login/disconnect) is handled by the
            // server itself, not the per-tick action loop; future packet
            // kinds are ignored here.
            _ => {}
        }
    }
}

/// Result of the sharded player stage for one tick.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShardedPlayerStage {
    /// The merged work report (per-shard batches in canonical shard order,
    /// then the serial escalation tail in player order).
    pub report: PlayerStageReport,
    /// Work units processed inside each shard's parallel batch (index =
    /// shard); feeds the compute model's player-stage load-balance floor
    /// and the adaptive rebalancer.
    pub per_shard_work: Vec<u64>,
    /// Players escalated to the serial tail this tick (boundary chunks or
    /// cross-shard actions).
    pub escalated_players: u64,
}

/// The shard whose interior confines `player` and its whole action queue,
/// or `None` when the player must be escalated to the serial tail.
///
/// A player is *interior* to the shard owning its chunk
/// ([`ShardMap::shard_of_chunk`]) when the chunk itself is interior
/// ([`ShardMap::interior_shard`]) and every world-touching action stays
/// inside that shard's interior: movement validation reads the terrain
/// around the destination, and block placement/digging writes it, so a
/// move, placement or dig targeting another shard — or any boundary chunk —
/// makes the whole queue serial. Chat and keep-alives touch no terrain and
/// never force escalation.
#[must_use]
pub fn player_shard_assignment(
    map: &ShardMap,
    player: &ConnectedPlayer,
    actions: &[ServerboundPacket],
) -> Option<usize> {
    let owner = map.interior_shard(player.chunk())?;
    let confined = |pos: BlockPos| map.interior_shard_of_block(pos) == Some(owner);
    for action in actions {
        let stays = match action {
            ServerboundPacket::PlayerMove { pos, .. } => confined(pos.block_pos()),
            ServerboundPacket::BlockPlace { pos, .. } | ServerboundPacket::BlockDig { pos } => {
                confined(*pos)
            }
            _ => true,
        };
        if !stays {
            return None;
        }
    }
    Some(owner)
}

struct PlayerShardTask {
    shard: usize,
    store: mlg_world::world::ShardStore,
    /// `(players-vec index, player, drained action queue)`, ascending index.
    players: Vec<(usize, ConnectedPlayer, Vec<ServerboundPacket>)>,
    report: PlayerStageReport,
    changes: Vec<BlockChange>,
    outbound: Vec<BlockPos>,
    scheduled: Vec<(BlockPos, u64)>,
    chunks_generated: u32,
}

/// Shared context of the parallel player phase: owned copies of the shard
/// map and a generator handle, so the phase can execute on the persistent
/// worker pool (whose jobs cannot borrow the tick's stack).
struct PlayerPhaseCtx {
    map: ShardMap,
    generator: Arc<dyn ChunkGenerator>,
    tick: u64,
}

/// Runs the sharded player stage: batches `players` by owning shard,
/// processes interior batches concurrently against per-shard world views,
/// runs the escalated tail serially, merges every side effect in canonical
/// shard order, and returns the players in their original order.
///
/// `actions` is parallel to `players` (one drained queue per player;
/// disconnected players must have empty queues). The caller passes the
/// players by value so each shard worker can own its batch outright — the
/// returned vector restores the original indexing exactly.
///
/// Determinism: batch assignment is a pure function of (map, players,
/// actions); shard batches merge in ascending shard order with players in
/// ascending index order inside each batch; the serial tail runs last in
/// ascending index order. None of it depends on `pipeline.threads()`.
#[must_use]
pub fn process_players_sharded(
    world: &mut World,
    players: Vec<ConnectedPlayer>,
    mut actions: Vec<Vec<ServerboundPacket>>,
    pipeline: &TickPipeline,
) -> (Vec<ConnectedPlayer>, ShardedPlayerStage) {
    assert_eq!(
        players.len(),
        actions.len(),
        "one action queue per player slot"
    );
    let map = pipeline.shard_map().clone();
    world.reshard(map.clone());
    let shard_count = map.count();
    let tick = world.current_tick();
    let total = players.len();

    // Classification: interior batches per shard, escalated tail, and
    // parked (disconnected) players that only need their slots back.
    let mut batches: Vec<Vec<(usize, ConnectedPlayer, Vec<ServerboundPacket>)>> =
        vec![Vec::new(); shard_count];
    let mut serial: Vec<(usize, ConnectedPlayer, Vec<ServerboundPacket>)> = Vec::new();
    let mut parked: Vec<(usize, ConnectedPlayer)> = Vec::new();
    for (index, player) in players.into_iter().enumerate() {
        if player.disconnected {
            parked.push((index, player));
            continue;
        }
        let queue = std::mem::take(&mut actions[index]);
        match player_shard_assignment(&map, &player, &queue) {
            Some(shard) => batches[shard].push((index, player, queue)),
            None => serial.push((index, player, queue)),
        }
    }
    let escalated_players = serial.len() as u64;

    // Parallel phase: one task per shard with players, fanned over the
    // worker pool. Local neighbour pushes are deferred (`defer_local_pushes`)
    // so every cascade seed reaches the world's global queue through the
    // canonical merge below — the terrain stage, not the player stage, runs
    // the cascade.
    let mut tasks: Vec<PlayerShardTask> = Vec::new();
    for (s, batch) in batches.into_iter().enumerate() {
        if batch.is_empty() {
            continue;
        }
        tasks.push(PlayerShardTask {
            shard: s,
            store: world.take_shard_store(s),
            players: batch,
            report: PlayerStageReport::default(),
            changes: Vec::new(),
            outbound: Vec::new(),
            scheduled: Vec::new(),
            chunks_generated: 0,
        });
    }
    if !tasks.is_empty() {
        let ctx = PlayerPhaseCtx {
            map,
            generator: world.generator_arc(),
            tick,
        };
        tasks = pipeline
            .scope()
            .run_tasks_ctx(tasks, ctx, |_, task, ctx: &PlayerPhaseCtx| {
                let store = std::mem::take(&mut task.store);
                let mut view =
                    ShardWorld::new(task.shard, &ctx.map, store, &*ctx.generator, ctx.tick, true);
                for (_, player, queue) in &mut task.players {
                    process_player_actions(
                        &mut view,
                        player,
                        std::mem::take(queue),
                        &mut task.report,
                    );
                }
                task.chunks_generated = view.chunks_generated;
                task.changes = std::mem::take(&mut view.changes);
                task.outbound = std::mem::take(&mut view.outbound);
                task.scheduled = std::mem::take(&mut view.scheduled);
                task.store = view.into_store();
            })
            .0;
    }

    // Merge, in canonical (ascending shard) order.
    let mut stage = ShardedPlayerStage {
        per_shard_work: vec![0u64; shard_count],
        ..ShardedPlayerStage::default()
    };
    let mut merged: Vec<(usize, ConnectedPlayer)> = Vec::with_capacity(total);
    for task in tasks {
        world.put_shard_store(task.shard, task.store);
        stage.per_shard_work[task.shard] = task.report.base_work_units();
        stage.report.merge(task.report);
        world.append_changes(task.changes);
        for pos in task.outbound {
            world.push_neighbor_update(pos);
        }
        for (pos, due) in task.scheduled {
            world.schedule_tick_at(pos, due);
        }
        world.note_chunks_generated(task.chunks_generated);
        merged.extend(task.players.into_iter().map(|(i, p, _)| (i, p)));
    }
    stage.escalated_players = escalated_players;

    // Serial tail: escalated players against the full world, in ascending
    // player order, after every parallel batch has merged.
    for (index, mut player, queue) in serial {
        process_player_actions(world, &mut player, queue, &mut stage.report);
        merged.push((index, player));
    }

    merged.extend(parked);
    merged.sort_unstable_by_key(|(index, _)| *index);
    (merged.into_iter().map(|(_, p)| p).collect(), stage)
}

/// Convenience: the positions of all connected, non-disconnected players,
/// used by entity AI and the spawner.
#[must_use]
pub fn player_positions(players: &[ConnectedPlayer]) -> Vec<Vec3> {
    players
        .iter()
        .filter(|p| !p.disconnected)
        .map(|p| p.pos)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::player::PlayerId;
    use mlg_entity::EntityId;
    use mlg_world::generation::FlatGenerator;
    use mlg_world::{BlockKind, BlockPos};

    fn world() -> World {
        World::new(Box::new(FlatGenerator::grassland()), 7)
    }

    fn player() -> ConnectedPlayer {
        ConnectedPlayer {
            id: PlayerId(1),
            entity_id: EntityId(1),
            name: "bot-1".into(),
            pos: Vec3::new(0.5, 61.0, 0.5),
            connected_at_tick: 0,
            last_served_ms: 0.0,
            disconnected: false,
        }
    }

    #[test]
    fn valid_moves_update_the_position() {
        let mut w = world();
        let mut p = player();
        let mut report = PlayerStageReport::default();
        let target = Vec3::new(3.5, 61.0, 0.5);
        process_player_actions(
            &mut w,
            &mut p,
            vec![ServerboundPacket::PlayerMove {
                pos: target,
                on_ground: true,
            }],
            &mut report,
        );
        assert_eq!(p.pos, target);
        assert_eq!(report.movements, 1);
        assert!(report.blocks_read >= 3);
    }

    #[test]
    fn moves_into_walls_are_rejected() {
        let mut w = world();
        let mut p = player();
        // Moving into the solid ground (y = 60 is the grass surface).
        let inside_ground = Vec3::new(3.5, 59.0, 0.5);
        let before = p.pos;
        let mut report = PlayerStageReport::default();
        process_player_actions(
            &mut w,
            &mut p,
            vec![ServerboundPacket::PlayerMove {
                pos: inside_ground,
                on_ground: false,
            }],
            &mut report,
        );
        assert_eq!(p.pos, before, "move into terrain must be rejected");
    }

    #[test]
    fn block_place_and_dig_modify_the_world() {
        let mut w = world();
        let mut p = player();
        let mut report = PlayerStageReport::default();
        let pos = BlockPos::new(2, 61, 2);
        process_player_actions(
            &mut w,
            &mut p,
            vec![
                ServerboundPacket::BlockPlace {
                    pos,
                    block: Block::simple(BlockKind::Planks),
                },
                ServerboundPacket::BlockDig {
                    pos: BlockPos::new(4, 60, 4),
                },
            ],
            &mut report,
        );
        assert_eq!(w.block(pos).kind(), BlockKind::Planks);
        assert_eq!(w.block(BlockPos::new(4, 60, 4)), Block::AIR);
        assert_eq!(report.blocks_placed, 1);
        assert_eq!(report.blocks_dug, 1);
        // The writes went through the update path, so terrain simulation will
        // react next tick.
        assert!(w.updates().immediate_len() > 0);
    }

    #[test]
    fn placing_into_an_occupied_cell_is_rejected() {
        let mut w = world();
        let mut p = player();
        let mut report = PlayerStageReport::default();
        let pos = BlockPos::new(2, 60, 2); // already grass
        process_player_actions(
            &mut w,
            &mut p,
            vec![ServerboundPacket::BlockPlace {
                pos,
                block: Block::simple(BlockKind::Tnt),
            }],
            &mut report,
        );
        assert_eq!(report.blocks_placed, 0);
        assert_eq!(w.block(pos).kind(), BlockKind::Grass);
    }

    #[test]
    fn chat_is_collected_for_broadcast() {
        let mut w = world();
        let mut p = player();
        let mut report = PlayerStageReport::default();
        process_player_actions(
            &mut w,
            &mut p,
            vec![ServerboundPacket::Chat {
                message: "ping-1".into(),
                sent_at_ms: 123.0,
            }],
            &mut report,
        );
        assert_eq!(report.chat_messages, 1);
        assert_eq!(report.pending_chat.len(), 1);
        assert_eq!(report.pending_chat[0].sender, "bot-1");
        assert_eq!(report.pending_chat[0].sent_at_ms, 123.0);
    }

    #[test]
    fn work_units_scale_with_actions() {
        let mut report = PlayerStageReport::default();
        assert_eq!(report.base_work_units(), 0);
        report.actions_processed = 10;
        report.movements = 8;
        report.blocks_placed = 2;
        assert!(report.base_work_units() > 300);
    }

    #[test]
    fn report_merge_sums_counters_and_appends_chat() {
        let mut a = PlayerStageReport {
            actions_processed: 3,
            movements: 2,
            chat_messages: 1,
            pending_chat: vec![PendingChat {
                sender: "a".into(),
                message: "first".into(),
                sent_at_ms: 1.0,
            }],
            ..PlayerStageReport::default()
        };
        let b = PlayerStageReport {
            actions_processed: 5,
            blocks_placed: 1,
            chat_messages: 1,
            pending_chat: vec![PendingChat {
                sender: "b".into(),
                message: "second".into(),
                sent_at_ms: 2.0,
            }],
            ..PlayerStageReport::default()
        };
        a.merge(b);
        assert_eq!(a.actions_processed, 8);
        assert_eq!(a.movements, 2);
        assert_eq!(a.blocks_placed, 1);
        assert_eq!(a.chat_messages, 2);
        let order: Vec<&str> = a.pending_chat.iter().map(|c| c.message.as_str()).collect();
        assert_eq!(order, vec!["first", "second"]);
    }

    #[test]
    fn interior_players_with_interior_actions_stay_parallel() {
        use mlg_world::shard::ShardMap;

        // Two stripes of 4 chunks: shard 0 interior chunks are x = 1..=2.
        let map = ShardMap::stripes(2);
        let mut p = player();
        p.pos = Vec3::new(24.5, 61.0, 8.5); // chunk (1, 0), interior of shard 0
        let actions = vec![
            ServerboundPacket::PlayerMove {
                pos: Vec3::new(26.0, 61.0, 9.0),
                on_ground: true,
            },
            ServerboundPacket::BlockDig {
                pos: BlockPos::new(30, 60, 9), // chunk (1, 0)
            },
            ServerboundPacket::Chat {
                message: "hi".into(),
                sent_at_ms: 0.0,
            },
        ];
        assert_eq!(player_shard_assignment(&map, &p, &actions), Some(0));
    }

    #[test]
    fn cross_shard_and_boundary_actions_escalate() {
        use mlg_world::shard::ShardMap;

        let map = ShardMap::stripes(2);
        let mut p = player();
        p.pos = Vec3::new(24.5, 61.0, 8.5); // chunk (1, 0), interior of shard 0

        // Digging into another stripe's interior escalates…
        let foreign_dig = vec![ServerboundPacket::BlockDig {
            pos: BlockPos::new(90, 60, 9), // chunk (5, 0), interior of shard 1
        }];
        assert_eq!(player_shard_assignment(&map, &p, &foreign_dig), None);
        // …and so does touching a boundary chunk of the *own* shard.
        let boundary_place = vec![ServerboundPacket::BlockPlace {
            pos: BlockPos::new(3, 61, 9), // chunk (0, 0): stripe edge
            block: Block::simple(BlockKind::Planks),
        }];
        assert_eq!(player_shard_assignment(&map, &p, &boundary_place), None);
        // A player standing on a boundary chunk escalates even when idle.
        let mut edge = player();
        edge.pos = Vec3::new(3.5, 61.0, 8.5); // chunk (0, 0)
        assert_eq!(player_shard_assignment(&map, &edge, &[]), None);
    }

    #[test]
    fn sharded_stage_matches_the_serial_loop_for_interior_players() {
        use mlg_world::shard::TickPipeline;

        // Two players in different stripes placing blocks and chatting:
        // the sharded stage must produce the same world writes and the
        // same per-player state as the serial loop (chat merge order is
        // canonical shard order, which here equals player order).
        let build_players = || {
            let mut a = player();
            a.pos = Vec3::new(24.5, 61.0, 8.5); // shard 0 interior
            let mut b = player();
            b.id = PlayerId(2);
            b.name = "bot-2".into();
            b.pos = Vec3::new(88.5, 61.0, 8.5); // chunk (5, 0): shard 1 interior
            vec![a, b]
        };
        let actions = || {
            vec![
                vec![
                    ServerboundPacket::BlockPlace {
                        pos: BlockPos::new(26, 61, 9),
                        block: Block::simple(BlockKind::Planks),
                    },
                    ServerboundPacket::Chat {
                        message: "from-a".into(),
                        sent_at_ms: 1.0,
                    },
                ],
                vec![
                    ServerboundPacket::BlockDig {
                        pos: BlockPos::new(90, 60, 9),
                    },
                    ServerboundPacket::Chat {
                        message: "from-b".into(),
                        sent_at_ms: 2.0,
                    },
                ],
            ]
        };

        let mut serial_world = world();
        serial_world.ensure_area(mlg_world::ChunkPos::new(3, 0), 4);
        let mut serial_players = build_players();
        let mut serial_report = PlayerStageReport::default();
        for (player, queue) in serial_players.iter_mut().zip(actions()) {
            process_player_actions(&mut serial_world, player, queue, &mut serial_report);
        }

        let pipeline = TickPipeline::new(2, 4);
        let mut sharded_world = world();
        sharded_world.ensure_area(mlg_world::ChunkPos::new(3, 0), 4);
        sharded_world.reshard(pipeline.shard_map().clone());
        let (sharded_players, stage) =
            process_players_sharded(&mut sharded_world, build_players(), actions(), &pipeline);

        assert_eq!(stage.escalated_players, 0);
        assert_eq!(stage.report, serial_report);
        assert_eq!(sharded_players, serial_players);
        assert_eq!(
            sharded_world.block(BlockPos::new(26, 61, 9)).kind(),
            BlockKind::Planks
        );
        assert_eq!(sharded_world.block(BlockPos::new(90, 60, 9)), Block::AIR);
        assert!(stage.per_shard_work[0] > 0 && stage.per_shard_work[1] > 0);
    }

    #[test]
    fn player_positions_skip_disconnected_players() {
        let mut a = player();
        let mut b = player();
        b.id = PlayerId(2);
        b.disconnected = true;
        a.pos = Vec3::new(1.0, 61.0, 1.0);
        let positions = player_positions(&[a, b]);
        assert_eq!(positions.len(), 1);
        assert_eq!(positions[0], Vec3::new(1.0, 61.0, 1.0));
    }
}
