//! The Minecraft-like game server used as Meterstick's system under test.
//!
//! This crate implements the operational model of Figure 4 in the paper: a
//! 20 Hz game loop orchestrating three simulation elements — the player
//! handler, terrain simulation and entity simulation — connected to clients
//! through networking queues, all reading and writing the shared game state.
//!
//! Because the paper benchmarks three real server implementations (the
//! official Minecraft server, Forge and PaperMC) that cannot be run here, the
//! server supports three [`flavor::ServerFlavor`]s that model their
//! performance-relevant differences: PaperMC's asynchronous chat and
//! environment processing, its reworked entity handling and explosion
//! optimizations; Forge's mod-loader overhead on top of vanilla behaviour.
//!
//! The server runs entirely in virtual time: each tick's work is accumulated
//! in abstract work units and converted to milliseconds by a
//! `cloud-sim` compute engine, so experiments are deterministic and fast.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod externalizer;
pub mod flavor;
pub mod handler;
pub mod player;
pub mod queues;
pub mod server;

pub use config::ServerConfig;
pub use flavor::{FlavorProfile, ServerFlavor};
pub use player::{ConnectedPlayer, PlayerId};
pub use server::{GameServer, ServerCrash, TickSummary};
