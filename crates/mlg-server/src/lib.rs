//! The Minecraft-like game server used as Meterstick's system under test.
//!
//! This crate implements the operational model of Figure 4 in the paper: a
//! 20 Hz game loop orchestrating three simulation elements — the player
//! handler, terrain simulation and entity simulation — connected to clients
//! through networking queues, all reading and writing the shared game state.
//!
//! Because the paper benchmarks three real server implementations (the
//! official Minecraft server, Forge and PaperMC) that cannot be run here, the
//! server supports [`flavor::ServerFlavor`]s that model their
//! performance-relevant differences: PaperMC's asynchronous chat and
//! environment processing, its reworked entity handling and explosion
//! optimizations; Forge's mod-loader overhead on top of vanilla behaviour;
//! plus a Folia-like sharded flavor that goes beyond the paper's systems.
//!
//! # The tick stage graph
//!
//! [`server::GameServer::run_tick`] executes an explicit **stage graph**:
//! pipelined lighting → player handler → terrain simulation → entity
//! simulation → state-update dissemination → work accounting → overload
//! handling. For flavors with `tick_shards > 1` *every* stage declares its
//! shard-parallel and serial-tail work against the **sharded tick
//! pipeline** (`mlg_world::shard`):
//!
//! * the **player handler** batches connected players by the shard owning
//!   their chunk and processes interior batches concurrently against
//!   per-shard world views; boundary players — standing on a shard-edge
//!   chunk, or placing/digging across a shard edge — escalate to a serial
//!   tail ([`handler::process_players_sharded`]);
//! * **terrain** and **entities** fan per-shard work over the server's
//!   persistent tick worker pool (interior/boundary classification,
//!   serial escalation);
//! * **dissemination** assembles the tick's broadcasts into one reused,
//!   pre-sized buffer (player positions grouped per shard in canonical
//!   order) and flushes it with a single batched
//!   [`queues::NetworkingQueues::broadcast_many`] call;
//! * **lighting** is either recomputed eagerly inside the terrain stage
//!   (vanilla) or — for [`FlavorProfile::eager_lighting`]` = false`
//!   flavors (Paper/Folia) — deferred into a **cross-tick pipelined
//!   stage**: each tick's relight positions queue up and are consumed
//!   against a frozen world snapshot at the start of the *next* tick,
//!   overlapping that tick's player stage in the compute model.
//!
//! Batching, merge order and escalation depend only on the shard map and
//! the inputs — never on scheduling — so the whole graph is
//! **bit-identical at any thread count**: `tick_threads = 1` is the
//! sequential reference path, and tests pin [`TickSummary`] equality
//! across settings, rebalance on and off, lighting eager and pipelined.
//!
//! Flavors with [`FlavorProfile::rebalance`] set (the Folia-like one)
//! replace the static stripe partition with an **adaptive 2D region
//! quadtree**: at the end of every tick the merged per-shard load report
//! (terrain updates + entity counts + player-stage work units) drives one
//! deterministic split/merge step — hot regions split while cold quads
//! merge back, within a hysteresis band — and players and entities are
//! re-batched against the new partition on the next tick. Scheduled
//! updates (TNT fuses, repeater delays) are keyed by position in the
//! world's global queue, so a chunk migrating between shards keeps its
//! fuses tick-exact (there is a regression test pinning this).
//!
//! The server runs entirely in virtual time: each stage's work is
//! accumulated in abstract work units and handed to the `cloud-sim`
//! compute engine as one `StageWork` record per stage — serial main-thread
//! work plus a parallelizable share with a per-stage width (the shard
//! count) and a per-stage load-balance floor (that stage's busiest shard)
//! — folded into one Amdahl critical path, with asynchronously
//! *offloadable* work (async chat, the pipelined lighting pass) overlapped
//! on spare cores. Per-stage fractions come from
//! [`FlavorProfile::stage_parallel`]; the resulting per-stage busy-time
//! breakdown is exposed as [`TickStageBreakdown`] on every summary and as
//! `stage_*_ms` columns in campaign CSVs, so variability can be attributed
//! to stages the way the paper's Figure 11 attributes it to work classes.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod externalizer;
pub mod flavor;
pub mod handler;
pub mod player;
pub mod queues;
pub mod server;

pub use config::ServerConfig;
pub use flavor::{FlavorProfile, ServerFlavor, StageParallelism};
pub use player::{ConnectedPlayer, PlayerId};
pub use server::{GameServer, ServerCrash, TickStageBreakdown, TickSummary};
