//! The Minecraft-like game server used as Meterstick's system under test.
//!
//! This crate implements the operational model of Figure 4 in the paper: a
//! 20 Hz game loop orchestrating three simulation elements — the player
//! handler, terrain simulation and entity simulation — connected to clients
//! through networking queues, all reading and writing the shared game state.
//!
//! Because the paper benchmarks three real server implementations (the
//! official Minecraft server, Forge and PaperMC) that cannot be run here, the
//! server supports [`flavor::ServerFlavor`]s that model their
//! performance-relevant differences: PaperMC's asynchronous chat and
//! environment processing, its reworked entity handling and explosion
//! optimizations; Forge's mod-loader overhead on top of vanilla behaviour;
//! plus a Folia-like sharded flavor that goes beyond the paper's systems.
//!
//! # The sharded tick pipeline
//!
//! [`server::GameServer::run_tick`] executes explicit stages: player
//! handler → terrain simulation → entity simulation → state-update
//! dissemination → work accounting → overload handling. For flavors with
//! `tick_shards > 1` the two simulation stages run through the **sharded
//! tick pipeline** (`mlg_world::shard`): loaded chunks are partitioned into
//! spatial shards, entities are batched by owning shard, and per-shard work
//! fans out over a scoped worker pool
//! ([`ServerConfig::tick_threads`]); boundary work is escalated to a serial
//! merge phase and every result merges in canonical shard order. The
//! pipeline is **bit-identical at any thread count** — `tick_threads = 1`
//! is the sequential reference path, and there are tests pinning
//! [`TickSummary`] equality across settings.
//!
//! Flavors with [`FlavorProfile::rebalance`] set (the Folia-like one)
//! replace the static stripe partition with an **adaptive 2D region
//! quadtree**: at the end of every tick the merged per-shard load report
//! (terrain updates + entity counts) drives one deterministic split/merge
//! step — hot regions split while cold quads merge back, within a
//! hysteresis band — and entities are re-batched against the new partition
//! on the next tick. Scheduled updates (TNT fuses, repeater delays) are
//! keyed by position in the world's global queue, so a chunk migrating
//! between shards keeps its fuses tick-exact (there is a regression test
//! pinning this). The evolving leaf count feeds the compute model's
//! `parallel_width` and the busiest shard its `max_shard` floor, which is
//! how rebalancing lets extra vCPUs absorb clustered hotspot workloads.
//!
//! The server runs entirely in virtual time: each tick's work is accumulated
//! in abstract work units and converted to milliseconds by a `cloud-sim`
//! compute engine, so experiments are deterministic and fast. The work split
//! reported to the engine is three-way: serial main-thread work, an
//! Amdahl-style *parallelizable* share (tick shards, parallel JVM GC —
//! controlled by [`FlavorProfile`]'s `parallel_fraction`/`tick_shards`
//! knobs) that lets vCPU count shorten busy time, and asynchronously
//! *offloadable* work overlapped on spare cores.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod externalizer;
pub mod flavor;
pub mod handler;
pub mod player;
pub mod queues;
pub mod server;

pub use config::ServerConfig;
pub use flavor::{FlavorProfile, ServerFlavor};
pub use player::{ConnectedPlayer, PlayerId};
pub use server::{GameServer, ServerCrash, TickSummary};
