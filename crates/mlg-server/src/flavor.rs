//! Server flavors: Vanilla, Forge and PaperMC performance models.
//!
//! The paper evaluates three MLGs that speak the same protocol but differ in
//! their engineering (Section 5.1.1 and Appendix A). The reproduction models
//! each one as a set of multipliers and capabilities applied to the same
//! underlying simulation:
//!
//! * **Vanilla** — the reference behaviour.
//! * **Forge** — behaves like Vanilla (the paper finds their flamegraphs
//!   identical) plus a small mod-loader overhead on every stage.
//! * **Paper** — asynchronous chat (why PaperMC is omitted from the paper's
//!   response-time figure), asynchronous environment processing on dedicated
//!   threads, a rewritten entity handler, and targeted optimizations for TNT
//!   and redstone, reducing both total work and the share bound to the main
//!   thread.
//!
//! Beyond the paper's three systems, the reproduction also models a
//! **Folia-like sharded flavor** ([`ServerFlavor::Folia`]): the game loop is
//! split into independently ticked spatial shards, so every tick stage —
//! player handler, terrain, entities, lighting, dissemination — becomes
//! parallelizable across vCPUs ([`FlavorProfile::tick_shards`],
//! [`FlavorProfile::stage_parallel`]), and the shard partition
//! **rebalances adaptively** ([`FlavorProfile::rebalance`]): a 2D region
//! quadtree splits hot regions and merges cold ones between ticks, so
//! clustered hotspot workloads (TNT cascades) spread across shards instead
//! of pinning one. It is excluded from [`ServerFlavor::all`] (the paper's
//! set) and included in [`ServerFlavor::extended`].

use serde::{Deserialize, Serialize};

/// Per-stage parallel fractions of the tick stage graph: which share of
/// each stage's work the flavor's architecture can fan out across vCPUs
/// *within* the game loop.
///
/// Serial flavors still get JVM-runtime parallelism (parallel GC, JIT,
/// netty I/O) on the simulation-heavy stages — that is
/// [`StageParallelism::jvm`], the mechanism behind the paper's MF5 (bigger
/// nodes reduce TNT overload even for vanilla) — while their player handler
/// and dissemination stay on the main thread. Sharded flavors
/// ([`StageParallelism::sharded`]) parallelize every stage over their tick
/// shards: the player handler batches players by shard, dissemination
/// assembles per-shard packet buffers, and lighting fans out over the
/// worker pool. Redstone/block-update cascades are *never* included: they
/// are serial dependency chains even under sharding (boundary escalation),
/// which is what preserves MF2's Lag crash.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageParallelism {
    /// Player-handler stage (action processing + connection upkeep).
    pub player: f64,
    /// Terrain stage — applies to chunk generation/encoding only; update
    /// cascades stay serial.
    pub terrain: f64,
    /// Entity simulation stage.
    pub entity: f64,
    /// Lighting stage (eager lighting only; a pipelined lighting stage is
    /// modeled as fully overlapped instead — see
    /// [`FlavorProfile::eager_lighting`]).
    pub lighting: f64,
    /// State-update dissemination stage (packet assembly + broadcast).
    pub dissemination: f64,
}

impl StageParallelism {
    /// Everything on the main thread (no intra-loop parallelism at all).
    pub const SERIAL: StageParallelism = StageParallelism {
        player: 0.0,
        terrain: 0.0,
        entity: 0.0,
        lighting: 0.0,
        dissemination: 0.0,
    };

    /// JVM-runtime parallelism for a serial game loop: `fraction` of the
    /// simulation-heavy stages (terrain chunks, entities, lighting) spreads
    /// across vCPUs, the player handler and dissemination stay serial.
    #[must_use]
    pub fn jvm(fraction: f64) -> Self {
        StageParallelism {
            player: 0.0,
            terrain: fraction,
            entity: fraction,
            lighting: fraction,
            dissemination: 0.0,
        }
    }

    /// A region-sharded game loop: `fraction` of every stage fans out over
    /// the tick shards, the player handler and dissemination included.
    #[must_use]
    pub fn sharded(fraction: f64) -> Self {
        StageParallelism {
            player: fraction,
            terrain: fraction,
            entity: fraction,
            lighting: fraction,
            dissemination: fraction,
        }
    }

    /// The largest per-stage fraction (used by tests and diagnostics as a
    /// scalar summary of how parallel the flavor's loop is).
    #[must_use]
    pub fn max_fraction(&self) -> f64 {
        self.player
            .max(self.terrain)
            .max(self.entity)
            .max(self.lighting)
            .max(self.dissemination)
    }
}

/// The three systems under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ServerFlavor {
    /// The official ("vanilla") Minecraft server.
    Vanilla,
    /// Forge: vanilla plus mod-loader hooks.
    Forge,
    /// PaperMC: the community high-performance fork.
    Paper,
    /// A Folia-like region-sharded server: the tick pipeline is partitioned
    /// into spatial shards ticked in parallel. Not part of the paper's
    /// evaluation; used to study how tick-level parallelism changes the
    /// variability picture.
    Folia,
}

impl ServerFlavor {
    /// All flavors in the order the paper lists them.
    #[must_use]
    pub fn all() -> [ServerFlavor; 3] {
        [
            ServerFlavor::Vanilla,
            ServerFlavor::Forge,
            ServerFlavor::Paper,
        ]
    }

    /// The paper's three flavors plus the Folia-like sharded flavor.
    #[must_use]
    pub fn extended() -> [ServerFlavor; 4] {
        [
            ServerFlavor::Vanilla,
            ServerFlavor::Forge,
            ServerFlavor::Paper,
            ServerFlavor::Folia,
        ]
    }

    /// The performance profile of this flavor.
    #[must_use]
    pub fn profile(self) -> FlavorProfile {
        match self {
            ServerFlavor::Vanilla => FlavorProfile {
                flavor: self,
                overhead_multiplier: 1.0,
                entity_multiplier: 1.0,
                redstone_multiplier: 1.0,
                explosion_multiplier: 1.0,
                lighting_multiplier: 1.0,
                offload_fraction: 0.05,
                // The game loop is single-threaded, but the JVM around it
                // is not: parallel GC, JIT threads and netty I/O spread a
                // modest slice of the simulation stages' work across
                // however many vCPUs exist (the mechanism behind the
                // paper's MF5: bigger nodes reduce TNT overload even for
                // vanilla). The player handler and dissemination stay on
                // the main thread, and lighting is recomputed eagerly
                // inside the terrain stage.
                stage_parallel: StageParallelism::jvm(0.20),
                tick_shards: 1,
                rebalance: false,
                eager_lighting: true,
                async_chat: false,
                max_tnt_per_tick: usize::MAX,
                aoi_dissemination: false,
            },
            ServerFlavor::Forge => FlavorProfile {
                flavor: self,
                overhead_multiplier: 1.08,
                entity_multiplier: 1.0,
                redstone_multiplier: 1.0,
                explosion_multiplier: 1.0,
                lighting_multiplier: 1.0,
                offload_fraction: 0.05,
                stage_parallel: StageParallelism::jvm(0.20),
                tick_shards: 1,
                rebalance: false,
                eager_lighting: true,
                async_chat: false,
                max_tnt_per_tick: usize::MAX,
                aoi_dissemination: false,
            },
            ServerFlavor::Paper => FlavorProfile {
                flavor: self,
                overhead_multiplier: 0.95,
                entity_multiplier: 0.45,
                redstone_multiplier: 0.60,
                explosion_multiplier: 0.40,
                lighting_multiplier: 0.70,
                offload_fraction: 0.35,
                stage_parallel: StageParallelism::jvm(0.25),
                tick_shards: 1,
                rebalance: false,
                // PaperMC batches and defers lighting off the critical
                // path: the relight pass over a tick's changes runs
                // pipelined during the next tick instead of eagerly
                // inside the terrain stage.
                eager_lighting: false,
                async_chat: true,
                max_tnt_per_tick: 60,
                aoi_dissemination: true,
            },
            ServerFlavor::Folia => FlavorProfile {
                flavor: self,
                // Paper-derived optimizations plus a region-sharded tick:
                // most entity/terrain/lighting work fans out across shards.
                overhead_multiplier: 0.98,
                entity_multiplier: 0.45,
                redstone_multiplier: 0.60,
                explosion_multiplier: 0.40,
                lighting_multiplier: 0.70,
                offload_fraction: 0.35,
                stage_parallel: StageParallelism::sharded(0.80),
                tick_shards: 8,
                rebalance: true,
                eager_lighting: false,
                async_chat: true,
                max_tnt_per_tick: 60,
                aoi_dissemination: true,
            },
        }
    }

    /// The display name used in figures.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ServerFlavor::Vanilla => "Minecraft",
            ServerFlavor::Forge => "Forge",
            ServerFlavor::Paper => "PaperMC",
            ServerFlavor::Folia => "Folia",
        }
    }
}

impl std::fmt::Display for ServerFlavor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The tunable performance model of one flavor.
///
/// The profile can also be constructed directly (rather than through
/// [`ServerFlavor::profile`]) to run ablation studies on individual
/// optimizations, as `meterstick-bench`'s `ablation_paper_opts` binary does.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlavorProfile {
    /// Which flavor this profile belongs to.
    pub flavor: ServerFlavor,
    /// Multiplier applied to all work (mod-loader overhead, general tuning).
    pub overhead_multiplier: f64,
    /// Multiplier applied to entity-stage work (PaperMC's rewritten entity
    /// handler).
    pub entity_multiplier: f64,
    /// Multiplier applied to redstone/block-update work.
    pub redstone_multiplier: f64,
    /// Multiplier applied to explosion handling work.
    pub explosion_multiplier: f64,
    /// Multiplier applied to lighting work.
    pub lighting_multiplier: f64,
    /// Fraction of terrain/lighting/chat work that can run on auxiliary
    /// threads concurrently with the main game loop.
    pub offload_fraction: f64,
    /// Per-stage parallel fractions of the tick stage graph: how much of
    /// each stage's work the architecture fans out across vCPUs *within*
    /// the game loop (JVM-runtime parallelism on the simulation stages for
    /// the serial flavors; every stage over the tick shards for Folia-like
    /// flavors). JVM GC work is always parallelizable on top of this.
    /// Redstone/block-update cascades are never included: they are serial
    /// dependency chains even under sharding (boundary escalation).
    pub stage_parallel: StageParallelism,
    /// Number of spatial shards the tick pipeline partitions the world into
    /// (1 = the classic serial loop). Also caps how many cores the sharded
    /// work can spread over. For rebalancing flavors this is the *target*
    /// leaf count of the adaptive partition, which may grow to twice this
    /// value under hotspot load.
    pub tick_shards: u32,
    /// Whether the shard partition rebalances between ticks: the static
    /// stripe partition is replaced by a 2D region quadtree that splits hot
    /// regions and merges cold ones based on the previous tick's merged
    /// load report. On for the Folia-like flavor (real Folia regionizes
    /// dynamically); off for the paper's serial flavors, whose Lag-workload
    /// crash behaviour (MF2) depends on the load staying serial.
    pub rebalance: bool,
    /// Whether lighting is recomputed eagerly inside the terrain stage
    /// (vanilla behaviour) or deferred into a cross-tick *pipelined*
    /// lighting stage (PaperMC/Folia): each tick's relight positions queue
    /// up and are consumed against a frozen world snapshot while the next
    /// tick's player stage runs, so lighting overlaps the game loop instead
    /// of extending its critical path. [`ServerConfig::eager_lighting`]
    /// can override this per run.
    ///
    /// [`ServerConfig::eager_lighting`]: crate::config::ServerConfig::eager_lighting
    pub eager_lighting: bool,
    /// Whether chat is handled on a dedicated asynchronous thread.
    pub async_chat: bool,
    /// Cap on primed-TNT entities processed per tick (explosion batching).
    pub max_tnt_per_tick: usize,
    /// Whether state-update dissemination uses per-player area-of-interest
    /// filtering: positioned packets (entity moves/spawns, block changes)
    /// are delivered only to players whose view distance covers the event,
    /// so dissemination cost scales with the summed interest-set sizes
    /// instead of `packets × players`. Vanilla/Forge broadcast everything
    /// to everyone (keeping the paper's measured behaviour untouched);
    /// the Paper/Folia-like flavors filter, modeling their rewritten
    /// tracker-range entity broadcast paths.
    /// [`ServerConfig::aoi_dissemination`] can override this per run.
    ///
    /// [`ServerConfig::aoi_dissemination`]: crate::config::ServerConfig::aoi_dissemination
    pub aoi_dissemination: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_is_cheaper_than_vanilla_everywhere_that_matters() {
        let vanilla = ServerFlavor::Vanilla.profile();
        let paper = ServerFlavor::Paper.profile();
        assert!(paper.entity_multiplier < vanilla.entity_multiplier);
        assert!(paper.redstone_multiplier < vanilla.redstone_multiplier);
        assert!(paper.explosion_multiplier < vanilla.explosion_multiplier);
        assert!(paper.offload_fraction > vanilla.offload_fraction);
        assert!(paper.async_chat && !vanilla.async_chat);
    }

    #[test]
    fn folia_is_the_sharded_flavor() {
        let folia = ServerFlavor::Folia.profile();
        let vanilla = ServerFlavor::Vanilla.profile();
        assert!(folia.tick_shards > 1);
        assert_eq!(vanilla.tick_shards, 1);
        assert!(folia.stage_parallel.entity > vanilla.stage_parallel.entity);
        assert!(
            folia.stage_parallel.player > 0.0 && vanilla.stage_parallel.player == 0.0,
            "only the sharded flavor parallelizes the player handler"
        );
        assert!(
            folia.stage_parallel.dissemination > 0.0 && vanilla.stage_parallel.dissemination == 0.0,
            "only the sharded flavor parallelizes dissemination"
        );
        assert!(
            folia.rebalance && !vanilla.rebalance,
            "only the Folia-like flavor rebalances its shard partition"
        );
        assert!(!ServerFlavor::Paper.profile().rebalance);
        assert!(ServerFlavor::all()
            .iter()
            .all(|f| *f != ServerFlavor::Folia));
        assert_eq!(ServerFlavor::extended().len(), 4);
        assert!(ServerFlavor::extended().contains(&ServerFlavor::Folia));
        assert_eq!(ServerFlavor::Folia.to_string(), "Folia");
    }

    #[test]
    fn lighting_modes_match_the_architectures() {
        // Vanilla/Forge relight eagerly inside the terrain stage; Paper and
        // Folia defer into the cross-tick pipelined lighting stage.
        assert!(ServerFlavor::Vanilla.profile().eager_lighting);
        assert!(ServerFlavor::Forge.profile().eager_lighting);
        assert!(!ServerFlavor::Paper.profile().eager_lighting);
        assert!(!ServerFlavor::Folia.profile().eager_lighting);
    }

    #[test]
    fn aoi_dissemination_matches_the_architectures() {
        // Vanilla/Forge broadcast every packet to every player (the paper's
        // measured behaviour); the Paper/Folia-like flavors model their
        // rewritten tracker-range broadcast paths with per-player areas of
        // interest.
        assert!(!ServerFlavor::Vanilla.profile().aoi_dissemination);
        assert!(!ServerFlavor::Forge.profile().aoi_dissemination);
        assert!(ServerFlavor::Paper.profile().aoi_dissemination);
        assert!(ServerFlavor::Folia.profile().aoi_dissemination);
    }

    #[test]
    fn stage_parallelism_constructors() {
        let jvm = StageParallelism::jvm(0.2);
        assert_eq!(jvm.player, 0.0);
        assert_eq!(jvm.dissemination, 0.0);
        assert_eq!(jvm.entity, 0.2);
        assert_eq!(jvm.max_fraction(), 0.2);
        let sharded = StageParallelism::sharded(0.8);
        assert_eq!(sharded.player, 0.8);
        assert_eq!(sharded.dissemination, 0.8);
        assert_eq!(sharded.max_fraction(), 0.8);
        assert_eq!(StageParallelism::SERIAL.max_fraction(), 0.0);
    }

    #[test]
    fn forge_is_vanilla_plus_overhead() {
        let vanilla = ServerFlavor::Vanilla.profile();
        let forge = ServerFlavor::Forge.profile();
        assert!(forge.overhead_multiplier > vanilla.overhead_multiplier);
        assert_eq!(forge.entity_multiplier, vanilla.entity_multiplier);
        assert_eq!(forge.redstone_multiplier, vanilla.redstone_multiplier);
        assert_eq!(forge.async_chat, vanilla.async_chat);
    }

    #[test]
    fn names_match_the_paper() {
        assert_eq!(ServerFlavor::Vanilla.to_string(), "Minecraft");
        assert_eq!(ServerFlavor::Forge.to_string(), "Forge");
        assert_eq!(ServerFlavor::Paper.to_string(), "PaperMC");
        assert_eq!(ServerFlavor::all().len(), 3);
    }
}
