//! Server flavors: Vanilla, Forge and PaperMC performance models.
//!
//! The paper evaluates three MLGs that speak the same protocol but differ in
//! their engineering (Section 5.1.1 and Appendix A). The reproduction models
//! each one as a set of multipliers and capabilities applied to the same
//! underlying simulation:
//!
//! * **Vanilla** — the reference behaviour.
//! * **Forge** — behaves like Vanilla (the paper finds their flamegraphs
//!   identical) plus a small mod-loader overhead on every stage.
//! * **Paper** — asynchronous chat (why PaperMC is omitted from the paper's
//!   response-time figure), asynchronous environment processing on dedicated
//!   threads, a rewritten entity handler, and targeted optimizations for TNT
//!   and redstone, reducing both total work and the share bound to the main
//!   thread.
//!
//! Beyond the paper's three systems, the reproduction also models a
//! **Folia-like sharded flavor** ([`ServerFlavor::Folia`]): the game loop is
//! split into independently ticked spatial shards, so most entity/terrain
//! work becomes parallelizable across vCPUs ([`FlavorProfile::tick_shards`],
//! [`FlavorProfile::parallel_fraction`]), and the shard partition
//! **rebalances adaptively** ([`FlavorProfile::rebalance`]): a 2D region
//! quadtree splits hot regions and merges cold ones between ticks, so
//! clustered hotspot workloads (TNT cascades) spread across shards instead
//! of pinning one. It is excluded from [`ServerFlavor::all`] (the paper's
//! set) and included in [`ServerFlavor::extended`].

use serde::{Deserialize, Serialize};

/// The three systems under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ServerFlavor {
    /// The official ("vanilla") Minecraft server.
    Vanilla,
    /// Forge: vanilla plus mod-loader hooks.
    Forge,
    /// PaperMC: the community high-performance fork.
    Paper,
    /// A Folia-like region-sharded server: the tick pipeline is partitioned
    /// into spatial shards ticked in parallel. Not part of the paper's
    /// evaluation; used to study how tick-level parallelism changes the
    /// variability picture.
    Folia,
}

impl ServerFlavor {
    /// All flavors in the order the paper lists them.
    #[must_use]
    pub fn all() -> [ServerFlavor; 3] {
        [
            ServerFlavor::Vanilla,
            ServerFlavor::Forge,
            ServerFlavor::Paper,
        ]
    }

    /// The paper's three flavors plus the Folia-like sharded flavor.
    #[must_use]
    pub fn extended() -> [ServerFlavor; 4] {
        [
            ServerFlavor::Vanilla,
            ServerFlavor::Forge,
            ServerFlavor::Paper,
            ServerFlavor::Folia,
        ]
    }

    /// The performance profile of this flavor.
    #[must_use]
    pub fn profile(self) -> FlavorProfile {
        match self {
            ServerFlavor::Vanilla => FlavorProfile {
                flavor: self,
                overhead_multiplier: 1.0,
                entity_multiplier: 1.0,
                redstone_multiplier: 1.0,
                explosion_multiplier: 1.0,
                lighting_multiplier: 1.0,
                offload_fraction: 0.05,
                // The game loop is single-threaded, but the JVM around it
                // is not: parallel GC, JIT threads and netty I/O spread a
                // modest slice of each tick's work across however many
                // vCPUs exist (the mechanism behind the paper's MF5:
                // bigger nodes reduce TNT overload even for vanilla).
                parallel_fraction: 0.20,
                tick_shards: 1,
                rebalance: false,
                async_chat: false,
                max_tnt_per_tick: usize::MAX,
            },
            ServerFlavor::Forge => FlavorProfile {
                flavor: self,
                overhead_multiplier: 1.08,
                entity_multiplier: 1.0,
                redstone_multiplier: 1.0,
                explosion_multiplier: 1.0,
                lighting_multiplier: 1.0,
                offload_fraction: 0.05,
                parallel_fraction: 0.20,
                tick_shards: 1,
                rebalance: false,
                async_chat: false,
                max_tnt_per_tick: usize::MAX,
            },
            ServerFlavor::Paper => FlavorProfile {
                flavor: self,
                overhead_multiplier: 0.95,
                entity_multiplier: 0.45,
                redstone_multiplier: 0.60,
                explosion_multiplier: 0.40,
                lighting_multiplier: 0.70,
                offload_fraction: 0.35,
                parallel_fraction: 0.25,
                tick_shards: 1,
                rebalance: false,
                async_chat: true,
                max_tnt_per_tick: 60,
            },
            ServerFlavor::Folia => FlavorProfile {
                flavor: self,
                // Paper-derived optimizations plus a region-sharded tick:
                // most entity/terrain/lighting work fans out across shards.
                overhead_multiplier: 0.98,
                entity_multiplier: 0.45,
                redstone_multiplier: 0.60,
                explosion_multiplier: 0.40,
                lighting_multiplier: 0.70,
                offload_fraction: 0.35,
                parallel_fraction: 0.80,
                tick_shards: 8,
                rebalance: true,
                async_chat: true,
                max_tnt_per_tick: 60,
            },
        }
    }

    /// The display name used in figures.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ServerFlavor::Vanilla => "Minecraft",
            ServerFlavor::Forge => "Forge",
            ServerFlavor::Paper => "PaperMC",
            ServerFlavor::Folia => "Folia",
        }
    }
}

impl std::fmt::Display for ServerFlavor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The tunable performance model of one flavor.
///
/// The profile can also be constructed directly (rather than through
/// [`ServerFlavor::profile`]) to run ablation studies on individual
/// optimizations, as `meterstick-bench`'s `ablation_paper_opts` binary does.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlavorProfile {
    /// Which flavor this profile belongs to.
    pub flavor: ServerFlavor,
    /// Multiplier applied to all work (mod-loader overhead, general tuning).
    pub overhead_multiplier: f64,
    /// Multiplier applied to entity-stage work (PaperMC's rewritten entity
    /// handler).
    pub entity_multiplier: f64,
    /// Multiplier applied to redstone/block-update work.
    pub redstone_multiplier: f64,
    /// Multiplier applied to explosion handling work.
    pub explosion_multiplier: f64,
    /// Multiplier applied to lighting work.
    pub lighting_multiplier: f64,
    /// Fraction of terrain/lighting/chat work that can run on auxiliary
    /// threads concurrently with the main game loop.
    pub offload_fraction: f64,
    /// Fraction of entity/lighting/chunk work that is parallelizable across
    /// vCPUs *within* the game loop (JVM-runtime parallelism for the serial
    /// flavors; the sharded tick pipeline for Folia-like flavors). JVM GC
    /// work is always parallelizable on top of this. Redstone/block-update
    /// cascades are never included: they are serial dependency chains even
    /// under sharding (boundary escalation).
    pub parallel_fraction: f64,
    /// Number of spatial shards the tick pipeline partitions the world into
    /// (1 = the classic serial loop). Also caps how many cores the sharded
    /// work can spread over. For rebalancing flavors this is the *target*
    /// leaf count of the adaptive partition, which may grow to twice this
    /// value under hotspot load.
    pub tick_shards: u32,
    /// Whether the shard partition rebalances between ticks: the static
    /// stripe partition is replaced by a 2D region quadtree that splits hot
    /// regions and merges cold ones based on the previous tick's merged
    /// load report. On for the Folia-like flavor (real Folia regionizes
    /// dynamically); off for the paper's serial flavors, whose Lag-workload
    /// crash behaviour (MF2) depends on the load staying serial.
    pub rebalance: bool,
    /// Whether chat is handled on a dedicated asynchronous thread.
    pub async_chat: bool,
    /// Cap on primed-TNT entities processed per tick (explosion batching).
    pub max_tnt_per_tick: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_is_cheaper_than_vanilla_everywhere_that_matters() {
        let vanilla = ServerFlavor::Vanilla.profile();
        let paper = ServerFlavor::Paper.profile();
        assert!(paper.entity_multiplier < vanilla.entity_multiplier);
        assert!(paper.redstone_multiplier < vanilla.redstone_multiplier);
        assert!(paper.explosion_multiplier < vanilla.explosion_multiplier);
        assert!(paper.offload_fraction > vanilla.offload_fraction);
        assert!(paper.async_chat && !vanilla.async_chat);
    }

    #[test]
    fn folia_is_the_sharded_flavor() {
        let folia = ServerFlavor::Folia.profile();
        let vanilla = ServerFlavor::Vanilla.profile();
        assert!(folia.tick_shards > 1);
        assert_eq!(vanilla.tick_shards, 1);
        assert!(folia.parallel_fraction > vanilla.parallel_fraction);
        assert!(
            folia.rebalance && !vanilla.rebalance,
            "only the Folia-like flavor rebalances its shard partition"
        );
        assert!(!ServerFlavor::Paper.profile().rebalance);
        assert!(ServerFlavor::all()
            .iter()
            .all(|f| *f != ServerFlavor::Folia));
        assert_eq!(ServerFlavor::extended().len(), 4);
        assert!(ServerFlavor::extended().contains(&ServerFlavor::Folia));
        assert_eq!(ServerFlavor::Folia.to_string(), "Folia");
    }

    #[test]
    fn forge_is_vanilla_plus_overhead() {
        let vanilla = ServerFlavor::Vanilla.profile();
        let forge = ServerFlavor::Forge.profile();
        assert!(forge.overhead_multiplier > vanilla.overhead_multiplier);
        assert_eq!(forge.entity_multiplier, vanilla.entity_multiplier);
        assert_eq!(forge.redstone_multiplier, vanilla.redstone_multiplier);
        assert_eq!(forge.async_chat, vanilla.async_chat);
    }

    #[test]
    fn names_match_the_paper() {
        assert_eq!(ServerFlavor::Vanilla.to_string(), "Minecraft");
        assert_eq!(ServerFlavor::Forge.to_string(), "Forge");
        assert_eq!(ServerFlavor::Paper.to_string(), "PaperMC");
        assert_eq!(ServerFlavor::all().len(), 3);
    }
}
