//! Server flavors: Vanilla, Forge and PaperMC performance models.
//!
//! The paper evaluates three MLGs that speak the same protocol but differ in
//! their engineering (Section 5.1.1 and Appendix A). The reproduction models
//! each one as a set of multipliers and capabilities applied to the same
//! underlying simulation:
//!
//! * **Vanilla** — the reference behaviour.
//! * **Forge** — behaves like Vanilla (the paper finds their flamegraphs
//!   identical) plus a small mod-loader overhead on every stage.
//! * **Paper** — asynchronous chat (why PaperMC is omitted from the paper's
//!   response-time figure), asynchronous environment processing on dedicated
//!   threads, a rewritten entity handler, and targeted optimizations for TNT
//!   and redstone, reducing both total work and the share bound to the main
//!   thread.

use serde::{Deserialize, Serialize};

/// The three systems under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ServerFlavor {
    /// The official ("vanilla") Minecraft server.
    Vanilla,
    /// Forge: vanilla plus mod-loader hooks.
    Forge,
    /// PaperMC: the community high-performance fork.
    Paper,
}

impl ServerFlavor {
    /// All flavors in the order the paper lists them.
    #[must_use]
    pub fn all() -> [ServerFlavor; 3] {
        [
            ServerFlavor::Vanilla,
            ServerFlavor::Forge,
            ServerFlavor::Paper,
        ]
    }

    /// The performance profile of this flavor.
    #[must_use]
    pub fn profile(self) -> FlavorProfile {
        match self {
            ServerFlavor::Vanilla => FlavorProfile {
                flavor: self,
                overhead_multiplier: 1.0,
                entity_multiplier: 1.0,
                redstone_multiplier: 1.0,
                explosion_multiplier: 1.0,
                lighting_multiplier: 1.0,
                offload_fraction: 0.05,
                async_chat: false,
                max_tnt_per_tick: usize::MAX,
            },
            ServerFlavor::Forge => FlavorProfile {
                flavor: self,
                overhead_multiplier: 1.08,
                entity_multiplier: 1.0,
                redstone_multiplier: 1.0,
                explosion_multiplier: 1.0,
                lighting_multiplier: 1.0,
                offload_fraction: 0.05,
                async_chat: false,
                max_tnt_per_tick: usize::MAX,
            },
            ServerFlavor::Paper => FlavorProfile {
                flavor: self,
                overhead_multiplier: 0.95,
                entity_multiplier: 0.45,
                redstone_multiplier: 0.60,
                explosion_multiplier: 0.40,
                lighting_multiplier: 0.70,
                offload_fraction: 0.35,
                async_chat: true,
                max_tnt_per_tick: 60,
            },
        }
    }

    /// The display name used in figures.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ServerFlavor::Vanilla => "Minecraft",
            ServerFlavor::Forge => "Forge",
            ServerFlavor::Paper => "PaperMC",
        }
    }
}

impl std::fmt::Display for ServerFlavor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The tunable performance model of one flavor.
///
/// The profile can also be constructed directly (rather than through
/// [`ServerFlavor::profile`]) to run ablation studies on individual
/// optimizations, as `meterstick-bench`'s `ablation_paper_opts` binary does.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlavorProfile {
    /// Which flavor this profile belongs to.
    pub flavor: ServerFlavor,
    /// Multiplier applied to all work (mod-loader overhead, general tuning).
    pub overhead_multiplier: f64,
    /// Multiplier applied to entity-stage work (PaperMC's rewritten entity
    /// handler).
    pub entity_multiplier: f64,
    /// Multiplier applied to redstone/block-update work.
    pub redstone_multiplier: f64,
    /// Multiplier applied to explosion handling work.
    pub explosion_multiplier: f64,
    /// Multiplier applied to lighting work.
    pub lighting_multiplier: f64,
    /// Fraction of terrain/lighting/chat work that can run on auxiliary
    /// threads concurrently with the main game loop.
    pub offload_fraction: f64,
    /// Whether chat is handled on a dedicated asynchronous thread.
    pub async_chat: bool,
    /// Cap on primed-TNT entities processed per tick (explosion batching).
    pub max_tnt_per_tick: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_is_cheaper_than_vanilla_everywhere_that_matters() {
        let vanilla = ServerFlavor::Vanilla.profile();
        let paper = ServerFlavor::Paper.profile();
        assert!(paper.entity_multiplier < vanilla.entity_multiplier);
        assert!(paper.redstone_multiplier < vanilla.redstone_multiplier);
        assert!(paper.explosion_multiplier < vanilla.explosion_multiplier);
        assert!(paper.offload_fraction > vanilla.offload_fraction);
        assert!(paper.async_chat && !vanilla.async_chat);
    }

    #[test]
    fn forge_is_vanilla_plus_overhead() {
        let vanilla = ServerFlavor::Vanilla.profile();
        let forge = ServerFlavor::Forge.profile();
        assert!(forge.overhead_multiplier > vanilla.overhead_multiplier);
        assert_eq!(forge.entity_multiplier, vanilla.entity_multiplier);
        assert_eq!(forge.redstone_multiplier, vanilla.redstone_multiplier);
        assert_eq!(forge.async_chat, vanilla.async_chat);
    }

    #[test]
    fn names_match_the_paper() {
        assert_eq!(ServerFlavor::Vanilla.to_string(), "Minecraft");
        assert_eq!(ServerFlavor::Forge.to_string(), "Forge");
        assert_eq!(ServerFlavor::Paper.to_string(), "PaperMC");
        assert_eq!(ServerFlavor::all().len(), 3);
    }
}
