//! Metric externalization.
//!
//! Real MLG servers expose tick metrics through management interfaces (JMX
//! for JVM servers); Meterstick's Metric Externalizer (component 7 in
//! Figure 5) "uses these interfaces to gain access to these metrics without
//! requiring access to the game's source code". The reproduction keeps the
//! same seam: the experiment runner observes the server only through the
//! [`MetricExternalizer`] trait, so a different system under test could be
//! plugged in without changing the benchmark.

use meterstick_metrics::trace::{TickRecord, TickTrace};

/// Receives tick metrics as the server produces them.
pub trait MetricExternalizer {
    /// Called once per completed game tick.
    fn on_tick(&mut self, record: &TickRecord);

    /// Called when the server run ends (normally or by crash).
    fn on_shutdown(&mut self) {}
}

/// An externalizer that records every tick into a [`TickTrace`].
#[derive(Debug)]
pub struct RecordingExternalizer {
    trace: TickTrace,
    shutdown: bool,
}

impl RecordingExternalizer {
    /// Creates a recorder for traces against the given tick budget.
    #[must_use]
    pub fn new(budget_ms: f64) -> Self {
        RecordingExternalizer {
            trace: TickTrace::new(budget_ms),
            shutdown: false,
        }
    }

    /// Returns the trace recorded so far.
    #[must_use]
    pub fn trace(&self) -> &TickTrace {
        &self.trace
    }

    /// Consumes the recorder and returns the trace.
    #[must_use]
    pub fn into_trace(self) -> TickTrace {
        self.trace
    }

    /// Whether the shutdown notification was received.
    #[must_use]
    pub fn is_shutdown(&self) -> bool {
        self.shutdown
    }
}

impl MetricExternalizer for RecordingExternalizer {
    fn on_tick(&mut self, record: &TickRecord) {
        self.trace.push(*record);
    }

    fn on_shutdown(&mut self) {
        self.shutdown = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meterstick_metrics::distribution::TickDistribution;

    fn record(i: u64, busy: f64) -> TickRecord {
        TickRecord {
            index: i,
            start_ms: i as f64 * 50.0,
            busy_ms: busy,
            period_ms: busy.max(50.0),
            distribution: TickDistribution::default(),
        }
    }

    #[test]
    fn recorder_accumulates_ticks() {
        let mut rec = RecordingExternalizer::new(50.0);
        for i in 0..10 {
            rec.on_tick(&record(i, 20.0));
        }
        assert_eq!(rec.trace().len(), 10);
        assert!(!rec.is_shutdown());
        rec.on_shutdown();
        assert!(rec.is_shutdown());
        let trace = rec.into_trace();
        assert_eq!(trace.len(), 10);
        assert_eq!(trace.budget_ms(), 50.0);
    }

    #[test]
    fn works_through_a_trait_object() {
        let mut rec = RecordingExternalizer::new(50.0);
        {
            let externalizer: &mut dyn MetricExternalizer = &mut rec;
            externalizer.on_tick(&record(0, 75.0));
        }
        assert_eq!(rec.trace().overloaded_ticks(), 1);
    }
}
