//! Connected-player state.

use serde::{Deserialize, Serialize};

use mlg_entity::{EntityId, Vec3};
use mlg_world::ChunkPos;

/// Identifier of a connected player (stable for the lifetime of the
/// connection).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct PlayerId(pub u32);

impl std::fmt::Display for PlayerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "player#{}", self.0)
    }
}

/// Server-side state of one connected player.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConnectedPlayer {
    /// Connection identifier.
    pub id: PlayerId,
    /// The entity id representing the player in the world.
    pub entity_id: EntityId,
    /// Display name.
    pub name: String,
    /// Current position of the player's feet.
    pub pos: Vec3,
    /// Game tick at which the player connected.
    pub connected_at_tick: u64,
    /// Virtual time (ms) at which the server last managed to flush packets to
    /// this player; used for the keep-alive timeout check.
    pub last_served_ms: f64,
    /// Whether the player has timed out and been disconnected.
    pub disconnected: bool,
}

impl ConnectedPlayer {
    /// The chunk the player currently occupies.
    #[must_use]
    pub fn chunk(&self) -> ChunkPos {
        self.pos.block_pos().chunk()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_follows_position() {
        let p = ConnectedPlayer {
            id: PlayerId(1),
            entity_id: EntityId(5),
            name: "bot".into(),
            pos: Vec3::new(35.0, 64.0, -3.0),
            connected_at_tick: 0,
            last_served_ms: 0.0,
            disconnected: false,
        };
        assert_eq!(p.chunk(), ChunkPos::new(2, -1));
    }

    #[test]
    fn player_id_display() {
        assert_eq!(PlayerId(7).to_string(), "player#7");
    }
}
