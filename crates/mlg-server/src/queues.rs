//! Networking queues: the buffers between clients and the game loop.
//!
//! Component 1 of the operational model (Figure 4): "The Networking Queues
//! buffer between the game clients and the server. When a client sends a
//! player-action to the server, it is buffered in the incoming network queue
//! until the next tick."

use std::collections::{BTreeMap, VecDeque};

use mlg_protocol::{ClientboundPacket, ServerboundPacket};

use crate::player::PlayerId;

/// The incoming and outgoing packet queues of one player connection.
#[derive(Debug, Default)]
pub struct ConnectionQueues {
    incoming: VecDeque<ServerboundPacket>,
    outgoing: VecDeque<ClientboundPacket>,
}

impl ConnectionQueues {
    /// Number of buffered serverbound packets.
    #[must_use]
    pub fn incoming_len(&self) -> usize {
        self.incoming.len()
    }

    /// Number of buffered clientbound packets.
    #[must_use]
    pub fn outgoing_len(&self) -> usize {
        self.outgoing.len()
    }
}

/// Recipient selection for one packet of a
/// [`NetworkingQueues::multicast_many`] batch.
#[derive(Debug, Clone, Copy)]
pub enum PacketRecipients<'a> {
    /// Deliver to every registered connection (global packets: chat, time,
    /// keep-alives).
    All,
    /// Deliver only to these players (a packet's area-of-interest set).
    Only(&'a [PlayerId]),
}

/// All connection queues of the server, keyed by player.
#[derive(Debug, Default)]
pub struct NetworkingQueues {
    connections: BTreeMap<PlayerId, ConnectionQueues>,
}

impl NetworkingQueues {
    /// Creates an empty queue set.
    #[must_use]
    pub fn new() -> Self {
        NetworkingQueues::default()
    }

    /// Registers a new connection.
    pub fn add_connection(&mut self, player: PlayerId) {
        self.connections.entry(player).or_default();
    }

    /// Removes a connection, dropping any buffered packets.
    pub fn remove_connection(&mut self, player: PlayerId) {
        self.connections.remove(&player);
    }

    /// Returns `true` if the player has a registered connection.
    #[must_use]
    pub fn has_connection(&self, player: PlayerId) -> bool {
        self.connections.contains_key(&player)
    }

    /// Number of registered connections.
    #[must_use]
    pub fn connection_count(&self) -> usize {
        self.connections.len()
    }

    /// Buffers a serverbound packet from `player` into the incoming queue.
    /// Packets for unknown connections are dropped.
    pub fn push_incoming(&mut self, player: PlayerId, packet: ServerboundPacket) {
        if let Some(conn) = self.connections.get_mut(&player) {
            conn.incoming.push_back(packet);
        }
    }

    /// Drains all pending serverbound packets of `player`, in arrival order.
    /// Called once per tick by the player handler ("the Game Loop retrieves
    /// [player actions] from the Networking Queues once per tick").
    pub fn drain_incoming(&mut self, player: PlayerId) -> Vec<ServerboundPacket> {
        self.connections
            .get_mut(&player)
            .map(|c| c.incoming.drain(..).collect())
            .unwrap_or_default()
    }

    /// Buffers a clientbound packet for `player`.
    pub fn push_outgoing(&mut self, player: PlayerId, packet: ClientboundPacket) {
        if let Some(conn) = self.connections.get_mut(&player) {
            conn.outgoing.push_back(packet);
        }
    }

    /// Buffers a clientbound packet for every connected player and returns
    /// how many copies were enqueued.
    pub fn broadcast(&mut self, packet: &ClientboundPacket) -> u64 {
        let mut count = 0;
        for conn in self.connections.values_mut() {
            conn.outgoing.push_back(packet.clone());
            count += 1;
        }
        count
    }

    /// Buffers a batch of clientbound packets for every connected player
    /// and returns how many copies were enqueued in total.
    ///
    /// The fast path of the dissemination stage: one pass per connection
    /// (reserving queue capacity up front) instead of one map traversal per
    /// packet. Each connection receives the packets in slice order, so the
    /// result is byte-for-byte identical to calling
    /// [`NetworkingQueues::broadcast`] once per packet — a unit test pins
    /// the parity.
    pub fn broadcast_many(&mut self, packets: &[ClientboundPacket]) -> u64 {
        if packets.is_empty() {
            return 0;
        }
        let mut count = 0;
        for conn in self.connections.values_mut() {
            conn.outgoing.reserve(packets.len());
            conn.outgoing.extend(packets.iter().cloned());
            count += packets.len() as u64;
        }
        count
    }

    /// Buffers a batch of clientbound packets, delivering packet `i` to the
    /// connections selected by `recipients(i)`. Returns how many copies
    /// were enqueued in total.
    ///
    /// The area-of-interest path of the dissemination stage: packets are
    /// processed in slice order, so each connection still receives its
    /// packets as an in-order subset of the slice and a selector that
    /// always answers [`PacketRecipients::All`] is byte-for-byte identical
    /// to [`NetworkingQueues::broadcast_many`] — a unit test pins the
    /// parity. Cost is Σ|recipient set| (plus one map lookup per listed
    /// recipient), not `packets × connections`, which is what lets a
    /// scaled-population workload disseminate through the same call.
    /// Listed players without a registered connection are skipped.
    pub fn multicast_many<'a, F>(&mut self, packets: &[ClientboundPacket], recipients: F) -> u64
    where
        F: Fn(usize) -> PacketRecipients<'a>,
    {
        let mut count = 0;
        for (index, packet) in packets.iter().enumerate() {
            match recipients(index) {
                PacketRecipients::All => {
                    for conn in self.connections.values_mut() {
                        conn.outgoing.push_back(packet.clone());
                        count += 1;
                    }
                }
                PacketRecipients::Only(players) => {
                    for player in players {
                        if let Some(conn) = self.connections.get_mut(player) {
                            conn.outgoing.push_back(packet.clone());
                            count += 1;
                        }
                    }
                }
            }
        }
        count
    }

    /// Drains all pending clientbound packets for `player`.
    pub fn drain_outgoing(&mut self, player: PlayerId) -> Vec<ClientboundPacket> {
        self.connections
            .get_mut(&player)
            .map(|c| c.outgoing.drain(..).collect())
            .unwrap_or_default()
    }

    /// Iterates over connected player ids.
    pub fn players(&self) -> impl Iterator<Item = PlayerId> + '_ {
        self.connections.keys().copied()
    }

    /// Total number of buffered packets in both directions (for diagnostics).
    #[must_use]
    pub fn total_buffered(&self) -> usize {
        self.connections
            .values()
            .map(|c| c.incoming_len() + c.outgoing_len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chat(msg: &str) -> ServerboundPacket {
        ServerboundPacket::Chat {
            message: msg.into(),
            sent_at_ms: 0.0,
        }
    }

    #[test]
    fn incoming_packets_are_drained_in_order() {
        let mut q = NetworkingQueues::new();
        let p = PlayerId(1);
        q.add_connection(p);
        q.push_incoming(p, chat("a"));
        q.push_incoming(p, chat("b"));
        let drained = q.drain_incoming(p);
        assert_eq!(drained.len(), 2);
        assert!(matches!(&drained[0], ServerboundPacket::Chat { message, .. } if message == "a"));
        assert!(q.drain_incoming(p).is_empty());
    }

    #[test]
    fn packets_for_unknown_connections_are_dropped() {
        let mut q = NetworkingQueues::new();
        q.push_incoming(PlayerId(9), chat("lost"));
        assert_eq!(q.total_buffered(), 0);
        assert!(q.drain_incoming(PlayerId(9)).is_empty());
    }

    #[test]
    fn broadcast_reaches_every_connection() {
        let mut q = NetworkingQueues::new();
        for i in 0..5 {
            q.add_connection(PlayerId(i));
        }
        let sent = q.broadcast(&ClientboundPacket::KeepAlive { id: 1 });
        assert_eq!(sent, 5);
        for i in 0..5 {
            assert_eq!(q.drain_outgoing(PlayerId(i)).len(), 1);
        }
    }

    #[test]
    fn broadcast_many_is_byte_identical_to_individual_broadcasts() {
        use mlg_protocol::codec::clientbound_wire_size;

        let packets = vec![
            ClientboundPacket::KeepAlive { id: 1 },
            ClientboundPacket::TimeUpdate {
                world_age_ticks: 40,
            },
            ClientboundPacket::Chat {
                message: "<a> hi".into(),
                echo_of_ms: 3.5,
            },
            ClientboundPacket::KeepAlive { id: 2 },
        ];

        let mut batched = NetworkingQueues::new();
        let mut individual = NetworkingQueues::new();
        for i in 0..4 {
            batched.add_connection(PlayerId(i));
            individual.add_connection(PlayerId(i));
        }

        let batched_count = batched.broadcast_many(&packets);
        let mut individual_count = 0;
        for packet in &packets {
            individual_count += individual.broadcast(packet);
        }
        assert_eq!(batched_count, individual_count);
        assert_eq!(batched_count, 16);

        for i in 0..4 {
            let a = batched.drain_outgoing(PlayerId(i));
            let b = individual.drain_outgoing(PlayerId(i));
            assert_eq!(a, b, "queue contents diverged for player {i}");
            let a_bytes: Vec<usize> = a.iter().map(clientbound_wire_size).collect();
            let b_bytes: Vec<usize> = b.iter().map(clientbound_wire_size).collect();
            assert_eq!(a_bytes, b_bytes, "wire bytes diverged for player {i}");
        }
    }

    #[test]
    fn multicast_many_with_all_interested_matches_broadcast_many() {
        let packets = vec![
            ClientboundPacket::KeepAlive { id: 7 },
            ClientboundPacket::TimeUpdate {
                world_age_ticks: 80,
            },
        ];
        let mut multicast = NetworkingQueues::new();
        let mut broadcast = NetworkingQueues::new();
        for i in 0..3 {
            multicast.add_connection(PlayerId(i));
            broadcast.add_connection(PlayerId(i));
        }
        let m = multicast.multicast_many(&packets, |_| PacketRecipients::All);
        let b = broadcast.broadcast_many(&packets);
        assert_eq!(m, b);
        for i in 0..3 {
            assert_eq!(
                multicast.drain_outgoing(PlayerId(i)),
                broadcast.drain_outgoing(PlayerId(i)),
                "queue contents diverged for player {i}"
            );
        }
    }

    #[test]
    fn multicast_many_filters_per_recipient_preserving_order() {
        let packets = vec![
            ClientboundPacket::KeepAlive { id: 1 },
            ClientboundPacket::KeepAlive { id: 2 },
            ClientboundPacket::KeepAlive { id: 3 },
        ];
        let mut q = NetworkingQueues::new();
        q.add_connection(PlayerId(0));
        q.add_connection(PlayerId(1));
        // Player 0 sees everything; player 1 only the odd-indexed packet.
        // Player 7 has no connection and is skipped.
        let both = [PlayerId(0), PlayerId(1), PlayerId(7)];
        let first_only = [PlayerId(0)];
        let sent = q.multicast_many(&packets, |index| {
            if index % 2 == 1 {
                PacketRecipients::Only(&both)
            } else {
                PacketRecipients::Only(&first_only)
            }
        });
        assert_eq!(sent, 4);
        assert_eq!(q.drain_outgoing(PlayerId(0)), packets);
        assert_eq!(
            q.drain_outgoing(PlayerId(1)),
            vec![ClientboundPacket::KeepAlive { id: 2 }],
            "subset keeps slice order"
        );
        assert_eq!(q.multicast_many(&[], |_| PacketRecipients::All), 0);
    }

    proptest::proptest! {
        #[test]
        fn multicast_many_equals_filtered_per_recipient_delivery(seed in proptest::prelude::any::<u64>()) {
            use mlg_protocol::codec::clientbound_wire_size;

            // Random packet batches against random per-packet recipient
            // sets: the batched multicast must be byte-exactly the same as
            // delivering each packet to each selected connection one
            // `push_outgoing` at a time — the reference formulation of
            // "area-of-interest delivery is a filtered broadcast".
            let mut s = seed | 1;
            let mut next = move || {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                s
            };
            let player_count = (next() % 7 + 1) as u32;
            let mut multicast = NetworkingQueues::new();
            let mut reference = NetworkingQueues::new();
            for i in 0..player_count {
                multicast.add_connection(PlayerId(i));
                reference.add_connection(PlayerId(i));
            }
            let packet_count = next() % 24;
            let packets: Vec<ClientboundPacket> = (0..packet_count)
                .map(|i| ClientboundPacket::KeepAlive { id: i })
                .collect();
            // Per packet: either a global broadcast or a random subset
            // (possibly empty, possibly listing an unregistered player,
            // which must be skipped).
            let selections: Vec<Option<Vec<PlayerId>>> = packets
                .iter()
                .map(|_| {
                    (next() % 4 != 0).then(|| {
                        (0..=player_count)
                            .filter(|_| next() % 2 == 0)
                            .map(PlayerId)
                            .collect()
                    })
                })
                .collect();

            let sent = multicast.multicast_many(&packets, |index| match &selections[index] {
                None => PacketRecipients::All,
                Some(set) => PacketRecipients::Only(set),
            });
            let mut expected_sent = 0u64;
            for (packet, selection) in packets.iter().zip(&selections) {
                let all: Vec<PlayerId> = reference.players().collect();
                for player in selection.as_ref().unwrap_or(&all) {
                    if reference.has_connection(*player) {
                        reference.push_outgoing(*player, packet.clone());
                        expected_sent += 1;
                    }
                }
            }
            assert_eq!(sent, expected_sent);
            for i in 0..player_count {
                let a = multicast.drain_outgoing(PlayerId(i));
                let b = reference.drain_outgoing(PlayerId(i));
                let a_bytes: usize = a.iter().map(clientbound_wire_size).sum();
                let b_bytes: usize = b.iter().map(clientbound_wire_size).sum();
                assert_eq!(a, b, "player {i}: delivery diverged");
                assert_eq!(a_bytes, b_bytes, "player {i}: wire bytes diverged");
            }
        }
    }

    #[test]
    fn broadcast_many_of_nothing_is_a_no_op() {
        let mut q = NetworkingQueues::new();
        q.add_connection(PlayerId(1));
        assert_eq!(q.broadcast_many(&[]), 0);
        assert_eq!(q.total_buffered(), 0);
    }

    #[test]
    fn removing_a_connection_drops_its_packets() {
        let mut q = NetworkingQueues::new();
        let p = PlayerId(1);
        q.add_connection(p);
        q.push_outgoing(p, ClientboundPacket::KeepAlive { id: 1 });
        q.remove_connection(p);
        assert!(!q.has_connection(p));
        assert_eq!(q.connection_count(), 0);
        assert_eq!(q.total_buffered(), 0);
    }
}
