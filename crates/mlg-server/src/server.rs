//! The game server and its 20 Hz game loop.

use std::collections::BTreeMap;
use std::sync::Arc;

use cloud_sim::engine::{ComputeEngine, StageWork};
use meterstick_metrics::distribution::TickDistribution;
use meterstick_metrics::trace::TickRecord;
use mlg_entity::{EntityId, EntityKind, EntityManager, Vec3};
use mlg_protocol::{ClientboundPacket, ServerboundPacket, TrafficAccountant, TrafficSummary};
use mlg_world::pool::TickWorkerPool;
use mlg_world::shard::{ShardLoadReport, TickPipeline};
use mlg_world::sim::{self, TerrainEvent};
use mlg_world::{BlockKind, BlockPos, TerrainSimulator, TickScratch, World};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::ServerConfig;
use crate::flavor::FlavorProfile;
use crate::handler::{self, PlayerStageReport};
use crate::player::{ConnectedPlayer, PlayerId};
use crate::queues::{NetworkingQueues, PacketRecipients};

/// Why and when a server run aborted.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerCrash {
    /// Human-readable reason.
    pub reason: String,
    /// Tick index at which the crash happened.
    pub at_tick: u64,
    /// Virtual time of the crash, in milliseconds.
    pub at_ms: f64,
}

/// Per-stage busy-time breakdown of one tick under the stage-parallel tick
/// graph: each stage's contribution to the tick's critical path (its serial
/// part plus its Amdahl parallel phase), in milliseconds.
///
/// A *pipelined* lighting stage contributes (near) zero here by design —
/// its work overlaps the rest of the tick on idle cores and only surfaces
/// in `other_ms` when the node has no slack to hide it. The breakdown sums
/// to the tick's busy time.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TickStageBreakdown {
    /// Stage 1: player handler (action processing + connection upkeep).
    pub player_ms: f64,
    /// Stage 2: terrain simulation (update cascades, random ticks, chunk
    /// generation).
    pub terrain_ms: f64,
    /// Stage 3: entity simulation.
    pub entity_ms: f64,
    /// Lighting stage (eager mode only; ~0 when pipelined).
    pub lighting_ms: f64,
    /// Stage 4: state-update dissemination (packet assembly + broadcast).
    pub dissemination_ms: f64,
    /// Everything else: GC, fixed overhead, and any offloaded work that
    /// spilled past the tick's idle-core slack.
    pub other_ms: f64,
}

impl TickStageBreakdown {
    /// Adds another breakdown's stage times into this one (used to total
    /// per-tick breakdowns over an iteration).
    pub fn accumulate(&mut self, other: &TickStageBreakdown) {
        self.player_ms += other.player_ms;
        self.terrain_ms += other.terrain_ms;
        self.entity_ms += other.entity_ms;
        self.lighting_ms += other.lighting_ms;
        self.dissemination_ms += other.dissemination_ms;
        self.other_ms += other.other_ms;
    }

    /// Sum of all stage contributions (equals the tick's busy time).
    #[must_use]
    pub fn total_ms(&self) -> f64 {
        self.player_ms
            + self.terrain_ms
            + self.entity_ms
            + self.lighting_ms
            + self.dissemination_ms
            + self.other_ms
    }
}

/// Summary of one executed game tick.
#[derive(Debug, Clone, PartialEq)]
pub struct TickSummary {
    /// The metric record for this tick (busy time, period, distribution).
    pub record: TickRecord,
    /// Virtual time at which the tick started.
    pub start_ms: f64,
    /// Virtual time at which the tick ended (start + period).
    pub end_ms: f64,
    /// Number of live entities after the tick.
    pub entity_count: usize,
    /// Number of connected (non-disconnected) players.
    pub player_count: usize,
    /// Number of clientbound packets emitted during the tick (all players).
    pub packets_emitted: u64,
    /// Bytes received from clients during the tick.
    pub bytes_received: u64,
    /// CPU utilization reported by the compute engine for this tick.
    pub cpu_utilization: f64,
    /// Whether chat echoes emitted this tick were handled asynchronously
    /// (PaperMC behaviour) and therefore do not wait for the tick to finish.
    pub async_chat: bool,
    /// The busiest shard's share of this tick's parallelizable work, in
    /// work units, summed over the sharded stages (player, terrain,
    /// entity) — the load-balance floors the compute engine applied (0 on
    /// the serial path). Adaptive rebalancing exists to shrink this number
    /// under hotspot workloads.
    pub max_shard_work: u64,
    /// Per-stage busy-time breakdown of this tick.
    pub stages: TickStageBreakdown,
    /// Set when the server crashed during this tick.
    pub crash: Option<ServerCrash>,
}

impl TickSummary {
    /// The tick's computation time in milliseconds (shorthand for
    /// `record.busy_ms`; live observers read this every tick).
    #[must_use]
    pub fn busy_ms(&self) -> f64 {
        self.record.busy_ms
    }

    /// The full tick period in milliseconds (`max(busy, budget)` plus any
    /// catch-up backlog).
    #[must_use]
    pub fn period_ms(&self) -> f64 {
        self.record.period_ms
    }

    /// `true` when computation overran `budget_ms` — the per-tick predicate
    /// the paper's ISR counts and the daemon's tick-overload alert fires
    /// on.
    #[must_use]
    pub fn is_overloaded(&self, budget_ms: f64) -> bool {
        self.record.busy_ms > budget_ms
    }
}

/// The Minecraft-like game server.
pub struct GameServer {
    config: ServerConfig,
    profile: FlavorProfile,
    pipeline: TickPipeline,
    /// The server's persistent tick worker pool: `tick_threads - 1` parked
    /// workers spawned once here and reused by every parallel phase of
    /// every tick (the pipeline holds a shared handle). `None` when
    /// `tick_threads <= 1` (phases run inline) or when a bench/test
    /// explicitly disabled it via [`GameServer::set_worker_pool_enabled`]
    /// to measure the per-phase scoped-thread fallback. Dropped — and its
    /// workers joined — with the server.
    pool: Option<Arc<TickWorkerPool>>,
    world: World,
    terrain: TerrainSimulator,
    entities: EntityManager,
    players: Vec<ConnectedPlayer>,
    queues: NetworkingQueues,
    traffic: TrafficAccountant,
    spawn_point: Vec3,
    next_player_id: u32,
    tick_index: u64,
    clock_ms: f64,
    pending_join_chunks: u64,
    ms_since_keepalive: f64,
    crash: Option<ServerCrash>,
    gc_rng: StdRng,
    next_minor_gc_tick: u64,
    next_major_gc_tick: u64,
    /// Whether lighting runs eagerly inside the terrain stage (resolved
    /// from the flavor profile and the [`ServerConfig::eager_lighting`]
    /// override). When `false`, relight positions queue in
    /// `pending_relight` and are consumed by the next tick's pipelined
    /// lighting stage.
    eager_lighting: bool,
    /// Whether the dissemination stage filters positioned packets through
    /// per-player areas of interest (resolved from the flavor profile and
    /// the [`ServerConfig::aoi_dissemination`] override). When `false`,
    /// every packet is broadcast to every connection.
    aoi_dissemination: bool,
    /// Terrain-change positions awaiting the cross-tick pipelined lighting
    /// stage (empty under eager lighting).
    pending_relight: Vec<BlockPos>,
    /// Reused dissemination buffer: the tick's broadcast packets are
    /// assembled here and flushed with one `broadcast_many` call, so the
    /// hot path allocates no per-packet vectors.
    broadcast_buf: Vec<ClientboundPacket>,
    /// Per-tick scratch arena for the terrain/lighting stages: cascade
    /// queues, shard batches, relight buffers and flood state, recycled
    /// across ticks (see `mlg_world::scratch`). Together with
    /// `broadcast_buf` this is the server's whole steady-state tick arena.
    scratch: TickScratch,
}

/// Base cost, in work units, of keeping one player connected for one tick:
/// visibility-set maintenance, entity tracking, packet compression and
/// connection upkeep. This is what makes the 25-player Players workload
/// meaningfully heavier than a single observer.
const PER_PLAYER_TICK_WORK: u64 = 3_000;

/// Ticks between minor garbage-collection pauses of the simulated JVM.
const MINOR_GC_INTERVAL_TICKS: u64 = 180;

/// Ticks between major garbage-collection pauses of the simulated JVM.
const MAJOR_GC_INTERVAL_TICKS: u64 = 900;

impl std::fmt::Debug for GameServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GameServer")
            .field("flavor", &self.config.flavor)
            .field("tick", &self.tick_index)
            .field("players", &self.players.len())
            .field("entities", &self.entities.count())
            .field("crashed", &self.crash.is_some())
            .finish()
    }
}

impl GameServer {
    /// Creates a server running `config` over a pre-built world (usually one
    /// of the Meterstick workload worlds), with players spawning at
    /// `spawn_point`.
    #[must_use]
    pub fn new(config: ServerConfig, mut world: World, spawn_point: Vec3) -> Self {
        let profile = config.flavor.profile();
        // One persistent worker pool per server: spawned here, shared with
        // the pipeline, shut down (workers joined) when the server drops.
        let pool =
            (config.tick_threads > 1).then(|| Arc::new(TickWorkerPool::new(config.tick_threads)));
        let mut pipeline = build_pipeline(&profile, &config, &world);
        if let Some(pool) = &pool {
            pipeline.attach_pool(Arc::clone(pool));
        }
        if pipeline.is_sharded() {
            world.reshard(pipeline.shard_map().clone());
        }
        let mut entities = EntityManager::new(config.seed ^ 0xE47);
        entities.natural_spawning = config.natural_spawning;
        entities.max_tnt_per_tick = profile.max_tnt_per_tick;
        let eager_lighting = config.eager_lighting.unwrap_or(profile.eager_lighting);
        let aoi_dissemination = config
            .aoi_dissemination
            .unwrap_or(profile.aoi_dissemination);
        let terrain = TerrainSimulator {
            random_ticks_per_chunk: config.random_ticks_per_chunk,
            eager_lighting,
            ..TerrainSimulator::default()
        };
        let gc_seed = config.seed ^ 0x6C;
        GameServer {
            config,
            profile,
            pipeline,
            pool,
            world,
            terrain,
            entities,
            players: Vec::new(),
            queues: NetworkingQueues::new(),
            traffic: TrafficAccountant::new(),
            spawn_point,
            next_player_id: 1,
            tick_index: 0,
            clock_ms: 0.0,
            pending_join_chunks: 0,
            ms_since_keepalive: 0.0,
            crash: None,
            gc_rng: StdRng::seed_from_u64(gc_seed),
            next_minor_gc_tick: MINOR_GC_INTERVAL_TICKS,
            next_major_gc_tick: MAJOR_GC_INTERVAL_TICKS,
            eager_lighting,
            aoi_dissemination,
            pending_relight: Vec::new(),
            broadcast_buf: Vec::new(),
            scratch: TickScratch::new(),
        }
    }

    /// The server configuration.
    #[must_use]
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The flavor performance profile in effect.
    #[must_use]
    pub fn profile(&self) -> &FlavorProfile {
        &self.profile
    }

    /// Overrides the flavor profile (used by ablation benchmarks to toggle
    /// individual optimizations).
    pub fn set_profile(&mut self, profile: FlavorProfile) {
        self.entities.max_tnt_per_tick = profile.max_tnt_per_tick;
        self.pipeline = build_pipeline(&profile, &self.config, &self.world);
        if let Some(pool) = &self.pool {
            self.pipeline.attach_pool(Arc::clone(pool));
        }
        if self.pipeline.is_sharded() {
            self.world.reshard(self.pipeline.shard_map().clone());
        }
        self.eager_lighting = self.config.eager_lighting.unwrap_or(profile.eager_lighting);
        self.aoi_dissemination = self
            .config
            .aoi_dissemination
            .unwrap_or(profile.aoi_dissemination);
        self.terrain.eager_lighting = self.eager_lighting;
        if self.eager_lighting {
            // An eager server never runs the pipelined stage; drop any
            // queue carried over from a previous profile.
            self.pending_relight.clear();
        }
        self.profile = profile;
    }

    /// Whether lighting runs eagerly inside the terrain stage (`false` =
    /// the cross-tick pipelined lighting stage is active).
    #[must_use]
    pub fn eager_lighting(&self) -> bool {
        self.eager_lighting
    }

    /// Whether the dissemination stage filters positioned packets through
    /// per-player areas of interest (`false` = classic full broadcast).
    #[must_use]
    pub fn aoi_dissemination(&self) -> bool {
        self.aoi_dissemination
    }

    /// Number of terrain changes queued for the next tick's pipelined
    /// lighting stage (always 0 under eager lighting).
    #[must_use]
    pub fn pending_relight_len(&self) -> usize {
        self.pending_relight.len()
    }

    /// The tick-pipeline execution configuration in effect.
    #[must_use]
    pub fn pipeline(&self) -> &TickPipeline {
        &self.pipeline
    }

    /// Enables or disables the persistent tick worker pool.
    ///
    /// A bench/ablation/test hook, not a modeled-architecture knob: with the
    /// pool disabled every parallel phase falls back to per-phase scoped
    /// threads (the pre-pool execution model), which produces **bit-identical
    /// results** — the `worker_pool` bench group and the
    /// `pool_reuse_is_bit_identical` test both rely on exactly that. Pool
    /// state is execution infrastructure, like `tick_threads`. Re-enabling
    /// spawns a fresh pool sized from the config; a no-op for
    /// `tick_threads <= 1`, which never uses a pool.
    pub fn set_worker_pool_enabled(&mut self, enabled: bool) {
        if enabled {
            if self.pool.is_none() && self.config.tick_threads > 1 {
                self.pool = Some(Arc::new(TickWorkerPool::new(self.config.tick_threads)));
            }
            if let Some(pool) = &self.pool {
                self.pipeline.attach_pool(Arc::clone(pool));
            }
        } else {
            self.pipeline.detach_pool();
            self.pool = None;
        }
    }

    /// Whether the persistent worker pool is attached and in use (always
    /// `false` for `tick_threads <= 1`).
    #[must_use]
    pub fn worker_pool_enabled(&self) -> bool {
        self.pipeline.has_pool()
    }

    /// Read access to the world (for workload validation and tests).
    #[must_use]
    pub fn world(&self) -> &World {
        &self.world
    }

    /// Mutable access to the world (used by workload setup, e.g. fusing TNT).
    pub fn world_mut(&mut self) -> &mut World {
        &mut self.world
    }

    /// Current virtual time in milliseconds.
    #[must_use]
    pub fn clock_ms(&self) -> f64 {
        self.clock_ms
    }

    /// Number of ticks executed so far.
    #[must_use]
    pub fn ticks_executed(&self) -> u64 {
        self.tick_index
    }

    /// Number of live entities.
    #[must_use]
    pub fn entity_count(&self) -> usize {
        self.entities.count()
    }

    /// The crash record, if the server aborted.
    #[must_use]
    pub fn crash(&self) -> Option<&ServerCrash> {
        self.crash.as_ref()
    }

    /// Returns `true` while the server can keep ticking.
    #[must_use]
    pub fn is_running(&self) -> bool {
        self.crash.is_none()
    }

    /// Accumulated clientbound traffic summary (Table 8 source data).
    #[must_use]
    pub fn traffic_summary(&self) -> &TrafficSummary {
        self.traffic.summary()
    }

    /// Connects a new player and returns its id.
    ///
    /// Connection streams the spawn area to the client (chunk generation and
    /// chunk-data packets), which is the work burst behind the paper's
    /// observation that response-time outliers "occur directly after a player
    /// connects".
    pub fn connect_player(&mut self, name: &str) -> PlayerId {
        let spawn = self.spawn_point;
        self.connect_player_at(name, spawn)
    }

    /// Connects a new player at an explicit position and returns its id.
    ///
    /// Identical to [`GameServer::connect_player`] except the player spawns
    /// (and has its view-distance area streamed) at `pos` instead of the
    /// server's spawn point. Scaled workloads use this to scatter a large
    /// bot population over the world, so per-player join streaming and
    /// interest sets are anchored where each bot actually lives.
    pub fn connect_player_at(&mut self, name: &str, pos: Vec3) -> PlayerId {
        let id = PlayerId(self.next_player_id);
        self.next_player_id += 1;
        let entity_id = EntityId(u64::from(id.0) | 0x4000_0000);
        let player = ConnectedPlayer {
            id,
            entity_id,
            name: name.to_string(),
            pos,
            connected_at_tick: self.tick_index,
            last_served_ms: self.clock_ms,
            disconnected: false,
        };
        self.queues.add_connection(id);

        // Stream the spawn area: generate chunks and queue chunk-data packets.
        let center = player.pos.block_pos().chunk();
        let generated = self.world.ensure_area(center, self.config.view_distance);
        self.pending_join_chunks += generated as u64;
        let login = ClientboundPacket::LoginAccepted {
            player_id: entity_id,
            spawn: player.pos,
        };
        self.traffic.record(&login, 1);
        self.queues.push_outgoing(id, login);
        for chunk_pos in center.within_radius(self.config.view_distance) {
            let payload = self
                .world
                .chunk_if_loaded(chunk_pos)
                .map_or(64, |c| c.network_size_bytes()) as u32;
            let packet = ClientboundPacket::ChunkData {
                pos: chunk_pos,
                payload_bytes: payload,
            };
            self.traffic.record(&packet, 1);
            self.queues.push_outgoing(id, packet);
        }
        self.players.push(player);
        id
    }

    /// Number of connected, non-disconnected players.
    #[must_use]
    pub fn player_count(&self) -> usize {
        self.players.iter().filter(|p| !p.disconnected).count()
    }

    /// Returns the connected player with the given id, if any.
    #[must_use]
    pub fn player(&self, id: PlayerId) -> Option<&ConnectedPlayer> {
        self.players.iter().find(|p| p.id == id)
    }

    /// Buffers a serverbound packet from `player` into the networking queues.
    pub fn enqueue_packet(&mut self, player: PlayerId, packet: ServerboundPacket) {
        self.queues.push_incoming(player, packet);
    }

    /// Drains the clientbound packets queued for `player`.
    pub fn drain_outgoing(&mut self, player: PlayerId) -> Vec<ClientboundPacket> {
        self.queues.drain_outgoing(player)
    }

    /// Schedules every TNT block currently loaded in the world to ignite
    /// `delay_ticks` from now. Used by the TNT workload ("set to explode
    /// around 20 seconds after a player connects").
    pub fn schedule_tnt_ignition(&mut self, delay_ticks: u64) -> usize {
        let mut positions = Vec::new();
        for chunk in self.world.iter_chunks() {
            let origin = chunk.pos().origin_block();
            for (lx, y, lz, block) in chunk.iter_non_air() {
                if block.kind() == BlockKind::Tnt {
                    positions.push(mlg_world::BlockPos::new(
                        origin.x + lx as i32,
                        y,
                        origin.z + lz as i32,
                    ));
                }
            }
        }
        for &pos in &positions {
            self.world.schedule_tick(pos, delay_ticks);
        }
        positions.len()
    }

    /// Spawns an entity directly (used by workload setup, e.g. villagers in
    /// farm worlds).
    pub fn spawn_entity(&mut self, kind: EntityKind, pos: Vec3) -> EntityId {
        self.entities.spawn(kind, pos)
    }

    fn handle_terrain_events(
        &mut self,
        events: Vec<TerrainEvent>,
    ) -> Vec<(EntityId, EntityKind, Vec3)> {
        let mut spawned = Vec::new();
        for event in events {
            match event {
                TerrainEvent::TntIgnited { pos } => {
                    let p = Vec3::from_block_center(pos);
                    let id = self.entities.spawn(EntityKind::PrimedTnt, p);
                    spawned.push((id, EntityKind::PrimedTnt, p));
                }
                TerrainEvent::BlockHarvested { pos, kind } => {
                    let p = Vec3::from_block_center(pos);
                    let id = self.entities.spawn(EntityKind::Item(kind), p);
                    spawned.push((id, EntityKind::Item(kind), p));
                }
                TerrainEvent::ItemDispensed { pos } => {
                    let p = Vec3::from_block_center(pos.up());
                    let id = self
                        .entities
                        .spawn(EntityKind::Item(BlockKind::Cobblestone), p);
                    spawned.push((id, EntityKind::Item(BlockKind::Cobblestone), p));
                }
            }
        }
        spawned
    }

    /// Runs one game tick, converting its work into time on the given compute
    /// engine, and returns the tick summary.
    ///
    /// Returns the last crash summary again (without doing any work) if the
    /// server has already crashed.
    pub fn run_tick(&mut self, engine: &mut ComputeEngine) -> TickSummary {
        let start_ms = self.clock_ms;
        if let Some(crash) = &self.crash {
            return TickSummary {
                record: TickRecord {
                    index: self.tick_index,
                    start_ms,
                    busy_ms: 0.0,
                    period_ms: self.config.tick_budget_ms,
                    distribution: TickDistribution::default(),
                },
                start_ms,
                end_ms: start_ms + self.config.tick_budget_ms,
                entity_count: self.entities.count(),
                player_count: 0,
                packets_emitted: 0,
                bytes_received: 0,
                cpu_utilization: 0.0,
                async_chat: self.profile.async_chat,
                max_shard_work: 0,
                stages: TickStageBreakdown::default(),
                crash: Some(crash.clone()),
            };
        }

        self.tick_index += 1;
        self.world.advance_tick();

        // --- Stage 0: pipelined lighting ---------------------------------
        // Under pipelined lighting (`eager_lighting = false`) the previous
        // tick queued its terrain-change positions; relight them now over a
        // frozen snapshot of the world at tick start. In the compute model
        // this work is fully offloadable — it overlaps this tick's player
        // stage on idle cores — which is the cross-tick pipelining win.
        let pipelined_light_positions = if self.eager_lighting || self.pending_relight.is_empty() {
            0
        } else {
            let mut positions = std::mem::take(&mut self.pending_relight);
            let visited = sim::relight_positions_frozen_with(
                &mut self.world,
                &positions,
                &self.pipeline.scope(),
                &mut self.scratch,
            );
            // Hand the (cleared) queue back so its capacity survives to the
            // next tick instead of re-growing from empty.
            positions.clear();
            self.pending_relight = positions;
            visited
        };

        // --- Stage 1: player handler -------------------------------------
        // Sharded pipelines batch players by owning shard and process the
        // interior batches in parallel (boundary players escalate to a
        // serial tail — see `handler::process_players_sharded`); serial
        // flavors keep the classic per-player loop. Either way the queues
        // are drained once, in player order.
        let mut bytes_received = 0u64;
        let (player_report, player_shard_work) = if self.pipeline.is_sharded() {
            let players = std::mem::take(&mut self.players);
            let mut actions: Vec<Vec<ServerboundPacket>> = Vec::with_capacity(players.len());
            for player in &players {
                if player.disconnected {
                    actions.push(Vec::new());
                    continue;
                }
                let queue = self.queues.drain_incoming(player.id);
                bytes_received += queue
                    .iter()
                    .map(|a| mlg_protocol::codec::serverbound_wire_size(a) as u64)
                    .sum::<u64>();
                actions.push(queue);
            }
            let (players, stage) =
                handler::process_players_sharded(&mut self.world, players, actions, &self.pipeline);
            self.players = players;
            (stage.report, Some(stage.per_shard_work))
        } else {
            let mut report = PlayerStageReport::default();
            // Index connected players once: iterating ids and re-scanning
            // the player list per id was O(P²) per tick.
            let connected: Vec<usize> = self
                .players
                .iter()
                .enumerate()
                .filter(|(_, p)| !p.disconnected)
                .map(|(index, _)| index)
                .collect();
            for index in connected {
                let id = self.players[index].id;
                let actions = self.queues.drain_incoming(id);
                bytes_received += actions
                    .iter()
                    .map(|a| mlg_protocol::codec::serverbound_wire_size(a) as u64)
                    .sum::<u64>();
                handler::process_player_actions(
                    &mut self.world,
                    &mut self.players[index],
                    actions,
                    &mut report,
                );
            }
            (report, None)
        };

        // Player-stage block edits feed the lighting stage too (the
        // paper's workloads never place blocks, but the Crowd workload
        // does): relit immediately over a frozen post-player-stage
        // snapshot under eager lighting, queued for the next tick's
        // pipelined stage otherwise. The change log is empty at tick start
        // (stage 4 drains it), so everything in it here came from stage 1.
        let player_light_positions = if self.world.changes().is_empty() {
            0
        } else if self.eager_lighting {
            let positions: Vec<BlockPos> = self
                .world
                .changes()
                .iter()
                .map(|change| change.pos)
                .collect();
            sim::relight_positions_frozen_with(
                &mut self.world,
                &positions,
                &self.pipeline.scope(),
                &mut self.scratch,
            )
        } else {
            self.pending_relight
                .extend(self.world.changes().iter().map(|change| change.pos));
            0
        };

        // --- Stage 2: terrain simulation ----------------------------------
        let relight_from = self.world.changes().len();
        let (terrain_report, terrain_events, terrain_shard_work) = if self.pipeline.is_sharded() {
            let out =
                self.terrain
                    .tick_sharded_with(&mut self.world, &self.pipeline, &mut self.scratch);
            (out.report, out.events, Some(out.per_shard_work))
        } else {
            let (report, events) = self.terrain.tick_with(&mut self.world, &mut self.scratch);
            (report, events, None)
        };
        if !self.eager_lighting {
            // Queue this tick's terrain changes for the next tick's
            // pipelined lighting stage (the same set the eager path relights
            // in-stage; player- and entity-stage changes are excluded on
            // both paths).
            self.pending_relight.extend(
                self.world.changes()[relight_from..]
                    .iter()
                    .map(|change| change.pos),
            );
        }
        let event_spawns = self.handle_terrain_events(terrain_events);

        // --- Stage 3: entity simulation -----------------------------------
        let player_positions = handler::player_positions(&self.players);
        let (entity_report, entity_shard_work) = if self.pipeline.is_sharded() {
            let (report, per_shard) =
                self.entities
                    .tick_batched(&mut self.world, &player_positions, &self.pipeline);
            (report, Some(per_shard))
        } else {
            let report = self.entities.tick(&mut self.world, &player_positions);
            (report, None)
        };

        // --- Stage 4: state-update dissemination --------------------------
        // Every broadcast of this tick is assembled into one reused,
        // pre-sized buffer — in canonical order — and flushed with a single
        // batched `broadcast_many` + `record_many` pair instead of a
        // per-packet traversal of the connection map.
        let mut packets_emitted = 0u64;
        let recipients = self.player_count() as u64;
        let changes = self.world.drain_changes();
        let mut packets = std::mem::take(&mut self.broadcast_buf);
        packets.clear();
        if recipients > 0 {
            packets.reserve(
                recipients as usize
                    + changes.len()
                    + event_spawns.len()
                    + entity_report.spawned.len()
                    + entity_report.moved.len()
                    + entity_report.removed.len()
                    + player_report.pending_chat.len()
                    + 2,
            );
            // Player position synchronisation: every connected player's
            // position is broadcast each tick (entity-related traffic, which
            // is why Table 8 shows entity messages dominating even the
            // Control workload). Sharded pipelines assemble these per shard
            // — canonical shard order, player order within a shard —
            // mirroring how the player stage batches its work.
            if self.pipeline.is_sharded() {
                let map = self.pipeline.shard_map();
                let mut keyed: Vec<(usize, usize)> = self
                    .players
                    .iter()
                    .enumerate()
                    .filter(|(_, pl)| !pl.disconnected)
                    .map(|(index, pl)| (map.shard_of_chunk(pl.chunk()), index))
                    .collect();
                keyed.sort_unstable();
                for (_, index) in keyed {
                    let pl = &self.players[index];
                    packets.push(ClientboundPacket::EntityMove {
                        id: pl.entity_id,
                        pos: pl.pos,
                    });
                }
            } else {
                for pl in self.players.iter().filter(|pl| !pl.disconnected) {
                    packets.push(ClientboundPacket::EntityMove {
                        id: pl.entity_id,
                        pos: pl.pos,
                    });
                }
            }
            for change in &changes {
                packets.push(ClientboundPacket::BlockChange {
                    pos: change.pos,
                    block: change.new,
                });
            }
            for (id, kind, pos) in &event_spawns {
                packets.push(ClientboundPacket::EntitySpawn {
                    id: *id,
                    kind_id: entity_kind_id(*kind),
                    pos: *pos,
                });
            }
            for (id, kind) in &entity_report.spawned {
                packets.push(ClientboundPacket::EntitySpawn {
                    id: *id,
                    kind_id: entity_kind_id(*kind),
                    pos: self.spawn_point,
                });
            }
            for (id, pos) in &entity_report.moved {
                packets.push(ClientboundPacket::EntityMove { id: *id, pos: *pos });
            }
            for id in &entity_report.removed {
                packets.push(ClientboundPacket::EntityDestroy { id: *id });
            }
            for chat in &player_report.pending_chat {
                packets.push(ClientboundPacket::Chat {
                    message: format!("<{}> {}", chat.sender, chat.message),
                    echo_of_ms: chat.sent_at_ms,
                });
            }
            if self.tick_index.is_multiple_of(20) {
                packets.push(ClientboundPacket::TimeUpdate {
                    world_age_ticks: self.tick_index,
                });
            }
            if self.tick_index.is_multiple_of(100) {
                packets.push(ClientboundPacket::KeepAlive {
                    id: self.tick_index,
                });
            }
            if self.aoi_dissemination {
                // Area-of-interest dissemination: positioned packets reach
                // only the players whose view distance covers the event, so
                // the stage's cost scales with the summed interest-set
                // sizes (Σ|AoI|) instead of packets × players. Packets
                // without a position anchor (chat, time, keep-alives,
                // entity removal) stay global. Interest sets are computed
                // by hashing viewers into a coarse grid of radius-sized
                // cells and distance-testing the 3×3 cell neighborhood of
                // each packet's anchor, so a scaled population never pays a
                // full viewer scan per packet. Viewers land in the buckets
                // in ascending connection order (players are appended with
                // monotonically increasing ids) and cells are scanned in a
                // fixed order, keeping every interest set deterministic.
                let radius = f64::from(self.config.view_distance) * 16.0;
                let radius_sq = radius * radius;
                let cell = radius.max(1.0);
                let viewers: Vec<(PlayerId, Vec3)> = self
                    .players
                    .iter()
                    .filter(|pl| !pl.disconnected)
                    .map(|pl| (pl.id, pl.pos))
                    .collect();
                let mut buckets: BTreeMap<(i64, i64), Vec<usize>> = BTreeMap::new();
                for (index, (_, pos)) in viewers.iter().enumerate() {
                    let key = ((pos.x / cell).floor() as i64, (pos.z / cell).floor() as i64);
                    buckets.entry(key).or_default().push(index);
                }
                let interest: Vec<Option<Vec<PlayerId>>> = packets
                    .iter()
                    .map(|packet| {
                        packet_position(packet).map(|pos| {
                            let cx = (pos.x / cell).floor() as i64;
                            let cz = (pos.z / cell).floor() as i64;
                            let mut set = Vec::new();
                            for dx in -1..=1 {
                                for dz in -1..=1 {
                                    let Some(bucket) = buckets.get(&(cx + dx, cz + dz)) else {
                                        continue;
                                    };
                                    for &viewer in bucket {
                                        let (id, viewer_pos) = viewers[viewer];
                                        let ddx = viewer_pos.x - pos.x;
                                        let ddz = viewer_pos.z - pos.z;
                                        if ddx * ddx + ddz * ddz <= radius_sq {
                                            set.push(id);
                                        }
                                    }
                                }
                            }
                            set
                        })
                    })
                    .collect();
                packets_emitted =
                    self.queues
                        .multicast_many(&packets, |index| match &interest[index] {
                            None => PacketRecipients::All,
                            Some(set) => PacketRecipients::Only(set),
                        });
                // Per-packet recipient counts feed the accountant so the
                // traffic metrics reflect delivered bytes, not assembled
                // ones. When every viewer is in range of everything this
                // degenerates to exactly `record_many(&packets, recipients)`.
                for (packet, list) in packets.iter().zip(&interest) {
                    let count = match list {
                        None => recipients,
                        Some(set) => set.len() as u64,
                    };
                    if count > 0 {
                        self.traffic.record(packet, count);
                    }
                }
            } else {
                self.traffic.record_many(&packets, recipients);
                packets_emitted = self.queues.broadcast_many(&packets);
            }
        }
        self.broadcast_buf = packets;

        // --- Stage 5: work accounting and time conversion ------------------
        // Each stage of the tick graph declares its own serial/parallel
        // split (per-stage fractions from the flavor profile, per-stage
        // load-balance floors from the merged shard work); the engine folds
        // the records into one Amdahl critical path.
        let p = &self.profile;
        let player_work = player_report.base_work_units();
        let add_remove_work = terrain_report.blocks_added * 25
            + terrain_report.blocks_removed * 25
            + terrain_report.blocks_updated * 10;
        let update_work_raw = terrain_report.neighbor_updates * 12
            + terrain_report.scheduled_updates * 14
            + terrain_report.random_ticks * 4
            + terrain_report.fluid_spreads * 18
            + terrain_report.redstone_propagations * 16
            + terrain_report.growths * 20
            + terrain_report.blocks_scanned;
        let update_work = (update_work_raw as f64 * p.redstone_multiplier) as u64;
        // Under pipelined lighting this tick pays for the *previous* tick's
        // relight set (consumed by stage 0); the terrain stage reported no
        // light positions of its own.
        let light_positions = if self.eager_lighting {
            terrain_report.light_positions + player_light_positions
        } else {
            pipelined_light_positions
        };
        let light_work = (light_positions as f64 * 2.0 * p.lighting_multiplier) as u64;
        let chunk_work = (terrain_report.chunks_generated + self.pending_join_chunks) * 4_000;
        self.pending_join_chunks = 0;

        let explosion_component =
            entity_report.explosions * 500 + entity_report.blocks_destroyed * 30;
        let entity_base = entity_report.base_work_units();
        let entity_work = ((entity_base.saturating_sub(explosion_component)) as f64
            * p.entity_multiplier
            + explosion_component as f64 * p.explosion_multiplier) as u64;

        let chat_work = player_report.chat_messages * 25 * recipients.max(1);
        let packet_work = packets_emitted * 3;
        let connection_work = recipients * PER_PLAYER_TICK_WORK;
        let overhead_work = 2_000u64;

        // Simulated JVM garbage collection: periodic pauses whose length
        // grows with the live heap (entities and loaded chunks). Minor
        // collections stay within the tick budget; major collections are the
        // occasional large outliers that even self-hosted deployments show.
        let mut gc_work = 0u64;
        if self.tick_index >= self.next_minor_gc_tick {
            gc_work += 80_000
                + self.entities.count() as u64 * 60
                + self.world.loaded_chunk_count() as u64 * 150;
            self.next_minor_gc_tick =
                self.tick_index + MINOR_GC_INTERVAL_TICKS + self.gc_rng.gen_range(0..60);
        }
        if self.tick_index >= self.next_major_gc_tick {
            gc_work += 600_000
                + self.entities.count() as u64 * 400
                + self.world.loaded_chunk_count() as u64 * 800;
            self.next_major_gc_tick =
                self.tick_index + MAJOR_GC_INTERVAL_TICKS + self.gc_rng.gen_range(0..200);
            // Piggyback real substrate maintenance on the simulated major
            // collection: re-narrow chunk palettes that widened during play.
            // Purely a storage transform — block contents are unchanged, so
            // the modeled cost stream is unaffected.
            self.world.compact_chunk_storage();
        }

        let total_work = ((player_work
            + add_remove_work
            + update_work
            + light_work
            + chunk_work
            + entity_work
            + chat_work
            + packet_work
            + connection_work
            + gc_work
            + overhead_work) as f64
            * p.overhead_multiplier) as u64;

        // Asynchronously offloadable work, attributed per stage so serial
        // residues can be computed below: a flavor-dependent fraction of the
        // terrain/lighting/dissemination stages, chat wholesale under async
        // chat, and — the cross-tick pipelining win — the *whole* lighting
        // pass when it runs pipelined (stage 0 overlapped it with this
        // tick's player stage on idle cores).
        let offload_f = p.offload_fraction.clamp(0.0, 1.0);
        let off_terrain = (offload_f * (update_work + chunk_work) as f64) as u64;
        let off_light = if self.eager_lighting {
            (offload_f * light_work as f64) as u64
        } else {
            light_work
        };
        let off_dissemination =
            (offload_f * packet_work as f64) as u64 + if p.async_chat { chat_work } else { 0 };
        let offloadable = (off_terrain + off_light + off_dissemination).min(total_work);

        // Per-stage parallelizable shares: each stage fans its fraction out
        // over the tick shards (or plain JVM-runtime parallelism for serial
        // flavors — GC is always freely parallel on top). The light/chunk/
        // packet share already counted as offloadable is excluded so no
        // component is classified off the main thread twice. Redstone/
        // block-update cascades stay serial — they are dependency chains
        // even under sharding.
        let sp = p.stage_parallel;
        let player_pool = player_work + connection_work;
        let terrain_pool = add_remove_work + update_work + chunk_work;
        let dissemination_pool = packet_work + chat_work;
        let mut par_player = (sp.player * player_pool as f64) as u64;
        let mut par_terrain = (sp.terrain * (1.0 - offload_f) * chunk_work as f64) as u64;
        let mut par_entity = (sp.entity * entity_work as f64) as u64;
        let mut par_light = if self.eager_lighting {
            (sp.lighting * (1.0 - offload_f) * light_work as f64) as u64
        } else {
            0
        };
        let mut par_dissemination =
            (sp.dissemination * (1.0 - offload_f) * packet_work as f64) as u64;
        let mut par_gc = gc_work;
        // Keep offload + parallel within the (overhead-scaled) total; the
        // clamp order is fixed so the split stays deterministic.
        let mut parallel_budget = total_work.saturating_sub(offloadable);
        for share in [
            &mut par_player,
            &mut par_terrain,
            &mut par_entity,
            &mut par_light,
            &mut par_dissemination,
            &mut par_gc,
        ] {
            *share = (*share).min(parallel_budget);
            parallel_budget -= *share;
        }
        let parallelizable =
            par_player + par_terrain + par_entity + par_light + par_dissemination + par_gc;
        let main_total = total_work - offloadable - parallelizable;

        // Attribute the remaining main-thread work to stages in proportion
        // to their serial residues (work not offloaded and not parallel).
        // The engine only sums the serial parts, so the attribution shapes
        // the per-stage breakdown without changing busy time.
        let serial_player = player_pool.saturating_sub(par_player);
        let serial_terrain = terrain_pool.saturating_sub(off_terrain + par_terrain);
        let serial_entity = entity_work.saturating_sub(par_entity);
        let serial_light = light_work.saturating_sub(off_light + par_light);
        let serial_dissemination =
            dissemination_pool.saturating_sub(off_dissemination + par_dissemination);
        let serial_other = overhead_work + gc_work.saturating_sub(par_gc);
        let serial_total = (serial_player
            + serial_terrain
            + serial_entity
            + serial_light
            + serial_dissemination
            + serial_other)
            .max(1);
        let attribute =
            |units: u64| (main_total as f64 * units as f64 / serial_total as f64) as u64;
        let main_player = attribute(serial_player);
        let main_terrain = attribute(serial_terrain);
        let main_entity = attribute(serial_entity);
        let main_light = attribute(serial_light);
        let main_dissemination = attribute(serial_dissemination);
        let main_other = main_total
            - (main_player + main_terrain + main_entity + main_light + main_dissemination);

        let stage_width = if self.pipeline.is_sharded() {
            self.pipeline.shards()
        } else {
            // JVM-runtime parallelism is not bound to tick shards.
            u32::MAX
        };
        // Per-stage load-balance floors: the busiest shard's measured share
        // of that stage's parallel work (zero when nothing sharded ran).
        let stage_floor = |par: u64, loads: Option<&Vec<u64>>| -> u64 {
            let Some(loads) = loads else { return 0 };
            let total: u64 = loads.iter().sum();
            if total == 0 {
                return 0;
            }
            let max = loads.iter().copied().max().unwrap_or(0);
            ((par as u128 * u128::from(max) / u128::from(total)) as u64).min(par)
        };
        let floor_player = stage_floor(par_player, player_shard_work.as_ref());
        let floor_terrain = stage_floor(par_terrain, terrain_shard_work.as_ref());
        let floor_entity = stage_floor(par_entity, entity_shard_work.as_ref());
        let max_shard = floor_player + floor_terrain + floor_entity;

        // The same merged per-shard loads — player stage included — drive
        // adaptive rebalancing, so the compute model and the partition
        // always see identical hotspots.
        let load_report = match (&terrain_shard_work, &entity_shard_work) {
            (Some(terrain), Some(entities)) => {
                let mut report = ShardLoadReport::from_stage_work(terrain, entities);
                if let Some(player) = &player_shard_work {
                    report.fold_player_work(player);
                }
                Some(report)
            }
            _ => None,
        };

        // Adaptive rebalancing: apply this tick's merged load report to the
        // partition (a pure function of the report, so bit-identical at any
        // thread count). The world is resharded lazily by the next tick's
        // sharded player/terrain phases.
        if self.pipeline.rebalance_enabled() {
            if let Some(report) = &load_report {
                self.pipeline.apply_load_report(report);
            }
        }

        let stage_records = [
            StageWork {
                main_thread: main_player,
                parallelizable: par_player,
                parallel_width: stage_width,
                max_shard: floor_player,
            },
            StageWork {
                main_thread: main_terrain,
                parallelizable: par_terrain,
                parallel_width: stage_width,
                max_shard: floor_terrain,
            },
            StageWork {
                main_thread: main_entity,
                parallelizable: par_entity,
                parallel_width: stage_width,
                max_shard: floor_entity,
            },
            StageWork {
                main_thread: main_light,
                parallelizable: par_light,
                parallel_width: stage_width,
                max_shard: 0,
            },
            StageWork {
                main_thread: main_dissemination,
                parallelizable: par_dissemination,
                parallel_width: stage_width,
                max_shard: 0,
            },
            StageWork {
                main_thread: main_other,
                parallelizable: par_gc,
                // Parallel GC is freely divisible across however many
                // vCPUs exist, not bound to tick shards.
                parallel_width: u32::MAX,
                max_shard: 0,
            },
        ];
        let staged = engine.execute_stages(&stage_records, offloadable, self.config.tick_budget_ms);
        let stages = TickStageBreakdown {
            player_ms: staged.stage_ms[0],
            terrain_ms: staged.stage_ms[1],
            entity_ms: staged.stage_ms[2],
            lighting_ms: staged.stage_ms[3],
            dissemination_ms: staged.stage_ms[4],
            other_ms: staged.stage_ms[5] + staged.offload_overflow_ms,
        };
        let execution = staged.execution;
        let busy_ms = execution.busy_ms;

        // --- Stage 6: tick-time distribution -------------------------------
        let busy_components = [
            ((player_work + connection_work) as f64, 0usize), // Players
            (add_remove_work as f64, 1),                      // BlockAddRemove
            (update_work as f64, 2),                          // BlockUpdate
            (entity_work as f64, 3),                          // Entities
            (
                (light_work + chunk_work + chat_work + packet_work + gc_work + overhead_work)
                    as f64,
                4,
            ), // Other
        ];
        let component_total: f64 = busy_components.iter().map(|(w, _)| w).sum::<f64>().max(1.0);
        let mut distribution = TickDistribution::default();
        for (work, slot) in busy_components {
            let ms = busy_ms * work / component_total;
            match slot {
                0 => distribution.players_ms = ms,
                1 => distribution.block_add_remove_ms = ms,
                2 => distribution.block_update_ms = ms,
                3 => distribution.entities_ms = ms,
                _ => distribution.other_ms = ms,
            }
        }
        distribution.wait_before_ms = 0.1;
        distribution.wait_after_ms = (self.config.tick_budget_ms - busy_ms).max(0.0);

        // --- Stage 7: clock advance and overload handling ------------------
        let period_ms = busy_ms.max(self.config.tick_budget_ms);
        self.clock_ms += period_ms;
        let end_ms = self.clock_ms;
        for player in self.players.iter_mut().filter(|pl| !pl.disconnected) {
            player.last_served_ms = end_ms;
        }

        // Crash semantics: clients time out when the server cannot serve them
        // a keep-alive within the timeout window. Keep-alives go out every
        // 100 ticks, so sustained overload stretches the interval between
        // them until it exceeds the timeout — the mechanism by which the Lag
        // workload crashes every MLG on AWS in the paper (MF2). A single
        // monster tick longer than the window has the same effect.
        self.ms_since_keepalive += period_ms;
        if self.tick_index.is_multiple_of(100) {
            self.ms_since_keepalive = 0.0;
        }
        let stalled = busy_ms > self.config.keepalive_timeout_ms
            || self.ms_since_keepalive > self.config.keepalive_timeout_ms;
        let mut crash = None;
        if stalled && self.player_count() > 0 {
            for player in self.players.iter_mut() {
                player.disconnected = true;
            }
            let c = ServerCrash {
                reason: format!(
                    "tick {} stalled for {:.0} ms; all client connections timed out",
                    self.tick_index, busy_ms
                ),
                at_tick: self.tick_index,
                at_ms: end_ms,
            };
            self.crash = Some(c.clone());
            crash = Some(c);
        }

        let record = TickRecord {
            index: self.tick_index,
            start_ms,
            busy_ms,
            period_ms,
            distribution,
        };

        TickSummary {
            record,
            start_ms,
            end_ms,
            entity_count: self.entities.count(),
            player_count: self.player_count(),
            packets_emitted,
            bytes_received,
            cpu_utilization: execution.cpu_utilization,
            async_chat: self.profile.async_chat,
            max_shard_work: max_shard,
            stages,
            crash,
        }
    }
}

/// Builds the tick pipeline for a profile: a static stripe partition, or —
/// when the flavor rebalances (subject to the [`ServerConfig`] override) —
/// an adaptive quadtree partition whose root covers the world's current
/// chunk footprint, pre-split toward the profile's target shard count.
fn build_pipeline(profile: &FlavorProfile, config: &ServerConfig, world: &World) -> TickPipeline {
    let rebalance = config.shard_rebalance.unwrap_or(profile.rebalance);
    if rebalance && profile.tick_shards > 1 {
        TickPipeline::adaptive(
            world.chunk_bounds(),
            profile.tick_shards,
            config.tick_threads,
        )
    } else {
        TickPipeline::new(profile.tick_shards, config.tick_threads)
    }
}

/// The world position a broadcast packet's relevance is anchored to, if
/// any. Positioned packets are subject to area-of-interest filtering;
/// packets with no anchor are global. `EntityDestroy` carries no position
/// on the wire, so removals are disseminated globally — clients must be
/// able to drop entities they stopped seeing move.
fn packet_position(packet: &ClientboundPacket) -> Option<Vec3> {
    match packet {
        ClientboundPacket::EntityMove { pos, .. } | ClientboundPacket::EntitySpawn { pos, .. } => {
            Some(*pos)
        }
        ClientboundPacket::BlockChange { pos, .. } => Some(Vec3::new(
            f64::from(pos.x) + 0.5,
            f64::from(pos.y) + 0.5,
            f64::from(pos.z) + 0.5,
        )),
        _ => None,
    }
}

fn entity_kind_id(kind: EntityKind) -> u16 {
    match kind {
        EntityKind::Item(_) => 0,
        EntityKind::PrimedTnt => 1,
        EntityKind::FallingBlock(_) => 2,
        EntityKind::Zombie => 3,
        EntityKind::Skeleton => 4,
        EntityKind::Cow => 5,
        EntityKind::Villager => 6,
        EntityKind::ExperienceOrb => 7,
        _ => u16::MAX,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flavor::ServerFlavor;
    use cloud_sim::environment::Environment;
    use mlg_world::generation::FlatGenerator;
    use mlg_world::{Block, BlockPos, Region};

    fn flat_world() -> World {
        World::new(Box::new(FlatGenerator::grassland()), 7)
    }

    fn server(flavor: ServerFlavor) -> GameServer {
        let config = ServerConfig::for_flavor(flavor).with_view_distance(2);
        GameServer::new(config, flat_world(), Vec3::new(0.5, 61.0, 0.5))
    }

    fn engine() -> ComputeEngine {
        Environment::das5(2).instantiate(1).engine
    }

    #[test]
    fn idle_server_ticks_are_fast_and_stable() {
        let mut s = server(ServerFlavor::Vanilla);
        let mut e = engine();
        let mut max_busy: f64 = 0.0;
        for _ in 0..100 {
            let summary = s.run_tick(&mut e);
            max_busy = max_busy.max(summary.record.busy_ms);
            assert!(summary.crash.is_none());
        }
        assert!(
            max_busy < 10.0,
            "idle ticks should be far under budget, got {max_busy}"
        );
        assert_eq!(s.ticks_executed(), 100);
        assert!(s.clock_ms() >= 100.0 * 50.0);
    }

    #[test]
    fn connecting_a_player_streams_chunks_and_causes_a_spike() {
        let mut s = server(ServerFlavor::Vanilla);
        let mut e = engine();
        // Warm up.
        for _ in 0..5 {
            s.run_tick(&mut e);
        }
        let baseline = s.run_tick(&mut e).record.busy_ms;
        let id = s.connect_player("probe");
        let join_packets = s.drain_outgoing(id);
        assert!(
            join_packets
                .iter()
                .any(|p| matches!(p, ClientboundPacket::LoginAccepted { .. })),
            "join must produce a login packet"
        );
        assert!(
            join_packets
                .iter()
                .filter(|p| matches!(p, ClientboundPacket::ChunkData { .. }))
                .count()
                >= 25,
            "join must stream the spawn area"
        );
        let join_tick = s.run_tick(&mut e).record.busy_ms;
        assert!(
            join_tick > baseline * 3.0,
            "join tick ({join_tick} ms) should spike well above baseline ({baseline} ms)"
        );
        assert_eq!(s.player_count(), 1);
    }

    #[test]
    fn chat_is_echoed_back_to_the_sender() {
        let mut s = server(ServerFlavor::Vanilla);
        let mut e = engine();
        let id = s.connect_player("probe");
        s.drain_outgoing(id);
        s.enqueue_packet(
            id,
            ServerboundPacket::Chat {
                message: "ping".into(),
                sent_at_ms: 777.0,
            },
        );
        s.run_tick(&mut e);
        let packets = s.drain_outgoing(id);
        let echo = packets.iter().find_map(|p| match p {
            ClientboundPacket::Chat { echo_of_ms, .. } => Some(*echo_of_ms),
            _ => None,
        });
        assert_eq!(echo, Some(777.0));
    }

    #[test]
    fn player_block_changes_are_broadcast() {
        let mut s = server(ServerFlavor::Vanilla);
        let mut e = engine();
        let a = s.connect_player("alice");
        let b = s.connect_player("bob");
        s.drain_outgoing(a);
        s.drain_outgoing(b);
        s.enqueue_packet(
            a,
            ServerboundPacket::BlockPlace {
                pos: BlockPos::new(3, 61, 3),
                block: Block::simple(BlockKind::Planks),
            },
        );
        s.run_tick(&mut e);
        let to_bob = s.drain_outgoing(b);
        assert!(
            to_bob
                .iter()
                .any(|p| matches!(p, ClientboundPacket::BlockChange { .. })),
            "other players must receive the block change"
        );
    }

    #[test]
    fn paper_flavor_is_cheaper_than_vanilla_on_entity_load() {
        let world_with_tnt = || {
            let mut w = flat_world();
            w.fill_region(
                Region::new(BlockPos::new(0, 61, 0), BlockPos::new(7, 64, 7)),
                Block::simple(BlockKind::Tnt),
            );
            w
        };
        let run = |flavor: ServerFlavor| {
            let config = ServerConfig::for_flavor(flavor).with_view_distance(2);
            let mut s = GameServer::new(config, world_with_tnt(), Vec3::new(0.5, 61.0, 0.5));
            s.connect_player("probe");
            s.schedule_tnt_ignition(2);
            let mut e = engine();
            let mut total = 0.0;
            for _ in 0..100 {
                total += s.run_tick(&mut e).record.busy_ms;
            }
            total
        };
        let vanilla = run(ServerFlavor::Vanilla);
        let paper = run(ServerFlavor::Paper);
        assert!(
            paper < vanilla * 0.8,
            "PaperMC ({paper} ms) should be notably cheaper than Vanilla ({vanilla} ms)"
        );
    }

    #[test]
    fn tnt_ignition_schedules_every_tnt_block() {
        let mut s = server(ServerFlavor::Vanilla);
        s.world_mut().fill_region(
            Region::new(BlockPos::new(0, 61, 0), BlockPos::new(3, 61, 3)),
            Block::simple(BlockKind::Tnt),
        );
        let scheduled = s.schedule_tnt_ignition(10);
        assert_eq!(scheduled, 16);
    }

    #[test]
    fn tnt_chain_reaction_creates_entities_and_destroys_terrain() {
        let mut s = server(ServerFlavor::Vanilla);
        let mut e = engine();
        s.connect_player("probe");
        s.world_mut().fill_region(
            Region::new(BlockPos::new(4, 61, 4), BlockPos::new(9, 63, 9)),
            Block::simple(BlockKind::Tnt),
        );
        s.schedule_tnt_ignition(2);
        let mut saw_entities = false;
        for _ in 0..300 {
            let summary = s.run_tick(&mut e);
            if summary.entity_count > 10 {
                saw_entities = true;
            }
        }
        assert!(
            saw_entities,
            "chain reaction should prime many TNT entities"
        );
        assert_eq!(s.world().count_kind(BlockKind::Tnt), 0, "all TNT consumed");
    }

    #[test]
    fn stalled_tick_crashes_the_server() {
        let config = ServerConfig {
            keepalive_timeout_ms: 40.0, // absurdly low so a join spike trips it
            ..ServerConfig::for_flavor(ServerFlavor::Vanilla).with_view_distance(6)
        };
        let mut s = GameServer::new(config, flat_world(), Vec3::new(0.5, 61.0, 0.5));
        let mut e = engine();
        s.connect_player("probe");
        let mut crashed = false;
        for _ in 0..50 {
            let summary = s.run_tick(&mut e);
            if summary.crash.is_some() {
                crashed = true;
                break;
            }
        }
        assert!(
            crashed,
            "server should crash when a tick exceeds the keep-alive window"
        );
        assert!(!s.is_running());
        assert_eq!(s.player_count(), 0);
        // Further ticks are no-ops that keep reporting the crash.
        let again = s.run_tick(&mut e);
        assert!(again.crash.is_some());
    }

    #[test]
    fn traffic_summary_records_entity_packets() {
        let mut s = server(ServerFlavor::Vanilla);
        let mut e = engine();
        s.connect_player("probe");
        s.spawn_entity(EntityKind::Cow, Vec3::new(5.5, 70.0, 5.5));
        for _ in 0..20 {
            s.run_tick(&mut e);
        }
        let summary = s.traffic_summary();
        assert!(summary.total_messages() > 0);
        assert!(
            summary
                .category(mlg_protocol::TrafficCategory::Entity)
                .messages
                > 0,
            "falling cow should generate entity-move packets"
        );
    }

    #[test]
    fn sharded_server_ticks_are_bit_identical_at_any_thread_count() {
        let run = |threads: u32| {
            let config = ServerConfig::for_flavor(ServerFlavor::Folia)
                .with_view_distance(3)
                .with_tick_threads(threads);
            let mut s = GameServer::new(config, flat_world(), Vec3::new(0.5, 61.0, 0.5));
            assert!(s.pipeline().is_sharded());
            s.connect_player("probe");
            s.world_mut().fill_region(
                Region::new(BlockPos::new(4, 61, 4), BlockPos::new(12, 62, 12)),
                Block::simple(BlockKind::Tnt),
            );
            s.schedule_tnt_ignition(2);
            let mut e = engine();
            let mut summaries = Vec::new();
            for _ in 0..60 {
                summaries.push(s.run_tick(&mut e));
            }
            (summaries, s.traffic_summary().clone())
        };
        let reference = run(1);
        let parallel = run(4);
        for (a, b) in reference.0.iter().zip(&parallel.0) {
            assert_eq!(a, b, "TickSummary diverged between thread counts");
        }
        assert_eq!(reference.1, parallel.1, "traffic summaries diverged");
    }

    #[test]
    fn folia_flavor_beats_vanilla_on_entity_load_with_many_cores() {
        let world_with_tnt = || {
            let mut w = flat_world();
            w.fill_region(
                Region::new(BlockPos::new(0, 61, 0), BlockPos::new(7, 64, 7)),
                Block::simple(BlockKind::Tnt),
            );
            w
        };
        let run = |flavor: ServerFlavor| {
            let config = ServerConfig::for_flavor(flavor).with_view_distance(2);
            let mut s = GameServer::new(config, world_with_tnt(), Vec3::new(0.5, 61.0, 0.5));
            s.connect_player("probe");
            s.schedule_tnt_ignition(2);
            let mut e = Environment::das5(8).instantiate(1).engine;
            let mut total = 0.0;
            for _ in 0..100 {
                total += s.run_tick(&mut e).record.busy_ms;
            }
            total
        };
        let vanilla = run(ServerFlavor::Vanilla);
        let folia = run(ServerFlavor::Folia);
        assert!(
            folia < vanilla * 0.6,
            "sharded Folia ({folia} ms) should exploit the 8-core node far better than Vanilla ({vanilla} ms)"
        );
    }

    #[test]
    fn stage_breakdown_accounts_for_the_whole_tick() {
        let mut s = server(ServerFlavor::Vanilla);
        let mut e = engine();
        s.connect_player("probe");
        s.enqueue_packet(
            s.player(PlayerId(1)).unwrap().id,
            ServerboundPacket::BlockPlace {
                pos: BlockPos::new(3, 61, 3),
                block: Block::simple(BlockKind::Planks),
            },
        );
        for _ in 0..5 {
            let summary = s.run_tick(&mut e);
            assert!(
                (summary.stages.total_ms() - summary.record.busy_ms).abs() < 1e-9,
                "stage breakdown ({}) must sum to busy time ({})",
                summary.stages.total_ms(),
                summary.record.busy_ms
            );
            assert!(summary.stages.player_ms > 0.0, "players are connected");
        }
    }

    #[test]
    fn pipelined_lighting_defers_the_relight_one_tick() {
        // Folia defaults to pipelined lighting: a terrain change queues its
        // relight set for the next tick instead of lighting in-stage.
        let config = ServerConfig::for_flavor(ServerFlavor::Folia).with_view_distance(2);
        let mut s = GameServer::new(config, flat_world(), Vec3::new(0.5, 61.0, 0.5));
        assert!(!s.eager_lighting());
        let mut e = engine();
        s.connect_player("probe");
        s.run_tick(&mut e);
        assert_eq!(s.pending_relight_len(), 0, "idle ticks queue nothing");
        // A fused TNT block detonating is a terrain-stage change.
        s.world_mut()
            .set_block_silent(BlockPos::new(5, 61, 5), Block::simple(BlockKind::Tnt));
        s.schedule_tnt_ignition(1);
        s.run_tick(&mut e);
        assert!(
            s.pending_relight_len() > 0,
            "the ignition change must queue for the pipelined stage"
        );
        s.run_tick(&mut e);
        // The next tick consumed the queue (explosion fallout may requeue
        // new changes, but the original set is gone; on this quiet world
        // the queue drains as the cascade settles).
        for _ in 0..40 {
            s.run_tick(&mut e);
        }
        assert_eq!(s.pending_relight_len(), 0, "the queue must drain");

        // The ServerConfig override forces eager lighting back on.
        let eager_config = ServerConfig::for_flavor(ServerFlavor::Folia)
            .with_view_distance(2)
            .with_eager_lighting(Some(true));
        let eager = GameServer::new(eager_config, flat_world(), Vec3::new(0.5, 61.0, 0.5));
        assert!(eager.eager_lighting());
    }

    #[test]
    fn eager_and_pipelined_lighting_agree_on_world_state() {
        // Lighting is a pure cost model — pipelining it must not change
        // simulation results, only when the cost lands.
        let run = |eager: Option<bool>| {
            let config = ServerConfig::for_flavor(ServerFlavor::Folia)
                .with_view_distance(2)
                .with_eager_lighting(eager);
            let mut s = GameServer::new(config, flat_world(), Vec3::new(0.5, 61.0, 0.5));
            s.connect_player("probe");
            s.world_mut().fill_region(
                Region::new(BlockPos::new(4, 61, 4), BlockPos::new(9, 62, 9)),
                Block::simple(BlockKind::Tnt),
            );
            s.schedule_tnt_ignition(2);
            let mut e = engine();
            for _ in 0..60 {
                s.run_tick(&mut e);
            }
            (
                s.world().total_non_air_blocks(),
                s.entity_count(),
                s.ticks_executed(),
            )
        };
        assert_eq!(run(Some(true)), run(Some(false)));
    }

    #[test]
    fn tick_distribution_accounts_for_the_whole_tick() {
        let mut s = server(ServerFlavor::Vanilla);
        let mut e = engine();
        s.connect_player("probe");
        let summary = s.run_tick(&mut e);
        let d = summary.record.distribution;
        // Busy components sum to the busy time, waits fill the rest.
        assert!((d.busy_ms() - summary.record.busy_ms).abs() < 1e-6);
        assert!(d.total_ms() >= summary.record.busy_ms);
    }
}
