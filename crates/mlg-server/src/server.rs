//! The game server and its 20 Hz game loop.

use cloud_sim::engine::{ComputeEngine, TickWork};
use meterstick_metrics::distribution::TickDistribution;
use meterstick_metrics::trace::TickRecord;
use mlg_entity::{EntityId, EntityKind, EntityManager, Vec3};
use mlg_protocol::{ClientboundPacket, ServerboundPacket, TrafficAccountant, TrafficSummary};
use mlg_world::shard::{ShardLoadReport, TickPipeline};
use mlg_world::sim::TerrainEvent;
use mlg_world::{BlockKind, TerrainSimulator, World};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::ServerConfig;
use crate::flavor::FlavorProfile;
use crate::handler::{self, PlayerStageReport};
use crate::player::{ConnectedPlayer, PlayerId};
use crate::queues::NetworkingQueues;

/// Why and when a server run aborted.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerCrash {
    /// Human-readable reason.
    pub reason: String,
    /// Tick index at which the crash happened.
    pub at_tick: u64,
    /// Virtual time of the crash, in milliseconds.
    pub at_ms: f64,
}

/// Summary of one executed game tick.
#[derive(Debug, Clone, PartialEq)]
pub struct TickSummary {
    /// The metric record for this tick (busy time, period, distribution).
    pub record: TickRecord,
    /// Virtual time at which the tick started.
    pub start_ms: f64,
    /// Virtual time at which the tick ended (start + period).
    pub end_ms: f64,
    /// Number of live entities after the tick.
    pub entity_count: usize,
    /// Number of connected (non-disconnected) players.
    pub player_count: usize,
    /// Number of clientbound packets emitted during the tick (all players).
    pub packets_emitted: u64,
    /// Bytes received from clients during the tick.
    pub bytes_received: u64,
    /// CPU utilization reported by the compute engine for this tick.
    pub cpu_utilization: f64,
    /// Whether chat echoes emitted this tick were handled asynchronously
    /// (PaperMC behaviour) and therefore do not wait for the tick to finish.
    pub async_chat: bool,
    /// The busiest shard's share of this tick's parallelizable work, in
    /// work units — the load-balance floor the compute engine applied
    /// (0 on the serial path). Adaptive rebalancing exists to shrink this
    /// number under hotspot workloads.
    pub max_shard_work: u64,
    /// Set when the server crashed during this tick.
    pub crash: Option<ServerCrash>,
}

/// The Minecraft-like game server.
pub struct GameServer {
    config: ServerConfig,
    profile: FlavorProfile,
    pipeline: TickPipeline,
    world: World,
    terrain: TerrainSimulator,
    entities: EntityManager,
    players: Vec<ConnectedPlayer>,
    queues: NetworkingQueues,
    traffic: TrafficAccountant,
    spawn_point: Vec3,
    next_player_id: u32,
    tick_index: u64,
    clock_ms: f64,
    pending_join_chunks: u64,
    ms_since_keepalive: f64,
    crash: Option<ServerCrash>,
    gc_rng: StdRng,
    next_minor_gc_tick: u64,
    next_major_gc_tick: u64,
}

/// Base cost, in work units, of keeping one player connected for one tick:
/// visibility-set maintenance, entity tracking, packet compression and
/// connection upkeep. This is what makes the 25-player Players workload
/// meaningfully heavier than a single observer.
const PER_PLAYER_TICK_WORK: u64 = 3_000;

/// Ticks between minor garbage-collection pauses of the simulated JVM.
const MINOR_GC_INTERVAL_TICKS: u64 = 180;

/// Ticks between major garbage-collection pauses of the simulated JVM.
const MAJOR_GC_INTERVAL_TICKS: u64 = 900;

impl std::fmt::Debug for GameServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GameServer")
            .field("flavor", &self.config.flavor)
            .field("tick", &self.tick_index)
            .field("players", &self.players.len())
            .field("entities", &self.entities.count())
            .field("crashed", &self.crash.is_some())
            .finish()
    }
}

impl GameServer {
    /// Creates a server running `config` over a pre-built world (usually one
    /// of the Meterstick workload worlds), with players spawning at
    /// `spawn_point`.
    #[must_use]
    pub fn new(config: ServerConfig, mut world: World, spawn_point: Vec3) -> Self {
        let profile = config.flavor.profile();
        let pipeline = build_pipeline(&profile, &config, &world);
        if pipeline.is_sharded() {
            world.reshard(pipeline.shard_map().clone());
        }
        let mut entities = EntityManager::new(config.seed ^ 0xE47);
        entities.natural_spawning = config.natural_spawning;
        entities.max_tnt_per_tick = profile.max_tnt_per_tick;
        let terrain = TerrainSimulator {
            random_ticks_per_chunk: config.random_ticks_per_chunk,
            eager_lighting: true,
            ..TerrainSimulator::default()
        };
        let gc_seed = config.seed ^ 0x6C;
        GameServer {
            config,
            profile,
            pipeline,
            world,
            terrain,
            entities,
            players: Vec::new(),
            queues: NetworkingQueues::new(),
            traffic: TrafficAccountant::new(),
            spawn_point,
            next_player_id: 1,
            tick_index: 0,
            clock_ms: 0.0,
            pending_join_chunks: 0,
            ms_since_keepalive: 0.0,
            crash: None,
            gc_rng: StdRng::seed_from_u64(gc_seed),
            next_minor_gc_tick: MINOR_GC_INTERVAL_TICKS,
            next_major_gc_tick: MAJOR_GC_INTERVAL_TICKS,
        }
    }

    /// The server configuration.
    #[must_use]
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The flavor performance profile in effect.
    #[must_use]
    pub fn profile(&self) -> &FlavorProfile {
        &self.profile
    }

    /// Overrides the flavor profile (used by ablation benchmarks to toggle
    /// individual optimizations).
    pub fn set_profile(&mut self, profile: FlavorProfile) {
        self.entities.max_tnt_per_tick = profile.max_tnt_per_tick;
        self.pipeline = build_pipeline(&profile, &self.config, &self.world);
        if self.pipeline.is_sharded() {
            self.world.reshard(self.pipeline.shard_map().clone());
        }
        self.profile = profile;
    }

    /// The tick-pipeline execution configuration in effect.
    #[must_use]
    pub fn pipeline(&self) -> &TickPipeline {
        &self.pipeline
    }

    /// Read access to the world (for workload validation and tests).
    #[must_use]
    pub fn world(&self) -> &World {
        &self.world
    }

    /// Mutable access to the world (used by workload setup, e.g. fusing TNT).
    pub fn world_mut(&mut self) -> &mut World {
        &mut self.world
    }

    /// Current virtual time in milliseconds.
    #[must_use]
    pub fn clock_ms(&self) -> f64 {
        self.clock_ms
    }

    /// Number of ticks executed so far.
    #[must_use]
    pub fn ticks_executed(&self) -> u64 {
        self.tick_index
    }

    /// Number of live entities.
    #[must_use]
    pub fn entity_count(&self) -> usize {
        self.entities.count()
    }

    /// The crash record, if the server aborted.
    #[must_use]
    pub fn crash(&self) -> Option<&ServerCrash> {
        self.crash.as_ref()
    }

    /// Returns `true` while the server can keep ticking.
    #[must_use]
    pub fn is_running(&self) -> bool {
        self.crash.is_none()
    }

    /// Accumulated clientbound traffic summary (Table 8 source data).
    #[must_use]
    pub fn traffic_summary(&self) -> &TrafficSummary {
        self.traffic.summary()
    }

    /// Connects a new player and returns its id.
    ///
    /// Connection streams the spawn area to the client (chunk generation and
    /// chunk-data packets), which is the work burst behind the paper's
    /// observation that response-time outliers "occur directly after a player
    /// connects".
    pub fn connect_player(&mut self, name: &str) -> PlayerId {
        let id = PlayerId(self.next_player_id);
        self.next_player_id += 1;
        let entity_id = EntityId(u64::from(id.0) | 0x4000_0000);
        let player = ConnectedPlayer {
            id,
            entity_id,
            name: name.to_string(),
            pos: self.spawn_point,
            connected_at_tick: self.tick_index,
            last_served_ms: self.clock_ms,
            disconnected: false,
        };
        self.queues.add_connection(id);

        // Stream the spawn area: generate chunks and queue chunk-data packets.
        let center = player.pos.block_pos().chunk();
        let generated = self.world.ensure_area(center, self.config.view_distance);
        self.pending_join_chunks += generated as u64;
        let login = ClientboundPacket::LoginAccepted {
            player_id: entity_id,
            spawn: player.pos,
        };
        self.traffic.record(&login, 1);
        self.queues.push_outgoing(id, login);
        for chunk_pos in center.within_radius(self.config.view_distance) {
            let payload = self
                .world
                .chunk_if_loaded(chunk_pos)
                .map_or(64, |c| c.network_size_bytes()) as u32;
            let packet = ClientboundPacket::ChunkData {
                pos: chunk_pos,
                payload_bytes: payload,
            };
            self.traffic.record(&packet, 1);
            self.queues.push_outgoing(id, packet);
        }
        self.players.push(player);
        id
    }

    /// Number of connected, non-disconnected players.
    #[must_use]
    pub fn player_count(&self) -> usize {
        self.players.iter().filter(|p| !p.disconnected).count()
    }

    /// Returns the connected player with the given id, if any.
    #[must_use]
    pub fn player(&self, id: PlayerId) -> Option<&ConnectedPlayer> {
        self.players.iter().find(|p| p.id == id)
    }

    /// Buffers a serverbound packet from `player` into the networking queues.
    pub fn enqueue_packet(&mut self, player: PlayerId, packet: ServerboundPacket) {
        self.queues.push_incoming(player, packet);
    }

    /// Drains the clientbound packets queued for `player`.
    pub fn drain_outgoing(&mut self, player: PlayerId) -> Vec<ClientboundPacket> {
        self.queues.drain_outgoing(player)
    }

    /// Schedules every TNT block currently loaded in the world to ignite
    /// `delay_ticks` from now. Used by the TNT workload ("set to explode
    /// around 20 seconds after a player connects").
    pub fn schedule_tnt_ignition(&mut self, delay_ticks: u64) -> usize {
        let mut positions = Vec::new();
        for chunk in self.world.iter_chunks() {
            let origin = chunk.pos().origin_block();
            for (lx, y, lz, block) in chunk.iter_non_air() {
                if block.kind() == BlockKind::Tnt {
                    positions.push(mlg_world::BlockPos::new(
                        origin.x + lx as i32,
                        y,
                        origin.z + lz as i32,
                    ));
                }
            }
        }
        for &pos in &positions {
            self.world.schedule_tick(pos, delay_ticks);
        }
        positions.len()
    }

    /// Spawns an entity directly (used by workload setup, e.g. villagers in
    /// farm worlds).
    pub fn spawn_entity(&mut self, kind: EntityKind, pos: Vec3) -> EntityId {
        self.entities.spawn(kind, pos)
    }

    fn handle_terrain_events(
        &mut self,
        events: Vec<TerrainEvent>,
    ) -> Vec<(EntityId, EntityKind, Vec3)> {
        let mut spawned = Vec::new();
        for event in events {
            match event {
                TerrainEvent::TntIgnited { pos } => {
                    let p = Vec3::from_block_center(pos);
                    let id = self.entities.spawn(EntityKind::PrimedTnt, p);
                    spawned.push((id, EntityKind::PrimedTnt, p));
                }
                TerrainEvent::BlockHarvested { pos, kind } => {
                    let p = Vec3::from_block_center(pos);
                    let id = self.entities.spawn(EntityKind::Item(kind), p);
                    spawned.push((id, EntityKind::Item(kind), p));
                }
                TerrainEvent::ItemDispensed { pos } => {
                    let p = Vec3::from_block_center(pos.up());
                    let id = self
                        .entities
                        .spawn(EntityKind::Item(BlockKind::Cobblestone), p);
                    spawned.push((id, EntityKind::Item(BlockKind::Cobblestone), p));
                }
            }
        }
        spawned
    }

    /// Runs one game tick, converting its work into time on the given compute
    /// engine, and returns the tick summary.
    ///
    /// Returns the last crash summary again (without doing any work) if the
    /// server has already crashed.
    pub fn run_tick(&mut self, engine: &mut ComputeEngine) -> TickSummary {
        let start_ms = self.clock_ms;
        if let Some(crash) = &self.crash {
            return TickSummary {
                record: TickRecord {
                    index: self.tick_index,
                    start_ms,
                    busy_ms: 0.0,
                    period_ms: self.config.tick_budget_ms,
                    distribution: TickDistribution::default(),
                },
                start_ms,
                end_ms: start_ms + self.config.tick_budget_ms,
                entity_count: self.entities.count(),
                player_count: 0,
                packets_emitted: 0,
                bytes_received: 0,
                cpu_utilization: 0.0,
                async_chat: self.profile.async_chat,
                max_shard_work: 0,
                crash: Some(crash.clone()),
            };
        }

        self.tick_index += 1;
        self.world.advance_tick();

        // --- Stage 1: player handler -------------------------------------
        let mut player_report = PlayerStageReport::default();
        let mut bytes_received = 0u64;
        // Index connected players once: iterating ids and re-scanning the
        // player list per id was O(P²) per tick.
        let connected: Vec<usize> = self
            .players
            .iter()
            .enumerate()
            .filter(|(_, p)| !p.disconnected)
            .map(|(index, _)| index)
            .collect();
        for index in connected {
            let id = self.players[index].id;
            let actions = self.queues.drain_incoming(id);
            bytes_received += actions
                .iter()
                .map(|a| mlg_protocol::codec::serverbound_wire_size(a) as u64)
                .sum::<u64>();
            handler::process_player_actions(
                &mut self.world,
                &mut self.players[index],
                actions,
                &mut player_report,
            );
        }

        // --- Stage 2: terrain simulation ----------------------------------
        let (terrain_report, terrain_events, terrain_shard_work) = if self.pipeline.is_sharded() {
            let out = self.terrain.tick_sharded(&mut self.world, &self.pipeline);
            (out.report, out.events, Some(out.per_shard_work))
        } else {
            let (report, events) = self.terrain.tick(&mut self.world);
            (report, events, None)
        };
        let event_spawns = self.handle_terrain_events(terrain_events);

        // --- Stage 3: entity simulation -----------------------------------
        let player_positions = handler::player_positions(&self.players);
        let (entity_report, entity_shard_work) = if self.pipeline.is_sharded() {
            let (report, per_shard) =
                self.entities
                    .tick_batched(&mut self.world, &player_positions, &self.pipeline);
            (report, Some(per_shard))
        } else {
            let report = self.entities.tick(&mut self.world, &player_positions);
            (report, None)
        };

        // --- Stage 4: state-update dissemination --------------------------
        let mut packets_emitted = 0u64;
        let recipients = self.player_count() as u64;
        let changes = self.world.drain_changes();
        if recipients > 0 {
            // Player position synchronisation: every connected player's
            // position is broadcast each tick (entity-related traffic, which
            // is why Table 8 shows entity messages dominating even the
            // Control workload).
            let player_moves: Vec<ClientboundPacket> = self
                .players
                .iter()
                .filter(|pl| !pl.disconnected)
                .map(|pl| ClientboundPacket::EntityMove {
                    id: pl.entity_id,
                    pos: pl.pos,
                })
                .collect();
            for packet in &player_moves {
                self.traffic.record(packet, recipients);
                packets_emitted += self.queues.broadcast(packet);
            }
            for change in &changes {
                let packet = ClientboundPacket::BlockChange {
                    pos: change.pos,
                    block: change.new,
                };
                self.traffic.record(&packet, recipients);
                packets_emitted += self.queues.broadcast(&packet);
            }
            for (id, kind, pos) in &event_spawns {
                let packet = ClientboundPacket::EntitySpawn {
                    id: *id,
                    kind_id: entity_kind_id(*kind),
                    pos: *pos,
                };
                self.traffic.record(&packet, recipients);
                packets_emitted += self.queues.broadcast(&packet);
            }
            for (id, kind) in &entity_report.spawned {
                let packet = ClientboundPacket::EntitySpawn {
                    id: *id,
                    kind_id: entity_kind_id(*kind),
                    pos: self.spawn_point,
                };
                self.traffic.record(&packet, recipients);
                packets_emitted += self.queues.broadcast(&packet);
            }
            for (id, pos) in &entity_report.moved {
                let packet = ClientboundPacket::EntityMove { id: *id, pos: *pos };
                self.traffic.record(&packet, recipients);
                packets_emitted += self.queues.broadcast(&packet);
            }
            for id in &entity_report.removed {
                let packet = ClientboundPacket::EntityDestroy { id: *id };
                self.traffic.record(&packet, recipients);
                packets_emitted += self.queues.broadcast(&packet);
            }
            for chat in &player_report.pending_chat {
                let packet = ClientboundPacket::Chat {
                    message: format!("<{}> {}", chat.sender, chat.message),
                    echo_of_ms: chat.sent_at_ms,
                };
                self.traffic.record(&packet, recipients);
                packets_emitted += self.queues.broadcast(&packet);
            }
            if self.tick_index.is_multiple_of(20) {
                let packet = ClientboundPacket::TimeUpdate {
                    world_age_ticks: self.tick_index,
                };
                self.traffic.record(&packet, recipients);
                packets_emitted += self.queues.broadcast(&packet);
            }
            if self.tick_index.is_multiple_of(100) {
                let packet = ClientboundPacket::KeepAlive {
                    id: self.tick_index,
                };
                self.traffic.record(&packet, recipients);
                packets_emitted += self.queues.broadcast(&packet);
            }
        }

        // --- Stage 5: work accounting and time conversion ------------------
        let p = &self.profile;
        let player_work = (player_report.base_work_units() as f64) as u64;
        let add_remove_work = terrain_report.blocks_added * 25
            + terrain_report.blocks_removed * 25
            + terrain_report.blocks_updated * 10;
        let update_work_raw = terrain_report.neighbor_updates * 12
            + terrain_report.scheduled_updates * 14
            + terrain_report.random_ticks * 4
            + terrain_report.fluid_spreads * 18
            + terrain_report.redstone_propagations * 16
            + terrain_report.growths * 20
            + terrain_report.blocks_scanned;
        let update_work = (update_work_raw as f64 * p.redstone_multiplier) as u64;
        let light_work =
            (terrain_report.light_positions as f64 * 2.0 * p.lighting_multiplier) as u64;
        let chunk_work = (terrain_report.chunks_generated + self.pending_join_chunks) * 4_000;
        self.pending_join_chunks = 0;

        let explosion_component =
            entity_report.explosions * 500 + entity_report.blocks_destroyed * 30;
        let entity_base = entity_report.base_work_units();
        let entity_work = ((entity_base.saturating_sub(explosion_component)) as f64
            * p.entity_multiplier
            + explosion_component as f64 * p.explosion_multiplier) as u64;

        let chat_work = player_report.chat_messages * 25 * recipients.max(1);
        let packet_work = packets_emitted * 3;
        let connection_work = recipients * PER_PLAYER_TICK_WORK;
        let overhead_work = 2_000u64;

        // Simulated JVM garbage collection: periodic pauses whose length
        // grows with the live heap (entities and loaded chunks). Minor
        // collections stay within the tick budget; major collections are the
        // occasional large outliers that even self-hosted deployments show.
        let mut gc_work = 0u64;
        if self.tick_index >= self.next_minor_gc_tick {
            gc_work += 80_000
                + self.entities.count() as u64 * 60
                + self.world.loaded_chunk_count() as u64 * 150;
            self.next_minor_gc_tick =
                self.tick_index + MINOR_GC_INTERVAL_TICKS + self.gc_rng.gen_range(0..60);
        }
        if self.tick_index >= self.next_major_gc_tick {
            gc_work += 600_000
                + self.entities.count() as u64 * 400
                + self.world.loaded_chunk_count() as u64 * 800;
            self.next_major_gc_tick =
                self.tick_index + MAJOR_GC_INTERVAL_TICKS + self.gc_rng.gen_range(0..200);
        }

        let total_work = ((player_work
            + add_remove_work
            + update_work
            + light_work
            + chunk_work
            + entity_work
            + chat_work
            + packet_work
            + connection_work
            + gc_work
            + overhead_work) as f64
            * p.overhead_multiplier) as u64;

        let mut offloadable = (p.offload_fraction
            * (update_work + light_work + chunk_work + packet_work) as f64)
            as u64;
        if p.async_chat {
            offloadable += chat_work;
        }
        let offloadable = offloadable.min(total_work);

        // Parallelizable share of the game loop itself: JVM GC is parallel
        // for every flavor, plus `parallel_fraction` of the entity, lighting
        // and chunk work (tick shards for Folia-like flavors, JVM-runtime
        // parallelism otherwise). The light/chunk share already counted as
        // offloadable is excluded so no component is classified off the
        // main thread twice. Redstone/block-update cascades stay serial —
        // they are dependency chains even under sharding.
        let shardable_pool = entity_work
            + ((1.0 - p.offload_fraction.clamp(0.0, 1.0)) * (light_work + chunk_work) as f64)
                as u64;
        let parallelizable = (gc_work + (p.parallel_fraction * shardable_pool as f64) as u64)
            .min(total_work - offloadable);
        let main_thread = total_work - offloadable - parallelizable;
        let parallel_width = if self.pipeline.is_sharded() {
            self.pipeline.shards()
        } else {
            // JVM-runtime parallelism is not bound to tick shards.
            u32::MAX
        };
        // Load-balance floor: the busiest shard's measured share of the
        // parallel work (zero when nothing sharded ran, i.e. perfectly
        // divisible JVM work). The same merged report also drives adaptive
        // rebalancing below, so the compute model and the partition always
        // see identical loads.
        let load_report = match (&terrain_shard_work, &entity_shard_work) {
            (Some(terrain), Some(entities)) => {
                Some(ShardLoadReport::from_stage_work(terrain, entities))
            }
            _ => None,
        };
        let max_shard = match &load_report {
            Some(report) if report.total() > 0 => {
                ((parallelizable as u128 * u128::from(report.max()) / u128::from(report.total()))
                    as u64)
                    .min(parallelizable)
            }
            _ => 0,
        };

        // Adaptive rebalancing: apply this tick's merged load report to the
        // partition (a pure function of the report, so bit-identical at any
        // thread count). The world is resharded lazily by the next tick's
        // sharded terrain phase.
        if self.pipeline.rebalance_enabled() {
            if let Some(report) = &load_report {
                self.pipeline.apply_load_report(report);
            }
        }

        let execution = engine.execute_tick(
            TickWork {
                main_thread,
                offloadable,
                parallelizable,
                parallel_width,
                max_shard,
            },
            self.config.tick_budget_ms,
        );
        let busy_ms = execution.busy_ms;

        // --- Stage 6: tick-time distribution -------------------------------
        let busy_components = [
            ((player_work + connection_work) as f64, 0usize), // Players
            (add_remove_work as f64, 1),                      // BlockAddRemove
            (update_work as f64, 2),                          // BlockUpdate
            (entity_work as f64, 3),                          // Entities
            (
                (light_work + chunk_work + chat_work + packet_work + gc_work + overhead_work)
                    as f64,
                4,
            ), // Other
        ];
        let component_total: f64 = busy_components.iter().map(|(w, _)| w).sum::<f64>().max(1.0);
        let mut distribution = TickDistribution::default();
        for (work, slot) in busy_components {
            let ms = busy_ms * work / component_total;
            match slot {
                0 => distribution.players_ms = ms,
                1 => distribution.block_add_remove_ms = ms,
                2 => distribution.block_update_ms = ms,
                3 => distribution.entities_ms = ms,
                _ => distribution.other_ms = ms,
            }
        }
        distribution.wait_before_ms = 0.1;
        distribution.wait_after_ms = (self.config.tick_budget_ms - busy_ms).max(0.0);

        // --- Stage 7: clock advance and overload handling ------------------
        let period_ms = busy_ms.max(self.config.tick_budget_ms);
        self.clock_ms += period_ms;
        let end_ms = self.clock_ms;
        for player in self.players.iter_mut().filter(|pl| !pl.disconnected) {
            player.last_served_ms = end_ms;
        }

        // Crash semantics: clients time out when the server cannot serve them
        // a keep-alive within the timeout window. Keep-alives go out every
        // 100 ticks, so sustained overload stretches the interval between
        // them until it exceeds the timeout — the mechanism by which the Lag
        // workload crashes every MLG on AWS in the paper (MF2). A single
        // monster tick longer than the window has the same effect.
        self.ms_since_keepalive += period_ms;
        if self.tick_index.is_multiple_of(100) {
            self.ms_since_keepalive = 0.0;
        }
        let stalled = busy_ms > self.config.keepalive_timeout_ms
            || self.ms_since_keepalive > self.config.keepalive_timeout_ms;
        let mut crash = None;
        if stalled && self.player_count() > 0 {
            for player in self.players.iter_mut() {
                player.disconnected = true;
            }
            let c = ServerCrash {
                reason: format!(
                    "tick {} stalled for {:.0} ms; all client connections timed out",
                    self.tick_index, busy_ms
                ),
                at_tick: self.tick_index,
                at_ms: end_ms,
            };
            self.crash = Some(c.clone());
            crash = Some(c);
        }

        let record = TickRecord {
            index: self.tick_index,
            start_ms,
            busy_ms,
            period_ms,
            distribution,
        };

        TickSummary {
            record,
            start_ms,
            end_ms,
            entity_count: self.entities.count(),
            player_count: self.player_count(),
            packets_emitted,
            bytes_received,
            cpu_utilization: execution.cpu_utilization,
            async_chat: self.profile.async_chat,
            max_shard_work: max_shard,
            crash,
        }
    }
}

/// Builds the tick pipeline for a profile: a static stripe partition, or —
/// when the flavor rebalances (subject to the [`ServerConfig`] override) —
/// an adaptive quadtree partition whose root covers the world's current
/// chunk footprint, pre-split toward the profile's target shard count.
fn build_pipeline(profile: &FlavorProfile, config: &ServerConfig, world: &World) -> TickPipeline {
    let rebalance = config.shard_rebalance.unwrap_or(profile.rebalance);
    if rebalance && profile.tick_shards > 1 {
        TickPipeline::adaptive(
            world.chunk_bounds(),
            profile.tick_shards,
            config.tick_threads,
        )
    } else {
        TickPipeline::new(profile.tick_shards, config.tick_threads)
    }
}

fn entity_kind_id(kind: EntityKind) -> u16 {
    match kind {
        EntityKind::Item(_) => 0,
        EntityKind::PrimedTnt => 1,
        EntityKind::FallingBlock(_) => 2,
        EntityKind::Zombie => 3,
        EntityKind::Skeleton => 4,
        EntityKind::Cow => 5,
        EntityKind::Villager => 6,
        EntityKind::ExperienceOrb => 7,
        _ => u16::MAX,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flavor::ServerFlavor;
    use cloud_sim::environment::Environment;
    use mlg_world::generation::FlatGenerator;
    use mlg_world::{Block, BlockPos, Region};

    fn flat_world() -> World {
        World::new(Box::new(FlatGenerator::grassland()), 7)
    }

    fn server(flavor: ServerFlavor) -> GameServer {
        let config = ServerConfig::for_flavor(flavor).with_view_distance(2);
        GameServer::new(config, flat_world(), Vec3::new(0.5, 61.0, 0.5))
    }

    fn engine() -> ComputeEngine {
        Environment::das5(2).instantiate(1).engine
    }

    #[test]
    fn idle_server_ticks_are_fast_and_stable() {
        let mut s = server(ServerFlavor::Vanilla);
        let mut e = engine();
        let mut max_busy: f64 = 0.0;
        for _ in 0..100 {
            let summary = s.run_tick(&mut e);
            max_busy = max_busy.max(summary.record.busy_ms);
            assert!(summary.crash.is_none());
        }
        assert!(
            max_busy < 10.0,
            "idle ticks should be far under budget, got {max_busy}"
        );
        assert_eq!(s.ticks_executed(), 100);
        assert!(s.clock_ms() >= 100.0 * 50.0);
    }

    #[test]
    fn connecting_a_player_streams_chunks_and_causes_a_spike() {
        let mut s = server(ServerFlavor::Vanilla);
        let mut e = engine();
        // Warm up.
        for _ in 0..5 {
            s.run_tick(&mut e);
        }
        let baseline = s.run_tick(&mut e).record.busy_ms;
        let id = s.connect_player("probe");
        let join_packets = s.drain_outgoing(id);
        assert!(
            join_packets
                .iter()
                .any(|p| matches!(p, ClientboundPacket::LoginAccepted { .. })),
            "join must produce a login packet"
        );
        assert!(
            join_packets
                .iter()
                .filter(|p| matches!(p, ClientboundPacket::ChunkData { .. }))
                .count()
                >= 25,
            "join must stream the spawn area"
        );
        let join_tick = s.run_tick(&mut e).record.busy_ms;
        assert!(
            join_tick > baseline * 3.0,
            "join tick ({join_tick} ms) should spike well above baseline ({baseline} ms)"
        );
        assert_eq!(s.player_count(), 1);
    }

    #[test]
    fn chat_is_echoed_back_to_the_sender() {
        let mut s = server(ServerFlavor::Vanilla);
        let mut e = engine();
        let id = s.connect_player("probe");
        s.drain_outgoing(id);
        s.enqueue_packet(
            id,
            ServerboundPacket::Chat {
                message: "ping".into(),
                sent_at_ms: 777.0,
            },
        );
        s.run_tick(&mut e);
        let packets = s.drain_outgoing(id);
        let echo = packets.iter().find_map(|p| match p {
            ClientboundPacket::Chat { echo_of_ms, .. } => Some(*echo_of_ms),
            _ => None,
        });
        assert_eq!(echo, Some(777.0));
    }

    #[test]
    fn player_block_changes_are_broadcast() {
        let mut s = server(ServerFlavor::Vanilla);
        let mut e = engine();
        let a = s.connect_player("alice");
        let b = s.connect_player("bob");
        s.drain_outgoing(a);
        s.drain_outgoing(b);
        s.enqueue_packet(
            a,
            ServerboundPacket::BlockPlace {
                pos: BlockPos::new(3, 61, 3),
                block: Block::simple(BlockKind::Planks),
            },
        );
        s.run_tick(&mut e);
        let to_bob = s.drain_outgoing(b);
        assert!(
            to_bob
                .iter()
                .any(|p| matches!(p, ClientboundPacket::BlockChange { .. })),
            "other players must receive the block change"
        );
    }

    #[test]
    fn paper_flavor_is_cheaper_than_vanilla_on_entity_load() {
        let world_with_tnt = || {
            let mut w = flat_world();
            w.fill_region(
                Region::new(BlockPos::new(0, 61, 0), BlockPos::new(7, 64, 7)),
                Block::simple(BlockKind::Tnt),
            );
            w
        };
        let run = |flavor: ServerFlavor| {
            let config = ServerConfig::for_flavor(flavor).with_view_distance(2);
            let mut s = GameServer::new(config, world_with_tnt(), Vec3::new(0.5, 61.0, 0.5));
            s.connect_player("probe");
            s.schedule_tnt_ignition(2);
            let mut e = engine();
            let mut total = 0.0;
            for _ in 0..100 {
                total += s.run_tick(&mut e).record.busy_ms;
            }
            total
        };
        let vanilla = run(ServerFlavor::Vanilla);
        let paper = run(ServerFlavor::Paper);
        assert!(
            paper < vanilla * 0.8,
            "PaperMC ({paper} ms) should be notably cheaper than Vanilla ({vanilla} ms)"
        );
    }

    #[test]
    fn tnt_ignition_schedules_every_tnt_block() {
        let mut s = server(ServerFlavor::Vanilla);
        s.world_mut().fill_region(
            Region::new(BlockPos::new(0, 61, 0), BlockPos::new(3, 61, 3)),
            Block::simple(BlockKind::Tnt),
        );
        let scheduled = s.schedule_tnt_ignition(10);
        assert_eq!(scheduled, 16);
    }

    #[test]
    fn tnt_chain_reaction_creates_entities_and_destroys_terrain() {
        let mut s = server(ServerFlavor::Vanilla);
        let mut e = engine();
        s.connect_player("probe");
        s.world_mut().fill_region(
            Region::new(BlockPos::new(4, 61, 4), BlockPos::new(9, 63, 9)),
            Block::simple(BlockKind::Tnt),
        );
        s.schedule_tnt_ignition(2);
        let mut saw_entities = false;
        for _ in 0..300 {
            let summary = s.run_tick(&mut e);
            if summary.entity_count > 10 {
                saw_entities = true;
            }
        }
        assert!(
            saw_entities,
            "chain reaction should prime many TNT entities"
        );
        assert_eq!(s.world().count_kind(BlockKind::Tnt), 0, "all TNT consumed");
    }

    #[test]
    fn stalled_tick_crashes_the_server() {
        let config = ServerConfig {
            keepalive_timeout_ms: 40.0, // absurdly low so a join spike trips it
            ..ServerConfig::for_flavor(ServerFlavor::Vanilla).with_view_distance(6)
        };
        let mut s = GameServer::new(config, flat_world(), Vec3::new(0.5, 61.0, 0.5));
        let mut e = engine();
        s.connect_player("probe");
        let mut crashed = false;
        for _ in 0..50 {
            let summary = s.run_tick(&mut e);
            if summary.crash.is_some() {
                crashed = true;
                break;
            }
        }
        assert!(
            crashed,
            "server should crash when a tick exceeds the keep-alive window"
        );
        assert!(!s.is_running());
        assert_eq!(s.player_count(), 0);
        // Further ticks are no-ops that keep reporting the crash.
        let again = s.run_tick(&mut e);
        assert!(again.crash.is_some());
    }

    #[test]
    fn traffic_summary_records_entity_packets() {
        let mut s = server(ServerFlavor::Vanilla);
        let mut e = engine();
        s.connect_player("probe");
        s.spawn_entity(EntityKind::Cow, Vec3::new(5.5, 70.0, 5.5));
        for _ in 0..20 {
            s.run_tick(&mut e);
        }
        let summary = s.traffic_summary();
        assert!(summary.total_messages() > 0);
        assert!(
            summary
                .category(mlg_protocol::TrafficCategory::Entity)
                .messages
                > 0,
            "falling cow should generate entity-move packets"
        );
    }

    #[test]
    fn sharded_server_ticks_are_bit_identical_at_any_thread_count() {
        let run = |threads: u32| {
            let config = ServerConfig::for_flavor(ServerFlavor::Folia)
                .with_view_distance(3)
                .with_tick_threads(threads);
            let mut s = GameServer::new(config, flat_world(), Vec3::new(0.5, 61.0, 0.5));
            assert!(s.pipeline().is_sharded());
            s.connect_player("probe");
            s.world_mut().fill_region(
                Region::new(BlockPos::new(4, 61, 4), BlockPos::new(12, 62, 12)),
                Block::simple(BlockKind::Tnt),
            );
            s.schedule_tnt_ignition(2);
            let mut e = engine();
            let mut summaries = Vec::new();
            for _ in 0..60 {
                summaries.push(s.run_tick(&mut e));
            }
            (summaries, s.traffic_summary().clone())
        };
        let reference = run(1);
        let parallel = run(4);
        for (a, b) in reference.0.iter().zip(&parallel.0) {
            assert_eq!(a, b, "TickSummary diverged between thread counts");
        }
        assert_eq!(reference.1, parallel.1, "traffic summaries diverged");
    }

    #[test]
    fn folia_flavor_beats_vanilla_on_entity_load_with_many_cores() {
        let world_with_tnt = || {
            let mut w = flat_world();
            w.fill_region(
                Region::new(BlockPos::new(0, 61, 0), BlockPos::new(7, 64, 7)),
                Block::simple(BlockKind::Tnt),
            );
            w
        };
        let run = |flavor: ServerFlavor| {
            let config = ServerConfig::for_flavor(flavor).with_view_distance(2);
            let mut s = GameServer::new(config, world_with_tnt(), Vec3::new(0.5, 61.0, 0.5));
            s.connect_player("probe");
            s.schedule_tnt_ignition(2);
            let mut e = Environment::das5(8).instantiate(1).engine;
            let mut total = 0.0;
            for _ in 0..100 {
                total += s.run_tick(&mut e).record.busy_ms;
            }
            total
        };
        let vanilla = run(ServerFlavor::Vanilla);
        let folia = run(ServerFlavor::Folia);
        assert!(
            folia < vanilla * 0.6,
            "sharded Folia ({folia} ms) should exploit the 8-core node far better than Vanilla ({vanilla} ms)"
        );
    }

    #[test]
    fn tick_distribution_accounts_for_the_whole_tick() {
        let mut s = server(ServerFlavor::Vanilla);
        let mut e = engine();
        s.connect_player("probe");
        let summary = s.run_tick(&mut e);
        let d = summary.record.distribution;
        // Busy components sum to the busy time, waits fill the rest.
        assert!((d.busy_ms() - summary.record.busy_ms).abs() < 1e-6);
        assert!(d.total_ms() >= summary.record.busy_ms);
    }
}
