//! Server configuration.

use serde::{Deserialize, Serialize};

use crate::flavor::ServerFlavor;

/// Configuration of one game-server instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerConfig {
    /// Which server flavor (system under test) to run.
    pub flavor: ServerFlavor,
    /// View distance in chunks: how far around each player chunks are loaded
    /// and streamed.
    pub view_distance: u32,
    /// Maximum number of simultaneously connected players.
    pub max_players: u32,
    /// Intended tick period, in milliseconds (50 ms at 20 Hz).
    pub tick_budget_ms: f64,
    /// If the server stalls longer than this without serving a client, the
    /// client connection times out; when all clients time out the server run
    /// is aborted — this reproduces the Lag-workload crashes on AWS (MF2).
    pub keepalive_timeout_ms: f64,
    /// Random ticks per chunk per game tick (plant growth rate).
    pub random_ticks_per_chunk: u32,
    /// Whether hostile mobs spawn naturally around players.
    pub natural_spawning: bool,
    /// World seed (also seeds entity AI and spawning).
    pub seed: u64,
    /// JVM-style maximum heap size in GiB; only reflected in the memory
    /// metric, mirroring the paper's `-Xmx4G` setting (Table 4).
    pub max_heap_gb: f64,
    /// Worker threads the sharded tick pipeline may use. Pure execution
    /// infrastructure: results are bit-identical at any value (1 = the
    /// sequential reference path); only wall-clock time changes.
    pub tick_threads: u32,
    /// Overrides the flavor's [`FlavorProfile::rebalance`] knob: `None`
    /// uses the flavor default, `Some(v)` forces adaptive shard rebalancing
    /// on or off *for sharded flavors* — flavors with `tick_shards <= 1`
    /// have no partition to rebalance and ignore the override (their serial
    /// game loop is the architecture being modeled). Unlike `tick_threads`
    /// this is a *modeled-architecture* change — results legitimately
    /// differ across it (campaigns sweep it through the `shard_rebalance`
    /// axis).
    ///
    /// [`FlavorProfile::rebalance`]: crate::flavor::FlavorProfile::rebalance
    pub shard_rebalance: Option<bool>,
    /// Overrides the flavor's [`FlavorProfile::eager_lighting`] knob:
    /// `None` uses the flavor default, `Some(true)` forces eager in-stage
    /// relighting, `Some(false)` forces the cross-tick pipelined lighting
    /// stage. A modeled-architecture change (results legitimately differ
    /// across it); campaigns sweep it through the `eager_lighting` axis to
    /// measure what pipelining the lighting phase buys.
    ///
    /// [`FlavorProfile::eager_lighting`]: crate::flavor::FlavorProfile::eager_lighting
    pub eager_lighting: Option<bool>,
    /// Overrides the flavor's [`FlavorProfile::aoi_dissemination`] knob:
    /// `None` uses the flavor default, `Some(true)` forces per-player
    /// area-of-interest packet filtering, `Some(false)` forces the classic
    /// full broadcast. A modeled-architecture change (delivered packet
    /// counts and traffic legitimately differ across it).
    ///
    /// [`FlavorProfile::aoi_dissemination`]: crate::flavor::FlavorProfile::aoi_dissemination
    pub aoi_dissemination: Option<bool>,
    /// Minute of the simulated week (0 = Monday 00:00) at which this run
    /// starts. Purely informational for the server today — the temporal
    /// interference model lives in the environment layer — but plumbed here
    /// so time-of-day-aware workloads (e.g. the planned `Tidal` diurnal
    /// population workload) can key their behaviour off the same clock. Must
    /// never feed the tick determinism contract's forbidden sources: this is
    /// simulated calendar time, not wall-clock time.
    pub start_time_minute: u32,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            flavor: ServerFlavor::Vanilla,
            view_distance: 6,
            max_players: 100,
            tick_budget_ms: 50.0,
            keepalive_timeout_ms: 30_000.0,
            random_ticks_per_chunk: 3,
            natural_spawning: true,
            seed: 392_114_485,
            max_heap_gb: 4.0,
            tick_threads: 1,
            shard_rebalance: None,
            eager_lighting: None,
            aoi_dissemination: None,
            start_time_minute: 0,
        }
    }
}

impl ServerConfig {
    /// A configuration for the given flavor with all other values default.
    #[must_use]
    pub fn for_flavor(flavor: ServerFlavor) -> Self {
        ServerConfig {
            flavor,
            ..ServerConfig::default()
        }
    }

    /// Returns a copy with a different seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy with a different view distance.
    #[must_use]
    pub fn with_view_distance(mut self, chunks: u32) -> Self {
        self.view_distance = chunks;
        self
    }

    /// Returns a copy with a different tick-pipeline worker thread count.
    #[must_use]
    pub fn with_tick_threads(mut self, threads: u32) -> Self {
        self.tick_threads = threads.max(1);
        self
    }

    /// Returns a copy with the shard-rebalancing override set (`None` =
    /// flavor default).
    #[must_use]
    pub fn with_shard_rebalance(mut self, rebalance: Option<bool>) -> Self {
        self.shard_rebalance = rebalance;
        self
    }

    /// Returns a copy with the eager-lighting override set (`None` = flavor
    /// default; `Some(false)` = cross-tick pipelined lighting).
    #[must_use]
    pub fn with_eager_lighting(mut self, eager: Option<bool>) -> Self {
        self.eager_lighting = eager;
        self
    }

    /// Returns a copy with the area-of-interest dissemination override set
    /// (`None` = flavor default; `Some(false)` = classic full broadcast).
    #[must_use]
    pub fn with_aoi_dissemination(mut self, aoi: Option<bool>) -> Self {
        self.aoi_dissemination = aoi;
        self
    }

    /// Returns a copy starting at a different minute of the simulated week
    /// (wraps modulo one week).
    #[must_use]
    pub fn with_start_time_minute(mut self, minute: u32) -> Self {
        self.start_time_minute = minute % (7 * 24 * 60);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_the_paper_setup() {
        let c = ServerConfig::default();
        assert_eq!(c.tick_budget_ms, 50.0);
        assert_eq!(c.max_heap_gb, 4.0);
        assert_eq!(c.seed, 392_114_485);
        assert_eq!(c.flavor, ServerFlavor::Vanilla);
        assert_eq!(c.tick_threads, 1);
    }

    #[test]
    fn builders_override_fields() {
        let c = ServerConfig::for_flavor(ServerFlavor::Paper)
            .with_seed(42)
            .with_view_distance(10);
        assert_eq!(c.flavor, ServerFlavor::Paper);
        assert_eq!(c.seed, 42);
        assert_eq!(c.view_distance, 10);
        // Unrelated fields keep their defaults.
        assert_eq!(c.tick_budget_ms, 50.0);
        assert_eq!(
            ServerConfig::default().with_tick_threads(0).tick_threads,
            1,
            "thread count is clamped"
        );
    }
}
