//! The controller/worker protocol (Table 1 of the paper).
//!
//! Meterstick "follows a Controller/Worker pattern, with the Control Server
//! as the controller, and the Control Clients as the workers" (Section 3.2).
//! The reproduction keeps the same protocol even though both sides live in
//! one process: the [`ControlServer`] drives registered [`ControlClient`]
//! workers through the message sequence of an iteration over crossbeam
//! channels, and workers acknowledge with `ok`/`err` exactly as in Table 1.

use crossbeam::channel::{unbounded, Receiver, Sender};
use serde::{Deserialize, Serialize};

/// A controller message (Table 1). `Dest` in the table maps to which worker
/// kind the controller sends it to: player-emulation workers (`Y`), the
/// server node (`M`), or the controller itself (`C`, for replies).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ControllerMessage {
    /// `set_server:<name>` — specifies the system under test.
    SetServer(String),
    /// `set_jmx:<url>` — specifies the JMX URL for metric externalization.
    SetJmx(String),
    /// `iter:<n>` — specifies what iteration to start at.
    Iter(u32),
    /// `initialize` — starts the selected server.
    Initialize,
    /// `log_start` — starts metric logging tools.
    LogStart,
    /// `log_stop` — stops metric logging tools.
    LogStop,
    /// `stop_server` — stops the running server.
    StopServer,
    /// `connect` — starts player emulation.
    Connect,
    /// `convert` — converts metric bin files to CSV.
    Convert,
    /// `keep_alive` — no-op that keeps the TCP connection open.
    KeepAlive,
    /// `exit` — stops the controller client.
    Exit,
}

/// A worker reply.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkerReply {
    /// `ok` — acknowledges the previous message.
    Ok,
    /// `err:<error>` — the previous message caused an error.
    Err(String),
}

/// The role a worker plays in the benchmark (the `Dest` column of Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkerRole {
    /// A player-emulation worker (`Y`).
    PlayerEmulation,
    /// The server node (`M`).
    Server,
}

impl ControllerMessage {
    /// Returns `true` if the message is addressed to workers of `role`,
    /// following the `Dest` column of Table 1.
    #[must_use]
    pub fn addressed_to(&self, role: WorkerRole) -> bool {
        use ControllerMessage::*;
        match self {
            SetServer(_) | Iter(_) | KeepAlive | Exit => true,
            SetJmx(_) | Initialize | LogStart | LogStop | StopServer => role == WorkerRole::Server,
            Connect | Convert => role == WorkerRole::PlayerEmulation,
        }
    }

    /// The canonical wire spelling of the message, as listed in Table 1.
    #[must_use]
    pub fn wire_format(&self) -> String {
        match self {
            ControllerMessage::SetServer(s) => format!("set_server:{s}"),
            ControllerMessage::SetJmx(url) => format!("set_jmx:{url}"),
            ControllerMessage::Iter(n) => format!("iter:{n}"),
            ControllerMessage::Initialize => "initialize".into(),
            ControllerMessage::LogStart => "log_start".into(),
            ControllerMessage::LogStop => "log_stop".into(),
            ControllerMessage::StopServer => "stop_server".into(),
            ControllerMessage::Connect => "connect".into(),
            ControllerMessage::Convert => "convert".into(),
            ControllerMessage::KeepAlive => "keep_alive".into(),
            ControllerMessage::Exit => "exit".into(),
        }
    }

    /// Parses the canonical wire spelling back into a message — the inverse
    /// of [`ControllerMessage::wire_format`]: for every message `m`,
    /// `parse(&m.wire_format()) == Ok(m)`.
    ///
    /// # Errors
    ///
    /// Returns [`ParseMessageError::UnknownMessage`] for spellings not in
    /// Table 1 and [`ParseMessageError::InvalidIteration`] when an `iter:`
    /// payload is not a `u32`.
    pub fn parse(wire: &str) -> Result<ControllerMessage, ParseMessageError> {
        if let Some((keyword, payload)) = wire.split_once(':') {
            return match keyword {
                "set_server" => Ok(ControllerMessage::SetServer(payload.to_string())),
                "set_jmx" => Ok(ControllerMessage::SetJmx(payload.to_string())),
                "iter" => payload
                    .parse::<u32>()
                    .map(ControllerMessage::Iter)
                    .map_err(|_| ParseMessageError::InvalidIteration(payload.to_string())),
                _ => Err(ParseMessageError::UnknownMessage(wire.to_string())),
            };
        }
        match wire {
            "initialize" => Ok(ControllerMessage::Initialize),
            "log_start" => Ok(ControllerMessage::LogStart),
            "log_stop" => Ok(ControllerMessage::LogStop),
            "stop_server" => Ok(ControllerMessage::StopServer),
            "connect" => Ok(ControllerMessage::Connect),
            "convert" => Ok(ControllerMessage::Convert),
            "keep_alive" => Ok(ControllerMessage::KeepAlive),
            "exit" => Ok(ControllerMessage::Exit),
            _ => Err(ParseMessageError::UnknownMessage(wire.to_string())),
        }
    }

    /// The message sequence the controller sends to run one iteration of one
    /// server, from selection to teardown.
    #[must_use]
    pub fn iteration_sequence(
        server: &str,
        jmx_url: &str,
        iteration: u32,
    ) -> Vec<ControllerMessage> {
        vec![
            ControllerMessage::SetServer(server.to_string()),
            ControllerMessage::SetJmx(jmx_url.to_string()),
            ControllerMessage::Iter(iteration),
            ControllerMessage::Initialize,
            ControllerMessage::LogStart,
            ControllerMessage::Connect,
            ControllerMessage::LogStop,
            ControllerMessage::StopServer,
            ControllerMessage::Convert,
        ]
    }
}

/// Error returned by [`ControllerMessage::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseMessageError {
    /// The wire text matches no message of Table 1.
    UnknownMessage(String),
    /// An `iter:` payload was not a valid iteration number.
    InvalidIteration(String),
}

impl std::fmt::Display for ParseMessageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseMessageError::UnknownMessage(wire) => {
                write!(f, "unknown controller message: {wire:?}")
            }
            ParseMessageError::InvalidIteration(payload) => {
                write!(f, "invalid iteration number: {payload:?}")
            }
        }
    }
}

impl std::error::Error for ParseMessageError {}

/// A worker endpoint: receives controller messages, replies `ok`/`err`.
pub trait ControlClient {
    /// The worker's role (decides which messages it receives).
    fn role(&self) -> WorkerRole;

    /// Handles a message and returns the reply.
    fn handle(&mut self, message: &ControllerMessage) -> WorkerReply;
}

struct WorkerHandle {
    role: WorkerRole,
    tx: Sender<ControllerMessage>,
    rx: Receiver<WorkerReply>,
}

/// The control server: broadcasts controller messages to registered workers
/// over channels and collects their replies.
pub struct ControlServer {
    workers: Vec<WorkerHandle>,
    log: Vec<String>,
}

impl Default for ControlServer {
    fn default() -> Self {
        ControlServer::new()
    }
}

impl ControlServer {
    /// Creates a controller with no workers.
    #[must_use]
    pub fn new() -> Self {
        ControlServer {
            workers: Vec::new(),
            log: Vec::new(),
        }
    }

    /// Registers a worker and returns the channel pair its driving loop
    /// should service: it receives [`ControllerMessage`]s and must send one
    /// [`WorkerReply`] per message.
    pub fn register(
        &mut self,
        role: WorkerRole,
    ) -> (Receiver<ControllerMessage>, Sender<WorkerReply>) {
        let (msg_tx, msg_rx) = unbounded();
        let (reply_tx, reply_rx) = unbounded();
        self.workers.push(WorkerHandle {
            role,
            tx: msg_tx,
            rx: reply_rx,
        });
        (msg_rx, reply_tx)
    }

    /// Runs a registered in-process worker inline: drains its pending
    /// messages through the [`ControlClient`] implementation.
    pub fn service_inline<C: ControlClient>(
        rx: &Receiver<ControllerMessage>,
        tx: &Sender<WorkerReply>,
        client: &mut C,
    ) {
        while let Ok(message) = rx.try_recv() {
            let reply = client.handle(&message);
            let _ = tx.send(reply);
        }
    }

    /// Sends a message to every worker it is addressed to and returns their
    /// replies (after the caller has serviced the workers).
    ///
    /// For the in-process benchmark the exchange is synchronous: the message
    /// is queued, the caller services the workers (e.g. via
    /// [`ControlServer::service_inline`]), then replies are collected with
    /// [`ControlServer::collect_replies`].
    pub fn send(&mut self, message: &ControllerMessage) -> usize {
        self.log.push(message.wire_format());
        let mut sent = 0;
        for worker in &self.workers {
            if message.addressed_to(worker.role) {
                let _ = worker.tx.send(message.clone());
                sent += 1;
            }
        }
        sent
    }

    /// Collects every reply currently available from all workers.
    pub fn collect_replies(&mut self) -> Vec<WorkerReply> {
        let mut replies = Vec::new();
        for worker in &self.workers {
            while let Ok(reply) = worker.rx.try_recv() {
                replies.push(reply);
            }
        }
        replies
    }

    /// The wire-format log of every message sent so far.
    #[must_use]
    pub fn message_log(&self) -> &[String] {
        &self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct EchoWorker {
        role: WorkerRole,
        seen: Vec<ControllerMessage>,
        fail_on_connect: bool,
    }

    impl ControlClient for EchoWorker {
        fn role(&self) -> WorkerRole {
            self.role
        }
        fn handle(&mut self, message: &ControllerMessage) -> WorkerReply {
            self.seen.push(message.clone());
            if self.fail_on_connect && *message == ControllerMessage::Connect {
                WorkerReply::Err("connection refused".into())
            } else {
                WorkerReply::Ok
            }
        }
    }

    #[test]
    fn wire_format_matches_table1() {
        assert_eq!(
            ControllerMessage::SetServer("paper".into()).wire_format(),
            "set_server:paper"
        );
        assert_eq!(ControllerMessage::Iter(3).wire_format(), "iter:3");
        assert_eq!(ControllerMessage::KeepAlive.wire_format(), "keep_alive");
    }

    #[test]
    fn parse_is_the_inverse_of_wire_format_for_every_variant() {
        let all = vec![
            ControllerMessage::SetServer("paper".into()),
            ControllerMessage::SetServer(String::new()),
            ControllerMessage::SetServer("with:colons:inside".into()),
            ControllerMessage::SetJmx("jmx://host:25585".into()),
            ControllerMessage::Iter(0),
            ControllerMessage::Iter(u32::MAX),
            ControllerMessage::Initialize,
            ControllerMessage::LogStart,
            ControllerMessage::LogStop,
            ControllerMessage::StopServer,
            ControllerMessage::Connect,
            ControllerMessage::Convert,
            ControllerMessage::KeepAlive,
            ControllerMessage::Exit,
        ];
        for message in all {
            assert_eq!(
                ControllerMessage::parse(&message.wire_format()),
                Ok(message.clone()),
                "round-trip failed for {message:?}"
            );
        }
    }

    #[test]
    fn parse_rejects_malformed_wire_text() {
        assert_eq!(
            ControllerMessage::parse("self_destruct"),
            Err(ParseMessageError::UnknownMessage("self_destruct".into()))
        );
        assert_eq!(
            ControllerMessage::parse("bogus:payload"),
            Err(ParseMessageError::UnknownMessage("bogus:payload".into()))
        );
        assert_eq!(
            ControllerMessage::parse("iter:not-a-number"),
            Err(ParseMessageError::InvalidIteration("not-a-number".into()))
        );
        assert_eq!(
            ControllerMessage::parse(""),
            Err(ParseMessageError::UnknownMessage(String::new()))
        );
        assert!(ControllerMessage::parse("iter:not-a-number")
            .unwrap_err()
            .to_string()
            .contains("iteration"));
    }

    #[test]
    fn addressing_follows_the_dest_column() {
        use ControllerMessage::*;
        assert!(Connect.addressed_to(WorkerRole::PlayerEmulation));
        assert!(!Connect.addressed_to(WorkerRole::Server));
        assert!(Initialize.addressed_to(WorkerRole::Server));
        assert!(!Initialize.addressed_to(WorkerRole::PlayerEmulation));
        assert!(SetServer("v".into()).addressed_to(WorkerRole::Server));
        assert!(SetServer("v".into()).addressed_to(WorkerRole::PlayerEmulation));
        assert!(Exit.addressed_to(WorkerRole::Server));
    }

    #[test]
    fn iteration_sequence_is_complete_and_ordered() {
        let seq = ControllerMessage::iteration_sequence("minecraft", "jmx://host:25585", 1);
        assert_eq!(seq.len(), 9);
        assert_eq!(seq.first().unwrap().wire_format(), "set_server:minecraft");
        assert_eq!(seq.last().unwrap(), &ControllerMessage::Convert);
        // Logging starts before players connect and stops before the server
        // is torn down.
        let pos = |m: &ControllerMessage| seq.iter().position(|x| x == m).unwrap();
        assert!(pos(&ControllerMessage::LogStart) < pos(&ControllerMessage::Connect));
        assert!(pos(&ControllerMessage::LogStop) < pos(&ControllerMessage::StopServer));
    }

    #[test]
    fn controller_routes_messages_and_collects_acks() {
        let mut controller = ControlServer::new();
        let (server_rx, server_tx) = controller.register(WorkerRole::Server);
        let (emu_rx, emu_tx) = controller.register(WorkerRole::PlayerEmulation);
        let mut server_worker = EchoWorker {
            role: WorkerRole::Server,
            seen: Vec::new(),
            fail_on_connect: false,
        };
        let mut emu_worker = EchoWorker {
            role: WorkerRole::PlayerEmulation,
            seen: Vec::new(),
            fail_on_connect: false,
        };

        for message in ControllerMessage::iteration_sequence("forge", "jmx://n:1", 0) {
            controller.send(&message);
            ControlServer::service_inline(&server_rx, &server_tx, &mut server_worker);
            ControlServer::service_inline(&emu_rx, &emu_tx, &mut emu_worker);
        }
        let replies = controller.collect_replies();
        assert!(replies.iter().all(|r| *r == WorkerReply::Ok));
        // The server worker never received `connect`; the emulation worker did.
        assert!(!server_worker.seen.contains(&ControllerMessage::Connect));
        assert!(emu_worker.seen.contains(&ControllerMessage::Connect));
        assert_eq!(controller.message_log().len(), 9);
    }

    #[test]
    fn worker_errors_are_propagated() {
        let mut controller = ControlServer::new();
        let (rx, tx) = controller.register(WorkerRole::PlayerEmulation);
        let mut worker = EchoWorker {
            role: WorkerRole::PlayerEmulation,
            seen: Vec::new(),
            fail_on_connect: true,
        };
        controller.send(&ControllerMessage::Connect);
        ControlServer::service_inline(&rx, &tx, &mut worker);
        let replies = controller.collect_replies();
        assert_eq!(replies, vec![WorkerReply::Err("connection refused".into())]);
    }
}
