//! Factorial benchmark campaigns: the paper's full experiment matrix as one
//! first-class object.
//!
//! Meterstick's evaluation is a *matrix* of experiments — workloads ×
//! server flavors × deployment environments × iterations (Figure 5 runs the
//! same procedure for every combination), and the sharded tick pipeline
//! adds a `tick_threads` axis (worker threads inside one server — results
//! are bit-identical across it, only wall-clock time changes). A
//! [`Campaign`] composes the whole sweep declaratively:
//!
//! ```
//! use meterstick::campaign::Campaign;
//! use meterstick_workloads::WorkloadKind;
//! use mlg_server::ServerFlavor;
//! use cloud_sim::environment::Environment;
//!
//! let results = Campaign::new()
//!     .workloads([WorkloadKind::Control, WorkloadKind::Players])
//!     .flavors([ServerFlavor::Vanilla, ServerFlavor::Paper])
//!     .environments([Environment::das5(2)])
//!     .iterations(2)
//!     .duration_secs(2)
//!     .run()
//!     .expect("valid campaign");
//! assert_eq!(results.iterations().len(), 2 * 2 * 1 * 2);
//! ```
//!
//! The campaign expands into a plan of independent, individually seeded
//! [`IterationJob`]s. Jobs share no mutable state and derive all their
//! randomness from their seed, so any [`Executor`] — sequential or
//! thread-based — produces bit-identical results for the same plan.
//! Attached [`ResultSink`]s observe each result as it completes, which lets
//! reports stream instead of materializing the full result set first.
//!
//! [`Executor`]: crate::executor::Executor
//! [`ResultSink`]: crate::sink::ResultSink

use cloud_sim::environment::Environment;
use cloud_sim::node::NodeType;
use cloud_sim::temporal::StartTime;
use meterstick_workloads::{WorkloadKind, WorkloadSpec};
use mlg_protocol::netsim::LinkConfig;
use mlg_server::ServerFlavor;

use crate::config::BenchmarkConfig;
use crate::deployment::DeploymentPlan;
use crate::error::BenchmarkError;
use crate::executor::{Executor, SequentialExecutor};
use crate::experiment::execute_iteration;
use crate::results::{ExperimentResults, IterationResult};
use crate::sink::{NullSink, ResultSink};

/// Position of a cell in the campaign's factorial grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CellCoord {
    /// Index into the campaign's workload list.
    pub workload: usize,
    /// Index into the campaign's environment list.
    pub environment: usize,
    /// Index into the campaign's flavor list.
    pub flavor: usize,
    /// Index into the campaign's tick-thread list.
    pub tick_threads: usize,
    /// Index into the campaign's shard-rebalance list.
    pub shard_rebalance: usize,
    /// Index into the campaign's eager-lighting list.
    pub eager_lighting: usize,
    /// Index into the campaign's start-time list.
    pub start_time: usize,
}

/// One independently executable unit of a campaign: a single iteration of a
/// single (workload, environment, flavor) cell, with its own derived seed.
///
/// Jobs are self-contained — [`IterationJob::run`] needs no shared state —
/// which is what makes thread-based executors safe and deterministic.
#[derive(Debug, Clone)]
pub struct IterationJob {
    /// Position of this job in the plan (stable result ordering).
    pub index: usize,
    /// Which grid cell the job belongs to.
    pub coord: CellCoord,
    /// Fully specialized configuration (single workload, single flavor,
    /// single environment).
    pub config: BenchmarkConfig,
    /// The server flavor under test.
    pub flavor: ServerFlavor,
    /// Iteration number within the cell (0-based).
    pub iteration: u32,
    /// Seed for all environment and bot randomness of this iteration.
    pub seed: u64,
}

impl IterationJob {
    /// Executes the iteration and returns its result.
    #[must_use]
    pub fn run(&self) -> IterationResult {
        execute_iteration(&self.config, self.flavor, self.iteration, self.seed)
    }

    /// Human-readable job label, e.g. `"TNT × PaperMC @ AWS 2-core #1"`
    /// (plus a thread suffix for multi-threaded tick pipelines).
    #[must_use]
    pub fn label(&self) -> String {
        let threads = if self.config.tick_threads > 1 {
            format!(" [{}thr]", self.config.tick_threads)
        } else {
            String::new()
        };
        let rebalance = match self.config.shard_rebalance {
            Some(true) => " [rebal]",
            Some(false) => " [static]",
            None => "",
        };
        let lighting = match self.config.eager_lighting {
            Some(true) => " [eager]",
            Some(false) => " [pipelined]",
            None => "",
        };
        let start = if self.config.start_time == StartTime::default() {
            String::new()
        } else {
            format!(" [{}]", self.config.start_time)
        };
        format!(
            "{} × {} @ {}{threads}{rebalance}{lighting}{start} #{}",
            self.config.workload.kind,
            self.flavor,
            self.config.environment.label(),
            self.iteration
        )
    }
}

/// A validated, fully expanded campaign: the job list plus the deployment
/// plan shared by every job.
#[derive(Debug, Clone)]
pub struct CampaignPlan {
    jobs: Vec<IterationJob>,
    deployment: DeploymentPlan,
}

impl CampaignPlan {
    /// The jobs in plan order (workload-major, then environment, flavor,
    /// iteration).
    #[must_use]
    pub fn jobs(&self) -> &[IterationJob] {
        &self.jobs
    }

    /// The node/role assignment every job shares.
    #[must_use]
    pub fn deployment(&self) -> &DeploymentPlan {
        &self.deployment
    }
}

/// Aggregate results of a campaign run, in plan order.
///
/// Wraps [`ExperimentResults`] and adds campaign-level grouping views; all
/// per-flavor accessors of the wrapped type are re-exposed so existing
/// reporting code keeps working.
#[derive(Debug, Clone, Default)]
pub struct CampaignResults {
    results: ExperimentResults,
    coords: Vec<CellCoord>,
}

/// Per-cell aggregate produced by [`CampaignResults::cell_summaries`].
#[derive(Debug, Clone, PartialEq)]
pub struct CellSummary {
    /// The cell's workload.
    pub workload: WorkloadKind,
    /// The cell's server flavor.
    pub flavor: ServerFlavor,
    /// The cell's environment label.
    pub environment: String,
    /// Number of iterations recorded for the cell.
    pub iterations: usize,
    /// Number of crashed iterations.
    pub crashes: usize,
    /// Mean Instability Ratio over the cell's iterations.
    pub mean_isr: f64,
}

impl CampaignResults {
    pub(crate) fn from_ordered(plan: &CampaignPlan, iterations: Vec<IterationResult>) -> Self {
        let coords = plan.jobs().iter().map(|job| job.coord).collect();
        let mut results = ExperimentResults::new();
        results.extend(iterations);
        CampaignResults { results, coords }
    }

    /// The grid coordinate of each result, parallel to [`Self::iterations`].
    ///
    /// This is the authoritative cell identity: unlike environment *labels*,
    /// coordinates distinguish two environments that happen to share a label
    /// (e.g. two "AWS 2-core" variants with different interference
    /// profiles).
    #[must_use]
    pub fn coords(&self) -> &[CellCoord] {
        &self.coords
    }

    /// Results of one exact grid cell, identified by coordinate.
    #[must_use]
    pub fn for_coord(&self, coord: CellCoord) -> Vec<&IterationResult> {
        self.iterations()
            .iter()
            .zip(&self.coords)
            .filter(|(_, c)| **c == coord)
            .map(|(r, _)| r)
            .collect()
    }

    /// All iteration results in plan order.
    #[must_use]
    pub fn iterations(&self) -> &[IterationResult] {
        self.results.iterations()
    }

    /// Results of one flavor across every cell.
    #[must_use]
    pub fn for_flavor(&self, flavor: ServerFlavor) -> Vec<&IterationResult> {
        self.results.for_flavor(flavor)
    }

    /// Results of one workload across every cell.
    #[must_use]
    pub fn for_workload(&self, workload: WorkloadKind) -> Vec<&IterationResult> {
        self.iterations()
            .iter()
            .filter(|r| r.workload == workload)
            .collect()
    }

    /// Results of one environment (by label) across every cell.
    ///
    /// Environments with identical labels are pooled; use
    /// [`Self::for_coord`] when a campaign contains same-label variants.
    #[must_use]
    pub fn for_environment(&self, label: &str) -> Vec<&IterationResult> {
        self.iterations()
            .iter()
            .filter(|r| r.environment == label)
            .collect()
    }

    /// Results of one exact grid cell, identified by (workload, flavor,
    /// environment label).
    ///
    /// Environments with identical labels are pooled; use
    /// [`Self::for_coord`] when a campaign contains same-label variants.
    #[must_use]
    pub fn for_cell(
        &self,
        workload: WorkloadKind,
        flavor: ServerFlavor,
        environment: &str,
    ) -> Vec<&IterationResult> {
        self.iterations()
            .iter()
            .filter(|r| {
                r.workload == workload && r.flavor == flavor && r.environment == environment
            })
            .collect()
    }

    /// The ISR values of every iteration of one flavor.
    #[must_use]
    pub fn isr_values(&self, flavor: ServerFlavor) -> Vec<f64> {
        self.results.isr_values(flavor)
    }

    /// All tick busy times of one flavor, pooled across iterations.
    #[must_use]
    pub fn pooled_tick_times(&self, flavor: ServerFlavor) -> Vec<f64> {
        self.results.pooled_tick_times(flavor)
    }

    /// All response-time samples of one flavor, pooled across iterations.
    #[must_use]
    pub fn pooled_response_times(&self, flavor: ServerFlavor) -> Vec<f64> {
        self.results.pooled_response_times(flavor)
    }

    /// Number of crashed iterations of one flavor.
    #[must_use]
    pub fn crash_count(&self, flavor: ServerFlavor) -> usize {
        self.results.crash_count(flavor)
    }

    /// One aggregate row per grid cell, in plan order.
    ///
    /// Cells are grouped by grid *coordinate*, so two environments sharing
    /// a label still produce separate rows.
    #[must_use]
    pub fn cell_summaries(&self) -> Vec<CellSummary> {
        let mut seen: Vec<CellCoord> = Vec::new();
        let mut summaries: Vec<CellSummary> = Vec::new();
        for (it, coord) in self.iterations().iter().zip(&self.coords) {
            match seen.iter().position(|c| c == coord) {
                Some(idx) => {
                    let cell = &mut summaries[idx];
                    cell.iterations += 1;
                    cell.crashes += usize::from(it.crashed());
                    cell.mean_isr += it.instability_ratio;
                }
                None => {
                    seen.push(*coord);
                    summaries.push(CellSummary {
                        workload: it.workload,
                        flavor: it.flavor,
                        environment: it.environment.clone(),
                        iterations: 1,
                        crashes: usize::from(it.crashed()),
                        mean_isr: it.instability_ratio,
                    });
                }
            }
        }
        for cell in &mut summaries {
            cell.mean_isr /= cell.iterations as f64;
        }
        summaries
    }

    /// Borrow the wrapped flat result set.
    #[must_use]
    pub fn as_experiment_results(&self) -> &ExperimentResults {
        &self.results
    }

    /// Convert into the wrapped flat result set.
    #[must_use]
    pub fn into_experiment_results(self) -> ExperimentResults {
        self.results
    }
}

/// Builder for a factorial benchmark sweep.
///
/// Dimensions default to the paper's setup — all three flavors on the AWS
/// `t3.large` environment — but `workloads` has no default: an empty
/// workload list (like any empty dimension) makes [`Campaign::run`] return
/// [`BenchmarkError::EmptyDimension`] rather than silently running nothing.
///
/// # Quickstart
///
/// Declare the matrix, run it, inspect per-cell summaries:
///
/// ```
/// use cloud_sim::environment::Environment;
/// use meterstick::campaign::Campaign;
/// use meterstick_workloads::WorkloadKind;
/// use mlg_server::ServerFlavor;
///
/// let results = Campaign::new()
///     .workloads([WorkloadKind::Control])
///     .flavors([ServerFlavor::Vanilla, ServerFlavor::Paper])
///     .environments([Environment::das5(2)])
///     .duration_secs(2)
///     .iterations(1)
///     .run()
///     .expect("the campaign configuration is valid");
/// // One iteration per (workload × flavor × environment) cell.
/// assert_eq!(results.iterations().len(), 2);
/// assert_eq!(results.cell_summaries().len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Campaign {
    template: BenchmarkConfig,
    workloads: Vec<WorkloadSpec>,
    flavors: Vec<ServerFlavor>,
    environments: Vec<Environment>,
    tick_threads: Vec<u32>,
    shard_rebalance: Vec<Option<bool>>,
    eager_lighting: Vec<Option<bool>>,
    start_times: Vec<StartTime>,
}

impl Default for Campaign {
    fn default() -> Self {
        Campaign::new()
    }
}

impl Campaign {
    /// Creates an empty campaign with the paper's default flavor set and
    /// environment; add at least one workload before running.
    #[must_use]
    pub fn new() -> Self {
        let template = BenchmarkConfig::new(WorkloadKind::Control);
        Campaign {
            flavors: template.flavors.clone(),
            environments: vec![template.environment.clone()],
            workloads: Vec::new(),
            tick_threads: vec![template.tick_threads],
            shard_rebalance: vec![template.shard_rebalance],
            eager_lighting: vec![template.eager_lighting],
            start_times: vec![template.start_time],
            template,
        }
    }

    /// Builds a single-workload campaign from a legacy [`BenchmarkConfig`],
    /// preserving its flavor list, environment and tick-thread setting —
    /// the migration path for pre-campaign callers.
    #[must_use]
    pub fn from_config(config: BenchmarkConfig) -> Self {
        Campaign {
            workloads: vec![config.workload],
            flavors: config.flavors.clone(),
            environments: vec![config.environment.clone()],
            tick_threads: vec![config.tick_threads],
            shard_rebalance: vec![config.shard_rebalance],
            eager_lighting: vec![config.eager_lighting],
            start_times: vec![config.start_time],
            template: config,
        }
    }

    /// Replaces the workload dimension with plain workload kinds (default
    /// scale).
    #[must_use]
    pub fn workloads(mut self, workloads: impl IntoIterator<Item = WorkloadKind>) -> Self {
        self.workloads = workloads.into_iter().map(WorkloadSpec::new).collect();
        self
    }

    /// Replaces the workload dimension with full specs (kind + scale knob).
    #[must_use]
    pub fn workload_specs(mut self, specs: impl IntoIterator<Item = WorkloadSpec>) -> Self {
        self.workloads = specs.into_iter().collect();
        self
    }

    /// Replaces the server-flavor dimension.
    #[must_use]
    pub fn flavors(mut self, flavors: impl IntoIterator<Item = ServerFlavor>) -> Self {
        self.flavors = flavors.into_iter().collect();
        self
    }

    /// Replaces the environment dimension.
    #[must_use]
    pub fn environments(mut self, environments: impl IntoIterator<Item = Environment>) -> Self {
        self.environments = environments.into_iter().collect();
        self
    }

    /// Replaces the tick-thread dimension: each value runs the whole grid
    /// with that many worker threads inside the server's sharded tick
    /// pipeline. Results are bit-identical across this axis (seeds do not
    /// depend on it); sweeping it exists to *demonstrate* that identity and
    /// to measure wall-clock scaling.
    #[must_use]
    pub fn tick_threads(mut self, threads: impl IntoIterator<Item = u32>) -> Self {
        self.tick_threads = threads.into_iter().map(|t| t.max(1)).collect();
        self
    }

    /// Replaces the shard-rebalance dimension: each value runs the whole
    /// grid with adaptive shard rebalancing forced on or off (overriding
    /// the flavor default; serial flavors with `tick_shards <= 1` have no
    /// partition to rebalance and ignore the setting, so sweep this axis
    /// over sharded flavors). Unlike `tick_threads`, this is a
    /// *modeled-architecture* axis — results legitimately differ across it
    /// — but, like `tick_threads`, it is excluded from seed derivation so
    /// cells differing only in this coordinate run identical worlds, bots
    /// and interference (a paired comparison of the two partitions).
    #[must_use]
    pub fn shard_rebalance(mut self, settings: impl IntoIterator<Item = bool>) -> Self {
        self.shard_rebalance = settings.into_iter().map(Some).collect();
        self
    }

    /// Replaces the eager-lighting dimension: each value runs the whole
    /// grid with lighting forced eager (`true`, relit inside the terrain
    /// stage) or pipelined (`false`, deferred one tick and overlapped with
    /// the next tick's player stage), overriding the flavor default. Like
    /// `shard_rebalance` this is a *modeled-architecture* axis excluded
    /// from seed derivation, so cells differing only here run identical
    /// worlds, bots and interference — a paired comparison of the two
    /// lighting architectures.
    #[must_use]
    pub fn eager_lighting(mut self, settings: impl IntoIterator<Item = bool>) -> Self {
        self.eager_lighting = settings.into_iter().map(Some).collect();
        self
    }

    /// Replaces the start-time dimension: each value runs the whole grid
    /// starting at that point of the simulated week. Only environments with
    /// a non-flat temporal (tenancy) profile respond to it. Like
    /// `shard_rebalance`/`eager_lighting` this axis is excluded from seed
    /// derivation, so cells differing only in start time run identical
    /// worlds, bots and interference seeds — a paired comparison of *when*,
    /// not *where*.
    #[must_use]
    pub fn start_times(mut self, start_times: impl IntoIterator<Item = StartTime>) -> Self {
        self.start_times = start_times.into_iter().collect();
        self
    }

    /// Enables windowed (long-horizon) metric aggregation for every job:
    /// iterations fold ticks through a bounded streaming aggregator instead
    /// of retaining the full trace. Not a sweep axis — a scalar knob like
    /// `duration_secs`.
    #[must_use]
    pub fn metrics_window(mut self, window_ticks: u32, max_windows: u32) -> Self {
        self.template = self
            .template
            .clone()
            .with_metrics_window(window_ticks, max_windows);
        self
    }

    /// Appends one AWS environment per node size — the node-size axis of the
    /// paper's Figure 12 as a sweep dimension.
    #[must_use]
    pub fn aws_node_sizes(mut self, nodes: impl IntoIterator<Item = NodeType>) -> Self {
        self.environments
            .extend(nodes.into_iter().map(Environment::aws));
        self
    }

    /// Sets the number of iterations per cell.
    #[must_use]
    pub fn iterations(mut self, iterations: u32) -> Self {
        self.template.iterations = iterations;
        self
    }

    /// Sets the iteration duration in virtual seconds.
    #[must_use]
    pub fn duration_secs(mut self, secs: u64) -> Self {
        self.template.duration_secs = secs;
        self
    }

    /// Overrides the number of emulated players for every cell.
    #[must_use]
    pub fn bots(mut self, bots: u32) -> Self {
        self.template.bots_override = Some(bots);
        self
    }

    /// Sets the base seed every job seed derives from.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.template.base_seed = seed;
        self
    }

    /// Sets the network link between player emulation and the server.
    #[must_use]
    pub fn link(mut self, link: LinkConfig) -> Self {
        self.template.link = link;
        self
    }

    /// Adopts the *infrastructure* fields of a configuration template —
    /// node addresses, SSH keys, JMX ports, RAM, affinity, resume flag —
    /// leaving every knob with its own builder method (dimensions,
    /// iterations, duration, seed, bots, link) untouched, so builder-call
    /// order never matters.
    #[must_use]
    pub fn template(mut self, template: BenchmarkConfig) -> Self {
        self.template.node_ips = template.node_ips;
        self.template.ssh_keys = template.ssh_keys;
        self.template.jmx_ports = template.jmx_ports;
        self.template.ram_gb = template.ram_gb;
        self.template.affinity_mask = template.affinity_mask;
        self.template.resume = template.resume;
        self
    }

    /// Number of grid cells (workloads × environments × flavors ×
    /// tick-thread settings).
    #[must_use]
    pub fn cell_count(&self) -> usize {
        self.workloads.len()
            * self.environments.len()
            * self.flavors.len()
            * self.tick_threads.len()
            * self.shard_rebalance.len()
            * self.eager_lighting.len()
            * self.start_times.len()
    }

    /// Number of jobs the plan will contain (cells × iterations).
    #[must_use]
    pub fn job_count(&self) -> usize {
        self.cell_count() * self.template.iterations as usize
    }

    /// Validates the campaign and expands it into independent, seeded jobs.
    ///
    /// # Errors
    ///
    /// Returns [`BenchmarkError::EmptyDimension`] when any sweep dimension
    /// is empty, [`BenchmarkError::InvalidParameter`] for out-of-range
    /// scalars, and [`BenchmarkError::Deployment`] when the node/key
    /// configuration is invalid.
    pub fn plan(&self) -> Result<CampaignPlan, BenchmarkError> {
        if self.workloads.is_empty() {
            return Err(BenchmarkError::EmptyDimension {
                dimension: "workloads",
            });
        }
        if self.flavors.is_empty() {
            return Err(BenchmarkError::EmptyDimension {
                dimension: "flavors",
            });
        }
        if self.environments.is_empty() {
            return Err(BenchmarkError::EmptyDimension {
                dimension: "environments",
            });
        }
        if self.tick_threads.is_empty() {
            return Err(BenchmarkError::EmptyDimension {
                dimension: "tick_threads",
            });
        }
        if self.shard_rebalance.is_empty() {
            return Err(BenchmarkError::EmptyDimension {
                dimension: "shard_rebalance",
            });
        }
        if self.eager_lighting.is_empty() {
            return Err(BenchmarkError::EmptyDimension {
                dimension: "eager_lighting",
            });
        }
        if self.start_times.is_empty() {
            return Err(BenchmarkError::EmptyDimension {
                dimension: "start_times",
            });
        }
        if self.template.iterations == 0 {
            return Err(BenchmarkError::EmptyDimension {
                dimension: "iterations",
            });
        }
        if self.template.duration_secs == 0 {
            return Err(BenchmarkError::InvalidParameter {
                parameter: "duration_secs",
                reason: "must be at least 1 virtual second".into(),
            });
        }
        if self.template.ram_gb <= 0.0 {
            return Err(BenchmarkError::InvalidParameter {
                parameter: "ram_gb",
                reason: format!("must be positive, got {}", self.template.ram_gb),
            });
        }
        if self.template.jmx_ports.0 > self.template.jmx_ports.1 {
            return Err(BenchmarkError::InvalidParameter {
                parameter: "jmx_ports",
                reason: format!(
                    "range start {} exceeds end {}",
                    self.template.jmx_ports.0, self.template.jmx_ports.1
                ),
            });
        }
        let deployment = DeploymentPlan::plan(&self.template)?;

        let mut jobs = Vec::with_capacity(self.job_count());
        for (w_idx, workload) in self.workloads.iter().enumerate() {
            for (e_idx, environment) in self.environments.iter().enumerate() {
                for (f_idx, &flavor) in self.flavors.iter().enumerate() {
                    for (t_idx, &threads) in self.tick_threads.iter().enumerate() {
                        for (r_idx, &rebalance) in self.shard_rebalance.iter().enumerate() {
                            for (l_idx, &lighting) in self.eager_lighting.iter().enumerate() {
                                for (s_idx, &start_time) in self.start_times.iter().enumerate() {
                                    let mut config = self.template.clone();
                                    config.workload = *workload;
                                    config.environment = environment.clone();
                                    config.flavors = vec![flavor];
                                    config.tick_threads = threads;
                                    config.shard_rebalance = rebalance;
                                    config.eager_lighting = lighting;
                                    config.start_time = start_time;
                                    let coord = CellCoord {
                                        workload: w_idx,
                                        environment: e_idx,
                                        flavor: f_idx,
                                        tick_threads: t_idx,
                                        shard_rebalance: r_idx,
                                        eager_lighting: l_idx,
                                        start_time: s_idx,
                                    };
                                    for iteration in 0..self.template.iterations {
                                        jobs.push(IterationJob {
                                            index: jobs.len(),
                                            coord,
                                            config: config.clone(),
                                            flavor,
                                            iteration,
                                            seed: job_seed(&self.template, coord, iteration),
                                        });
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(CampaignPlan { jobs, deployment })
    }

    /// Plans and runs the campaign sequentially, collecting every result.
    ///
    /// # Errors
    ///
    /// Returns the planning errors of [`Campaign::plan`]; never panics on
    /// invalid configuration.
    pub fn run(&self) -> Result<CampaignResults, BenchmarkError> {
        self.run_with(&SequentialExecutor, &mut NullSink)
    }

    /// Plans and runs the campaign on `executor`, streaming every result
    /// into `sink` as it completes.
    ///
    /// Results are returned in plan order regardless of the executor's
    /// completion order, so the same campaign yields identical
    /// [`CampaignResults`] on every executor.
    ///
    /// # Errors
    ///
    /// Returns planning errors of [`Campaign::plan`] and execution errors
    /// reported by the executor (e.g. a panicked worker thread).
    pub fn run_with<E: Executor + ?Sized, S: ResultSink + ?Sized>(
        &self,
        executor: &E,
        sink: &mut S,
    ) -> Result<CampaignResults, BenchmarkError> {
        let plan = self.plan()?;
        sink.on_campaign_start(&plan);
        let outcome = executor.execute(&plan, &mut |job, result| sink.on_result(job, result));
        // Finalize the sink even when execution failed, so streaming
        // targets flush whatever partial data the completed jobs produced.
        sink.on_campaign_end();
        Ok(CampaignResults::from_ordered(&plan, outcome?))
    }
}

/// Derives the seed of one iteration job from the campaign template and
/// the job's grid position: [`BenchmarkConfig::iteration_seed`] (so a
/// single-workload single-environment campaign reproduces exactly the
/// legacy pre-campaign seed scheme — and therefore exactly its traces)
/// plus prime-weighted workload and environment terms. Seeds depend only
/// on grid coordinates, never on execution order — which is what makes
/// parallel execution bit-identical to sequential execution. The
/// `tick_threads` coordinate is deliberately **excluded**: thread count is
/// execution infrastructure and must never change results. The
/// `shard_rebalance` and `eager_lighting` coordinates are excluded too,
/// for a different reason: architectures should be compared on identical
/// worlds, bots and interference, so those axes vary only the
/// architecture. The `start_time` coordinate is excluded for the same
/// paired-comparison reason: a start-time sweep asks what changes when the
/// *same* deployment runs at a different point of the week.
#[must_use]
fn job_seed(template: &BenchmarkConfig, coord: CellCoord, iteration: u32) -> u64 {
    template
        .iteration_seed(coord.flavor, iteration)
        .wrapping_add(coord.workload as u64 * 15_485_863)
        .wrapping_add(coord.environment as u64 * 32_452_843)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::DeploymentError;

    fn quick_campaign() -> Campaign {
        Campaign::new()
            .workloads([WorkloadKind::Control, WorkloadKind::Players])
            .flavors([ServerFlavor::Vanilla, ServerFlavor::Paper])
            .environments([Environment::das5(2)])
            .iterations(2)
            .duration_secs(2)
    }

    #[test]
    fn factorial_expansion_covers_every_cell() {
        let campaign = quick_campaign();
        assert_eq!(campaign.cell_count(), 4);
        assert_eq!(campaign.job_count(), 8);
        let plan = campaign.plan().unwrap();
        assert_eq!(plan.jobs().len(), 8);
        // Every job's config is specialized to exactly one flavor.
        for (i, job) in plan.jobs().iter().enumerate() {
            assert_eq!(job.index, i);
            assert_eq!(job.config.flavors, vec![job.flavor]);
        }
        // All seeds are distinct.
        let seeds: std::collections::HashSet<u64> = plan.jobs().iter().map(|j| j.seed).collect();
        assert_eq!(seeds.len(), 8);
    }

    #[test]
    fn multi_cell_run_produces_one_result_per_job() {
        let results = quick_campaign().run().unwrap();
        assert_eq!(results.iterations().len(), 8);
        assert_eq!(results.for_flavor(ServerFlavor::Paper).len(), 4);
        assert_eq!(results.for_workload(WorkloadKind::Players).len(), 4);
        assert_eq!(
            results
                .for_cell(WorkloadKind::Control, ServerFlavor::Vanilla, "DAS-5 2-core")
                .len(),
            2
        );
        let cells = results.cell_summaries();
        assert_eq!(cells.len(), 4);
        assert!(cells.iter().all(|c| c.iterations == 2));
    }

    #[test]
    fn empty_dimensions_are_errors_not_panics() {
        let no_workloads = Campaign::new().run();
        assert_eq!(
            no_workloads.unwrap_err(),
            BenchmarkError::EmptyDimension {
                dimension: "workloads"
            }
        );
        let no_flavors = quick_campaign().flavors([]).run();
        assert_eq!(
            no_flavors.unwrap_err(),
            BenchmarkError::EmptyDimension {
                dimension: "flavors"
            }
        );
        let no_envs = quick_campaign().environments([]).run();
        assert_eq!(
            no_envs.unwrap_err(),
            BenchmarkError::EmptyDimension {
                dimension: "environments"
            }
        );
        let no_iters = quick_campaign().iterations(0).run();
        assert_eq!(
            no_iters.unwrap_err(),
            BenchmarkError::EmptyDimension {
                dimension: "iterations"
            }
        );
    }

    #[test]
    fn invalid_scalars_and_deployment_are_errors_not_panics() {
        let zero_duration = quick_campaign().duration_secs(0).run();
        assert!(matches!(
            zero_duration.unwrap_err(),
            BenchmarkError::InvalidParameter {
                parameter: "duration_secs",
                ..
            }
        ));

        let mut bad_nodes = BenchmarkConfig::new(WorkloadKind::Control);
        bad_nodes.node_ips = vec!["10.0.0.10".into()];
        let result = quick_campaign().template(bad_nodes).run();
        assert_eq!(
            result.unwrap_err(),
            BenchmarkError::Deployment(DeploymentError::NotEnoughNodes { provided: 1 })
        );

        let mut bad_ram = BenchmarkConfig::new(WorkloadKind::Control);
        bad_ram.ram_gb = 0.0;
        let result = quick_campaign().template(bad_ram).run();
        assert!(matches!(
            result.unwrap_err(),
            BenchmarkError::InvalidParameter {
                parameter: "ram_gb",
                ..
            }
        ));
    }

    #[test]
    fn job_seeds_are_order_independent_and_well_spread() {
        let coord = |workload, environment, flavor| CellCoord {
            workload,
            environment,
            flavor,
            tick_threads: 0,
            shard_rebalance: 0,
            eager_lighting: 0,
            start_time: 0,
        };
        let t1 = BenchmarkConfig::new(WorkloadKind::Control).with_seed(1);
        let t2 = BenchmarkConfig::new(WorkloadKind::Control).with_seed(2);
        let a = job_seed(&t1, coord(0, 0, 0), 0);
        let b = job_seed(&t1, coord(0, 0, 0), 1);
        let c = job_seed(&t1, coord(0, 0, 1), 0);
        let d = job_seed(&t1, coord(1, 0, 0), 0);
        let e = job_seed(&t2, coord(0, 0, 0), 0);
        let all = [a, b, c, d, e];
        let distinct: std::collections::HashSet<u64> = all.iter().copied().collect();
        assert_eq!(distinct.len(), all.len());
        // Same coordinates always give the same seed.
        assert_eq!(
            job_seed(&t1, coord(3, 2, 1), 7),
            job_seed(&t1, coord(3, 2, 1), 7)
        );
    }

    #[test]
    fn template_is_builder_order_independent() {
        let mut infra = BenchmarkConfig::new(WorkloadKind::Control);
        infra.node_ips = vec!["10.1.0.1".into(), "10.1.0.2".into()];
        infra.ram_gb = 8.0;
        let before = quick_campaign().template(infra.clone());
        let after = Campaign::new()
            .template(infra)
            .workloads([WorkloadKind::Control, WorkloadKind::Players])
            .flavors([ServerFlavor::Vanilla, ServerFlavor::Paper])
            .environments([Environment::das5(2)])
            .iterations(2)
            .duration_secs(2);
        let plan_before = before.plan().unwrap();
        let plan_after = after.plan().unwrap();
        assert_eq!(plan_before.jobs().len(), plan_after.jobs().len());
        for (x, y) in plan_before.jobs().iter().zip(plan_after.jobs()) {
            assert_eq!(x.config, y.config);
            assert_eq!(x.seed, y.seed);
        }
        assert_eq!(plan_before.deployment().server_node(), "10.1.0.1");
        assert_eq!(plan_before.jobs()[0].config.ram_gb, 8.0);
        // Scalar knobs set on the campaign survive a later template() call.
        assert_eq!(plan_before.jobs()[0].config.iterations, 2);
        assert_eq!(plan_before.jobs()[0].config.duration_secs, 2);
    }

    #[test]
    fn from_config_preserves_the_legacy_shape() {
        let config = BenchmarkConfig::new(WorkloadKind::Farm)
            .with_flavors(vec![ServerFlavor::Forge])
            .with_environment(Environment::das5(2))
            .with_duration_secs(2)
            .with_iterations(3);
        let campaign = Campaign::from_config(config);
        assert_eq!(campaign.cell_count(), 1);
        assert_eq!(campaign.job_count(), 3);
        let results = campaign.run().unwrap();
        assert_eq!(results.iterations().len(), 3);
        assert!(results
            .iterations()
            .iter()
            .all(|r| r.workload == WorkloadKind::Farm));
    }

    #[test]
    fn same_label_environments_stay_distinct_cells() {
        // Two environment variants can share a display label (e.g. ablation
        // studies toggling interference internals on the same node type);
        // coordinate-based identity must keep them apart.
        let results = Campaign::new()
            .workloads([WorkloadKind::Control])
            .flavors([ServerFlavor::Vanilla])
            .environments([Environment::das5(2), Environment::das5(2)])
            .iterations(2)
            .duration_secs(2)
            .run()
            .unwrap();
        assert_eq!(results.iterations().len(), 4);
        let cells = results.cell_summaries();
        assert_eq!(cells.len(), 2, "same-label environments must not merge");
        assert!(cells.iter().all(|c| c.iterations == 2));
        let first = results.for_coord(CellCoord {
            workload: 0,
            environment: 0,
            flavor: 0,
            tick_threads: 0,
            shard_rebalance: 0,
            eager_lighting: 0,
            start_time: 0,
        });
        let second = results.for_coord(CellCoord {
            workload: 0,
            environment: 1,
            flavor: 0,
            tick_threads: 0,
            shard_rebalance: 0,
            eager_lighting: 0,
            start_time: 0,
        });
        assert_eq!(first.len(), 2);
        assert_eq!(second.len(), 2);
        // Label-based lookup pools them, as documented.
        assert_eq!(
            results
                .for_cell(WorkloadKind::Control, ServerFlavor::Vanilla, "DAS-5 2-core")
                .len(),
            4
        );
    }

    #[test]
    fn single_cell_seeds_match_the_legacy_scheme() {
        // The legacy pre-campaign runner derived seeds with
        // BenchmarkConfig::iteration_seed; a single-workload
        // single-environment campaign must reproduce them exactly so legacy
        // results stay bit-identical under the new API.
        let config = BenchmarkConfig::new(WorkloadKind::Control).with_iterations(3);
        let plan = Campaign::from_config(config.clone()).plan().unwrap();
        assert_eq!(plan.jobs().len(), 9, "3 flavors x 3 iterations");
        for job in plan.jobs() {
            let f_idx = config
                .flavors
                .iter()
                .position(|f| *f == job.flavor)
                .unwrap();
            assert_eq!(job.seed, config.iteration_seed(f_idx, job.iteration));
        }
    }

    #[test]
    fn tick_threads_axis_expands_cells_but_not_seeds() {
        let campaign = Campaign::new()
            .workloads([WorkloadKind::Control])
            .flavors([ServerFlavor::Vanilla])
            .environments([Environment::das5(2)])
            .tick_threads([1, 4])
            .iterations(2)
            .duration_secs(2);
        assert_eq!(campaign.cell_count(), 2);
        let plan = campaign.plan().unwrap();
        assert_eq!(plan.jobs().len(), 4);
        // Same grid cell at different thread counts ⇒ identical seeds:
        // thread count must never perturb results.
        let one_thread: Vec<u64> = plan
            .jobs()
            .iter()
            .filter(|j| j.coord.tick_threads == 0)
            .map(|j| j.seed)
            .collect();
        let four_threads: Vec<u64> = plan
            .jobs()
            .iter()
            .filter(|j| j.coord.tick_threads == 1)
            .map(|j| j.seed)
            .collect();
        assert_eq!(one_thread, four_threads);
        assert!(plan
            .jobs()
            .iter()
            .any(|j| j.config.tick_threads == 4 && j.label().contains("[4thr]")));

        let no_threads = campaign.tick_threads([]).run();
        assert_eq!(
            no_threads.unwrap_err(),
            BenchmarkError::EmptyDimension {
                dimension: "tick_threads"
            }
        );
    }

    #[test]
    fn shard_rebalance_axis_expands_cells_with_paired_seeds() {
        let campaign = Campaign::new()
            .workloads([WorkloadKind::Control])
            .flavors([ServerFlavor::Vanilla])
            .environments([Environment::das5(2)])
            .shard_rebalance([false, true])
            .iterations(2)
            .duration_secs(2);
        assert_eq!(campaign.cell_count(), 2);
        let plan = campaign.plan().unwrap();
        assert_eq!(plan.jobs().len(), 4);
        // The axis is a paired architecture comparison: same grid cell with
        // rebalancing off vs on gets identical seeds.
        let off: Vec<u64> = plan
            .jobs()
            .iter()
            .filter(|j| j.coord.shard_rebalance == 0)
            .map(|j| j.seed)
            .collect();
        let on: Vec<u64> = plan
            .jobs()
            .iter()
            .filter(|j| j.coord.shard_rebalance == 1)
            .map(|j| j.seed)
            .collect();
        assert_eq!(off, on);
        assert!(plan
            .jobs()
            .iter()
            .any(|j| j.config.shard_rebalance == Some(true) && j.label().contains("[rebal]")));
        assert!(plan
            .jobs()
            .iter()
            .any(|j| j.config.shard_rebalance == Some(false) && j.label().contains("[static]")));

        let empty = campaign.shard_rebalance([]).run();
        assert_eq!(
            empty.unwrap_err(),
            BenchmarkError::EmptyDimension {
                dimension: "shard_rebalance"
            }
        );
    }

    #[test]
    fn campaign_labels_are_informative() {
        let plan = quick_campaign().plan().unwrap();
        let label = plan.jobs()[0].label();
        assert!(label.contains("Control") && label.contains("#0"), "{label}");
    }
}
