//! Result presentation: aligned text tables, CSV export and ASCII plots.
//!
//! Meterstick's Data Visualization component "automatically outputs basic
//! plots for MLG performance and performance variability" (Figure 5,
//! component 10). In this reproduction the benchmark binaries print aligned
//! text tables and simple ASCII charts and can emit CSV for external plotting
//! tools.

use meterstick_metrics::stats::BoxplotSummary;

/// Renders an aligned plain-text table.
///
/// Every row must have the same number of cells as `headers`; shorter rows
/// are padded with empty cells.
#[must_use]
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let columns = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(columns) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, width) in widths.iter().enumerate() {
            let cell = cells.get(i).map_or("", |c| c.as_str());
            line.push_str(&format!("{cell:<width$}"));
            if i + 1 < widths.len() {
                line.push_str("  ");
            }
        }
        line.trim_end().to_string()
    };
    let header_cells: Vec<String> = headers.iter().map(|h| (*h).to_string()).collect();
    out.push_str(&render_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (columns.saturating_sub(1))));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row, &widths));
        out.push('\n');
    }
    out
}

fn csv_escape(cell: &str) -> String {
    if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

/// Renders one CSV row (no trailing newline). Cells containing commas,
/// quotes or newlines are quoted. Streaming sinks use this to emit rows as
/// results complete; [`to_csv`] uses it for whole tables.
#[must_use]
pub fn csv_row(cells: &[String]) -> String {
    cells
        .iter()
        .map(|c| csv_escape(c))
        .collect::<Vec<_>>()
        .join(",")
}

/// Renders rows as CSV with a header line. Cells containing commas or quotes
/// are quoted.
#[must_use]
pub fn to_csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(
        &headers
            .iter()
            .map(|h| csv_escape(h))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    for row in rows {
        out.push_str(&csv_row(row));
        out.push('\n');
    }
    out
}

/// Renders a horizontal ASCII bar scaled so that `max_value` fills `width`
/// characters.
#[must_use]
pub fn ascii_bar(value: f64, max_value: f64, width: usize) -> String {
    if max_value <= 0.0 || width == 0 || value <= 0.0 {
        return String::new();
    }
    let filled = ((value / max_value) * width as f64).round() as usize;
    "#".repeat(filled.clamp(1, width))
}

/// Renders a box-and-whisker summary as a one-line ASCII gauge spanning
/// `[0, max_value]`, e.g. `|---[==|==]-------    |`.
#[must_use]
pub fn ascii_boxplot(summary: &BoxplotSummary, max_value: f64, width: usize) -> String {
    if max_value <= 0.0 || width < 10 {
        return String::new();
    }
    let scale = |v: f64| -> usize {
        (((v / max_value) * (width - 1) as f64).round() as usize).min(width - 1)
    };
    let mut chars = vec![' '; width];
    let lo = scale(summary.whisker_low);
    let hi = scale(summary.whisker_high);
    let q1 = scale(summary.q1);
    let q3 = scale(summary.q3);
    let med = scale(summary.median);
    for c in chars.iter_mut().take(hi + 1).skip(lo) {
        *c = '-';
    }
    for c in chars.iter_mut().take(q3 + 1).skip(q1) {
        *c = '=';
    }
    chars[q1] = '[';
    chars[q3.max(q1)] = ']';
    chars[med] = '|';
    format!("|{}|", chars.into_iter().collect::<String>())
}

/// Formats a millisecond value with one decimal, e.g. `"47.3 ms"`.
#[must_use]
pub fn fmt_ms(value: f64) -> String {
    format!("{value:.1} ms")
}

/// Formats an ISR value with three decimals.
#[must_use]
pub fn fmt_isr(value: f64) -> String {
    format!("{value:.3}")
}

/// Formats a percentage with one decimal.
#[must_use]
pub fn fmt_percent(value: f64) -> String {
    format!("{value:.1}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned_and_complete() {
        let table = render_table(
            &["Server", "Workload", "ISR"],
            &[
                vec!["Minecraft".into(), "Control".into(), "0.010".into()],
                vec!["PaperMC".into(), "TNT".into(), "0.120".into()],
            ],
        );
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Server"));
        assert!(lines[2].contains("Minecraft"));
        assert!(lines[3].contains("PaperMC"));
        // Columns align: "Control" and "TNT" start at the same offset.
        let col = lines[2].find("Control").unwrap();
        assert_eq!(lines[3].find("TNT").unwrap(), col);
    }

    #[test]
    fn short_rows_are_padded() {
        let table = render_table(&["a", "b"], &[vec!["only".into()]]);
        assert!(table.lines().count() == 3);
    }

    #[test]
    fn csv_escapes_special_cells() {
        let csv = to_csv(
            &["name", "note"],
            &[vec!["x".into(), "hello, \"world\"".into()]],
        );
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.contains("\"hello, \"\"world\"\"\""));
    }

    #[test]
    fn bars_scale_with_value() {
        assert_eq!(ascii_bar(0.0, 10.0, 20), "");
        assert_eq!(ascii_bar(5.0, 10.0, 20).len(), 10);
        assert_eq!(ascii_bar(10.0, 10.0, 20).len(), 20);
        assert_eq!(ascii_bar(100.0, 10.0, 20).len(), 20, "bars are clamped");
    }

    #[test]
    fn boxplot_gauge_contains_the_box() {
        let summary = BoxplotSummary {
            whisker_low: 10.0,
            q1: 20.0,
            median: 25.0,
            q3: 30.0,
            whisker_high: 60.0,
            mean: 27.0,
            max: 80.0,
            min: 10.0,
        };
        let gauge = ascii_boxplot(&summary, 100.0, 50);
        assert!(gauge.contains('['));
        assert!(gauge.contains(']'));
        assert!(gauge.contains('|'));
        assert_eq!(gauge.len(), 52);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_ms(47.25), "47.2 ms");
        assert_eq!(fmt_isr(0.12345), "0.123");
        assert_eq!(fmt_percent(97.54), "97.5%");
    }
}
