//! Streaming result sinks: observers that consume [`IterationResult`]s as
//! they complete.
//!
//! A [`ResultSink`] is attached to a campaign run via
//! [`Campaign::run_with`]; executors call it once per finished iteration
//! *as soon as that iteration finishes*, so reports and figure binaries can
//! stream rows (CSV, progress lines) instead of materializing every result
//! before presenting anything. With a parallel executor the calls arrive in
//! completion order, not plan order; each call carries the originating
//! [`IterationJob`] so sinks can label rows without assuming order.
//!
//! [`Campaign::run_with`]: crate::campaign::Campaign::run_with

use std::io::Write;

use crate::campaign::{CampaignPlan, IterationJob};
use crate::report::csv_row;
use crate::results::IterationResult;

/// Observer of a campaign run; all methods have no-op defaults so sinks
/// implement only what they need.
pub trait ResultSink {
    /// Called once before the first job starts.
    fn on_campaign_start(&mut self, plan: &CampaignPlan) {
        let _ = plan;
    }

    /// Called once per finished iteration, in completion order.
    fn on_result(&mut self, job: &IterationJob, result: &IterationResult) {
        let _ = (job, result);
    }

    /// Called once after the last job finished.
    fn on_campaign_end(&mut self) {}
}

/// A sink that ignores everything; the default for [`Campaign::run`].
///
/// [`Campaign::run`]: crate::campaign::Campaign::run
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl ResultSink for NullSink {}

/// Streams one CSV summary row per iteration into any [`Write`] target.
///
/// The header is written when the campaign starts. Write errors are not
/// propagated into the benchmark run; the first one is retained and can be
/// inspected with [`CsvSink::error`].
#[derive(Debug)]
pub struct CsvSink<W: Write> {
    writer: W,
    error: Option<std::io::Error>,
}

/// Column headers of the per-iteration CSV stream. The `stage_*_ms`
/// columns carry the tick stage graph's per-stage busy-time totals
/// (milliseconds summed over the iteration's ticks), so a CSV diff across
/// architecture axes shows *which stage* an optimization moved.
pub const CSV_COLUMNS: [&str; 21] = [
    "workload",
    "flavor",
    "environment",
    "shard_rebalance",
    "eager_lighting",
    "iteration",
    "seed",
    "ticks_executed",
    "ticks_planned",
    "isr",
    "tick_p50_ms",
    "tick_max_ms",
    "response_p50_ms",
    "response_p95_ms",
    "stage_player_ms",
    "stage_terrain_ms",
    "stage_entity_ms",
    "stage_lighting_ms",
    "stage_dissemination_ms",
    "stage_other_ms",
    "crashed",
];

impl<W: Write> CsvSink<W> {
    /// Creates a sink writing to `writer`.
    pub fn new(writer: W) -> Self {
        CsvSink {
            writer,
            error: None,
        }
    }

    /// The first write error encountered, if any.
    pub fn error(&self) -> Option<&std::io::Error> {
        self.error.as_ref()
    }

    /// Consumes the sink and returns the writer.
    pub fn into_inner(self) -> W {
        self.writer
    }

    fn write_line(&mut self, line: &str) {
        if self.error.is_some() {
            return;
        }
        if let Err(err) = writeln!(self.writer, "{line}") {
            self.error = Some(err);
        }
    }
}

impl<W: Write> ResultSink for CsvSink<W> {
    fn on_campaign_start(&mut self, _plan: &CampaignPlan) {
        let headers: Vec<String> = CSV_COLUMNS.iter().map(|c| (*c).to_string()).collect();
        let line = csv_row(&headers);
        self.write_line(&line);
    }

    fn on_result(&mut self, job: &IterationJob, result: &IterationResult) {
        let ticks = result.tick_percentiles();
        let line = csv_row(&[
            result.workload.to_string(),
            result.flavor.to_string(),
            result.environment.clone(),
            match job.config.shard_rebalance {
                Some(true) => "on".to_string(),
                Some(false) => "off".to_string(),
                None => "default".to_string(),
            },
            match job.config.eager_lighting {
                Some(true) => "eager".to_string(),
                Some(false) => "pipelined".to_string(),
                None => "default".to_string(),
            },
            result.iteration.to_string(),
            job.seed.to_string(),
            result.ticks_executed.to_string(),
            result.ticks_planned.to_string(),
            format!("{:.6}", result.instability_ratio),
            format!("{:.3}", ticks.p50),
            format!("{:.3}", ticks.max),
            format!("{:.3}", result.response.percentiles.p50),
            format!("{:.3}", result.response.percentiles.p95),
            format!("{:.3}", result.stage_busy.player_ms),
            format!("{:.3}", result.stage_busy.terrain_ms),
            format!("{:.3}", result.stage_busy.entity_ms),
            format!("{:.3}", result.stage_busy.lighting_ms),
            format!("{:.3}", result.stage_busy.dissemination_ms),
            format!("{:.3}", result.stage_busy.other_ms),
            result.crashed.clone().unwrap_or_default(),
        ]);
        self.write_line(&line);
    }

    fn on_campaign_end(&mut self) {
        if self.error.is_none() {
            if let Err(err) = self.writer.flush() {
                self.error = Some(err);
            }
        }
    }
}

/// Prints one human-readable progress line per finished iteration.
#[derive(Debug)]
pub struct ProgressSink<W: Write> {
    writer: W,
    total: usize,
    done: usize,
}

impl<W: Write> ProgressSink<W> {
    /// Creates a sink printing to `writer` (e.g. `std::io::stderr()`).
    pub fn new(writer: W) -> Self {
        ProgressSink {
            writer,
            total: 0,
            done: 0,
        }
    }
}

impl<W: Write> ResultSink for ProgressSink<W> {
    fn on_campaign_start(&mut self, plan: &CampaignPlan) {
        self.total = plan.jobs().len();
        self.done = 0;
    }

    fn on_result(&mut self, job: &IterationJob, result: &IterationResult) {
        self.done += 1;
        let status = if result.crashed() { "CRASHED" } else { "ok" };
        let _ = writeln!(
            self.writer,
            "[{:>3}/{}] {}: ISR {:.4}, {} ticks, {status}",
            self.done,
            self.total,
            job.label(),
            result.instability_ratio,
            result.ticks_executed,
        );
    }
}

/// Fans every callback out to two sinks, so e.g. a CSV stream and a progress
/// display can observe the same run.
#[derive(Debug)]
pub struct TeeSink<'a> {
    first: &'a mut dyn ResultSink,
    second: &'a mut dyn ResultSink,
}

impl<'a> TeeSink<'a> {
    /// Combines two sinks.
    pub fn new(first: &'a mut dyn ResultSink, second: &'a mut dyn ResultSink) -> Self {
        TeeSink { first, second }
    }
}

impl ResultSink for TeeSink<'_> {
    fn on_campaign_start(&mut self, plan: &CampaignPlan) {
        self.first.on_campaign_start(plan);
        self.second.on_campaign_start(plan);
    }

    fn on_result(&mut self, job: &IterationJob, result: &IterationResult) {
        self.first.on_result(job, result);
        self.second.on_result(job, result);
    }

    fn on_campaign_end(&mut self) {
        self.first.on_campaign_end();
        self.second.on_campaign_end();
    }
}

impl std::fmt::Debug for dyn ResultSink + '_ {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ResultSink")
    }
}
