//! Streaming result sinks: observers that consume [`IterationResult`]s as
//! they complete.
//!
//! A [`ResultSink`] is attached to a campaign run via
//! [`Campaign::run_with`]; executors call it once per finished iteration
//! *as soon as that iteration finishes*, so reports and figure binaries can
//! stream rows (CSV, progress lines) instead of materializing every result
//! before presenting anything. With a parallel executor the calls arrive in
//! completion order, not plan order; each call carries the originating
//! [`IterationJob`] so sinks can label rows without assuming order.
//!
//! [`Campaign::run_with`]: crate::campaign::Campaign::run_with

use std::io::Write;

use mlg_server::TickStageBreakdown;

use crate::campaign::{CampaignPlan, IterationJob};
use crate::report::csv_row;
use crate::results::IterationResult;

/// One executed tick's live metrics, forwarded to sinks *while* an
/// iteration runs (unlike [`IterationResult`], which arrives only when the
/// iteration finishes).
///
/// Batch executors do not emit these — fanning per-tick callbacks through
/// worker threads would serialize the hot loop — so CSV campaigns are
/// unaffected. The benchmark daemon's resident loop runs iterations
/// in-process via
/// [`execute_iteration_observed`](crate::experiment::execute_iteration_observed)
/// and bridges every tick into its sink stack, which is how the same
/// [`ResultSink`] implementations serve both batch files and live
/// dashboards.
#[derive(Debug, Clone, Copy)]
pub struct TickSample {
    /// Tick sequence number within the iteration (0-based).
    pub tick: u64,
    /// Virtual time at which the tick ended, ms since iteration start.
    pub end_ms: f64,
    /// Tick computation time, ms.
    pub busy_ms: f64,
    /// Full tick period (`max(busy, budget)` plus catch-up backlog), ms.
    pub period_ms: f64,
    /// The server's tick budget (50 ms at 20 Hz), for overload judgements.
    pub budget_ms: f64,
    /// Per-stage busy-time breakdown of this tick.
    pub stages: TickStageBreakdown,
    /// Live entities after the tick.
    pub entity_count: usize,
    /// Connected players after the tick.
    pub player_count: usize,
}

impl TickSample {
    /// `true` when the tick's computation ran past its budget (the
    /// numerator of the paper's ISR definition).
    #[must_use]
    pub fn is_overloaded(&self) -> bool {
        self.busy_ms > self.budget_ms
    }
}

/// Observer of a campaign run; all methods have no-op defaults so sinks
/// implement only what they need.
pub trait ResultSink {
    /// Called once before the first job starts.
    fn on_campaign_start(&mut self, plan: &CampaignPlan) {
        let _ = plan;
    }

    /// Called once per executed tick of a live-observed run (the daemon
    /// path; batch executors never call this — see [`TickSample`]).
    fn on_tick(&mut self, job: &IterationJob, sample: &TickSample) {
        let _ = (job, sample);
    }

    /// Called once per finished iteration, in completion order.
    fn on_result(&mut self, job: &IterationJob, result: &IterationResult) {
        let _ = (job, result);
    }

    /// Called once after the last job finished.
    fn on_campaign_end(&mut self) {}
}

/// A sink that ignores everything; the default for [`Campaign::run`].
///
/// [`Campaign::run`]: crate::campaign::Campaign::run
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl ResultSink for NullSink {}

/// Streams one CSV summary row per iteration into any [`Write`] target.
///
/// The header is written when the campaign starts. Write errors are not
/// propagated into the benchmark run; the first one is retained and can be
/// inspected with [`CsvSink::error`].
#[derive(Debug)]
pub struct CsvSink<W: Write> {
    writer: W,
    error: Option<std::io::Error>,
    header_written: bool,
}

/// Column headers of the per-iteration CSV stream. The `stage_*_ms`
/// columns carry the tick stage graph's per-stage busy-time totals
/// (milliseconds summed over the iteration's ticks), so a CSV diff across
/// architecture axes shows *which stage* an optimization moved.
/// `dissemination_bytes` is the iteration's total clientbound traffic as
/// delivered (per-recipient wire bytes, including join-time chunk
/// streaming) — under area-of-interest dissemination this shrinks with the
/// summed interest-set sizes while the assembled packet stream stays the
/// same. `start_time` (trailing, so older tooling that indexes columns
/// positionally keeps working) is the simulated point of the week the
/// iteration started at, e.g. `mon-00:00` — a seed-excluded sweep axis
/// like `tick_threads`.
pub const CSV_COLUMNS: [&str; 23] = [
    "workload",
    "flavor",
    "environment",
    "shard_rebalance",
    "eager_lighting",
    "iteration",
    "seed",
    "ticks_executed",
    "ticks_planned",
    "isr",
    "tick_p50_ms",
    "tick_max_ms",
    "response_p50_ms",
    "response_p95_ms",
    "stage_player_ms",
    "stage_terrain_ms",
    "stage_entity_ms",
    "stage_lighting_ms",
    "stage_dissemination_ms",
    "stage_other_ms",
    "crashed",
    "dissemination_bytes",
    "start_time",
];

impl<W: Write> CsvSink<W> {
    /// Creates a sink writing to `writer`.
    pub fn new(writer: W) -> Self {
        CsvSink {
            writer,
            error: None,
            header_written: false,
        }
    }

    /// The first write error encountered, if any.
    pub fn error(&self) -> Option<&std::io::Error> {
        self.error.as_ref()
    }

    /// Consumes the sink and returns the writer.
    pub fn into_inner(self) -> W {
        self.writer
    }

    fn write_line(&mut self, line: &str) {
        if self.error.is_some() {
            return;
        }
        if let Err(err) = writeln!(self.writer, "{line}") {
            self.error = Some(err);
        }
    }
}

impl<W: Write> ResultSink for CsvSink<W> {
    fn on_campaign_start(&mut self, _plan: &CampaignPlan) {
        // One header per sink, not per campaign: the same sink may observe
        // several campaigns back to back (e.g. the determinism probe's
        // stationary + temporal passes streaming into one file).
        if self.header_written {
            return;
        }
        self.header_written = true;
        let headers: Vec<String> = CSV_COLUMNS.iter().map(|c| (*c).to_string()).collect();
        let line = csv_row(&headers);
        self.write_line(&line);
    }

    fn on_result(&mut self, job: &IterationJob, result: &IterationResult) {
        let ticks = result.tick_percentiles();
        let line = csv_row(&[
            result.workload.to_string(),
            result.flavor.to_string(),
            result.environment.clone(),
            match job.config.shard_rebalance {
                Some(true) => "on".to_string(),
                Some(false) => "off".to_string(),
                None => "default".to_string(),
            },
            match job.config.eager_lighting {
                Some(true) => "eager".to_string(),
                Some(false) => "pipelined".to_string(),
                None => "default".to_string(),
            },
            result.iteration.to_string(),
            job.seed.to_string(),
            result.ticks_executed.to_string(),
            result.ticks_planned.to_string(),
            format!("{:.6}", result.instability_ratio),
            format!("{:.3}", ticks.p50),
            format!("{:.3}", ticks.max),
            format!("{:.3}", result.response.percentiles.p50),
            format!("{:.3}", result.response.percentiles.p95),
            format!("{:.3}", result.stage_busy.player_ms),
            format!("{:.3}", result.stage_busy.terrain_ms),
            format!("{:.3}", result.stage_busy.entity_ms),
            format!("{:.3}", result.stage_busy.lighting_ms),
            format!("{:.3}", result.stage_busy.dissemination_ms),
            format!("{:.3}", result.stage_busy.other_ms),
            result.crashed.clone().unwrap_or_default(),
            result.traffic.total_bytes().to_string(),
            job.config.start_time.to_string(),
        ]);
        self.write_line(&line);
    }

    fn on_campaign_end(&mut self) {
        if self.error.is_none() {
            if let Err(err) = self.writer.flush() {
                self.error = Some(err);
            }
        }
    }
}

/// Prints one human-readable progress line per finished iteration.
#[derive(Debug)]
pub struct ProgressSink<W: Write> {
    writer: W,
    total: usize,
    done: usize,
}

impl<W: Write> ProgressSink<W> {
    /// Creates a sink printing to `writer` (e.g. `std::io::stderr()`).
    pub fn new(writer: W) -> Self {
        ProgressSink {
            writer,
            total: 0,
            done: 0,
        }
    }
}

impl<W: Write> ResultSink for ProgressSink<W> {
    fn on_campaign_start(&mut self, plan: &CampaignPlan) {
        self.total = plan.jobs().len();
        self.done = 0;
    }

    fn on_result(&mut self, job: &IterationJob, result: &IterationResult) {
        self.done += 1;
        let status = if result.crashed() { "CRASHED" } else { "ok" };
        let _ = writeln!(
            self.writer,
            "[{:>3}/{}] {}: ISR {:.4}, {} ticks, {status}",
            self.done,
            self.total,
            job.label(),
            result.instability_ratio,
            result.ticks_executed,
        );
    }
}

/// Streams newline-delimited JSON for dashboards: one `{"type":"tick",…}`
/// object per observed tick and one `{"type":"iteration",…}` object per
/// finished iteration.
///
/// JSON is assembled by hand (the vendored serde shim has no serializer to
/// arbitrary writers); every string field passes through [`json_escape`].
/// Write errors are retained rather than propagated, mirroring
/// [`CsvSink`]: the first one is inspectable via [`JsonlSink::error`].
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    writer: W,
    error: Option<std::io::Error>,
}

impl<W: Write> JsonlSink<W> {
    /// Creates a sink writing one JSON object per line to `writer`.
    pub fn new(writer: W) -> Self {
        JsonlSink {
            writer,
            error: None,
        }
    }

    /// The first write error encountered, if any.
    pub fn error(&self) -> Option<&std::io::Error> {
        self.error.as_ref()
    }

    /// Consumes the sink and returns the writer.
    pub fn into_inner(self) -> W {
        self.writer
    }

    fn write_line(&mut self, line: &str) {
        if self.error.is_some() {
            return;
        }
        if let Err(err) = writeln!(self.writer, "{line}") {
            self.error = Some(err);
        }
    }
}

/// Escapes a string for inclusion in a JSON string literal.
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

impl<W: Write> ResultSink for JsonlSink<W> {
    fn on_tick(&mut self, job: &IterationJob, sample: &TickSample) {
        let line = format!(
            concat!(
                "{{\"type\":\"tick\",\"job\":\"{}\",\"tick\":{},\"end_ms\":{:.3},",
                "\"busy_ms\":{:.3},\"period_ms\":{:.3},\"overloaded\":{},",
                "\"stage_player_ms\":{:.3},\"stage_terrain_ms\":{:.3},",
                "\"stage_entity_ms\":{:.3},\"stage_lighting_ms\":{:.3},",
                "\"stage_dissemination_ms\":{:.3},\"stage_other_ms\":{:.3},",
                "\"entities\":{},\"players\":{}}}"
            ),
            json_escape(&job.label()),
            sample.tick,
            sample.end_ms,
            sample.busy_ms,
            sample.period_ms,
            sample.is_overloaded(),
            sample.stages.player_ms,
            sample.stages.terrain_ms,
            sample.stages.entity_ms,
            sample.stages.lighting_ms,
            sample.stages.dissemination_ms,
            sample.stages.other_ms,
            sample.entity_count,
            sample.player_count,
        );
        self.write_line(&line);
    }

    fn on_result(&mut self, job: &IterationJob, result: &IterationResult) {
        let ticks = result.tick_percentiles();
        let line = format!(
            concat!(
                "{{\"type\":\"iteration\",\"job\":\"{}\",\"workload\":\"{}\",",
                "\"flavor\":\"{}\",\"environment\":\"{}\",\"iteration\":{},",
                "\"seed\":{},\"ticks_executed\":{},\"ticks_planned\":{},",
                "\"isr\":{:.6},\"tick_p50_ms\":{:.3},\"tick_max_ms\":{:.3},",
                "\"dissemination_bytes\":{},\"start_time\":\"{}\",\"crashed\":{}}}"
            ),
            json_escape(&job.label()),
            json_escape(&result.workload.to_string()),
            json_escape(&result.flavor.to_string()),
            json_escape(&result.environment),
            result.iteration,
            job.seed,
            result.ticks_executed,
            result.ticks_planned,
            result.instability_ratio,
            ticks.p50,
            ticks.max,
            result.traffic.total_bytes(),
            job.config.start_time,
            result.crashed(),
        );
        self.write_line(&line);
    }

    fn on_campaign_end(&mut self) {
        if self.error.is_none() {
            if let Err(err) = self.writer.flush() {
                self.error = Some(err);
            }
        }
    }
}

/// Fans every callback out to two sinks, so e.g. a CSV stream and a progress
/// display can observe the same run.
#[derive(Debug)]
pub struct TeeSink<'a> {
    first: &'a mut dyn ResultSink,
    second: &'a mut dyn ResultSink,
}

impl<'a> TeeSink<'a> {
    /// Combines two sinks.
    pub fn new(first: &'a mut dyn ResultSink, second: &'a mut dyn ResultSink) -> Self {
        TeeSink { first, second }
    }
}

impl ResultSink for TeeSink<'_> {
    fn on_campaign_start(&mut self, plan: &CampaignPlan) {
        self.first.on_campaign_start(plan);
        self.second.on_campaign_start(plan);
    }

    fn on_tick(&mut self, job: &IterationJob, sample: &TickSample) {
        self.first.on_tick(job, sample);
        self.second.on_tick(job, sample);
    }

    fn on_result(&mut self, job: &IterationJob, result: &IterationResult) {
        self.first.on_result(job, result);
        self.second.on_result(job, result);
    }

    fn on_campaign_end(&mut self) {
        self.first.on_campaign_end();
        self.second.on_campaign_end();
    }
}

impl std::fmt::Debug for dyn ResultSink + '_ {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ResultSink")
    }
}
