//! Benchmark results: per-iteration records and aggregate views.

use cloud_sim::metrics_collector::SystemSample;
use meterstick_metrics::response::ResponseTimeSummary;
use meterstick_metrics::stats::{BoxplotSummary, Percentiles};
use meterstick_metrics::trace::TickTrace;
use meterstick_metrics::windowed::WindowedReport;
use meterstick_metrics::TickDistribution;
use meterstick_workloads::WorkloadKind;
use mlg_protocol::TrafficSummary;
use mlg_server::{ServerFlavor, TickStageBreakdown};

/// Everything recorded for one iteration of one flavor under one workload.
#[derive(Debug, Clone)]
pub struct IterationResult {
    /// The system under test.
    pub flavor: ServerFlavor,
    /// The workload that was run.
    pub workload: WorkloadKind,
    /// Which iteration this is (0-based).
    pub iteration: u32,
    /// Environment label, e.g. `"AWS 2-core"`.
    pub environment: String,
    /// The per-tick trace.
    pub trace: TickTrace,
    /// Instability Ratio of the trace (Equation 1).
    pub instability_ratio: f64,
    /// Raw response-time samples from the chat prober, in milliseconds.
    pub response_samples: Vec<f64>,
    /// Response-time summary.
    pub response: ResponseTimeSummary,
    /// System-level metric samples (CPU, memory, threads, I/O).
    pub system_samples: Vec<SystemSample>,
    /// Clientbound traffic summary (entity/terrain/chat shares).
    pub traffic: TrafficSummary,
    /// Ticks actually executed (fewer than planned when the server crashed).
    pub ticks_executed: u64,
    /// Ticks the iteration was supposed to run.
    pub ticks_planned: u64,
    /// Crash reason if the server aborted during the iteration.
    pub crashed: Option<String>,
    /// Per-stage busy-time totals over the iteration, in milliseconds —
    /// the tick stage graph's breakdown (player handler, terrain,
    /// entities, lighting, dissemination, other) summed across all
    /// executed ticks. Attributes variability to pipeline stages the way
    /// the per-tick distribution attributes it to work classes.
    pub stage_busy: TickStageBreakdown,
    /// Windowed streaming aggregates, present only for long-horizon
    /// iterations run with
    /// [`BenchmarkConfig::metrics_window`](crate::config::BenchmarkConfig)
    /// set. When present, `trace` is bounded to the final window while
    /// `instability_ratio` still covers the full horizon (folded
    /// incrementally).
    pub windowed: Option<WindowedReport>,
}

impl IterationResult {
    /// Percentile summary of the tick busy times.
    #[must_use]
    pub fn tick_percentiles(&self) -> Percentiles {
        self.trace.percentiles()
    }

    /// Boxplot summary of the tick busy times.
    #[must_use]
    pub fn tick_boxplot(&self) -> BoxplotSummary {
        self.trace.boxplot()
    }

    /// The aggregate tick-time distribution over the iteration (Figure 11).
    #[must_use]
    pub fn tick_distribution(&self) -> TickDistribution {
        self.trace.aggregate_distribution()
    }

    /// Returns `true` if the server crashed before completing the iteration.
    #[must_use]
    pub fn crashed(&self) -> bool {
        self.crashed.is_some()
    }
}

/// All iterations of one benchmark run.
#[derive(Debug, Clone, Default)]
pub struct ExperimentResults {
    iterations: Vec<IterationResult>,
}

impl ExperimentResults {
    /// Creates an empty result set.
    #[must_use]
    pub fn new() -> Self {
        ExperimentResults::default()
    }

    /// Adds one iteration result.
    pub fn push(&mut self, result: IterationResult) {
        self.iterations.push(result);
    }

    /// All iteration results in execution order.
    #[must_use]
    pub fn iterations(&self) -> &[IterationResult] {
        &self.iterations
    }

    /// Iteration results for one flavor.
    #[must_use]
    pub fn for_flavor(&self, flavor: ServerFlavor) -> Vec<&IterationResult> {
        self.iterations
            .iter()
            .filter(|r| r.flavor == flavor)
            .collect()
    }

    /// Iteration results for one flavor and workload.
    #[must_use]
    pub fn for_flavor_and_workload(
        &self,
        flavor: ServerFlavor,
        workload: WorkloadKind,
    ) -> Vec<&IterationResult> {
        self.iterations
            .iter()
            .filter(|r| r.flavor == flavor && r.workload == workload)
            .collect()
    }

    /// The ISR values of every iteration of one flavor.
    #[must_use]
    pub fn isr_values(&self, flavor: ServerFlavor) -> Vec<f64> {
        self.for_flavor(flavor)
            .iter()
            .map(|r| r.instability_ratio)
            .collect()
    }

    /// All tick busy times of one flavor, pooled across iterations.
    #[must_use]
    pub fn pooled_tick_times(&self, flavor: ServerFlavor) -> Vec<f64> {
        self.for_flavor(flavor)
            .iter()
            .flat_map(|r| r.trace.busy_durations())
            .collect()
    }

    /// All response-time samples of one flavor, pooled across iterations.
    #[must_use]
    pub fn pooled_response_times(&self, flavor: ServerFlavor) -> Vec<f64> {
        self.for_flavor(flavor)
            .iter()
            .flat_map(|r| r.response_samples.clone())
            .collect()
    }

    /// Number of iterations that ended in a crash, per flavor.
    #[must_use]
    pub fn crash_count(&self, flavor: ServerFlavor) -> usize {
        self.for_flavor(flavor)
            .iter()
            .filter(|r| r.crashed())
            .count()
    }

    /// Merges another result set into this one.
    pub fn merge(&mut self, other: ExperimentResults) {
        self.iterations.extend(other.iterations);
    }
}

impl Extend<IterationResult> for ExperimentResults {
    fn extend<T: IntoIterator<Item = IterationResult>>(&mut self, iter: T) {
        self.iterations.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meterstick_metrics::trace::TickRecord;

    fn iteration(
        flavor: ServerFlavor,
        workload: WorkloadKind,
        isr: f64,
        crashed: bool,
    ) -> IterationResult {
        let mut trace = TickTrace::new(50.0);
        for i in 0..10 {
            trace.push(TickRecord {
                index: i,
                start_ms: i as f64 * 50.0,
                busy_ms: 10.0 + i as f64,
                period_ms: 50.0,
                distribution: TickDistribution::default(),
            });
        }
        IterationResult {
            flavor,
            workload,
            iteration: 0,
            environment: "AWS 2-core".into(),
            trace,
            instability_ratio: isr,
            response_samples: vec![40.0, 50.0],
            response: ResponseTimeSummary::of(&[40.0, 50.0]),
            system_samples: Vec::new(),
            traffic: TrafficSummary::default(),
            ticks_executed: 10,
            ticks_planned: 10,
            crashed: crashed.then(|| "stalled".to_string()),
            stage_busy: TickStageBreakdown::default(),
            windowed: None,
        }
    }

    #[test]
    fn grouping_by_flavor_and_workload() {
        let mut results = ExperimentResults::new();
        results.push(iteration(
            ServerFlavor::Vanilla,
            WorkloadKind::Control,
            0.01,
            false,
        ));
        results.push(iteration(
            ServerFlavor::Vanilla,
            WorkloadKind::Tnt,
            0.2,
            false,
        ));
        results.push(iteration(
            ServerFlavor::Paper,
            WorkloadKind::Tnt,
            0.05,
            false,
        ));
        assert_eq!(results.iterations().len(), 3);
        assert_eq!(results.for_flavor(ServerFlavor::Vanilla).len(), 2);
        assert_eq!(
            results
                .for_flavor_and_workload(ServerFlavor::Vanilla, WorkloadKind::Tnt)
                .len(),
            1
        );
        assert_eq!(results.isr_values(ServerFlavor::Paper), vec![0.05]);
    }

    #[test]
    fn pooled_views_concatenate_iterations() {
        let mut results = ExperimentResults::new();
        results.push(iteration(
            ServerFlavor::Forge,
            WorkloadKind::Players,
            0.01,
            false,
        ));
        results.push(iteration(
            ServerFlavor::Forge,
            WorkloadKind::Players,
            0.02,
            false,
        ));
        assert_eq!(results.pooled_tick_times(ServerFlavor::Forge).len(), 20);
        assert_eq!(results.pooled_response_times(ServerFlavor::Forge).len(), 4);
    }

    #[test]
    fn crash_counting() {
        let mut results = ExperimentResults::new();
        results.push(iteration(
            ServerFlavor::Vanilla,
            WorkloadKind::Lag,
            0.9,
            true,
        ));
        results.push(iteration(
            ServerFlavor::Vanilla,
            WorkloadKind::Lag,
            0.9,
            false,
        ));
        assert_eq!(results.crash_count(ServerFlavor::Vanilla), 1);
        assert!(results.iterations()[0].crashed());
    }

    #[test]
    fn iteration_summaries_are_consistent() {
        let it = iteration(ServerFlavor::Paper, WorkloadKind::Control, 0.0, false);
        assert_eq!(it.tick_percentiles().min, 10.0);
        assert_eq!(it.tick_boxplot().max, 19.0);
    }
}
