//! # Meterstick
//!
//! A benchmark for **performance variability** in cloud and self-hosted
//! Minecraft-like games (MLGs), reproducing the ISPASS 2022 paper
//! *"Meterstick: Benchmarking Performance Variability in Cloud and
//! Self-hosted Minecraft-like Games"* (Eickhoff, Donkervliet, Iosup) on top
//! of a fully simulated substrate: an MLG server, player emulation, and
//! deployment-environment models for AWS, Azure and dedicated hardware.
//!
//! The crate orchestrates everything the paper's benchmark does:
//!
//! * [`config`] — the benchmark configuration (Table 4);
//! * [`deployment`] — the deployment component that places workers on nodes
//!   (Figure 5, component 2);
//! * [`controller`] — the controller/worker message protocol (Table 1);
//! * [`experiment`] — the experiment runner: iterations of a workload against
//!   a server flavor inside a deployment environment, collecting tick traces,
//!   response times, system metrics and traffic summaries;
//! * [`results`] — per-iteration and aggregate results, including the
//!   Instability Ratio;
//! * [`report`] — plain-text tables and CSV output for every figure and table
//!   in the paper's evaluation.
//!
//! # Quickstart
//!
//! ```
//! use meterstick::config::BenchmarkConfig;
//! use meterstick::experiment::ExperimentRunner;
//! use meterstick_workloads::WorkloadKind;
//! use mlg_server::ServerFlavor;
//! use cloud_sim::environment::Environment;
//!
//! // Benchmark the vanilla server on the Control workload, self-hosted,
//! // with two short iterations.
//! let config = BenchmarkConfig::new(WorkloadKind::Control)
//!     .with_flavors(vec![ServerFlavor::Vanilla])
//!     .with_environment(Environment::das5(2))
//!     .with_duration_secs(5)
//!     .with_iterations(2);
//! let results = ExperimentRunner::new(config).run();
//! assert_eq!(results.iterations().len(), 2);
//! for iteration in results.iterations() {
//!     assert!(iteration.instability_ratio >= 0.0);
//! }
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod controller;
pub mod deployment;
pub mod experiment;
pub mod report;
pub mod results;

pub use config::BenchmarkConfig;
pub use experiment::ExperimentRunner;
pub use results::{ExperimentResults, IterationResult};
