//! # Meterstick
//!
//! A benchmark for **performance variability** in cloud and self-hosted
//! Minecraft-like games (MLGs), reproducing the ISPASS 2022 paper
//! *"Meterstick: Benchmarking Performance Variability in Cloud and
//! Self-hosted Minecraft-like Games"* (Eickhoff, Donkervliet, Iosup) on top
//! of a fully simulated substrate: an MLG server, player emulation, and
//! deployment-environment models for AWS, Azure and dedicated hardware.
//!
//! The crate orchestrates everything the paper's benchmark does:
//!
//! * [`campaign`] — factorial benchmark sweeps (workloads × flavors ×
//!   environments × iterations) expanded into independent, seeded jobs;
//! * [`executor`] — pluggable execution strategies: sequential or
//!   thread-based parallel fan-out with bit-identical results;
//! * [`sink`] — streaming observers that consume results as they complete
//!   (CSV rows, progress lines) instead of materializing everything;
//! * [`error`] — the non-panicking [`BenchmarkError`] every orchestration
//!   path reports through;
//! * [`config`] — the per-cell benchmark configuration (Table 4);
//! * [`deployment`] — the deployment component that places workers on nodes
//!   (Figure 5, component 2);
//! * [`controller`] — the controller/worker message protocol (Table 1);
//! * [`experiment`] — single-iteration execution;
//! * [`results`] — per-iteration and aggregate results, including the
//!   Instability Ratio;
//! * [`report`] — plain-text tables and CSV output for every figure and
//!   table in the paper's evaluation.
//!
//! # Quickstart
//!
//! The paper's evaluation is a *matrix* of experiments; a [`Campaign`]
//! declares the whole matrix and runs it in one call:
//!
//! ```
//! use meterstick::campaign::Campaign;
//! use meterstick_workloads::WorkloadKind;
//! use mlg_server::ServerFlavor;
//! use cloud_sim::environment::Environment;
//!
//! // Two workloads × two flavors × one environment × two iterations.
//! let results = Campaign::new()
//!     .workloads([WorkloadKind::Control, WorkloadKind::Players])
//!     .flavors([ServerFlavor::Vanilla, ServerFlavor::Paper])
//!     .environments([Environment::das5(2)])
//!     .duration_secs(3)
//!     .iterations(2)
//!     .run()
//!     .expect("the campaign configuration is valid");
//! assert_eq!(results.iterations().len(), 8);
//! for cell in results.cell_summaries() {
//!     assert!(cell.mean_isr >= 0.0 && cell.mean_isr <= 1.0);
//! }
//! ```
//!
//! Iterations are seed-deterministic and independent, so the same campaign
//! can fan out across threads — and stream results as they complete:
//!
//! ```
//! use meterstick::campaign::Campaign;
//! use meterstick::executor::ParallelExecutor;
//! use meterstick::sink::CsvSink;
//! use meterstick_workloads::WorkloadKind;
//! use mlg_server::ServerFlavor;
//! use cloud_sim::environment::Environment;
//!
//! let campaign = Campaign::new()
//!     .workloads([WorkloadKind::Control])
//!     .flavors([ServerFlavor::Vanilla])
//!     .environments([Environment::das5(2)])
//!     .duration_secs(2);
//! let mut csv = CsvSink::new(Vec::new());
//! let results = campaign
//!     .run_with(&ParallelExecutor::default(), &mut csv)
//!     .expect("valid campaign");
//! let rows = String::from_utf8(csv.into_inner()).unwrap();
//! assert_eq!(rows.lines().count(), 1 + results.iterations().len());
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod campaign;
pub mod config;
pub mod controller;
pub mod deployment;
pub mod error;
pub mod executor;
pub mod experiment;
pub mod report;
pub mod results;
pub mod sink;

pub use campaign::{Campaign, CampaignPlan, CampaignResults, IterationJob};
pub use config::BenchmarkConfig;
pub use error::BenchmarkError;
pub use executor::{Executor, ParallelExecutor, SequentialExecutor};
pub use experiment::{execute_iteration_observed, NoopTickObserver, TickObserver};
pub use results::{ExperimentResults, IterationResult};
pub use sink::{CsvSink, JsonlSink, NullSink, ProgressSink, ResultSink, TickSample};
