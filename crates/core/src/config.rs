//! Benchmark configuration (Table 4 of the paper).

use serde::{Deserialize, Serialize};

use cloud_sim::environment::Environment;
use cloud_sim::temporal::StartTime;
use meterstick_workloads::{WorkloadKind, WorkloadSpec};
use mlg_protocol::netsim::LinkConfig;
use mlg_server::ServerFlavor;

/// Full configuration of one Meterstick benchmark run.
///
/// The fields mirror the configurable parameters of Table 4. Parameters that
/// only exist for real-machine deployments (node IP addresses, SSH keys, JMX
/// URLs and ports) are kept for interface fidelity — the simulated deployment
/// validates them but does not open network connections.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkConfig {
    /// The systems under test (Table 4 "Servers", typical value V, F, P).
    pub flavors: Vec<ServerFlavor>,
    /// The workload world (Table 4 "World").
    pub workload: WorkloadSpec,
    /// The deployment environment the server node runs in.
    pub environment: Environment,
    /// Length of one iteration, in (virtual) seconds (Table 4 "Duration").
    pub duration_secs: u64,
    /// Number of iterations (Table 4 "Iterations").
    pub iterations: u32,
    /// Number of emulated players; `None` uses the workload's own player
    /// configuration (Table 4 "Number of Bots", typical value 25).
    pub bots_override: Option<u32>,
    /// Network link between the player-emulation node and the server node.
    pub link: LinkConfig,
    /// Base random seed; every iteration derives its own seed from it.
    pub base_seed: u64,
    /// Simulated node addresses (Table 4 "IPs"); informational only.
    pub node_ips: Vec<String>,
    /// Simulated SSH key paths (Table 4 "SSL Keys"); informational only.
    pub ssh_keys: Vec<String>,
    /// Simulated JMX port range used by the metric externalizer (Table 4).
    pub jmx_ports: (u16, u16),
    /// Maximum heap for the game (Table 4 "RAM", GiB).
    pub ram_gb: f64,
    /// CPU affinity mask (Table 4 "Affinity"); the simulated equivalent is
    /// the node's vCPU count, so this is informational only.
    pub affinity_mask: u64,
    /// Resume a partially completed experiment (Table 4 "Resume").
    pub resume: bool,
    /// Worker threads the server's sharded tick pipeline may use. Pure
    /// execution infrastructure: identical results at any value, only
    /// wall-clock time changes (there are tests pinning this).
    pub tick_threads: u32,
    /// Overrides the flavor's adaptive shard-rebalancing knob: `None` uses
    /// the flavor default (on for Folia, off for the paper's flavors),
    /// `Some(v)` forces it for sharded flavors. Serial flavors
    /// (`tick_shards <= 1`) ignore the override — they have no partition
    /// to rebalance. A modeled-architecture change, unlike `tick_threads`
    /// — campaigns sweep it via the `shard_rebalance` axis.
    pub shard_rebalance: Option<bool>,
    /// Overrides the flavor's eager-lighting knob: `None` uses the flavor
    /// default (eager for Vanilla/Forge, pipelined for Paper/Folia),
    /// `Some(true)` forces eager in-stage relighting, `Some(false)` forces
    /// the cross-tick pipelined lighting stage. A modeled-architecture
    /// change — campaigns sweep it via the `eager_lighting` axis to
    /// measure what pipelining the lighting phase buys.
    pub eager_lighting: Option<bool>,
    /// Point of the simulated week at which iterations start. Only matters
    /// for environments with a non-flat temporal (tenancy) profile; like
    /// `tick_threads`, it is excluded from seed derivation so a `start_time`
    /// sweep compares identical worlds and interference seeds at different
    /// points of the week.
    pub start_time: StartTime,
    /// When set, iterations fold their tick stream through a
    /// [`meterstick_metrics::windowed::WindowedAggregator`] instead of
    /// retaining the full trace — memory stays flat with horizon, enabling
    /// hours→days of simulated wall-clock. The retained trace is bounded to
    /// the final window.
    pub metrics_window: Option<MetricsWindow>,
}

/// Windowed-aggregation knob for long-horizon iterations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MetricsWindow {
    /// Ticks per aggregation window (e.g. 1 200 = one simulated minute).
    pub window_ticks: u32,
    /// Bound on retained window summaries (oldest evicted first).
    pub max_windows: u32,
}

impl BenchmarkConfig {
    /// Creates a configuration for one workload with the paper's defaults:
    /// all three flavors, AWS `t3.large`, 60-second iterations, 1 iteration.
    #[must_use]
    pub fn new(workload: WorkloadKind) -> Self {
        BenchmarkConfig {
            flavors: ServerFlavor::all().to_vec(),
            workload: WorkloadSpec::new(workload),
            environment: Environment::aws_default(),
            duration_secs: 60,
            iterations: 1,
            bots_override: None,
            link: LinkConfig::datacenter(),
            base_seed: 392_114_485,
            node_ips: vec!["10.0.0.10".into(), "10.0.0.11".into()],
            ssh_keys: vec!["~/.ssh/id_meterstick".into()],
            jmx_ports: (25_585, 25_635),
            ram_gb: 4.0,
            affinity_mask: 0xFFFF_FFFF,
            resume: false,
            tick_threads: 1,
            shard_rebalance: None,
            eager_lighting: None,
            start_time: StartTime::default(),
            metrics_window: None,
        }
    }

    /// Replaces the set of flavors to benchmark.
    #[must_use]
    pub fn with_flavors(mut self, flavors: Vec<ServerFlavor>) -> Self {
        self.flavors = flavors;
        self
    }

    /// Replaces the deployment environment.
    #[must_use]
    pub fn with_environment(mut self, environment: Environment) -> Self {
        self.environment = environment;
        self
    }

    /// Sets the iteration duration in seconds.
    #[must_use]
    pub fn with_duration_secs(mut self, secs: u64) -> Self {
        self.duration_secs = secs.max(1);
        self
    }

    /// Sets the number of iterations.
    #[must_use]
    pub fn with_iterations(mut self, iterations: u32) -> Self {
        self.iterations = iterations.max(1);
        self
    }

    /// Overrides the number of bots.
    #[must_use]
    pub fn with_bots(mut self, bots: u32) -> Self {
        self.bots_override = Some(bots);
        self
    }

    /// Sets the workload scale knob.
    #[must_use]
    pub fn with_scale(mut self, scale: u32) -> Self {
        self.workload = WorkloadSpec::with_scale(self.workload.kind, scale);
        self
    }

    /// Sets the base seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Sets the tick-pipeline worker thread count.
    #[must_use]
    pub fn with_tick_threads(mut self, threads: u32) -> Self {
        self.tick_threads = threads.max(1);
        self
    }

    /// Sets the shard-rebalancing override (`None` = flavor default).
    #[must_use]
    pub fn with_shard_rebalance(mut self, rebalance: Option<bool>) -> Self {
        self.shard_rebalance = rebalance;
        self
    }

    /// Sets the eager-lighting override (`None` = flavor default;
    /// `Some(false)` = cross-tick pipelined lighting).
    #[must_use]
    pub fn with_eager_lighting(mut self, eager: Option<bool>) -> Self {
        self.eager_lighting = eager;
        self
    }

    /// Sets the start time within the simulated week.
    #[must_use]
    pub fn with_start_time(mut self, start_time: StartTime) -> Self {
        self.start_time = start_time;
        self
    }

    /// Enables windowed (long-horizon) metric aggregation.
    #[must_use]
    pub fn with_metrics_window(mut self, window_ticks: u32, max_windows: u32) -> Self {
        self.metrics_window = Some(MetricsWindow {
            window_ticks: window_ticks.max(1),
            max_windows: max_windows.max(1),
        });
        self
    }

    /// Number of game ticks one iteration spans at 20 Hz.
    #[must_use]
    pub fn ticks_per_iteration(&self) -> u64 {
        self.duration_secs * 20
    }

    /// The seed used for iteration `iteration` of flavor index `flavor_idx`.
    #[must_use]
    pub fn iteration_seed(&self, flavor_idx: usize, iteration: u32) -> u64 {
        self.base_seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(flavor_idx as u64 * 1_000_003)
            .wrapping_add(u64::from(iteration) * 7_919)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table4() {
        let c = BenchmarkConfig::new(WorkloadKind::Control);
        assert_eq!(c.flavors.len(), 3);
        assert_eq!(c.duration_secs, 60);
        assert_eq!(c.iterations, 1);
        assert_eq!(c.ram_gb, 4.0);
        assert_eq!(c.ticks_per_iteration(), 1_200);
    }

    #[test]
    fn builders_compose() {
        let c = BenchmarkConfig::new(WorkloadKind::Players)
            .with_duration_secs(0)
            .with_iterations(0)
            .with_bots(25)
            .with_scale(2)
            .with_seed(7);
        assert_eq!(c.duration_secs, 1, "duration is clamped");
        assert_eq!(c.iterations, 1, "iterations are clamped");
        assert_eq!(c.bots_override, Some(25));
        assert_eq!(c.workload.scale, 2);
        assert_eq!(c.base_seed, 7);
    }

    #[test]
    fn iteration_seeds_are_distinct() {
        let c = BenchmarkConfig::new(WorkloadKind::Control);
        let mut seeds = std::collections::HashSet::new();
        for flavor in 0..3 {
            for iteration in 0..50 {
                seeds.insert(c.iteration_seed(flavor, iteration));
            }
        }
        assert_eq!(seeds.len(), 150);
    }
}
