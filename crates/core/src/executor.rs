//! Pluggable campaign executors.
//!
//! An [`Executor`] turns a [`CampaignPlan`] into one [`IterationResult`]
//! per job. Jobs are independent and fully seeded, so execution order and
//! placement cannot affect the results: [`ParallelExecutor`] produces
//! bit-identical traces to [`SequentialExecutor`] for the same plan (there
//! is a test pinning this). Executors stream every result through a
//! callback as soon as it completes — that is what feeds the
//! [`ResultSink`](crate::sink::ResultSink)s — and return the full result
//! set in plan order.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use crossbeam::channel::unbounded;

use crate::campaign::{CampaignPlan, IterationJob};
use crate::error::BenchmarkError;
use crate::results::IterationResult;

/// Streaming observer invoked once per completed job, in completion order.
pub type ResultCallback<'a> = dyn FnMut(&IterationJob, &IterationResult) + 'a;

/// A strategy for executing the independent jobs of a campaign plan.
pub trait Executor {
    /// Short human-readable executor name (for logs and reports).
    fn name(&self) -> &'static str;

    /// Runs every job of `plan`, invoking `on_result` as each job
    /// completes, and returns the results in plan order.
    ///
    /// # Errors
    ///
    /// Returns [`BenchmarkError::WorkerPanicked`] when a job panicked
    /// instead of producing a result.
    fn execute(
        &self,
        plan: &CampaignPlan,
        on_result: &mut ResultCallback<'_>,
    ) -> Result<Vec<IterationResult>, BenchmarkError>;
}

/// Runs jobs one after another on the calling thread, in plan order.
#[derive(Debug, Clone, Copy, Default)]
pub struct SequentialExecutor;

impl Executor for SequentialExecutor {
    fn name(&self) -> &'static str {
        "sequential"
    }

    fn execute(
        &self,
        plan: &CampaignPlan,
        on_result: &mut ResultCallback<'_>,
    ) -> Result<Vec<IterationResult>, BenchmarkError> {
        let mut results = Vec::with_capacity(plan.jobs().len());
        for job in plan.jobs() {
            let result = run_job_caught(job)?;
            on_result(job, &result);
            results.push(result);
        }
        Ok(results)
    }
}

/// Runs jobs on a pool of OS threads.
///
/// Iterations derive all their randomness from their per-job seed and share
/// no mutable state, so fan-out is safe: the result set is bit-identical to
/// [`SequentialExecutor`]'s for the same plan, whatever the thread count or
/// scheduling. Results are streamed to the callback in completion order and
/// returned in plan order.
#[derive(Debug, Clone, Copy)]
pub struct ParallelExecutor {
    threads: usize,
}

impl Default for ParallelExecutor {
    fn default() -> Self {
        ParallelExecutor::with_available_parallelism()
    }
}

impl ParallelExecutor {
    /// Uses exactly `threads` worker threads (at least one).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        ParallelExecutor {
            threads: threads.max(1),
        }
    }

    /// Uses one worker per available CPU core.
    #[must_use]
    pub fn with_available_parallelism() -> Self {
        let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        ParallelExecutor::new(threads)
    }

    /// The configured worker-thread count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }
}

impl Executor for ParallelExecutor {
    fn name(&self) -> &'static str {
        "parallel"
    }

    fn execute(
        &self,
        plan: &CampaignPlan,
        on_result: &mut ResultCallback<'_>,
    ) -> Result<Vec<IterationResult>, BenchmarkError> {
        let jobs = plan.jobs();
        if jobs.is_empty() {
            return Ok(Vec::new());
        }
        enum Message {
            // Boxed: an IterationResult is hundreds of bytes and the
            // channel otherwise pays that size for every WorkerExited too.
            Job(usize, Box<Result<IterationResult, BenchmarkError>>),
            WorkerExited,
        }
        let workers = self.threads.min(jobs.len());
        let next_job = AtomicUsize::new(0);
        let cancelled = AtomicBool::new(false);
        let (tx, rx) = unbounded::<Message>();

        let mut slots: Vec<Option<IterationResult>> = Vec::new();
        slots.resize_with(jobs.len(), || None);
        let mut first_error = None;

        std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let next_job = &next_job;
                let cancelled = &cancelled;
                scope.spawn(move || {
                    // A failed job cancels the campaign: workers stop
                    // claiming new jobs instead of burning through the rest
                    // of the plan before the error surfaces.
                    while !cancelled.load(Ordering::Relaxed) {
                        let index = next_job.fetch_add(1, Ordering::Relaxed);
                        let Some(job) = jobs.get(index) else { break };
                        // `run_job_caught` converts panics into errors, so
                        // every claimed job sends exactly one message.
                        let outcome = run_job_caught(job);
                        if tx.send(Message::Job(index, Box::new(outcome))).is_err() {
                            break;
                        }
                    }
                    let _ = tx.send(Message::WorkerExited);
                });
            }
            drop(tx);
            // Every worker sends exactly one WorkerExited on the way out,
            // so this loop always terminates — with or without cancellation.
            let mut workers_alive = workers;
            while workers_alive > 0 {
                match rx.recv().expect("workers announce their exit") {
                    Message::Job(index, outcome) => match *outcome {
                        Ok(result) => {
                            on_result(&jobs[index], &result);
                            slots[index] = Some(result);
                        }
                        Err(err) => {
                            cancelled.store(true, Ordering::Relaxed);
                            if first_error.is_none() {
                                first_error = Some(err);
                            }
                        }
                    },
                    Message::WorkerExited => workers_alive -= 1,
                }
            }
        });

        if let Some(err) = first_error {
            return Err(err);
        }
        Ok(slots
            .into_iter()
            .map(|slot| slot.expect("every job completed without error"))
            .collect())
    }
}

/// Runs one job, converting a panic inside the simulation into a
/// [`BenchmarkError::WorkerPanicked`] so executors never hang or abort the
/// whole campaign silently.
fn run_job_caught(job: &IterationJob) -> Result<IterationResult, BenchmarkError> {
    catch_unwind(AssertUnwindSafe(|| job.run())).map_err(|payload| {
        let message = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".into());
        BenchmarkError::WorkerPanicked {
            job: job.label(),
            message,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::Campaign;
    use crate::sink::{NullSink, ResultSink};
    use cloud_sim::environment::Environment;
    use meterstick_workloads::WorkloadKind;
    use mlg_server::ServerFlavor;

    fn equivalence_campaign() -> Campaign {
        // Two workloads × two flavors × two iterations on a cloud
        // environment, so interference randomness is exercised too.
        Campaign::new()
            .workloads([WorkloadKind::Control, WorkloadKind::Players])
            .flavors([ServerFlavor::Vanilla, ServerFlavor::Paper])
            .environments([Environment::aws_default()])
            .iterations(2)
            .duration_secs(2)
            .seed(987_654_321)
    }

    #[test]
    fn parallel_matches_sequential_bit_for_bit() {
        let campaign = equivalence_campaign();
        let sequential = campaign
            .run_with(&SequentialExecutor, &mut NullSink)
            .unwrap();
        let parallel = campaign
            .run_with(&ParallelExecutor::new(4), &mut NullSink)
            .unwrap();
        assert_eq!(sequential.iterations().len(), parallel.iterations().len());
        for (s, p) in sequential.iterations().iter().zip(parallel.iterations()) {
            assert_eq!(s.flavor, p.flavor);
            assert_eq!(s.workload, p.workload);
            assert_eq!(s.iteration, p.iteration);
            // Bit-identical traces: every busy duration equal, not just
            // close.
            assert_eq!(s.trace.busy_durations(), p.trace.busy_durations());
            assert_eq!(s.instability_ratio, p.instability_ratio);
            assert_eq!(s.response_samples, p.response_samples);
            assert_eq!(s.ticks_executed, p.ticks_executed);
        }
    }

    #[test]
    fn parallel_streams_every_job_exactly_once() {
        struct CountingSink {
            seen: Vec<usize>,
        }
        impl ResultSink for CountingSink {
            fn on_result(
                &mut self,
                job: &crate::campaign::IterationJob,
                _result: &crate::results::IterationResult,
            ) {
                self.seen.push(job.index);
            }
        }
        let campaign = equivalence_campaign();
        let mut sink = CountingSink { seen: Vec::new() };
        let results = campaign
            .run_with(&ParallelExecutor::new(3), &mut sink)
            .unwrap();
        assert_eq!(sink.seen.len(), results.iterations().len());
        sink.seen.sort_unstable();
        assert_eq!(
            sink.seen,
            (0..results.iterations().len()).collect::<Vec<_>>()
        );
    }

    #[test]
    #[ignore = "wall-clock timing assertion; flaky on loaded/shared runners — run explicitly \
                with `cargo test -p meterstick -- --ignored` on a quiet >=4-core host"]
    fn parallel_is_measurably_faster_on_multicore_hosts() {
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        if cores < 4 {
            // The speedup claim only holds with real hardware parallelism;
            // correctness (bit-identical results) is covered above.
            // detlint: allow(no-debug-output) -- skip diagnostic of an ignored, manually-run test
            eprintln!("skipping speedup check: only {cores} core(s) available");
            return;
        }
        let campaign = Campaign::new()
            .workloads([WorkloadKind::Players])
            .flavors([
                ServerFlavor::Vanilla,
                ServerFlavor::Paper,
                ServerFlavor::Forge,
            ])
            .environments([Environment::aws_default()])
            .iterations(4)
            .duration_secs(3);
        // detlint: allow(no-wall-clock) -- substrate timing: the test measures real executor speedup
        let start = std::time::Instant::now();
        let sequential = campaign
            .run_with(&SequentialExecutor, &mut NullSink)
            .unwrap();
        let sequential_elapsed = start.elapsed();
        // detlint: allow(no-wall-clock) -- substrate timing: the test measures real executor speedup
        let start = std::time::Instant::now();
        let parallel = campaign
            .run_with(&ParallelExecutor::new(4), &mut NullSink)
            .unwrap();
        let parallel_elapsed = start.elapsed();
        assert_eq!(sequential.iterations().len(), parallel.iterations().len());
        assert!(
            parallel_elapsed < sequential_elapsed.mul_f64(0.8),
            "expected ≥1.25x speedup on {cores} cores: sequential {sequential_elapsed:?}, parallel {parallel_elapsed:?}"
        );
    }

    #[test]
    fn executor_names_are_stable() {
        assert_eq!(SequentialExecutor.name(), "sequential");
        assert_eq!(ParallelExecutor::new(2).name(), "parallel");
        assert_eq!(
            ParallelExecutor::new(0).threads(),
            1,
            "thread count is clamped"
        );
    }
}
