//! Iteration execution and the legacy single-cell experiment runner.
//!
//! One *iteration* follows the Meterstick procedure (Figure 5): deploy,
//! start the server, start metric logging, connect the player emulation,
//! run for the configured duration, then collect metrics. The free function
//! [`execute_iteration`] is the single implementation of that procedure;
//! [`IterationJob::run`](crate::campaign::IterationJob::run) and the
//! deprecated [`ExperimentRunner`] both call it.
//!
//! New code should compose sweeps with [`Campaign`](crate::campaign::Campaign)
//! instead of using [`ExperimentRunner`]: a campaign covers multiple
//! workloads and environments, returns `Result` instead of panicking on bad
//! deployment configuration, and can execute on any
//! [`Executor`](crate::executor::Executor).

use cloud_sim::metrics_collector::{SystemMetricsCollector, TickObservation};
use meterstick_metrics::response::ResponseTimeSummary;
use meterstick_metrics::trace::TickTrace;
use meterstick_workloads::BuiltWorkload;
use mlg_bots::PlayerEmulation;
use mlg_server::{GameServer, ServerConfig, ServerFlavor};

use crate::campaign::Campaign;
use crate::config::BenchmarkConfig;
use crate::results::{ExperimentResults, IterationResult};

/// Runs a single iteration of a single flavor under `config`, with the
/// environment and bot randomness derived from `seed`.
///
/// The workload world is built once per iteration from `config.base_seed`
/// (identical across iterations by design — only the environment and bot
/// behaviour vary) and handed to the server directly.
#[must_use]
pub fn execute_iteration(
    config: &BenchmarkConfig,
    flavor: ServerFlavor,
    iteration: u32,
    seed: u64,
) -> IterationResult {
    let built = config.workload.build(config.base_seed);
    let workload_kind = built.kind;
    let (mut server, mut emulation) = prepare(config, flavor, built, seed);
    let mut engine = config.environment.instantiate(seed).engine;

    let ticks_planned = config.ticks_per_iteration();
    let duration_ms = config.duration_secs as f64 * 1_000.0;
    let mut trace = TickTrace::new(server.config().tick_budget_ms);
    let mut collector = SystemMetricsCollector::new(30);
    let mut crashed = None;
    let mut ticks_executed = 0;

    // The iteration runs for a fixed span of *virtual time*, exactly like
    // the paper's fixed wall-clock duration: when the server is
    // overloaded, fewer ticks fit into the iteration (Na ≤ Ne in the ISR
    // definition).
    while server.clock_ms() < duration_ms {
        let summary = emulation.step(&mut server, &mut engine);
        ticks_executed += 1;
        trace.push(summary.record);
        collector.observe_tick(
            summary.end_ms,
            TickObservation {
                cpu_utilization: summary.cpu_utilization,
                entities: summary.entity_count as u64,
                loaded_chunks: server.world().loaded_chunk_count() as u64,
                players: summary.player_count as u32,
                network_sent_bytes: summary.packets_emitted * 40,
                network_received_bytes: summary.bytes_received,
                blocks_written: summary.packets_emitted / 4,
            },
        );
        if let Some(crash) = summary.crash {
            crashed = Some(crash.reason);
            break;
        }
    }

    let response_samples = emulation.response_samples().to_vec();
    IterationResult {
        flavor,
        workload: workload_kind,
        iteration,
        environment: config.environment.label(),
        instability_ratio: trace.instability_ratio(Some(ticks_planned)),
        response: ResponseTimeSummary::of(&response_samples),
        response_samples,
        system_samples: collector.finish(),
        traffic: server.traffic_summary().clone(),
        ticks_executed,
        ticks_planned,
        crashed,
        trace,
    }
}

/// Builds the server and player emulation for one iteration, consuming the
/// already-built workload (one build per iteration; worlds are not `Clone`
/// on purpose, and rebuilding from the same seed would only duplicate
/// work).
fn prepare(
    config: &BenchmarkConfig,
    flavor: ServerFlavor,
    built: BuiltWorkload,
    seed: u64,
) -> (GameServer, PlayerEmulation) {
    let server_config = ServerConfig::for_flavor(flavor).with_seed(config.base_seed);
    let bots = config.bots_override.unwrap_or(built.players.bots);
    let mut emulation = PlayerEmulation::new(
        bots,
        built.spawn_point,
        built.players.walk_area,
        built.players.moving,
        config.link,
        seed,
    );
    let mut server = GameServer::new(server_config, built.world, built.spawn_point);
    emulation.connect_all(&mut server);
    for (kind, pos) in &built.ambient_entities {
        server.spawn_entity(*kind, *pos);
    }
    if let Some(delay) = built.tnt_fuse_delay_ticks {
        server.schedule_tnt_ignition(delay);
    }
    (server, emulation)
}

/// Runs benchmark configurations and produces [`ExperimentResults`].
///
/// Deprecated thin shim over a single-workload, single-environment
/// [`Campaign`]; it preserves the legacy panic-on-bad-deployment behaviour
/// for old callers. New code should use [`Campaign`] directly.
#[deprecated(
    since = "0.2.0",
    note = "compose sweeps with `meterstick::campaign::Campaign`, which returns \
            `Result` instead of panicking and executes multi-cell plans"
)]
#[derive(Debug, Clone)]
pub struct ExperimentRunner {
    config: BenchmarkConfig,
}

#[allow(deprecated)]
impl ExperimentRunner {
    /// Creates a runner for the given configuration.
    #[must_use]
    pub fn new(config: BenchmarkConfig) -> Self {
        ExperimentRunner { config }
    }

    /// The configuration this runner executes.
    #[must_use]
    pub fn config(&self) -> &BenchmarkConfig {
        &self.config
    }

    /// Runs every flavor × iteration combination and collects the results.
    ///
    /// # Panics
    ///
    /// Panics if the deployment configuration is invalid (fewer than two
    /// nodes or no SSH key); use [`Campaign::run`] to handle that case
    /// gracefully.
    #[must_use]
    pub fn run(&self) -> ExperimentResults {
        use crate::error::BenchmarkError;
        match Campaign::from_config(self.config.clone()).run() {
            Ok(results) => results.into_experiment_results(),
            Err(BenchmarkError::Deployment(err)) => {
                panic!("valid deployment configuration: {err}")
            }
            Err(err @ BenchmarkError::WorkerPanicked { .. }) => {
                // A panic inside the simulation: legacy behaviour was an
                // uncaught panic, not a silent re-run. Resume it.
                panic!("{err}")
            }
            Err(_) => {
                // Campaign validation is stricter than the legacy runner,
                // which accepted degenerate configurations (zero
                // iterations/duration, empty flavor list, odd scalar
                // values) and simply ran them — usually to an empty result
                // set. Reproduce the legacy loop exactly for those.
                crate::deployment::DeploymentPlan::plan(&self.config)
                    .unwrap_or_else(|err| panic!("valid deployment configuration: {err}"));
                let mut results = ExperimentResults::new();
                for (flavor_idx, &flavor) in self.config.flavors.iter().enumerate() {
                    for iteration in 0..self.config.iterations {
                        let seed = self.config.iteration_seed(flavor_idx, iteration);
                        results.push(execute_iteration(&self.config, flavor, iteration, seed));
                    }
                }
                results
            }
        }
    }

    /// Runs a single iteration of a single flavor, with the environment
    /// randomness derived from `seed`.
    #[must_use]
    pub fn run_iteration(
        &self,
        flavor: ServerFlavor,
        iteration: u32,
        seed: u64,
    ) -> IterationResult {
        execute_iteration(&self.config, flavor, iteration, seed)
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use cloud_sim::environment::Environment;
    use meterstick_workloads::WorkloadKind;

    fn quick_config(workload: WorkloadKind) -> BenchmarkConfig {
        BenchmarkConfig::new(workload)
            .with_flavors(vec![ServerFlavor::Vanilla])
            .with_environment(Environment::das5(2))
            .with_duration_secs(3)
            .with_iterations(1)
    }

    #[test]
    fn control_workload_runs_to_completion() {
        let results = ExperimentRunner::new(quick_config(WorkloadKind::Control)).run();
        assert_eq!(results.iterations().len(), 1);
        let it = &results.iterations()[0];
        // The iteration spans 3 virtual seconds; at 20 Hz that is at most 60
        // ticks, slightly fewer when individual ticks run over budget.
        assert!(
            it.ticks_executed >= 40 && it.ticks_executed <= 60,
            "{}",
            it.ticks_executed
        );
        assert!(!it.crashed());
        assert!(it.instability_ratio >= 0.0 && it.instability_ratio <= 1.0);
        assert!(!it.response_samples.is_empty());
        assert!(!it.system_samples.is_empty());
    }

    #[test]
    fn multiple_flavors_and_iterations_multiply_results() {
        let config = quick_config(WorkloadKind::Control)
            .with_flavors(vec![ServerFlavor::Vanilla, ServerFlavor::Paper])
            .with_iterations(2)
            .with_duration_secs(2);
        let results = ExperimentRunner::new(config).run();
        assert_eq!(results.iterations().len(), 4);
        assert_eq!(results.for_flavor(ServerFlavor::Paper).len(), 2);
    }

    #[test]
    fn iterations_differ_on_clouds_but_worlds_are_identical() {
        let config = quick_config(WorkloadKind::Control)
            .with_environment(Environment::aws_default())
            .with_iterations(2);
        let results = ExperimentRunner::new(config).run();
        let isr: Vec<f64> = results.isr_values(ServerFlavor::Vanilla);
        assert_eq!(isr.len(), 2);
        // Different interference seeds make the two iterations differ.
        let t0: f64 = results.iterations()[0].trace.busy_durations().iter().sum();
        let t1: f64 = results.iterations()[1].trace.busy_durations().iter().sum();
        assert_ne!(t0, t1);
    }

    #[test]
    fn players_workload_connects_25_bots() {
        let config = quick_config(WorkloadKind::Players).with_duration_secs(2);
        let results = ExperimentRunner::new(config).run();
        let it = &results.iterations()[0];
        assert_eq!(it.workload, WorkloadKind::Players);
        // The busiest evidence that 25 bots are connected: entity/player
        // traffic exists and response samples were captured.
        assert!(it.traffic.total_messages() > 0);
    }

    #[test]
    fn same_seed_reproduces_identical_results_on_das5() {
        let config = quick_config(WorkloadKind::Control).with_duration_secs(2);
        let a = ExperimentRunner::new(config.clone()).run();
        let b = ExperimentRunner::new(config).run();
        let ta: Vec<f64> = a.iterations()[0].trace.busy_durations();
        let tb: Vec<f64> = b.iterations()[0].trace.busy_durations();
        assert_eq!(
            ta, tb,
            "identical configuration must reproduce identical traces"
        );
    }

    #[test]
    fn legacy_degenerate_configs_still_return_empty_results() {
        // The pre-campaign runner accepted iterations == 0 (its loop ran
        // nothing); the shim must not turn that into a panic.
        let mut config = quick_config(WorkloadKind::Control);
        config.iterations = 0;
        let results = ExperimentRunner::new(config).run();
        assert!(results.iterations().is_empty());

        let mut config = quick_config(WorkloadKind::Control);
        config.duration_secs = 0;
        let results = ExperimentRunner::new(config).run();
        assert_eq!(results.iterations().len(), 1);
        assert_eq!(results.iterations()[0].ticks_executed, 0);

        let config = quick_config(WorkloadKind::Control).with_flavors(Vec::new());
        let results = ExperimentRunner::new(config).run();
        assert!(results.iterations().is_empty());
    }

    #[test]
    fn runner_and_campaign_agree_bit_for_bit() {
        // The shim must not change results: the same configuration through
        // the deprecated runner and through a one-cell campaign yields
        // identical traces.
        let config = quick_config(WorkloadKind::Control)
            .with_environment(Environment::aws_default())
            .with_iterations(2);
        let legacy = ExperimentRunner::new(config.clone()).run();
        let campaign = Campaign::from_config(config).run().unwrap();
        assert_eq!(legacy.iterations().len(), campaign.iterations().len());
        for (l, c) in legacy.iterations().iter().zip(campaign.iterations()) {
            assert_eq!(l.trace.busy_durations(), c.trace.busy_durations());
            assert_eq!(l.instability_ratio, c.instability_ratio);
        }
    }
}
